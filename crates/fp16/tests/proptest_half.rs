//! Property-based tests for the software FP16 implementation.

use aiga_fp16::ops::{hdot_f32, hsum, hsum_pairwise};
use aiga_fp16::{mma_m16n8k8, F16, MmaTile};
use proptest::prelude::*;

/// Strategy producing arbitrary finite F16 values through their bit
/// patterns (covers normals, subnormals, and signed zeros).
fn finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>()
        .prop_map(F16::from_bits)
        .prop_filter("finite", |h| h.is_finite())
}

/// Strategy for "moderate" values where FP32 accumulation of 8-term dot
/// products is exact enough to compare against f64.
fn moderate_f16() -> impl Strategy<Value = F16> {
    (-240i32..=240).prop_map(|v| F16::from_f32(v as f32 / 8.0))
}

proptest! {
    #[test]
    fn roundtrip_through_f64_is_identity(h in finite_f16()) {
        prop_assert_eq!(F16::from_f64(h.to_f64()).to_bits(), h.to_bits());
    }

    #[test]
    fn conversion_is_monotone(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(a.is_finite() && b.is_finite());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hlo, hhi) = (F16::from_f64(lo), F16::from_f64(hi));
        // Rounding is monotone: lo <= hi implies f16(lo) <= f16(hi).
        prop_assert!(hlo.to_f64() <= hhi.to_f64());
    }

    #[test]
    fn conversion_error_is_within_half_ulp(x in -60000.0f64..60000.0) {
        let h = F16::from_f64(x);
        let back = h.to_f64();
        // ulp at |x|: 2^(floor(log2|x|) - 10), min quantum 2^-24.
        let ulp = if x == 0.0 {
            2.0_f64.powi(-24)
        } else {
            2.0_f64.powi((x.abs().log2().floor() as i32 - 10).max(-24))
        };
        prop_assert!((back - x).abs() <= ulp / 2.0 + f64::EPSILON,
            "x={x} back={back} ulp={ulp}");
    }

    #[test]
    fn addition_is_commutative(a in finite_f16(), b in finite_f16()) {
        let ab = a + b;
        let ba = b + a;
        prop_assert!(ab == ba || (ab.is_nan() && ba.is_nan()));
    }

    #[test]
    fn multiplication_is_commutative(a in finite_f16(), b in finite_f16()) {
        let ab = a * b;
        let ba = b * a;
        prop_assert!(ab == ba || (ab.is_nan() && ba.is_nan()));
    }

    #[test]
    fn add_is_correctly_rounded(a in finite_f16(), b in finite_f16()) {
        // The exact sum of two f16 values is representable in f64, so
        // rounding it once is the correctly-rounded answer.
        let exact = a.to_f64() + b.to_f64();
        prop_assert_eq!((a + b).to_bits(), F16::from_f64(exact).to_bits());
    }

    #[test]
    fn mul_is_correctly_rounded(a in finite_f16(), b in finite_f16()) {
        let exact = a.to_f64() * b.to_f64();
        prop_assert_eq!((a * b).to_bits(), F16::from_f64(exact).to_bits());
    }

    #[test]
    fn neg_is_involutive_and_sign_flipping(a in finite_f16()) {
        prop_assert_eq!((-(-a)).to_bits(), a.to_bits());
        if !a.is_zero() {
            prop_assert!((-a).to_f64() == -(a.to_f64()));
        }
    }

    #[test]
    fn hsum_of_nonnegative_is_monotone_in_length(
        vals in proptest::collection::vec(0u16..0x3c00, 1..40)
    ) {
        // All values in [0, 1); appending more nonnegative terms never
        // decreases the FP16 running sum.
        let vals: Vec<F16> = vals.into_iter().map(F16::from_bits).collect();
        let mut prev = F16::ZERO;
        for n in 1..=vals.len() {
            let s = hsum(&vals[..n]);
            prop_assert!(s.to_f64() >= prev.to_f64());
            prev = s;
        }
    }

    #[test]
    fn pairwise_sum_is_at_least_as_accurate(
        vals in proptest::collection::vec(moderate_f16(), 1..64)
    ) {
        let exact: f64 = vals.iter().map(|v| v.to_f64()).sum();
        let seq = hsum(&vals).to_f64();
        let tree = hsum_pairwise(&vals).to_f64();
        // Not asserting tree <= seq error pointwise (not a theorem), just
        // that both stay within the coarse FP16 error envelope.
        let bound = vals.len() as f64 * 0.5 * 2.0_f64.powi(-10)
            * vals.iter().map(|v| v.to_f64().abs()).sum::<f64>().max(1.0);
        prop_assert!((seq - exact).abs() <= bound + 1.0);
        prop_assert!((tree - exact).abs() <= bound + 1.0);
    }

    #[test]
    fn mma_matches_f64_reference(
        a in proptest::collection::vec(moderate_f16(), 128),
        b in proptest::collection::vec(moderate_f16(), 64),
    ) {
        let mut c = vec![0.0f32; 128];
        mma_m16n8k8(MmaTile::new(&a, 8), MmaTile::new(&b, 8), &mut c, 8);
        for i in 0..16 {
            for j in 0..8 {
                let mut exact = 0.0f64;
                let mut f32ref = 0.0f32;
                for k in 0..8 {
                    exact += a[i * 8 + k].to_f64() * b[k * 8 + j].to_f64();
                    f32ref += a[i * 8 + k].to_f32() * b[k * 8 + j].to_f32();
                }
                // Bit-identical to the sequential FP32 reference and close
                // to the exact value.
                prop_assert_eq!(c[i * 8 + j], f32ref);
                prop_assert!((c[i * 8 + j] as f64 - exact).abs() < 1e-1);
            }
        }
    }

    #[test]
    fn hdot_is_bilinear_in_scaling_by_powers_of_two(
        a in proptest::collection::vec(moderate_f16(), 8),
        b in proptest::collection::vec(moderate_f16(), 8),
    ) {
        // Scaling by 2 is exact in FP16, so the dot product must scale
        // exactly too.
        let two = F16::from_f32(2.0);
        let a2: Vec<F16> = a.iter().map(|&x| x * two).collect();
        prop_assert_eq!(hdot_f32(&a2, &b), 2.0 * hdot_f32(&a, &b));
    }
}
