//! Randomized property tests for the software FP16 implementation
//! (seeded deterministic case loops; no external crates).

use aiga_fp16::ops::{hdot_f32, hsum, hsum_pairwise};
use aiga_fp16::{mma_m16n8k8, MmaTile, F16};
use aiga_util::Rng64;

/// Arbitrary finite F16 values through their bit patterns (covers
/// normals, subnormals, and signed zeros).
fn finite_f16(rng: &mut Rng64) -> F16 {
    loop {
        let h = F16::from_bits(rng.next_u16());
        if h.is_finite() {
            return h;
        }
    }
}

/// "Moderate" values where FP32 accumulation of 8-term dot products is
/// exact enough to compare against f64.
fn moderate_f16(rng: &mut Rng64) -> F16 {
    let v = rng.range_u64(0, 481) as i32 - 240;
    F16::from_f32(v as f32 / 8.0)
}

fn moderate_vec(rng: &mut Rng64, len: usize) -> Vec<F16> {
    (0..len).map(|_| moderate_f16(rng)).collect()
}

#[test]
fn roundtrip_through_f64_is_identity() {
    let mut rng = Rng64::seed_from_u64(0xF16_0001);
    for _ in 0..4000 {
        let h = finite_f16(&mut rng);
        assert_eq!(F16::from_f64(h.to_f64()).to_bits(), h.to_bits());
    }
}

#[test]
fn conversion_is_monotone() {
    let mut rng = Rng64::seed_from_u64(0xF16_0002);
    for _ in 0..4000 {
        let a = rng.range_f64(-1e6, 1e6);
        let b = rng.range_f64(-1e6, 1e6);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hlo, hhi) = (F16::from_f64(lo), F16::from_f64(hi));
        // Rounding is monotone: lo <= hi implies f16(lo) <= f16(hi).
        assert!(hlo.to_f64() <= hhi.to_f64(), "{lo} {hi}");
    }
}

#[test]
fn conversion_error_is_within_half_ulp() {
    let mut rng = Rng64::seed_from_u64(0xF16_0003);
    for _ in 0..4000 {
        let x = rng.range_f64(-60000.0, 60000.0);
        let back = F16::from_f64(x).to_f64();
        // ulp at |x|: 2^(floor(log2|x|) - 10), min quantum 2^-24.
        let ulp = if x == 0.0 {
            2.0_f64.powi(-24)
        } else {
            2.0_f64.powi((x.abs().log2().floor() as i32 - 10).max(-24))
        };
        assert!(
            (back - x).abs() <= ulp / 2.0 + f64::EPSILON,
            "x={x} back={back} ulp={ulp}"
        );
    }
}

#[test]
fn addition_and_multiplication_are_commutative() {
    let mut rng = Rng64::seed_from_u64(0xF16_0004);
    for _ in 0..4000 {
        let a = finite_f16(&mut rng);
        let b = finite_f16(&mut rng);
        let (ab, ba) = (a + b, b + a);
        assert!(ab == ba || (ab.is_nan() && ba.is_nan()));
        let (ab, ba) = (a * b, b * a);
        assert!(ab == ba || (ab.is_nan() && ba.is_nan()));
    }
}

#[test]
fn add_and_mul_are_correctly_rounded() {
    let mut rng = Rng64::seed_from_u64(0xF16_0005);
    for _ in 0..4000 {
        let a = finite_f16(&mut rng);
        let b = finite_f16(&mut rng);
        // The exact sum/product of two f16 values is representable in
        // f64, so rounding it once is the correctly-rounded answer.
        assert_eq!(
            (a + b).to_bits(),
            F16::from_f64(a.to_f64() + b.to_f64()).to_bits()
        );
        assert_eq!(
            (a * b).to_bits(),
            F16::from_f64(a.to_f64() * b.to_f64()).to_bits()
        );
    }
}

#[test]
fn neg_is_involutive_and_sign_flipping() {
    let mut rng = Rng64::seed_from_u64(0xF16_0006);
    for _ in 0..2000 {
        let a = finite_f16(&mut rng);
        assert_eq!((-(-a)).to_bits(), a.to_bits());
        if !a.is_zero() {
            assert!((-a).to_f64() == -(a.to_f64()));
        }
    }
}

#[test]
fn hsum_of_nonnegative_is_monotone_in_length() {
    let mut rng = Rng64::seed_from_u64(0xF16_0007);
    for _ in 0..200 {
        // All values in [0, 1); appending more nonnegative terms never
        // decreases the FP16 running sum.
        let len = rng.range_usize(1, 40);
        let vals: Vec<F16> = (0..len)
            .map(|_| F16::from_bits(rng.range_u64(0, 0x3c00) as u16))
            .collect();
        let mut prev = F16::ZERO;
        for n in 1..=vals.len() {
            let s = hsum(&vals[..n]);
            assert!(s.to_f64() >= prev.to_f64());
            prev = s;
        }
    }
}

#[test]
fn pairwise_sum_is_at_least_as_accurate() {
    let mut rng = Rng64::seed_from_u64(0xF16_0008);
    for _ in 0..400 {
        let len = rng.range_usize(1, 64);
        let vals = moderate_vec(&mut rng, len);
        let exact: f64 = vals.iter().map(|v| v.to_f64()).sum();
        let seq = hsum(&vals).to_f64();
        let tree = hsum_pairwise(&vals).to_f64();
        // Not asserting tree <= seq error pointwise (not a theorem), just
        // that both stay within the coarse FP16 error envelope.
        let bound = vals.len() as f64
            * 0.5
            * 2.0_f64.powi(-10)
            * vals.iter().map(|v| v.to_f64().abs()).sum::<f64>().max(1.0);
        assert!((seq - exact).abs() <= bound + 1.0);
        assert!((tree - exact).abs() <= bound + 1.0);
    }
}

#[test]
fn mma_matches_f64_reference() {
    let mut rng = Rng64::seed_from_u64(0xF16_0009);
    for _ in 0..200 {
        let a = moderate_vec(&mut rng, 128);
        let b = moderate_vec(&mut rng, 64);
        let mut c = vec![0.0f32; 128];
        mma_m16n8k8(MmaTile::new(&a, 8), MmaTile::new(&b, 8), &mut c, 8);
        for i in 0..16 {
            for j in 0..8 {
                let mut exact = 0.0f64;
                let mut f32ref = 0.0f32;
                for k in 0..8 {
                    exact += a[i * 8 + k].to_f64() * b[k * 8 + j].to_f64();
                    f32ref += a[i * 8 + k].to_f32() * b[k * 8 + j].to_f32();
                }
                // Bit-identical to the sequential FP32 reference and close
                // to the exact value.
                assert_eq!(c[i * 8 + j], f32ref);
                assert!((c[i * 8 + j] as f64 - exact).abs() < 1e-1);
            }
        }
    }
}

#[test]
fn hdot_is_bilinear_in_scaling_by_powers_of_two() {
    let mut rng = Rng64::seed_from_u64(0xF16_000A);
    for _ in 0..1000 {
        let a = moderate_vec(&mut rng, 8);
        let b = moderate_vec(&mut rng, 8);
        // Scaling by 2 is exact in FP16, so the dot product must scale
        // exactly too.
        let two = F16::from_f32(2.0);
        let a2: Vec<F16> = a.iter().map(|&x| x * two).collect();
        assert_eq!(hdot_f32(&a2, &b), 2.0 * hdot_f32(&a, &b));
    }
}
