//! IEEE 754 binary16 ("half precision", FP16) implemented in software.
//!
//! The representation is the raw 16-bit pattern: 1 sign bit, 5 exponent
//! bits (bias 15), 10 significand bits. Conversions implement
//! round-to-nearest-even exactly, including subnormals, signed zeros,
//! infinities, and NaN (canonicalized to a quiet NaN on conversion).
//!
//! Arithmetic is performed by widening to `f64`, computing, and rounding
//! back. A single `f64` operation on two exactly-representable `F16`
//! inputs is exact or correctly rounded to 53 bits, and rounding a
//! 53-bit-rounded value again to 11 bits equals rounding the exact value
//! directly whenever the intermediate precision is at least `2p + 2 = 24`
//! bits (the classical innocuous-double-rounding bound), so `+ - * /`
//! here are correctly rounded binary16 operations.

use std::cmp::Ordering;
use std::fmt;

/// An IEEE 754 binary16 value stored as its raw bit pattern.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct F16(pub u16);

const EXP_MASK: u16 = 0x7c00;
const FRAC_MASK: u16 = 0x03ff;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xbc00);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon, `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// Canonical quiet NaN.
    pub const NAN: F16 = F16(0x7e00);

    /// Builds a value from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        // f32 -> f64 is exact, so this single rounding step is correct.
        Self::from_f64(x as f64)
    }

    /// Converts from `f64` with round-to-nearest-even.
    pub fn from_f64(x: f64) -> Self {
        F16(f64_to_f16_bits(x))
    }

    /// Widens to `f32` (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Widens to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        let bits = self.0;
        let sign = if bits & SIGN_MASK != 0 { -1.0 } else { 1.0 };
        let exp = ((bits & EXP_MASK) >> 10) as i32;
        let frac = (bits & FRAC_MASK) as f64;
        match exp {
            0 => sign * frac * 2.0_f64.powi(-24),
            31 => {
                if frac == 0.0 {
                    sign * f64::INFINITY
                } else {
                    f64::NAN
                }
            }
            _ => sign * (1024.0 + frac) * 2.0_f64.powi(exp - 25),
        }
    }

    /// True for either NaN bit pattern class.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & FRAC_MASK) != 0
    }

    /// True for ±∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// True for anything that is neither NaN nor ±∞.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True for subnormal values (nonzero with a zero exponent field).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & FRAC_MASK) != 0
    }

    /// True for ±0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// True if the sign bit is set (including -0.0 and negative NaN).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// Negation (flips the sign bit, as IEEE negate does — including NaN).
    #[inline]
    #[allow(clippy::should_implement_trait)] // also exposed via std::ops::Neg below
    pub fn neg(self) -> Self {
        F16(self.0 ^ SIGN_MASK)
    }

    /// Correctly-rounded fused multiply-add: `self * b + c` with a single
    /// rounding, as a Tensor Core's FP16 multiplier feeding an FP32
    /// accumulator would before the final down-conversion.
    pub fn fma(self, b: F16, c: F16) -> F16 {
        // The product of two 11-bit significands is exact in f64 (<= 22
        // bits) and the subsequent add is a single f64 rounding; 53 >= 24
        // makes the final rounding to f16 innocuous.
        F16::from_f64(self.to_f64() * b.to_f64() + c.to_f64())
    }
}

/// Rounds `sig >> shift` to nearest, ties to even. `sig` holds an exact
/// nonnegative significand; `shift` may exceed the bit width (the result
/// is then 0, since `sig < 2^53 <= 2^(shift-1)` for `shift >= 54`).
#[inline]
fn rne_shift(sig: u64, shift: u32) -> u64 {
    if shift == 0 {
        return sig;
    }
    let shift = shift.min(63);
    let floor = sig >> shift;
    let rem = sig & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    if rem > half || (rem == half && floor & 1 == 1) {
        floor + 1
    } else {
        floor
    }
}

/// Converts an `f64` to binary16 bits with round-to-nearest-even.
pub fn f64_to_f16_bits(x: f64) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 48) as u16) & SIGN_MASK;
    let e = ((b >> 52) & 0x7ff) as i32;
    let m = b & 0x000f_ffff_ffff_ffff;

    if e == 0x7ff {
        // Infinity or NaN; NaN payloads are canonicalized.
        return if m == 0 {
            sign | EXP_MASK
        } else {
            sign | 0x7e00
        };
    }
    if e == 0 && m == 0 {
        return sign; // signed zero
    }

    // Express |x| = sig * 2^exp with sig in [2^52, 2^53) for normals.
    // f64 subnormals are below 2^-1022, vastly below the f16 underflow
    // threshold 2^-25, so they flush to (signed) zero via the same path.
    let (sig, exp) = if e == 0 {
        (m, -1022 - 52)
    } else {
        (m | (1u64 << 52), e - 1023 - 52)
    };
    // Unbiased magnitude exponent: |x| in [2^emag, 2^(emag+1)).
    let emag = exp + 52;

    if emag >= 16 {
        // |x| >= 2^16 = 65536 > 65519.99..., the rounding boundary to MAX.
        return sign | EXP_MASK;
    }
    if emag >= -14 {
        // Normal f16 candidate: quantum 2^(emag-10); sig's leading bit sits
        // at position 52, so we drop 42 bits.
        let q = rne_shift(sig, 42); // q in [2^10, 2^11]
                                    // Encode with the implicit bit folded into the exponent field;
                                    // q == 2^11 (mantissa overflow) carries into the exponent
                                    // automatically, and an exponent of 31 means overflow to infinity.
        let bits = (((emag + 14) as u32) << 10) + q as u32;
        if bits >= 0x7c00 {
            return sign | EXP_MASK;
        }
        return sign | bits as u16;
    }
    // Subnormal or underflow-to-zero: quantum is 2^-24.
    // shift = (quantum exponent) - exp = -24 - exp.
    let shift = (-24 - exp) as u32;
    let q = rne_shift(sig, shift); // q in [0, 2^10]; 2^10 is MIN_POSITIVE
    sign | q as u16
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<f64> for F16 {
    fn from(x: f64) -> Self {
        F16::from_f64(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> Self {
        x.to_f64()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} = {:#06x})", self.to_f64(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl std::ops::Add for F16 {
    type Output = F16;
    fn add(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() + rhs.to_f64())
    }
}

impl std::ops::Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() - rhs.to_f64())
    }
}

impl std::ops::Mul for F16 {
    type Output = F16;
    fn mul(self, rhs: F16) -> F16 {
        // The exact product fits in 22 significand bits, so the f64
        // intermediate is exact and only one rounding happens.
        F16::from_f64(self.to_f64() * rhs.to_f64())
    }
}

impl std::ops::Div for F16 {
    type Output = F16;
    fn div(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() / rhs.to_f64())
    }
}

impl std::ops::Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16::neg(self)
    }
}

impl std::iter::Sum for F16 {
    /// Sequential left-to-right FP16 summation (each partial sum rounded),
    /// matching what a chain of HADD instructions computes.
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_decode_to_expected_values() {
        assert_eq!(F16::ZERO.to_f64(), 0.0);
        assert_eq!(F16::ONE.to_f64(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f64(), -1.0);
        assert_eq!(F16::MAX.to_f64(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f64(), 2.0_f64.powi(-14));
        assert_eq!(F16::MIN_SUBNORMAL.to_f64(), 2.0_f64.powi(-24));
        assert_eq!(F16::EPSILON.to_f64(), 2.0_f64.powi(-10));
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NAN.is_nan());
    }

    #[test]
    fn roundtrip_all_finite_bit_patterns() {
        // Every finite f16 must survive f16 -> f64 -> f16 unchanged.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f64(h.to_f64()).is_nan());
            } else {
                assert_eq!(F16::from_f64(h.to_f64()).0, bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10; even
        // mantissa (1.0) wins.
        assert_eq!(F16::from_f64(1.0 + 2.0_f64.powi(-11)), F16::ONE);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to the
        // even mantissa 1+2^-9.
        assert_eq!(
            F16::from_f64(1.0 + 3.0 * 2.0_f64.powi(-11)).to_f64(),
            1.0 + 2.0 * 2.0_f64.powi(-10)
        );
        // Just above the tie rounds up.
        assert_eq!(
            F16::from_f64(1.0 + 2.0_f64.powi(-11) + 2.0_f64.powi(-30)).to_f64(),
            1.0 + 2.0_f64.powi(-10)
        );
    }

    #[test]
    fn overflow_boundary_matches_ieee() {
        // 65520 is the midpoint between MAX (65504) and 2^16; ties-to-even
        // sends it to infinity (the "even" successor).
        assert_eq!(F16::from_f64(65519.999), F16::MAX);
        assert_eq!(F16::from_f64(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f64(-65520.0), F16::NEG_INFINITY);
        assert_eq!(F16::from_f64(1e300), F16::INFINITY);
    }

    #[test]
    fn underflow_boundary_matches_ieee() {
        let tiny = 2.0_f64.powi(-24);
        assert_eq!(F16::from_f64(tiny), F16::MIN_SUBNORMAL);
        // Exactly half the smallest subnormal ties to even => zero.
        assert_eq!(F16::from_f64(tiny / 2.0), F16::ZERO);
        assert_eq!(F16::from_f64(tiny / 2.0 * 1.0001), F16::MIN_SUBNORMAL);
        assert_eq!(F16::from_f64(-tiny / 2.0), F16::NEG_ZERO);
        // f64 subnormals flush to zero.
        assert_eq!(F16::from_f64(f64::MIN_POSITIVE / 4.0), F16::ZERO);
    }

    #[test]
    fn subnormal_arithmetic() {
        let a = F16::MIN_SUBNORMAL;
        assert_eq!((a + a).to_f64(), 2.0_f64.powi(-23));
        // 1024 subnormal quanta is the smallest normal.
        let sum: F16 = std::iter::repeat_n(a, 1024).sum();
        assert_eq!(sum, F16::MIN_POSITIVE);
    }

    #[test]
    fn signed_zero_semantics() {
        assert_eq!((F16::NEG_ZERO + F16::ZERO), F16::ZERO);
        assert!(F16::NEG_ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert_eq!(F16::from_f64(-0.0).0, 0x8000);
    }

    #[test]
    fn nan_and_inf_propagate() {
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
        assert_eq!(F16::INFINITY + F16::ONE, F16::INFINITY);
        assert!((F16::ZERO * F16::INFINITY).is_nan());
    }

    #[test]
    fn basic_arithmetic_is_exact_for_small_integers() {
        let three = F16::from_f32(3.0);
        let four = F16::from_f32(4.0);
        assert_eq!((three + four).to_f32(), 7.0);
        assert_eq!((three * four).to_f32(), 12.0);
        assert_eq!((four - three).to_f32(), 1.0);
        assert_eq!((four / F16::from_f32(2.0)).to_f32(), 2.0);
    }

    #[test]
    fn addition_rounds_large_plus_small() {
        // 2048 has quantum 2; adding 0.5 must round back to 2048 and 1.0
        // must tie to even (2048).
        let big = F16::from_f32(2048.0);
        assert_eq!(big + F16::from_f32(0.5), big);
        assert_eq!(big + F16::ONE, big);
        assert_eq!((big + F16::from_f32(1.5)).to_f32(), 2050.0);
    }

    #[test]
    fn fma_single_rounding_differs_from_two_roundings() {
        // Pick a, b, c where a*b rounds in f16 but the fused version keeps
        // the exact product: a = 1+2^-10, b = 1+2^-10 => a*b = 1 + 2^-9 +
        // 2^-20. Plain mul rounds to 1+2^-9; fma(a, b, -1-2^-9) recovers
        // the residual 2^-20 instead of 0.
        let a = F16::from_f64(1.0 + 2.0_f64.powi(-10));
        let c = F16::from_f64(-(1.0 + 2.0_f64.powi(-9)));
        let fused = a.fma(a, c);
        let unfused = a * a + c;
        assert_eq!(fused.to_f64(), 2.0_f64.powi(-20));
        assert_eq!(unfused.to_f64(), 0.0);
    }

    #[test]
    fn sum_is_sequential_and_order_sensitive() {
        // 1 + 2^-11 repeated: each add individually rounds away, so the
        // sequential sum stays at 1.0 no matter how many tiny terms.
        let tiny = F16::from_f64(2.0_f64.powi(-11) * 0.99);
        let mut acc = F16::ONE;
        for _ in 0..100 {
            acc = acc + tiny;
        }
        assert_eq!(acc, F16::ONE);
    }
}
