//! IEEE 754 binary16 ("half precision", FP16) implemented in software.
//!
//! The representation is the raw 16-bit pattern: 1 sign bit, 5 exponent
//! bits (bias 15), 10 significand bits. Conversions implement
//! round-to-nearest-even exactly, including subnormals, signed zeros,
//! infinities, and NaN (canonicalized to a quiet NaN on conversion).
//!
//! Arithmetic is performed by widening to `f64`, computing, and rounding
//! back. A single `f64` operation on two exactly-representable `F16`
//! inputs is exact or correctly rounded to 53 bits, and rounding a
//! 53-bit-rounded value again to 11 bits equals rounding the exact value
//! directly whenever the intermediate precision is at least `2p + 2 = 24`
//! bits (the classical innocuous-double-rounding bound), so `+ - * /`
//! here are correctly rounded binary16 operations.
//!
//! Conversions are the simulator's hottest operations, so both directions
//! take branch-free fast paths: widening goes through a 65,536-entry
//! const decode table ([`F16::to_f32`] is a single indexed load) and
//! narrowing manipulates bits directly ([`f32_to_f16_bits`]). The
//! original arithmetic formulations survive as the `oracle` module under
//! `#[cfg(test)]`, and the test suite proves bit-exact equivalence —
//! exhaustively for decoding (all 2^16 patterns) and with dense plus
//! edge-case sweeps for encoding.

use std::cmp::Ordering;
use std::fmt;

/// An IEEE 754 binary16 value stored as its raw bit pattern.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct F16(pub u16);

const EXP_MASK: u16 = 0x7c00;
const FRAC_MASK: u16 = 0x03ff;
const SIGN_MASK: u16 = 0x8000;

/// Decodes one binary16 bit pattern to the binary32 bit pattern of the
/// same value, in pure integer arithmetic (usable in const context).
///
/// Every finite binary16 value is exactly representable in binary32, so
/// this is a lossless re-encoding: normals shift exponent bias and
/// mantissa position, subnormals are normalized (the smallest f16
/// subnormal, 2^-24, is far above f32's underflow threshold), and NaNs
/// canonicalize to the quiet NaN `0x7fc0_0000` — matching what the
/// original `f64`-widening path produced when cast to `f32`.
const fn f16_bits_to_f32_bits(bits: u16) -> u32 {
    let sign = ((bits & SIGN_MASK) as u32) << 16;
    let exp = ((bits & EXP_MASK) >> 10) as u32;
    let frac = (bits & FRAC_MASK) as u32;
    if exp == 31 {
        // Infinity keeps its sign; NaN canonicalizes (payload and sign
        // dropped, exactly as `f64::NAN as f32` did in the old path).
        return if frac == 0 {
            sign | 0x7f80_0000
        } else {
            0x7fc0_0000
        };
    }
    if exp == 0 {
        if frac == 0 {
            return sign; // signed zero
        }
        // Subnormal: value = frac · 2^-24 with frac in [1, 2^10).
        // Normalize: with l the index of frac's leading 1 (0..=9), the
        // value is 2^(l-24) · (frac / 2^l), giving biased f32 exponent
        // (l - 24) + 127 = l + 103.
        let l = 31 - frac.leading_zeros();
        return sign | ((l + 103) << 23) | ((frac ^ (1 << l)) << (23 - l));
    }
    // Normal: re-bias the exponent (exp - 15 + 127) and widen the
    // mantissa from 10 to 23 bits.
    sign | ((exp + 112) << 23) | (frac << 13)
}

/// The full `F16 → f32` decode table: one `f32` per 16-bit pattern, so
/// widening is a single indexed load on the hot path. Built at compile
/// time (256 KiB of rodata).
static F16_TO_F32: [f32; 1 << 16] = {
    let mut table = [0.0f32; 1 << 16];
    let mut bits = 0usize;
    while bits < (1 << 16) {
        table[bits] = f32::from_bits(f16_bits_to_f32_bits(bits as u16));
        bits += 1;
    }
    table
};

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xbc00);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon, `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// Canonical quiet NaN.
    pub const NAN: F16 = F16(0x7e00);

    /// Builds a value from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even (direct bit
    /// manipulation; bit-equivalent to rounding through `f64`, which is
    /// exact on the widening step).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x))
    }

    /// Converts from `f64` with round-to-nearest-even.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        F16(f64_to_f16_bits(x))
    }

    /// Widens to `f32` (exact): a single load from the decode table.
    #[inline]
    pub fn to_f32(self) -> f32 {
        F16_TO_F32[self.0 as usize]
    }

    /// Widens to `f64` (exact): the table's `f32` widened again, both
    /// steps lossless.
    #[inline]
    pub fn to_f64(self) -> f64 {
        F16_TO_F32[self.0 as usize] as f64
    }

    /// True for either NaN bit pattern class.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & FRAC_MASK) != 0
    }

    /// True for ±∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// True for anything that is neither NaN nor ±∞.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True for subnormal values (nonzero with a zero exponent field).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & FRAC_MASK) != 0
    }

    /// True for ±0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// True if the sign bit is set (including -0.0 and negative NaN).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// Negation (flips the sign bit, as IEEE negate does — including NaN).
    #[inline]
    #[allow(clippy::should_implement_trait)] // also exposed via std::ops::Neg below
    pub fn neg(self) -> Self {
        F16(self.0 ^ SIGN_MASK)
    }

    /// Correctly-rounded fused multiply-add: `self * b + c` with a single
    /// rounding, as a Tensor Core's FP16 multiplier feeding an FP32
    /// accumulator would before the final down-conversion.
    pub fn fma(self, b: F16, c: F16) -> F16 {
        // The product of two 11-bit significands is exact in f64 (<= 22
        // bits) and the subsequent add is a single f64 rounding; 53 >= 24
        // makes the final rounding to f16 innocuous.
        F16::from_f64(self.to_f64() * b.to_f64() + c.to_f64())
    }
}

/// Rounds `sig >> shift` to nearest, ties to even. `sig` holds an exact
/// nonnegative significand; `shift` may exceed the bit width (the result
/// is then 0, since `sig < 2^53 <= 2^(shift-1)` for `shift >= 54`).
#[inline]
fn rne_shift(sig: u64, shift: u32) -> u64 {
    if shift == 0 {
        return sig;
    }
    let shift = shift.min(63);
    let floor = sig >> shift;
    let rem = sig & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    if rem > half || (rem == half && floor & 1 == 1) {
        floor + 1
    } else {
        floor
    }
}

/// Converts an `f32` to binary16 bits with round-to-nearest-even,
/// operating directly on the binary32 fields (no `f64` round trip).
///
/// A single rounding step from 24 to 11 significand bits: bit-equivalent
/// to the old `f64`-widening path because `f32 → f64` is exact.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) as u16) & SIGN_MASK;
    let e = ((b >> 23) & 0xff) as i32;
    let m = b & 0x007f_ffff;

    if e == 0xff {
        // Infinity or NaN; NaN payloads are canonicalized.
        return if m == 0 {
            sign | EXP_MASK
        } else {
            sign | 0x7e00
        };
    }
    if e == 0 && m == 0 {
        return sign; // signed zero
    }

    // Express |x| = sig * 2^exp with sig in [2^23, 2^24) for normals.
    // f32 subnormals are below 2^-126, far under the f16 underflow
    // threshold 2^-25, so they flush to (signed) zero via the same path.
    let (sig, exp) = if e == 0 {
        (m, -126 - 23)
    } else {
        (m | (1u32 << 23), e - 127 - 23)
    };
    // Unbiased magnitude exponent: |x| in [2^emag, 2^(emag+1)).
    let emag = exp + 23;

    if emag >= 16 {
        // |x| >= 2^16 = 65536 > 65519.99..., the rounding boundary to MAX.
        return sign | EXP_MASK;
    }
    if emag >= -14 {
        // Normal f16 candidate: sig's leading bit sits at position 23, so
        // we drop 13 bits; mantissa overflow carries into the exponent
        // field, and an exponent of 31 means overflow to infinity.
        let q = rne_shift(sig as u64, 13); // q in [2^10, 2^11]
        let bits = (((emag + 14) as u32) << 10) + q as u32;
        if bits >= 0x7c00 {
            return sign | EXP_MASK;
        }
        return sign | bits as u16;
    }
    // Subnormal or underflow-to-zero: quantum is 2^-24.
    // shift = (quantum exponent) - exp = -24 - exp.
    let shift = (-24 - exp) as u32;
    let q = rne_shift(sig as u64, shift); // q in [0, 2^10]; 2^10 is MIN_POSITIVE
    sign | q as u16
}

/// Converts an `f64` to binary16 bits with round-to-nearest-even.
pub fn f64_to_f16_bits(x: f64) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 48) as u16) & SIGN_MASK;
    let e = ((b >> 52) & 0x7ff) as i32;
    let m = b & 0x000f_ffff_ffff_ffff;

    if e == 0x7ff {
        // Infinity or NaN; NaN payloads are canonicalized.
        return if m == 0 {
            sign | EXP_MASK
        } else {
            sign | 0x7e00
        };
    }
    if e == 0 && m == 0 {
        return sign; // signed zero
    }

    // Express |x| = sig * 2^exp with sig in [2^52, 2^53) for normals.
    // f64 subnormals are below 2^-1022, vastly below the f16 underflow
    // threshold 2^-25, so they flush to (signed) zero via the same path.
    let (sig, exp) = if e == 0 {
        (m, -1022 - 52)
    } else {
        (m | (1u64 << 52), e - 1023 - 52)
    };
    // Unbiased magnitude exponent: |x| in [2^emag, 2^(emag+1)).
    let emag = exp + 52;

    if emag >= 16 {
        // |x| >= 2^16 = 65536 > 65519.99..., the rounding boundary to MAX.
        return sign | EXP_MASK;
    }
    if emag >= -14 {
        // Normal f16 candidate: quantum 2^(emag-10); sig's leading bit sits
        // at position 52, so we drop 42 bits.
        let q = rne_shift(sig, 42); // q in [2^10, 2^11]
                                    // Encode with the implicit bit folded into the exponent field;
                                    // q == 2^11 (mantissa overflow) carries into the exponent
                                    // automatically, and an exponent of 31 means overflow to infinity.
        let bits = (((emag + 14) as u32) << 10) + q as u32;
        if bits >= 0x7c00 {
            return sign | EXP_MASK;
        }
        return sign | bits as u16;
    }
    // Subnormal or underflow-to-zero: quantum is 2^-24.
    // shift = (quantum exponent) - exp = -24 - exp.
    let shift = (-24 - exp) as u32;
    let q = rne_shift(sig, shift); // q in [0, 2^10]; 2^10 is MIN_POSITIVE
    sign | q as u16
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<f64> for F16 {
    fn from(x: f64) -> Self {
        F16::from_f64(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> Self {
        x.to_f64()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} = {:#06x})", self.to_f64(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl std::ops::Add for F16 {
    type Output = F16;
    fn add(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() + rhs.to_f64())
    }
}

impl std::ops::Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() - rhs.to_f64())
    }
}

impl std::ops::Mul for F16 {
    type Output = F16;
    fn mul(self, rhs: F16) -> F16 {
        // The exact product fits in 22 significand bits, so the f64
        // intermediate is exact and only one rounding happens.
        F16::from_f64(self.to_f64() * rhs.to_f64())
    }
}

impl std::ops::Div for F16 {
    type Output = F16;
    fn div(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() / rhs.to_f64())
    }
}

impl std::ops::Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16::neg(self)
    }
}

impl std::iter::Sum for F16 {
    /// Sequential left-to-right FP16 summation (each partial sum rounded),
    /// matching what a chain of HADD instructions computes.
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |acc, x| acc + x)
    }
}

/// The original arithmetic-formulation conversions, kept as the oracle
/// the fast paths are proven bit-equivalent against.
#[cfg(test)]
pub(crate) mod oracle {
    use super::{EXP_MASK, FRAC_MASK, SIGN_MASK};

    /// The pre-table `F16 → f64` widening (sign/exponent/fraction
    /// arithmetic in `f64`).
    pub fn to_f64(bits: u16) -> f64 {
        let sign = if bits & SIGN_MASK != 0 { -1.0 } else { 1.0 };
        let exp = ((bits & EXP_MASK) >> 10) as i32;
        let frac = (bits & FRAC_MASK) as f64;
        match exp {
            0 => sign * frac * 2.0_f64.powi(-24),
            31 => {
                if frac == 0.0 {
                    sign * f64::INFINITY
                } else {
                    f64::NAN
                }
            }
            _ => sign * (1024.0 + frac) * 2.0_f64.powi(exp - 25),
        }
    }

    /// The pre-fast-path `f32 → F16` encode: widen exactly to `f64`,
    /// round once.
    pub fn from_f32(x: f32) -> u16 {
        super::f64_to_f16_bits(x as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_table_matches_oracle_for_all_65536_patterns() {
        for bits in 0..=u16::MAX {
            let fast = F16::from_bits(bits).to_f32();
            let slow = oracle::to_f64(bits) as f32;
            if slow.is_nan() {
                assert!(fast.is_nan(), "bits {bits:#06x}: {fast} vs NaN");
            } else {
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "bits {bits:#06x}: {fast} vs {slow}"
                );
            }
            // The f64 widening must also agree exactly.
            let fast64 = F16::from_bits(bits).to_f64();
            if slow.is_nan() {
                assert!(fast64.is_nan());
            } else {
                assert_eq!(fast64.to_bits(), oracle::to_f64(bits).to_bits());
            }
        }
    }

    #[test]
    fn encode_matches_oracle_on_dense_sweep() {
        // Every 2^16-th f32 bit pattern (both signs, all exponent
        // regimes, ~65k values) plus the patterns adjacent to each stride
        // point, against the f64-round-trip oracle.
        let mut checked = 0u64;
        for hi in 0..=u16::MAX {
            for lo in [0u32, 1, 0x7fff, 0x8000, 0xffff] {
                let x = f32::from_bits(((hi as u32) << 16) | lo);
                let fast = F16::from_f32(x).to_bits();
                let slow = oracle::from_f32(x);
                assert_eq!(fast, slow, "input {x:e} ({:#010x})", x.to_bits());
                checked += 1;
            }
        }
        assert_eq!(checked, 5 * 65536);
    }

    #[test]
    fn encode_matches_oracle_on_edge_cases() {
        // Exact ties, boundary magnitudes, signed zeros, subnormal range,
        // infinities, and NaN payload canonicalization.
        let cases: &[f32] = &[
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.0 + 2.0_f32.powi(-11), // tie at 1.0's quantum
            1.0 + 3.0 * 2.0_f32.powi(-11),
            65504.0,  // F16::MAX
            65519.96, // just below the overflow boundary
            65520.0,  // exact tie -> infinity
            -65520.0,
            65536.0,
            f32::MAX,
            f32::MIN_POSITIVE,       // flushes to zero
            f32::MIN_POSITIVE / 4.0, // f32 subnormal
            -f32::MIN_POSITIVE,
            2.0_f32.powi(-24), // F16::MIN_SUBNORMAL
            2.0_f32.powi(-25), // exact half of it: ties to even (zero)
            2.0_f32.powi(-25) * 1.00001,
            2.0_f32.powi(-14),                     // F16::MIN_POSITIVE
            2.0_f32.powi(-14) - 2.0_f32.powi(-25), // largest subnormal tie region
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            -f32::NAN,
            f32::from_bits(0x7f800001), // signaling-ish NaN payload
            f32::from_bits(0xffc12345), // negative NaN with payload
        ];
        for &x in cases {
            let fast = F16::from_f32(x).to_bits();
            let slow = oracle::from_f32(x);
            assert_eq!(fast, slow, "input {x:e} ({:#010x})", x.to_bits());
        }
        // Exhaustive over the entire f16-relevant exponent window: all
        // f32 values whose exponent field lies in [96, 144) with a dense
        // mantissa sweep (steps of 257 cover every mantissa byte pair).
        for e in 96u32..144 {
            for m in (0..0x0080_0000u32).step_by(257) {
                for sign in [0u32, 0x8000_0000] {
                    let x = f32::from_bits(sign | (e << 23) | m);
                    assert_eq!(
                        F16::from_f32(x).to_bits(),
                        oracle::from_f32(x),
                        "input {x:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn constants_decode_to_expected_values() {
        assert_eq!(F16::ZERO.to_f64(), 0.0);
        assert_eq!(F16::ONE.to_f64(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f64(), -1.0);
        assert_eq!(F16::MAX.to_f64(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f64(), 2.0_f64.powi(-14));
        assert_eq!(F16::MIN_SUBNORMAL.to_f64(), 2.0_f64.powi(-24));
        assert_eq!(F16::EPSILON.to_f64(), 2.0_f64.powi(-10));
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NAN.is_nan());
    }

    #[test]
    fn roundtrip_all_finite_bit_patterns() {
        // Every finite f16 must survive f16 -> f64 -> f16 unchanged.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f64(h.to_f64()).is_nan());
            } else {
                assert_eq!(F16::from_f64(h.to_f64()).0, bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10; even
        // mantissa (1.0) wins.
        assert_eq!(F16::from_f64(1.0 + 2.0_f64.powi(-11)), F16::ONE);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to the
        // even mantissa 1+2^-9.
        assert_eq!(
            F16::from_f64(1.0 + 3.0 * 2.0_f64.powi(-11)).to_f64(),
            1.0 + 2.0 * 2.0_f64.powi(-10)
        );
        // Just above the tie rounds up.
        assert_eq!(
            F16::from_f64(1.0 + 2.0_f64.powi(-11) + 2.0_f64.powi(-30)).to_f64(),
            1.0 + 2.0_f64.powi(-10)
        );
    }

    #[test]
    fn overflow_boundary_matches_ieee() {
        // 65520 is the midpoint between MAX (65504) and 2^16; ties-to-even
        // sends it to infinity (the "even" successor).
        assert_eq!(F16::from_f64(65519.999), F16::MAX);
        assert_eq!(F16::from_f64(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f64(-65520.0), F16::NEG_INFINITY);
        assert_eq!(F16::from_f64(1e300), F16::INFINITY);
    }

    #[test]
    fn underflow_boundary_matches_ieee() {
        let tiny = 2.0_f64.powi(-24);
        assert_eq!(F16::from_f64(tiny), F16::MIN_SUBNORMAL);
        // Exactly half the smallest subnormal ties to even => zero.
        assert_eq!(F16::from_f64(tiny / 2.0), F16::ZERO);
        assert_eq!(F16::from_f64(tiny / 2.0 * 1.0001), F16::MIN_SUBNORMAL);
        assert_eq!(F16::from_f64(-tiny / 2.0), F16::NEG_ZERO);
        // f64 subnormals flush to zero.
        assert_eq!(F16::from_f64(f64::MIN_POSITIVE / 4.0), F16::ZERO);
    }

    #[test]
    fn subnormal_arithmetic() {
        let a = F16::MIN_SUBNORMAL;
        assert_eq!((a + a).to_f64(), 2.0_f64.powi(-23));
        // 1024 subnormal quanta is the smallest normal.
        let sum: F16 = std::iter::repeat_n(a, 1024).sum();
        assert_eq!(sum, F16::MIN_POSITIVE);
    }

    #[test]
    fn signed_zero_semantics() {
        assert_eq!((F16::NEG_ZERO + F16::ZERO), F16::ZERO);
        assert!(F16::NEG_ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert_eq!(F16::from_f64(-0.0).0, 0x8000);
    }

    #[test]
    fn nan_and_inf_propagate() {
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
        assert_eq!(F16::INFINITY + F16::ONE, F16::INFINITY);
        assert!((F16::ZERO * F16::INFINITY).is_nan());
    }

    #[test]
    fn basic_arithmetic_is_exact_for_small_integers() {
        let three = F16::from_f32(3.0);
        let four = F16::from_f32(4.0);
        assert_eq!((three + four).to_f32(), 7.0);
        assert_eq!((three * four).to_f32(), 12.0);
        assert_eq!((four - three).to_f32(), 1.0);
        assert_eq!((four / F16::from_f32(2.0)).to_f32(), 2.0);
    }

    #[test]
    fn addition_rounds_large_plus_small() {
        // 2048 has quantum 2; adding 0.5 must round back to 2048 and 1.0
        // must tie to even (2048).
        let big = F16::from_f32(2048.0);
        assert_eq!(big + F16::from_f32(0.5), big);
        assert_eq!(big + F16::ONE, big);
        assert_eq!((big + F16::from_f32(1.5)).to_f32(), 2050.0);
    }

    #[test]
    fn fma_single_rounding_differs_from_two_roundings() {
        // Pick a, b, c where a*b rounds in f16 but the fused version keeps
        // the exact product: a = 1+2^-10, b = 1+2^-10 => a*b = 1 + 2^-9 +
        // 2^-20. Plain mul rounds to 1+2^-9; fma(a, b, -1-2^-9) recovers
        // the residual 2^-20 instead of 0.
        let a = F16::from_f64(1.0 + 2.0_f64.powi(-10));
        let c = F16::from_f64(-(1.0 + 2.0_f64.powi(-9)));
        let fused = a.fma(a, c);
        let unfused = a * a + c;
        assert_eq!(fused.to_f64(), 2.0_f64.powi(-20));
        assert_eq!(unfused.to_f64(), 0.0);
    }

    #[test]
    fn sum_is_sequential_and_order_sensitive() {
        // 1 + 2^-11 repeated: each add individually rounds away, so the
        // sequential sum stays at 1.0 no matter how many tiny terms.
        let tiny = F16::from_f64(2.0_f64.powi(-11) * 0.99);
        let mut acc = F16::ONE;
        for _ in 0..100 {
            acc = acc + tiny;
        }
        assert_eq!(acc, F16::ONE);
    }
}
