//! Non-MMA arithmetic idioms used by ABFT checksum generation.
//!
//! Checksum generation executes on the GPU's traditional arithmetic units
//! rather than on Tensor Cores (§5.2.2). The dominant instruction is
//! `HADD2` — a packed add of two independent FP16 lanes per instruction —
//! which is how CUTLASS-style kernels sum pairs of FP16 values held in one
//! 32-bit register. We model it here so both the functional engine and the
//! instruction counters agree on what "one checksum op" means.

use crate::half::F16;

/// Packed FP16 add: `(a.0 + b.0, a.1 + b.1)` in one instruction, the PTX
/// `HADD2` idiom used by thread-level checksum generation.
#[inline]
pub fn hadd2(a: (F16, F16), b: (F16, F16)) -> (F16, F16) {
    (a.0 + b.0, a.1 + b.1)
}

/// Sums a slice of FP16 values sequentially in FP16 (every partial sum is
/// rounded), the behaviour of a chain of `HADD` instructions.
pub fn hsum(values: &[F16]) -> F16 {
    values.iter().copied().sum()
}

/// Sums a slice of FP16 values into an FP32 accumulator — the higher-
/// precision reduction global ABFT's fused epilogue performs on the FP32
/// accumulator tiles before they are down-converted.
pub fn hsum_f32(values: &[F16]) -> f32 {
    values.iter().map(|v| v.to_f32()).sum()
}

/// Pairwise (tree) FP16 reduction. Global ABFT's separate reduce kernel
/// combines per-threadblock partial checksums with a tree; the tree order
/// changes rounding relative to [`hsum`], which is why the comparison step
/// needs a tolerance rather than exact equality.
pub fn hsum_pairwise(values: &[F16]) -> F16 {
    match values.len() {
        0 => F16::ZERO,
        1 => values[0],
        n => {
            let (lo, hi) = values.split_at(n / 2);
            hsum_pairwise(lo) + hsum_pairwise(hi)
        }
    }
}

/// Dot product of two FP16 vectors with FP32 accumulation (the ABFT
/// checksum dot product of §2.4, executed on regular FMA units).
pub fn hdot_f32(a: &[F16], b: &[F16]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x.to_f32() * y.to_f32()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadd2_adds_both_lanes() {
        let a = (F16::from_f32(1.5), F16::from_f32(-2.0));
        let b = (F16::from_f32(0.5), F16::from_f32(4.0));
        let (lo, hi) = hadd2(a, b);
        assert_eq!(lo.to_f32(), 2.0);
        assert_eq!(hi.to_f32(), 2.0);
    }

    #[test]
    fn hsum_matches_manual_fold() {
        let vals: Vec<F16> = (1..=10).map(|v| F16::from_f32(v as f32)).collect();
        assert_eq!(hsum(&vals).to_f32(), 55.0);
    }

    #[test]
    fn hsum_f32_avoids_fp16_saturation() {
        // 40 copies of 2048 overflow FP16 (max 65504) but not FP32.
        let vals = vec![F16::from_f32(2048.0); 40];
        assert!(hsum(&vals).is_infinite() || hsum(&vals).to_f32() >= 65504.0);
        assert_eq!(hsum_f32(&vals), 40.0 * 2048.0);
    }

    #[test]
    fn pairwise_equals_sequential_on_exact_inputs() {
        let vals: Vec<F16> = (0..64).map(|v| F16::from_f32(v as f32)).collect();
        assert_eq!(hsum_pairwise(&vals).to_f32(), hsum(&vals).to_f32());
    }

    #[test]
    fn pairwise_can_differ_from_sequential_under_rounding() {
        // One large value followed by many small ones: sequential absorbs
        // the small ones; the tree adds them together first.
        let mut vals = vec![F16::from_f32(1024.0)];
        vals.extend(std::iter::repeat_n(F16::from_f32(0.25), 63));
        let seq = hsum(&vals).to_f32();
        let tree = hsum_pairwise(&vals).to_f32();
        assert!(
            (seq - tree).abs() > 0.0,
            "expected rounding divergence, got {seq} vs {tree}"
        );
    }

    #[test]
    fn hdot_f32_matches_reference() {
        let a: Vec<F16> = (0..16).map(|v| F16::from_f32(v as f32)).collect();
        let b: Vec<F16> = (0..16).map(|v| F16::from_f32((v % 4) as f32)).collect();
        let expected: f32 = (0..16).map(|v| (v * (v % 4)) as f32).sum();
        assert_eq!(hdot_f32(&a, &b), expected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hdot_rejects_mismatched_lengths() {
        let a = vec![F16::ONE; 3];
        let b = vec![F16::ONE; 4];
        hdot_f32(&a, &b);
    }
}
