//! The `m16n8k8` Tensor Core matrix-multiply-accumulate (MMA).
//!
//! One MMA is a warp-wide operation: the 32 lanes of a warp collectively
//! multiply a 16×8 FP16 tile `A` by an 8×8 FP16 tile `B` and accumulate
//! into a 16×8 FP32 tile `C` (§2.1 of the paper, PTX
//! `mma.sync.aligned.m16n8k8`). Each lane contributes 4 elements of `A`,
//! 2 elements of `B`, and owns 4 accumulator registers of `C`.
//!
//! The simulator uses two views of the operation:
//!
//! - [`mma_m16n8k8`] computes the math on whole tiles (products exact in
//!   FP32, sequential FP32 accumulation along `k` — deterministic, like a
//!   fixed-order hardware reduction tree).
//! - [`FragmentLane`] exposes the PTX register-to-matrix-element mapping,
//!   which fault injection uses to translate "a bit flipped in lane 13's
//!   accumulator register 2" into a coordinate of `C`.

use crate::half::F16;

/// Number of lanes in a warp.
pub const LANES_PER_WARP: usize = 32;

/// Rows of the `A`/`C` tiles of one MMA.
pub const MMA_M: usize = 16;
/// Columns of the `B`/`C` tiles of one MMA.
pub const MMA_N: usize = 8;
/// Depth of one MMA.
pub const MMA_K: usize = 8;

/// A borrowed 16×8 / 8×8 tile view used by [`mma_m16n8k8`].
///
/// `data` is row-major with the given leading dimension, so tiles can point
/// directly into larger operand matrices without copying.
#[derive(Clone, Copy)]
pub struct MmaTile<'a> {
    /// Row-major backing storage.
    pub data: &'a [F16],
    /// Leading dimension (elements per row in the backing storage).
    pub ld: usize,
}

impl<'a> MmaTile<'a> {
    /// Creates a tile view; `data` must hold at least `rows * ld` elements
    /// for the tile dimensions it will be used with.
    pub fn new(data: &'a [F16], ld: usize) -> Self {
        MmaTile { data, ld }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> F16 {
        self.data[r * self.ld + c]
    }
}

/// Performs one `m16n8k8` MMA: `C += A * B`.
///
/// Products are formed exactly (an FP16×FP16 product has ≤ 22 significand
/// bits, exact in FP32) and accumulated into FP32 sequentially along `k`,
/// matching the deterministic fixed-order accumulation of the hardware's
/// dot-product units closely enough for checksum semantics: the same
/// inputs always produce bit-identical outputs.
///
/// `c` is a row-major 16×8 FP32 accumulator tile with leading dimension
/// `ldc`.
pub fn mma_m16n8k8(a: MmaTile<'_>, b: MmaTile<'_>, c: &mut [f32], ldc: usize) {
    for i in 0..MMA_M {
        for j in 0..MMA_N {
            let mut acc = c[i * ldc + j];
            for k in 0..MMA_K {
                acc += a.at(i, k).to_f32() * b.at(k, j).to_f32();
            }
            c[i * ldc + j] = acc;
        }
    }
}

/// Computes one output element of an `m16n8k8` MMA without the tile walk —
/// used by targeted fault-injection replays.
pub fn mma_element(a: MmaTile<'_>, b: MmaTile<'_>, c: f32, i: usize, j: usize) -> f32 {
    let mut acc = c;
    for k in 0..MMA_K {
        acc += a.at(i, k).to_f32() * b.at(k, j).to_f32();
    }
    acc
}

/// The PTX `m16n8k8` fragment layout for one lane of a warp.
///
/// With `lane` ∈ 0..32, `group = lane / 4` and `quad = lane % 4`:
///
/// - `A` fragment (4 FP16 registers): `a0,a1` at row `group`, columns
///   `2*quad, 2*quad+1`; `a2,a3` at row `group + 8`, same columns.
/// - `B` fragment (2 FP16 registers): `b0,b1` at rows `2*quad, 2*quad+1`,
///   column `group`.
/// - `C`/`D` fragment (4 FP32 registers): `c0,c1` at row `group`, columns
///   `2*quad, 2*quad+1`; `c2,c3` at row `group + 8`, same columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentLane {
    /// Lane index within the warp, 0..32.
    pub lane: usize,
}

impl FragmentLane {
    /// Creates the fragment view for `lane`; panics if `lane >= 32`.
    pub fn new(lane: usize) -> Self {
        assert!(lane < LANES_PER_WARP, "lane {lane} out of range");
        FragmentLane { lane }
    }

    #[inline]
    fn group(self) -> usize {
        self.lane / 4
    }

    #[inline]
    fn quad(self) -> usize {
        self.lane % 4
    }

    /// (row, col) of `A`-fragment register `r` (0..4) within the 16×8 tile.
    pub fn a_coord(self, r: usize) -> (usize, usize) {
        assert!(r < 4, "A fragment has 4 registers");
        let row = self.group() + if r >= 2 { 8 } else { 0 };
        let col = 2 * self.quad() + (r & 1);
        (row, col)
    }

    /// (row, col) of `B`-fragment register `r` (0..2) within the 8×8 tile.
    pub fn b_coord(self, r: usize) -> (usize, usize) {
        assert!(r < 2, "B fragment has 2 registers");
        (2 * self.quad() + r, self.group())
    }

    /// (row, col) of `C`-fragment register `r` (0..4) within the 16×8 tile.
    pub fn c_coord(self, r: usize) -> (usize, usize) {
        // Same mapping as the A fragment: 2 registers in the top half, 2 in
        // the bottom half.
        self.a_coord(r)
    }

    /// Inverse of [`Self::c_coord`]: which lane and register hold `C[i][j]`.
    pub fn owner_of_c(i: usize, j: usize) -> (FragmentLane, usize) {
        assert!(i < MMA_M && j < MMA_N, "({i},{j}) outside 16x8");
        let group = i % 8;
        let quad = j / 2;
        let reg = (j & 1) + if i >= 8 { 2 } else { 0 };
        (FragmentLane::new(group * 4 + quad), reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_from_f32(vals: &[f32]) -> Vec<F16> {
        vals.iter().copied().map(F16::from_f32).collect()
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        // A = 16x8 with a 8x8 identity stacked on zeros; B arbitrary.
        let mut a = vec![F16::ZERO; 16 * 8];
        for i in 0..8 {
            a[i * 8 + i] = F16::ONE;
        }
        let b: Vec<F16> = (0..64).map(|v| F16::from_f32(v as f32)).collect();
        let mut c = vec![0.0f32; 16 * 8];
        mma_m16n8k8(MmaTile::new(&a, 8), MmaTile::new(&b, 8), &mut c, 8);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(c[i * 8 + j], (i * 8 + j) as f32);
            }
        }
        for i in 8..16 {
            for j in 0..8 {
                assert_eq!(c[i * 8 + j], 0.0);
            }
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = tile_from_f32(&[1.0; 16 * 8]);
        let b = tile_from_f32(&[1.0; 8 * 8]);
        let mut c = vec![5.0f32; 16 * 8];
        mma_m16n8k8(MmaTile::new(&a, 8), MmaTile::new(&b, 8), &mut c, 8);
        // Each output is 5 + sum of 8 ones.
        assert!(c.iter().all(|&v| v == 13.0));
    }

    #[test]
    fn matches_f64_reference_within_fp32_accumulation() {
        // Pseudo-random but deterministic small values; FP32 accumulation
        // over k=8 of exact products is itself exact when magnitudes are
        // moderate powers of two.
        let a: Vec<F16> = (0..128)
            .map(|v| F16::from_f32(((v * 37 + 11) % 17) as f32 - 8.0))
            .collect();
        let b: Vec<F16> = (0..64)
            .map(|v| F16::from_f32(((v * 53 + 5) % 13) as f32 - 6.0))
            .collect();
        let mut c = vec![0.0f32; 128];
        mma_m16n8k8(MmaTile::new(&a, 8), MmaTile::new(&b, 8), &mut c, 8);
        for i in 0..16 {
            for j in 0..8 {
                let mut reference = 0.0f64;
                for k in 0..8 {
                    reference += a[i * 8 + k].to_f64() * b[k * 8 + j].to_f64();
                }
                assert_eq!(c[i * 8 + j] as f64, reference, "({i},{j})");
            }
        }
    }

    #[test]
    fn mma_element_agrees_with_full_tile() {
        let a: Vec<F16> = (0..128).map(|v| F16::from_f32((v % 7) as f32)).collect();
        let b: Vec<F16> = (0..64).map(|v| F16::from_f32((v % 5) as f32)).collect();
        let mut c = vec![1.0f32; 128];
        let at = MmaTile::new(&a, 8);
        let bt = MmaTile::new(&b, 8);
        let mut full = c.clone();
        mma_m16n8k8(at, bt, &mut full, 8);
        for i in 0..16 {
            for j in 0..8 {
                assert_eq!(full[i * 8 + j], mma_element(at, bt, c[i * 8 + j], i, j));
            }
        }
        c[0] = 0.0; // silence unused-assignment lint paranoia
    }

    #[test]
    fn fragment_layout_covers_every_element_exactly_once() {
        let mut a_seen = [[false; 8]; 16];
        let mut b_seen = [[false; 8]; 8];
        let mut c_seen = [[false; 8]; 16];
        for lane in 0..LANES_PER_WARP {
            let f = FragmentLane::new(lane);
            for r in 0..4 {
                let (i, j) = f.a_coord(r);
                assert!(!a_seen[i][j], "A ({i},{j}) owned twice");
                a_seen[i][j] = true;
                let (i, j) = f.c_coord(r);
                assert!(!c_seen[i][j], "C ({i},{j}) owned twice");
                c_seen[i][j] = true;
            }
            for r in 0..2 {
                let (i, j) = f.b_coord(r);
                assert!(!b_seen[i][j], "B ({i},{j}) owned twice");
                b_seen[i][j] = true;
            }
        }
        assert!(a_seen.iter().flatten().all(|&s| s));
        assert!(b_seen.iter().flatten().all(|&s| s));
        assert!(c_seen.iter().flatten().all(|&s| s));
    }

    #[test]
    fn owner_of_c_inverts_c_coord() {
        for lane in 0..LANES_PER_WARP {
            let f = FragmentLane::new(lane);
            for r in 0..4 {
                let (i, j) = f.c_coord(r);
                assert_eq!(FragmentLane::owner_of_c(i, j), (f, r));
            }
        }
    }
}
