//! # aiga-fp16 — software half precision for the GPU substrate
//!
//! The paper's kernels run FP16 `m16n8k8` Tensor Core operations (MMAs) with
//! FP32 accumulation (§2.1). This crate provides a bit-accurate software
//! implementation of both pieces so the functional simulator in `aiga-gpu`
//! computes exactly what the hardware datapath would:
//!
//! - [`F16`]: IEEE 754 binary16 with round-to-nearest-even conversions and
//!   correctly-rounded `+ - * /` (computed through `f64`, which is safe
//!   because 53 ≥ 2·11 + 2 — double rounding through a format with at least
//!   `2p + 2` significand bits is innocuous).
//! - [`mma`]: the warp-wide `m16n8k8` matrix-multiply-accumulate with FP16
//!   operands and FP32 accumulators, plus the PTX fragment layout that maps
//!   each of the 32 lanes to the A/B/C elements it holds in registers. The
//!   fragment layout is what fault injection uses to decide which simulated
//!   thread's register a soft error lands in.
//! - [`ops`]: the handful of non-MMA arithmetic idioms the paper calls out
//!   (e.g. `HADD2`, the paired FP16 add used by checksum generation, §5.2.2).

pub mod half;
pub mod mma;
pub mod ops;

pub use half::F16;
pub use mma::{mma_m16n8k8, FragmentLane, MmaTile, LANES_PER_WARP};
pub use ops::hadd2;
