//! Randomized property tests on layer lowering and the model zoo
//! (seeded deterministic case loops; no external crates).

use aiga_nn::layer::{conv_out, LinearLayer};
use aiga_nn::zoo;
use aiga_util::Rng64;

/// The conv output-extent formula is monotone in input size and
/// anti-monotone in stride.
#[test]
fn conv_out_is_monotone() {
    let mut rng = Rng64::seed_from_u64(0xCC_0001);
    let mut cases = 0;
    while cases < 300 {
        let input = rng.range_u64(8, 4096);
        let kernel = rng.range_u64(1, 8);
        let stride = rng.range_u64(1, 5);
        let padding = rng.range_u64(0, 4);
        if input + 2 * padding < kernel {
            continue;
        }
        cases += 1;
        let o = conv_out(input, kernel, stride, padding);
        assert!(o >= 1);
        assert!(conv_out(input + stride, kernel, stride, padding) == o + 1);
        if stride > 1 {
            assert!(conv_out(input, kernel, 1, padding) >= o);
        }
    }
}

/// Implicit-GEMM lowering conserves MAC count: the GEMM performs exactly
/// `B·Ho·Wo·Cout·Cin·k²` MACs, the convolution's own count.
#[test]
fn lowering_conserves_macs() {
    let mut rng = Rng64::seed_from_u64(0xCC_0002);
    let mut cases = 0;
    while cases < 300 {
        let batch = rng.range_u64(1, 4);
        let c_in = rng.range_u64(1, 16);
        let h = rng.range_u64(8, 40);
        let w = rng.range_u64(8, 40);
        let c_out = rng.range_u64(1, 32);
        let kernel = rng.range_u64(1, 6);
        let stride = rng.range_u64(1, 3);
        if h + 2 < kernel || w + 2 < kernel {
            continue;
        }
        cases += 1;
        let (layer, ho, wo) = LinearLayer::conv("c", batch, c_in, h, w, c_out, kernel, stride, 1);
        assert_eq!(
            layer.shape.flops(),
            2 * batch * ho * wo * c_out * c_in * kernel * kernel
        );
    }
}

/// Aggregate intensity of every zoo CNN lies within each model's
/// per-layer intensity range, across batch sizes.
#[test]
fn aggregate_intensity_is_a_weighted_mean() {
    for batch in 1u64..5 {
        for model in [
            zoo::squeezenet(batch, 224, 224),
            zoo::resnet50(batch, 224, 224),
            zoo::coral(8 * batch),
        ] {
            let (lo, hi) = model.intensity_range();
            let agg = model.aggregate_intensity();
            assert!(agg >= lo - 1e-9 && agg <= hi + 1e-9, "{}", model.name);
        }
    }
}

/// Resolution scaling: every general-purpose CNN's aggregate AI is
/// (weakly) higher at a larger resolution (§3.2's amortization
/// argument).
#[test]
fn intensity_grows_with_resolution() {
    for scale in 1u64..4 {
        let small = 128 * scale;
        let large = small * 2;
        for (lo_m, hi_m) in zoo::general_cnns(1, small, small)
            .into_iter()
            .zip(zoo::general_cnns(1, large, large))
        {
            assert!(
                hi_m.aggregate_intensity() >= lo_m.aggregate_intensity() * 0.98,
                "{}: {} vs {}",
                lo_m.name,
                lo_m.aggregate_intensity(),
                hi_m.aggregate_intensity()
            );
        }
    }
}
