//! Property-based tests on layer lowering and the model zoo.

use aiga_nn::layer::{conv_out, LinearLayer};
use aiga_nn::zoo;
use proptest::prelude::*;

proptest! {
    /// The conv output-extent formula is monotone in input size and
    /// anti-monotone in stride.
    #[test]
    fn conv_out_is_monotone(
        input in 8u64..4096, kernel in 1u64..8, stride in 1u64..5, padding in 0u64..4
    ) {
        prop_assume!(input + 2 * padding >= kernel);
        let o = conv_out(input, kernel, stride, padding);
        prop_assert!(o >= 1);
        prop_assert!(conv_out(input + stride, kernel, stride, padding) == o + 1);
        if stride > 1 {
            prop_assert!(conv_out(input, kernel, 1, padding) >= o);
        }
    }

    /// Implicit-GEMM lowering conserves MAC count: the GEMM performs
    /// exactly `B·Ho·Wo·Cout·Cin·k²` MACs, the convolution's own count.
    #[test]
    fn lowering_conserves_macs(
        batch in 1u64..4, c_in in 1u64..16, h in 8u64..40, w in 8u64..40,
        c_out in 1u64..32, kernel in 1u64..6, stride in 1u64..3,
    ) {
        prop_assume!(h + 2 >= kernel && w + 2 >= kernel);
        let (layer, ho, wo) = LinearLayer::conv("c", batch, c_in, h, w, c_out, kernel, stride, 1);
        prop_assert_eq!(
            layer.shape.flops(),
            2 * batch * ho * wo * c_out * c_in * kernel * kernel
        );
    }

    /// Aggregate intensity of every zoo CNN grows (weakly) with batch
    /// size and lies within each model's per-layer intensity range.
    #[test]
    fn aggregate_intensity_is_a_weighted_mean(batch in 1u64..5) {
        for model in [
            zoo::squeezenet(batch, 224, 224),
            zoo::resnet50(batch, 224, 224),
            zoo::coral(8 * batch),
        ] {
            let (lo, hi) = model.intensity_range();
            let agg = model.aggregate_intensity();
            prop_assert!(agg >= lo - 1e-9 && agg <= hi + 1e-9, "{}", model.name);
        }
    }

    /// Resolution scaling: every general-purpose CNN's aggregate AI is
    /// (weakly) higher at a larger resolution (§3.2's amortization
    /// argument).
    #[test]
    fn intensity_grows_with_resolution(scale in 1u64..4) {
        let small = 128 * scale;
        let large = small * 2;
        for (lo_m, hi_m) in zoo::general_cnns(1, small, small)
            .into_iter()
            .zip(zoo::general_cnns(1, large, large))
        {
            prop_assert!(
                hi_m.aggregate_intensity() >= lo_m.aggregate_intensity() * 0.98,
                "{}: {} vs {}",
                lo_m.name,
                lo_m.aggregate_intensity(),
                hi_m.aggregate_intensity()
            );
        }
    }
}
