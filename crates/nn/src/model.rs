//! Whole-network aggregation: the paper's "aggregate arithmetic
//! intensity" metric (§3.2) and layer bookkeeping.

use crate::layer::LinearLayer;
use aiga_gpu::GemmShape;

/// A network as an ordered list of linear layers (the only layers that
/// matter for execution time and ABFT — §3.2: activation functions etc.
/// are fused and contribute far less).
#[derive(Clone, Debug)]
pub struct Model {
    /// Display name.
    pub name: String,
    /// Linear layers in execution order.
    pub layers: Vec<LinearLayer>,
}

impl Model {
    /// Creates a model; at least one layer is required.
    pub fn new(name: impl Into<String>, layers: Vec<LinearLayer>) -> Self {
        let name = name.into();
        assert!(!layers.is_empty(), "model {name} has no linear layers");
        Model { name, layers }
    }

    /// Aggregate FP16 arithmetic intensity (§3.2): total FLOPs across all
    /// linear layers divided by total bytes, on padded shapes.
    pub fn aggregate_intensity(&self) -> f64 {
        let (flops, bytes) = self.layers.iter().fold((0u64, 0u64), |(f, b), l| {
            let p = l.shape.padded_to_mma();
            (f + p.flops(), b + p.min_bytes_fp16())
        });
        flops as f64 / bytes as f64
    }

    /// Total FLOPs across linear layers (padded shapes).
    pub fn total_flops(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.shape.padded_to_mma().flops())
            .sum()
    }

    /// Per-layer padded GEMM shapes, in execution order.
    pub fn shapes(&self) -> Vec<GemmShape> {
        self.layers
            .iter()
            .map(|l| l.shape.padded_to_mma())
            .collect()
    }

    /// Per-layer arithmetic intensities, in execution order (Fig. 5).
    pub fn layer_intensities(&self) -> Vec<f64> {
        self.layers
            .iter()
            .map(|l| l.arithmetic_intensity())
            .collect()
    }

    /// Minimum and maximum per-layer arithmetic intensity.
    pub fn intensity_range(&self) -> (f64, f64) {
        self.layer_intensities()
            .into_iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), ai| {
                (lo.min(ai), hi.max(ai))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LinearLayer;

    fn toy() -> Model {
        Model::new(
            "toy",
            vec![
                LinearLayer::fc("fc1", 8, 64, 128),
                LinearLayer::fc("fc2", 8, 128, 64),
            ],
        )
    }

    #[test]
    fn aggregate_is_flops_over_bytes() {
        let m = toy();
        let f: u64 = m.layers.iter().map(|l| l.shape.flops()).sum();
        let b: u64 = m.layers.iter().map(|l| l.shape.min_bytes_fp16()).sum();
        // Shapes already aligned, so padding changes nothing.
        assert!((m.aggregate_intensity() - f as f64 / b as f64).abs() < 1e-12);
    }

    #[test]
    fn aggregate_lies_between_layer_extremes() {
        let m = toy();
        let (lo, hi) = m.intensity_range();
        let agg = m.aggregate_intensity();
        assert!(agg >= lo && agg <= hi, "{lo} <= {agg} <= {hi}");
    }

    #[test]
    fn shapes_are_padded() {
        let m = Model::new("pad", vec![LinearLayer::fc("fc", 1, 13, 500)]);
        assert_eq!(m.shapes()[0], GemmShape::new(8, 504, 16));
    }

    #[test]
    #[should_panic(expected = "no linear layers")]
    fn empty_models_are_rejected() {
        Model::new("empty", vec![]);
    }
}
