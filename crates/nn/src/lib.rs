//! # aiga-nn — neural networks as sequences of GEMMs
//!
//! The paper treats the "linear layers" of a NN — convolutional and
//! fully-connected layers — as matrix multiplications (§2.1): a
//! convolution over a `B × Cin × H × W` input with `Cout` filters of size
//! `Kh × Kw` lowers (implicit GEMM / im2col) to `M = B·Ho·Wo`,
//! `N = Cout`, `K = Cin·Kh·Kw`; a fully-connected layer is the direct
//! `M = B`, `N = out_features`, `K = in_features`. All dimensions are
//! padded to multiples of eight for the `m16n8k8` Tensor Core operation
//! (§6.2) — which is exactly what lifts batch-1 MLPs to the arithmetic
//! intensities the paper reports for DLRM.
//!
//! [`zoo`] reconstructs all fourteen evaluated networks:
//!
//! - eight torchvision CNNs (Fig. 4/8/9): ResNet-50, VGG-16, AlexNet,
//!   SqueezeNet, ShuffleNet-V2, DenseNet-161, ResNeXt-50 and
//!   Wide-ResNet-50 (grouped convolutions replaced by non-grouped ones,
//!   as the paper itself does — §3.2 footnote 3);
//! - the two DLRM MLPs (Fig. 10);
//! - four NoScope-style specialized CNNs (Fig. 11), reconstructed from
//!   the paper's description and tuned to its reported aggregate
//!   intensities (see `DESIGN.md` §5).
//!
//! [`graph`] turns the zoo from description into execution: a
//! [`graph::Network`] carries real seeded FP16 weights and the non-GEMM
//! glue (ReLU, pooling, flatten, concat, residual add) as executable
//! nodes, and `aiga-core` compiles it into a served, protected model
//! (`Model → ModelPlan → CompiledModel`).

pub mod conv;
pub mod graph;
pub mod layer;
pub mod model;
pub mod zoo;

pub use conv::{im2col, im2col_into, ConvParams, Tensor};
pub use graph::{Network, NetworkBuilder, NodeOp, NodeRef, PoolKind, PoolParams};
pub use layer::{LayerKind, LinearLayer, NetBuilder};
pub use model::Model;
