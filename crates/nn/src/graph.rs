//! Executable network graphs: the model zoo as *runnable* programs.
//!
//! [`crate::model::Model`] describes a network analytically — GEMM
//! shapes and arithmetic intensities, enough for planning. A
//! [`Network`] carries everything needed to *execute* it: convolution
//! and fully-connected nodes hold real FP16 weights (seeded, scaled
//! `1/√K` like trained networks), and the non-GEMM glue — ReLU, max/avg
//! pooling, flatten, channel concatenation, residual addition — exists
//! as explicit graph nodes. `aiga-core` compiles a `Network` into a
//! protected executable (`Model → ModelPlan → CompiledModel`): every
//! conv lowers to an im2col GEMM protected by the per-layer scheme the
//! planner picked from the *real* zoo shape.
//!
//! The graph is SSA-shaped: nodes are stored in execution order and
//! each input is a [`NodeRef`] to the network input or an earlier
//! node, which is what lets branch-and-merge topologies (SqueezeNet's
//! Fire modules, ResNet's residual blocks) execute — not just chains.
//!
//! Activations between nodes are FP16 (the engine's native element), so
//! [`Network::reference_f64`] mirrors the quantization points of the
//! compiled executor exactly: it differs only in accumulating GEMMs in
//! f64 instead of the engine's f32, which is what makes "matches the
//! f64 reference within FP16 tolerance" a meaningful, tight assertion.

use crate::conv::{conv_reference_f64, ConvParams, Tensor};
use crate::layer::{conv_out, LinearLayer};
use crate::model::Model;
use aiga_dtype::Dtype;
use aiga_fp16::F16;
use aiga_gpu::engine::Matrix;

/// Max or average pooling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window (padding never wins).
    Max,
    /// Average over the window's in-bounds cells.
    Avg,
}

/// Pooling hyperparameters (square windows, as all zoo models use).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolParams {
    /// Max or average.
    pub kind: PoolKind,
    /// Window side length.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
    /// Ceil-mode output extents (SqueezeNet's max pools).
    pub ceil: bool,
}

impl PoolParams {
    /// Output spatial extent for one input dimension (torchvision
    /// semantics: in ceil mode the last window must still *start*
    /// inside the input-plus-left-padding region, else it is dropped).
    pub fn out_extent(&self, input: usize) -> usize {
        let span = input + 2 * self.padding - self.kernel;
        if self.ceil {
            let mut out = span.div_ceil(self.stride) + 1;
            if (out - 1) * self.stride >= input + self.padding {
                out -= 1;
            }
            out
        } else {
            span / self.stride + 1
        }
    }
}

/// A reference to a value in the graph: the network input or the output
/// of an earlier node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRef {
    /// The network's input tensor.
    Input,
    /// The output of node `i` (an index into [`Network::nodes`]).
    Node(usize),
}

/// One executable operation.
#[derive(Clone, Debug)]
pub enum NodeOp {
    /// Convolution with bound OIHW filters, lowered to a protected GEMM
    /// at execution time; `relu` fuses the activation into the output
    /// write-back.
    Conv {
        /// Convolution hyperparameters.
        params: ConvParams,
        /// OIHW filter weights.
        weights: Tensor,
        /// Fused ReLU epilogue.
        relu: bool,
    },
    /// Fully-connected layer with bound `K × N` weights.
    Fc {
        /// Weight matrix (`in_features × out_features`).
        weights: Matrix,
        /// Fused ReLU epilogue.
        relu: bool,
    },
    /// Spatial pooling.
    Pool(PoolParams),
    /// Global average pooling to `1 × 1`.
    GlobalAvgPool,
    /// Reshape `C × H × W` to a flat feature vector (zero-copy: the
    /// NCHW layout is already row-major per image).
    Flatten,
    /// Channel-wise concatenation of the inputs (equal spatial dims).
    Concat,
    /// Element-wise addition of two inputs (residual merge), with an
    /// optional fused ReLU.
    Add {
        /// Fused ReLU epilogue.
        relu: bool,
    },
    /// Feature-range slice of a flattened value: copies the features
    /// `[offset, offset + len)` of each image, where `len` is the
    /// node's output feature count. DLRM uses it to split the request
    /// row into its dense features and its categorical indices.
    Slice {
        /// First feature of the slice.
        offset: usize,
    },
    /// Embedding-bag lookups: feature `t` of the input value is a
    /// categorical index into `tables[t]` (mapped through
    /// [`embedding_index`]), and the op emits the looked-up rows
    /// concatenated — single-index bags, as in the DLRM benchmark
    /// configuration, where a bag with one index is a table-row
    /// gather.
    EmbeddingBag {
        /// One `rows × dim` embedding table per categorical feature.
        tables: Vec<Matrix>,
    },
    /// DLRM pairwise dot-product feature interaction: the inputs'
    /// features concatenate into `m` vectors of dimension `d` (the
    /// first input's feature count), and the op emits the first vector
    /// followed by the `m·(m−1)/2` pairwise dot products `⟨vᵢ, vⱼ⟩`
    /// for `i < j`, in `i`-major order.
    Interact,
}

/// Maps a categorical feature value to a valid embedding-table row:
/// rounds to the nearest integer and clamps into `[0, rows)`. Shared by
/// [`Network::reference_f64`] and the compiled executor so both resolve
/// out-of-range indices identically.
pub fn embedding_index(v: f32, rows: usize) -> usize {
    (v.max(0.0).round() as usize).min(rows - 1)
}

/// One node of an executable network.
#[derive(Clone, Debug)]
pub struct Node {
    /// Layer name (matches the analytic zoo naming).
    pub name: String,
    /// The operation.
    pub op: NodeOp,
    /// Value inputs, in operation order.
    pub inputs: Vec<NodeRef>,
    /// Output dimensions `(channels, height, width)`; flattened values
    /// report `(features, 1, 1)`.
    pub out_dims: (usize, usize, usize),
}

/// An executable network: nodes in execution order over one input shape.
#[derive(Clone, Debug)]
pub struct Network {
    /// Display name.
    pub name: String,
    /// Batch size this instance executes at.
    pub batch: usize,
    /// Input dimensions `(channels, height, width)`.
    pub input_dims: (usize, usize, usize),
    /// Nodes in execution order; the last node's output is the
    /// network's output.
    pub nodes: Vec<Node>,
    /// Storage dtype the network executes in: weights are quantized to
    /// this format's value grid and the compiled executor stores
    /// inter-node activations as its codes. Builders produce fp16
    /// networks; convert with [`Network::with_dtype`].
    pub dtype: Dtype,
}

fn features(dims: (usize, usize, usize)) -> usize {
    dims.0 * dims.1 * dims.2
}

impl Network {
    /// Re-targets the network to a storage dtype: every conv/fc weight
    /// is snapped to the dtype's value grid (encode → decode, kept in
    /// the FP16 weight containers — every fp8/int8 value and every
    /// normal-range bf16 value is exactly representable in fp16, so the
    /// snap is lossless re-quantization, not double rounding). The
    /// compiled executor re-encodes the snapped values into raw dtype
    /// codes, and [`Network::reference_f64`] quantizes activations on
    /// the same grid, so the two stay within low-precision tolerance of
    /// each other for every dtype.
    pub fn with_dtype(mut self, dtype: Dtype) -> Self {
        if self.dtype == dtype {
            return self;
        }
        let snap = |v: F16| F16::from_f32(dtype.decode(dtype.encode(v.to_f32())));
        for node in &mut self.nodes {
            match &mut node.op {
                NodeOp::Conv { weights, .. } => {
                    for v in &mut weights.data {
                        *v = snap(*v);
                    }
                }
                NodeOp::Fc { weights, .. } => {
                    for v in &mut weights.data {
                        *v = snap(*v);
                    }
                }
                NodeOp::EmbeddingBag { tables } => {
                    for t in tables {
                        for v in &mut t.data {
                            *v = snap(*v);
                        }
                    }
                }
                _ => {}
            }
        }
        self.dtype = dtype;
        self
    }

    /// Quantizes one activation value onto the network dtype's grid,
    /// through f32 exactly as the executor's write-back path rounds.
    fn quantize(&self, v: f64) -> F16 {
        match self.dtype {
            Dtype::F16 => F16::from_f32(v as f32),
            d => F16::from_f32(d.decode(d.encode(v as f32))),
        }
    }

    /// Flattened input feature count (`C·H·W` — one request row).
    pub fn input_features(&self) -> usize {
        features(self.input_dims)
    }

    /// Flattened output feature count of the final node.
    pub fn output_features(&self) -> usize {
        features(self.nodes.last().expect("network has nodes").out_dims)
    }

    /// Output dimensions of a value reference.
    pub fn dims_of(&self, r: NodeRef) -> (usize, usize, usize) {
        match r {
            NodeRef::Input => self.input_dims,
            NodeRef::Node(i) => self.nodes[i].out_dims,
        }
    }

    /// Number of GEMM-backed (conv/fc) nodes — the layers a plan covers.
    pub fn gemm_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, NodeOp::Conv { .. } | NodeOp::Fc { .. }))
            .count()
    }

    /// The analytic view: every conv/fc node as a [`LinearLayer`] in
    /// execution order, ready for the planner. This is the `Model` half
    /// of the `Model → ModelPlan → CompiledModel` compilation path; the
    /// plan's per-layer schemes apply to the GEMM nodes in this order.
    pub fn to_model(&self) -> Model {
        let layers = self
            .nodes
            .iter()
            .filter_map(|node| match &node.op {
                NodeOp::Conv { params, .. } => {
                    let (c, h, w) = self.dims_of(node.inputs[0]);
                    let (layer, _, _) = LinearLayer::conv(
                        node.name.clone(),
                        self.batch as u64,
                        c as u64,
                        h as u64,
                        w as u64,
                        params.c_out as u64,
                        params.kernel as u64,
                        params.stride as u64,
                        params.padding as u64,
                    );
                    Some(layer)
                }
                NodeOp::Fc { weights, .. } => Some(LinearLayer::fc(
                    node.name.clone(),
                    self.batch as u64,
                    weights.rows as u64,
                    weights.cols as u64,
                )),
                _ => None,
            })
            .collect();
        Model::new(self.name.clone(), layers)
    }

    /// Executes the network in f64, mirroring the compiled executor's
    /// FP16 quantization points: inter-node activations are quantized
    /// to FP16 (through f32, the executor's write-back path) while GEMM
    /// accumulation stays exact in f64. The returned values are the
    /// final node's outputs for `input.rows` images, flattened NCHW —
    /// pre-quantization when the final node is a conv/fc (matching the
    /// executor's raw f32 output), quantized otherwise.
    pub fn reference_f64(&self, input: &Matrix) -> Vec<f64> {
        assert_eq!(input.cols, self.input_features(), "input feature width");
        let batch = input.rows;
        let (ic, ih, iw) = self.input_dims;
        // Dtype-coded inputs (e.g. a bf16 request matrix) are decoded
        // into the f16 value domain the reference tensors use; fp16
        // inputs pass through untouched.
        let input_data = if input.dtype == Dtype::F16 {
            input.data.clone()
        } else {
            input
                .data
                .iter()
                .map(|v| F16::from_f32(input.dtype.decode(v.to_bits())))
                .collect()
        };
        let input_t = Tensor {
            batch,
            channels: ic,
            height: ih,
            width: iw,
            data: input_data,
        };
        let mut vals: Vec<Tensor> = Vec::with_capacity(self.nodes.len());
        let last = self.nodes.len() - 1;
        for (i, node) in self.nodes.iter().enumerate() {
            let get = |r: NodeRef| -> &Tensor {
                match r {
                    NodeRef::Input => &input_t,
                    NodeRef::Node(j) => &vals[j],
                }
            };
            let (oc, oh, ow) = node.out_dims;
            let raw: Vec<f64> = match &node.op {
                NodeOp::Conv {
                    params,
                    weights,
                    relu,
                } => {
                    let mut out = conv_reference_f64(get(node.inputs[0]), weights, *params);
                    if *relu {
                        for v in &mut out {
                            *v = v.max(0.0);
                        }
                    }
                    out
                }
                NodeOp::Fc { weights, relu } => {
                    let src = get(node.inputs[0]);
                    let k = weights.rows;
                    let n = weights.cols;
                    let mut out = vec![0.0f64; batch * n];
                    for b in 0..batch {
                        for kk in 0..k {
                            let a = src.data[b * k + kk].to_f64();
                            if a == 0.0 {
                                continue;
                            }
                            for j in 0..n {
                                out[b * n + j] += a * weights.get(kk, j).to_f64();
                            }
                        }
                    }
                    if *relu {
                        for v in &mut out {
                            *v = v.max(0.0);
                        }
                    }
                    out
                }
                NodeOp::Pool(p) => {
                    let src = get(node.inputs[0]);
                    let mut out = vec![0.0f64; batch * oc * oh * ow];
                    for n in 0..batch {
                        for c in 0..oc {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    out[((n * oc + c) * oh + oy) * ow + ox] =
                                        pool_window_f64(src, n, c, oy, ox, p);
                                }
                            }
                        }
                    }
                    out
                }
                NodeOp::GlobalAvgPool => {
                    let src = get(node.inputs[0]);
                    let (c, h, w) = self.dims_of(node.inputs[0]);
                    let mut out = vec![0.0f64; batch * c];
                    for n in 0..batch {
                        for ch in 0..c {
                            let mut acc = 0.0f64;
                            for y in 0..h {
                                for x in 0..w {
                                    acc += src.get(n, ch, y, x).to_f64();
                                }
                            }
                            out[n * c + ch] = acc / (h * w) as f64;
                        }
                    }
                    out
                }
                NodeOp::Flatten => get(node.inputs[0])
                    .data
                    .iter()
                    .map(|v| v.to_f64())
                    .collect(),
                NodeOp::Concat => {
                    let mut out = Vec::with_capacity(batch * oc * oh * ow);
                    for n in 0..batch {
                        for &r in &node.inputs {
                            let src = get(r);
                            let f = features(self.dims_of(r));
                            out.extend(src.data[n * f..(n + 1) * f].iter().map(|v| v.to_f64()));
                        }
                    }
                    out
                }
                NodeOp::Add { relu } => {
                    let a = get(node.inputs[0]);
                    let b = get(node.inputs[1]);
                    a.data
                        .iter()
                        .zip(&b.data)
                        .map(|(x, y)| {
                            let v = x.to_f64() + y.to_f64();
                            if *relu {
                                v.max(0.0)
                            } else {
                                v
                            }
                        })
                        .collect()
                }
                NodeOp::Slice { offset } => {
                    let src = get(node.inputs[0]);
                    let f = features(self.dims_of(node.inputs[0]));
                    let len = oc * oh * ow;
                    let mut out = Vec::with_capacity(batch * len);
                    for n in 0..batch {
                        out.extend(
                            src.data[n * f + offset..n * f + offset + len]
                                .iter()
                                .map(|v| v.to_f64()),
                        );
                    }
                    out
                }
                NodeOp::EmbeddingBag { tables } => {
                    let src = get(node.inputs[0]);
                    let t_count = tables.len();
                    let dim = tables[0].cols;
                    let mut out = Vec::with_capacity(batch * t_count * dim);
                    for n in 0..batch {
                        for (t, table) in tables.iter().enumerate() {
                            let idx =
                                embedding_index(src.data[n * t_count + t].to_f32(), table.rows);
                            for j in 0..dim {
                                out.push(table.get(idx, j).to_f64());
                            }
                        }
                    }
                    out
                }
                NodeOp::Interact => {
                    let d = features(self.dims_of(node.inputs[0]));
                    let total: usize = node.inputs.iter().map(|&r| features(self.dims_of(r))).sum();
                    let m = total / d;
                    let mut out = Vec::with_capacity(batch * (d + m * (m - 1) / 2));
                    let mut flat = vec![0.0f64; total];
                    for n in 0..batch {
                        let mut at = 0;
                        for &r in &node.inputs {
                            let src = get(r);
                            let f = features(self.dims_of(r));
                            for v in &src.data[n * f..(n + 1) * f] {
                                flat[at] = v.to_f64();
                                at += 1;
                            }
                        }
                        out.extend_from_slice(&flat[..d]);
                        for vi in 0..m {
                            for vj in vi + 1..m {
                                let dot: f64 =
                                    (0..d).map(|x| flat[vi * d + x] * flat[vj * d + x]).sum();
                                out.push(dot);
                            }
                        }
                    }
                    out
                }
            };
            if i == last {
                let keep_raw = matches!(node.op, NodeOp::Conv { .. } | NodeOp::Fc { .. });
                if keep_raw {
                    return raw;
                }
                return raw.iter().map(|&v| self.quantize(v).to_f64()).collect();
            }
            // Quantize through f32 exactly as the executor writes back.
            vals.push(Tensor {
                batch,
                channels: oc,
                height: oh,
                width: ow,
                data: raw.iter().map(|&v| self.quantize(v)).collect(),
            });
        }
        unreachable!("network has at least one node");
    }
}

/// One pooling window over an FP16 tensor, evaluated in f64 (max skips
/// out-of-bounds cells; avg divides by the in-bounds cell count).
fn pool_window_f64(src: &Tensor, n: usize, c: usize, oy: usize, ox: usize, p: &PoolParams) -> f64 {
    let mut best = f64::NEG_INFINITY;
    let mut acc = 0.0f64;
    let mut cells = 0u32;
    for ky in 0..p.kernel {
        for kx in 0..p.kernel {
            let iy = (oy * p.stride + ky) as isize - p.padding as isize;
            let ix = (ox * p.stride + kx) as isize - p.padding as isize;
            if iy < 0 || ix < 0 || iy as usize >= src.height || ix as usize >= src.width {
                continue;
            }
            let v = src.get(n, c, iy as usize, ix as usize).to_f64();
            best = best.max(v);
            acc += v;
            cells += 1;
        }
    }
    match p.kind {
        PoolKind::Max => {
            if cells == 0 {
                0.0
            } else {
                best
            }
        }
        PoolKind::Avg => {
            if cells == 0 {
                0.0
            } else {
                acc / cells as f64
            }
        }
    }
}

/// Builds a [`Network`] incrementally, tracking dimensions through every
/// node and initializing weights deterministically from a seed (scale
/// `1/√K`, keeping activations O(1) through depth like trained nets).
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    name: String,
    batch: usize,
    input_dims: (usize, usize, usize),
    nodes: Vec<Node>,
    cursor: NodeRef,
    seed: u64,
    weighted: u64,
}

impl NetworkBuilder {
    /// Starts a network on `batch` inputs of `channels × h × w`.
    pub fn new(
        name: impl Into<String>,
        batch: usize,
        channels: usize,
        h: usize,
        w: usize,
        seed: u64,
    ) -> Self {
        assert!(batch >= 1 && channels >= 1 && h >= 1 && w >= 1);
        NetworkBuilder {
            name: name.into(),
            batch,
            input_dims: (channels, h, w),
            nodes: Vec::new(),
            cursor: NodeRef::Input,
            seed,
            weighted: 0,
        }
    }

    /// The reference to the most recently appended value (the network
    /// input before any node is added) — capture it to branch.
    pub fn cursor(&self) -> NodeRef {
        self.cursor
    }

    /// Dimensions of the cursor value.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims_of(self.cursor)
    }

    fn dims_of(&self, r: NodeRef) -> (usize, usize, usize) {
        match r {
            NodeRef::Input => self.input_dims,
            NodeRef::Node(i) => self.nodes[i].out_dims,
        }
    }

    fn push(
        &mut self,
        name: impl Into<String>,
        op: NodeOp,
        inputs: Vec<NodeRef>,
        out_dims: (usize, usize, usize),
    ) -> NodeRef {
        self.nodes.push(Node {
            name: name.into(),
            op,
            inputs,
            out_dims,
        });
        self.cursor = NodeRef::Node(self.nodes.len() - 1);
        self.cursor
    }

    fn next_weight_seed(&mut self) -> u64 {
        let s = self.seed.wrapping_add(self.weighted.wrapping_mul(7919));
        self.weighted += 1;
        s
    }

    /// Appends a convolution reading the cursor.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        relu: bool,
    ) -> NodeRef {
        self.conv_on(self.cursor, name, c_out, kernel, stride, padding, relu)
    }

    /// Appends a convolution reading an explicit value (branches).
    #[allow(clippy::too_many_arguments)]
    pub fn conv_on(
        &mut self,
        src: NodeRef,
        name: impl Into<String>,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        relu: bool,
    ) -> NodeRef {
        let (c_in, h, w) = self.dims_of(src);
        let k = c_in * kernel * kernel;
        let seed = self.next_weight_seed();
        let scale = F16::from_f64(1.0 / (k as f64).sqrt());
        let raw = Tensor::random(c_out, c_in, kernel, kernel, seed);
        let weights = Tensor {
            data: raw.data.iter().map(|&v| v * scale).collect(),
            ..raw
        };
        let params = ConvParams {
            c_out,
            kernel,
            stride,
            padding,
        };
        let ho = conv_out(h as u64, kernel as u64, stride as u64, padding as u64) as usize;
        let wo = conv_out(w as u64, kernel as u64, stride as u64, padding as u64) as usize;
        self.push(
            name,
            NodeOp::Conv {
                params,
                weights,
                relu,
            },
            vec![src],
            (c_out, ho, wo),
        )
    }

    /// Appends a fully-connected layer consuming the flattened cursor.
    pub fn fc(&mut self, name: impl Into<String>, out_features: usize, relu: bool) -> NodeRef {
        let src = self.cursor;
        let k = features(self.dims_of(src));
        let seed = self.next_weight_seed();
        let scale = F16::from_f64(1.0 / (k as f64).sqrt());
        let raw = Matrix::random(k, out_features, seed);
        let weights = Matrix::from_fn(k, out_features, |r, c| raw.get(r, c) * scale);
        self.push(
            name,
            NodeOp::Fc { weights, relu },
            vec![src],
            (out_features, 1, 1),
        )
    }

    /// Appends a pooling node reading the cursor.
    pub fn pool(&mut self, name: impl Into<String>, p: PoolParams) -> NodeRef {
        let src = self.cursor;
        let (c, h, w) = self.dims_of(src);
        assert!(
            h + 2 * p.padding >= p.kernel && w + 2 * p.padding >= p.kernel,
            "pool window larger than padded input"
        );
        let dims = (c, p.out_extent(h), p.out_extent(w));
        self.push(name, NodeOp::Pool(p), vec![src], dims)
    }

    /// Ceil-mode max pooling (SqueezeNet's pools).
    pub fn max_pool_ceil(
        &mut self,
        name: impl Into<String>,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> NodeRef {
        self.pool(
            name,
            PoolParams {
                kind: PoolKind::Max,
                kernel,
                stride,
                padding,
                ceil: true,
            },
        )
    }

    /// Floor-mode max pooling.
    pub fn max_pool(
        &mut self,
        name: impl Into<String>,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> NodeRef {
        self.pool(
            name,
            PoolParams {
                kind: PoolKind::Max,
                kernel,
                stride,
                padding,
                ceil: false,
            },
        )
    }

    /// Global average pooling to `1 × 1`.
    pub fn global_avg_pool(&mut self, name: impl Into<String>) -> NodeRef {
        let src = self.cursor;
        let (c, _, _) = self.dims_of(src);
        self.push(name, NodeOp::GlobalAvgPool, vec![src], (c, 1, 1))
    }

    /// Flattens the cursor to a feature vector (zero-copy at execution).
    pub fn flatten(&mut self, name: impl Into<String>) -> NodeRef {
        let src = self.cursor;
        let f = features(self.dims_of(src));
        self.push(name, NodeOp::Flatten, vec![src], (f, 1, 1))
    }

    /// Channel-concatenates two or more values of equal spatial dims.
    pub fn concat(&mut self, name: impl Into<String>, inputs: Vec<NodeRef>) -> NodeRef {
        assert!(inputs.len() >= 2, "concat needs at least two inputs");
        let (_, h, w) = self.dims_of(inputs[0]);
        let mut c = 0;
        for &r in &inputs {
            let (ci, hi, wi) = self.dims_of(r);
            assert_eq!((hi, wi), (h, w), "concat inputs must share spatial dims");
            c += ci;
        }
        self.push(name, NodeOp::Concat, inputs, (c, h, w))
    }

    /// Appends a feature-range slice of a value: features
    /// `[offset, offset + len)` of each image.
    pub fn slice(
        &mut self,
        name: impl Into<String>,
        src: NodeRef,
        offset: usize,
        len: usize,
    ) -> NodeRef {
        let f = features(self.dims_of(src));
        assert!(len >= 1, "slice must keep at least one feature");
        assert!(
            offset + len <= f,
            "slice [{offset}, {}) exceeds {f} features",
            offset + len
        );
        self.push(name, NodeOp::Slice { offset }, vec![src], (len, 1, 1))
    }

    /// Appends embedding-bag lookups: one seeded `rows × dim` table per
    /// feature of `src` (scaled `1/√dim` like the GEMM weights), each
    /// feature used as a categorical index into its table.
    pub fn embedding_bag(
        &mut self,
        name: impl Into<String>,
        src: NodeRef,
        rows: usize,
        dim: usize,
    ) -> NodeRef {
        let t_count = features(self.dims_of(src));
        assert!(rows >= 1 && dim >= 1 && t_count >= 1);
        let scale = F16::from_f64(1.0 / (dim as f64).sqrt());
        let mut tables = Vec::with_capacity(t_count);
        for _ in 0..t_count {
            let seed = self.next_weight_seed();
            let raw = Matrix::random(rows, dim, seed);
            tables.push(Matrix::from_fn(rows, dim, |r, c| raw.get(r, c) * scale));
        }
        self.push(
            name,
            NodeOp::EmbeddingBag { tables },
            vec![src],
            (t_count * dim, 1, 1),
        )
    }

    /// Appends a DLRM pairwise-interaction node: the inputs concatenate
    /// into `m` vectors of the first input's dimension `d`, and the
    /// output is the first vector followed by the `m·(m−1)/2` pairwise
    /// dot products.
    pub fn interact(&mut self, name: impl Into<String>, inputs: Vec<NodeRef>) -> NodeRef {
        assert!(!inputs.is_empty(), "interact needs inputs");
        let d = features(self.dims_of(inputs[0]));
        let total: usize = inputs.iter().map(|&r| features(self.dims_of(r))).sum();
        assert_eq!(
            total % d,
            0,
            "interact inputs must concatenate into {d}-dim vectors"
        );
        let m = total / d;
        assert!(m >= 2, "interact needs at least two vectors");
        self.push(name, NodeOp::Interact, inputs, (d + m * (m - 1) / 2, 1, 1))
    }

    /// Element-wise residual addition of two equal-shaped values.
    pub fn add(&mut self, name: impl Into<String>, a: NodeRef, b: NodeRef, relu: bool) -> NodeRef {
        assert_ne!(a, b, "residual add needs two distinct values");
        let dims = self.dims_of(a);
        assert_eq!(dims, self.dims_of(b), "add inputs must share dims");
        self.push(name, NodeOp::Add { relu }, vec![a, b], dims)
    }

    /// Finishes the network.
    pub fn build(self) -> Network {
        assert!(!self.nodes.is_empty(), "network {} is empty", self.name);
        let net = Network {
            name: self.name,
            batch: self.batch,
            input_dims: self.input_dims,
            nodes: self.nodes,
            dtype: Dtype::F16,
        };
        assert!(
            net.gemm_count() >= 1,
            "network {} has no conv/fc layers",
            net.name
        );
        assert!(
            !matches!(net.nodes.last().unwrap().op, NodeOp::Flatten),
            "network {} must not end on a flatten",
            net.name
        );
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(batch: usize) -> Network {
        let mut b = NetworkBuilder::new("tiny", batch, 2, 6, 6, 5);
        b.conv("c1", 4, 3, 1, 1, true);
        b.max_pool("p1", 2, 2, 0);
        b.global_avg_pool("gap");
        b.flatten("flat");
        b.fc("fc", 3, false);
        b.build()
    }

    #[test]
    fn builder_tracks_dims_and_features() {
        let net = tiny_net(2);
        assert_eq!(net.input_features(), 2 * 6 * 6);
        assert_eq!(net.output_features(), 3);
        assert_eq!(net.gemm_count(), 2);
        assert_eq!(net.nodes[0].out_dims, (4, 6, 6));
        assert_eq!(net.nodes[1].out_dims, (4, 3, 3));
        assert_eq!(net.nodes[2].out_dims, (4, 1, 1));
        assert_eq!(net.nodes[3].out_dims, (4, 1, 1));
    }

    #[test]
    fn to_model_exposes_the_gemm_layers_in_order() {
        let net = tiny_net(2);
        let model = net.to_model();
        assert_eq!(model.layers.len(), 2);
        assert_eq!(model.layers[0].name, "c1");
        // conv: M = 2·6·6, N = 4, K = 2·9.
        assert_eq!(model.layers[0].shape.m, 72);
        assert_eq!(model.layers[0].shape.n, 4);
        assert_eq!(model.layers[0].shape.k, 18);
        // fc: M = 2, N = 3, K = 4.
        assert_eq!(model.layers[1].shape.m, 2);
        assert_eq!(model.layers[1].shape.k, 4);
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let a = tiny_net(1);
        let b = tiny_net(1);
        let (NodeOp::Conv { weights: wa, .. }, NodeOp::Conv { weights: wb, .. }) =
            (&a.nodes[0].op, &b.nodes[0].op)
        else {
            panic!("node 0 is a conv");
        };
        assert_eq!(wa.data, wb.data);
    }

    #[test]
    fn reference_runs_branching_topologies() {
        let mut b = NetworkBuilder::new("branchy", 1, 2, 5, 5, 9);
        let s = b.conv("squeeze", 3, 1, 1, 0, true);
        let e1 = b.conv_on(s, "e1", 2, 1, 1, 0, true);
        let e3 = b.conv_on(s, "e3", 2, 3, 1, 1, true);
        let cat = b.concat("cat", vec![e1, e3]);
        let short = b.conv_on(cat, "short", 4, 1, 1, 0, false);
        let main = b.conv_on(cat, "main", 4, 3, 1, 1, false);
        b.add("res", main, short, true);
        b.global_avg_pool("gap");
        let net = b.build();
        assert_eq!(net.output_features(), 4);
        let input = Matrix::random(1, net.input_features(), 77);
        let out = net.reference_f64(&input);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|v| v.is_finite()));
        // ReLU'd residual output is non-negative before the average.
        assert!(out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pool_reference_matches_hand_window() {
        let mut b = NetworkBuilder::new("pool", 1, 1, 4, 4, 3);
        b.conv("c", 1, 1, 1, 0, false);
        b.max_pool("p", 2, 2, 0);
        let net = b.build();
        let input = Matrix::random(1, 16, 8);
        let got = net.reference_f64(&input);
        // Recompute: conv is 1x1 single-channel => scale by w00, then 2x2 max.
        let NodeOp::Conv { weights, .. } = &net.nodes[0].op else {
            panic!()
        };
        let w00 = weights.data[0].to_f64();
        let mut conv = [0.0f64; 16];
        for (c, inp) in conv.iter_mut().zip(&input.data) {
            let v = inp.to_f64() * w00;
            *c = F16::from_f32(v as f32).to_f64();
        }
        for oy in 0..2 {
            for ox in 0..2 {
                let m = (0..2)
                    .flat_map(|ky| (0..2).map(move |kx| conv[(2 * oy + ky) * 4 + 2 * ox + kx]))
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(got[oy * 2 + ox], m);
            }
        }
    }

    #[test]
    fn ceil_pool_drops_windows_starting_in_the_right_padding() {
        // torchvision: kernel 2, stride 2, padding 1 over width 3 gives
        // 2 outputs, not ceil((3+2-2)/2)+1 = 3 — the third window would
        // start at index 4 >= input + left padding = 4 and is dropped.
        let p = PoolParams {
            kind: PoolKind::Max,
            kernel: 2,
            stride: 2,
            padding: 1,
            ceil: true,
        };
        assert_eq!(p.out_extent(3), 2);
        // Padding-0 ceil pools (SqueezeNet's) are unaffected: a partial
        // window starting inside the input is kept.
        let p0 = PoolParams { padding: 0, ..p };
        assert_eq!(p0.out_extent(3), 2);
        let p3 = PoolParams {
            kernel: 3,
            padding: 0,
            ..p
        };
        assert_eq!(p3.out_extent(6), 3);
        assert_eq!(p3.out_extent(13), 6);
    }

    #[test]
    #[should_panic(expected = "no conv/fc layers")]
    fn gemm_free_networks_are_rejected() {
        let mut b = NetworkBuilder::new("none", 1, 1, 4, 4, 0);
        b.max_pool("p", 2, 2, 0);
        b.build();
    }
}
