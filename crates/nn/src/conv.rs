//! Functional convolution via im2col lowering.
//!
//! The paper protects convolutions *as matrix multiplications* (§2.1):
//! the input feature map is unrolled into the `M × K` activation matrix
//! (one row per output position, one column per `(channel, ky, kx)` tap)
//! and the filters form the `K × N` weight matrix. This module performs
//! that lowering concretely so convolutional layers can be executed —
//! and fault-injected — on the functional GEMM engine, not just costed
//! analytically.

use crate::layer::conv_out;
use aiga_fp16::F16;
use aiga_gpu::engine::{Im2colView, Matrix, MatrixLayout, Workspace};

/// A batched FP16 feature map in NCHW layout.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    /// Batch size.
    pub batch: usize,
    /// Channels.
    pub channels: usize,
    /// Height.
    pub height: usize,
    /// Width.
    pub width: usize,
    /// NCHW storage.
    pub data: Vec<F16>,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(batch: usize, channels: usize, height: usize, width: usize) -> Self {
        Tensor {
            batch,
            channels,
            height,
            width,
            data: vec![F16::ZERO; batch * channels * height * width],
        }
    }

    /// Element-wise construction from `f(n, c, y, x)`.
    pub fn from_fn(
        batch: usize,
        channels: usize,
        height: usize,
        width: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> F16,
    ) -> Self {
        let mut data = Vec::with_capacity(batch * channels * height * width);
        for n in 0..batch {
            for c in 0..channels {
                for y in 0..height {
                    for x in 0..width {
                        data.push(f(n, c, y, x));
                    }
                }
            }
        }
        Tensor {
            batch,
            channels,
            height,
            width,
            data,
        }
    }

    /// Deterministic pseudo-random tensor (activation-scale values).
    pub fn random(batch: usize, channels: usize, height: usize, width: usize, seed: u64) -> Self {
        let m = Matrix::random(batch * channels, height * width, seed);
        Tensor {
            batch,
            channels,
            height,
            width,
            data: m.data,
        }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, n: usize, c: usize, y: usize, x: usize) -> F16 {
        self.data[((n * self.channels + c) * self.height + y) * self.width + x]
    }
}

/// Convolution hyperparameters (square kernels, as all zoo models use).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvParams {
    /// Output channels.
    pub c_out: usize,
    /// Kernel side length.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
}

impl ConvParams {
    /// Output spatial dims for an input of `h × w`.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out(
                h as u64,
                self.kernel as u64,
                self.stride as u64,
                self.padding as u64,
            ) as usize,
            conv_out(
                w as u64,
                self.kernel as u64,
                self.stride as u64,
                self.padding as u64,
            ) as usize,
        )
    }

    /// True for 1×1 stride-1 unpadded convolutions. Their im2col
    /// lowering is a pure relabeling of the NCHW buffer (`K = Cin`, one
    /// row per pixel), so the GEMM can take a zero-copy
    /// [`aiga_gpu::MatrixLayout::NchwLowered`] view of the activation
    /// tensor instead of materializing the lowered matrix.
    pub fn is_pointwise(&self) -> bool {
        self.kernel == 1 && self.stride == 1 && self.padding == 0
    }

    /// The implicit-GEMM view of these parameters over a
    /// `channels × height × width` input: the geometry the engine's
    /// panel staging gathers through directly, so k>1 convolutions never
    /// materialize the [`im2col`] matrix on the fast path.
    pub fn im2col_view(&self, channels: usize, height: usize, width: usize) -> Im2colView {
        let (out_h, out_w) = self.out_dims(height, width);
        Im2colView {
            channels,
            height,
            width,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            out_h,
            out_w,
        }
    }
}

/// Unrolls `input` into the implicit-GEMM activation matrix: row
/// `(n, oy, ox)`, column `(c, ky, kx)` — `M = B·Ho·Wo`, `K = Cin·k²`.
///
/// Thin allocating wrapper over [`im2col_into`]; the serving hot path
/// lowers into a warm [`Workspace`] instead and never allocates.
pub fn im2col(input: &Tensor, p: ConvParams) -> Matrix {
    let mut ws = Workspace::new();
    im2col_into(input, p, &mut ws);
    ws.take_lowering()
}

/// [`im2col`] into the workspace's lowering buffer: the destination is
/// resized in place (capacity only ratchets up), so steady-state conv
/// lowering performs zero heap allocations. Read the result via
/// [`Workspace::lowering_mut`] or move it out with
/// [`Workspace::take_lowering`] for the engine call.
pub fn im2col_into(input: &Tensor, p: ConvParams, ws: &mut Workspace) {
    let (ho, wo) = p.out_dims(input.height, input.width);
    let k_dim = input.channels * p.kernel * p.kernel;
    let out = ws.lowering_mut();
    out.rows = input.batch * ho * wo;
    out.cols = k_dim;
    out.layout = MatrixLayout::RowMajor;
    out.data.clear();
    out.data.resize(out.rows * k_dim, F16::ZERO);
    for n in 0..input.batch {
        for oy in 0..ho {
            for ox in 0..wo {
                let row = (n * ho + oy) * wo + ox;
                let mut col = 0usize;
                for c in 0..input.channels {
                    for ky in 0..p.kernel {
                        for kx in 0..p.kernel {
                            let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                            let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < input.height
                                && (ix as usize) < input.width
                            {
                                out.set(row, col, input.get(n, c, iy as usize, ix as usize));
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Reshapes OIHW filters into the `K × N` weight matrix (column per
/// output channel, row per `(c, ky, kx)` tap — matching [`im2col`]).
pub fn filters_to_matrix(filters: &Tensor) -> Matrix {
    // Interpret the tensor as O×I×kh×kw.
    let (o, i, kh, kw) = (
        filters.batch,
        filters.channels,
        filters.height,
        filters.width,
    );
    Matrix::from_fn(i * kh * kw, o, |row, col| {
        let c = row / (kh * kw);
        let ky = (row / kw) % kh;
        let kx = row % kw;
        filters.get(col, c, ky, kx)
    })
}

/// Direct (sliding-window) convolution reference in FP64, NCHW in/out.
pub fn conv_reference_f64(input: &Tensor, filters: &Tensor, p: ConvParams) -> Vec<f64> {
    assert_eq!(filters.channels, input.channels, "channel mismatch");
    assert_eq!(filters.batch, p.c_out, "filter count mismatch");
    let (ho, wo) = p.out_dims(input.height, input.width);
    let mut out = vec![0.0f64; input.batch * p.c_out * ho * wo];
    for n in 0..input.batch {
        for co in 0..p.c_out {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f64;
                    for c in 0..input.channels {
                        for ky in 0..p.kernel {
                            for kx in 0..p.kernel {
                                let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                                let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                                if iy >= 0
                                    && ix >= 0
                                    && (iy as usize) < input.height
                                    && (ix as usize) < input.width
                                {
                                    acc += input.get(n, c, iy as usize, ix as usize).to_f64()
                                        * filters.get(co, c, ky, kx).to_f64();
                                }
                            }
                        }
                    }
                    out[((n * p.c_out + co) * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
    out
}

/// Maps a GEMM output element `(row, col)` of the lowered convolution
/// back to its `(n, c_out, oy, ox)` coordinate.
pub fn gemm_to_nchw(row: usize, col: usize, ho: usize, wo: usize) -> (usize, usize, usize, usize) {
    (row / (ho * wo), col, (row / wo) % ho, row % wo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{gemm_reference_f64, GemmEngine, NoScheme};
    use aiga_gpu::GemmShape;

    fn params(c_out: usize, kernel: usize, stride: usize, padding: usize) -> ConvParams {
        ConvParams {
            c_out,
            kernel,
            stride,
            padding,
        }
    }

    #[test]
    fn im2col_dims_match_the_layer_lowering() {
        let input = Tensor::random(2, 3, 10, 12, 1);
        let p = params(8, 3, 1, 1);
        let a = im2col(&input, p);
        assert_eq!(a.rows, 2 * 10 * 12);
        assert_eq!(a.cols, 3 * 9);
    }

    #[test]
    fn lowered_gemm_equals_direct_convolution() {
        let input = Tensor::random(2, 3, 8, 9, 2);
        let filters = Tensor::random(6, 3, 3, 3, 3); // O=6,I=3,3x3
        let p = params(6, 3, 1, 1);
        let a = im2col(&input, p);
        let b = filters_to_matrix(&filters);
        let gemm = gemm_reference_f64(&a, &b);
        let direct = conv_reference_f64(&input, &filters, p);
        let (ho, wo) = p.out_dims(8, 9);
        for row in 0..a.rows {
            for col in 0..b.cols {
                let (n, co, oy, ox) = gemm_to_nchw(row, col, ho, wo);
                let d = direct[((n * 6 + co) * ho + oy) * wo + ox];
                let g = gemm[row * b.cols + col];
                assert!((d - g).abs() < 1e-9, "({row},{col}): {g} vs {d}");
            }
        }
    }

    #[test]
    fn pointwise_lowered_view_equals_the_im2col_matrix() {
        // For a 1×1 stride-1 unpadded conv, the zero-copy NchwLowered
        // view of the activation tensor must be logically identical to
        // the materialized im2col matrix — element for element — so
        // everything downstream (checksums, engine staging, oracles)
        // sees the same FP16 bits.
        let input = Tensor::random(3, 5, 7, 4, 9);
        let p = params(6, 1, 1, 0);
        assert!(p.is_pointwise());
        assert!(!params(6, 3, 1, 1).is_pointwise());
        assert!(!params(6, 1, 2, 0).is_pointwise());
        assert!(!params(6, 1, 1, 1).is_pointwise());
        let copied = im2col(&input, p);
        let view = Matrix::nchw_lowered(3, 5, 7 * 4, input.data.clone());
        assert_eq!((view.rows, view.cols), (copied.rows, copied.cols));
        for r in 0..view.rows {
            for c in 0..view.cols {
                assert_eq!(view.get(r, c), copied.get(r, c), "({r},{c})");
            }
        }
        // And the engine produces byte-identical outputs from either.
        let filters = Tensor::random(6, 5, 1, 1, 10);
        let b = filters_to_matrix(&filters);
        let eng = GemmEngine::with_default_tiling(GemmShape::new(
            view.rows as u64,
            b.cols as u64,
            b.rows as u64,
        ));
        let from_copy = eng.run(&copied, &b, || NoScheme, None);
        let from_view = eng.run(&view, &b, || NoScheme, None);
        assert_eq!(from_copy.c, from_view.c);
    }

    #[test]
    fn im2col_view_equals_the_materialized_lowering() {
        // The implicit-GEMM view must be logically identical to the
        // materialized im2col matrix — element for element, including
        // zero-padding taps — across every zoo kernel geometry, so
        // checksums, engine staging, and oracles see the same FP16 bits.
        for (kernel, stride, padding) in [(3, 1, 1), (3, 2, 1), (7, 2, 3), (5, 2, 2), (11, 4, 2)] {
            let input = Tensor::random(2, 3, 15, 13, 70 + kernel as u64);
            let p = params(4, kernel, stride, padding);
            let copied = im2col(&input, p);
            let view = Matrix::im2col_lowered(
                input.batch,
                p.im2col_view(input.channels, input.height, input.width),
                input.data.clone(),
            );
            assert_eq!((view.rows, view.cols), (copied.rows, copied.cols));
            for r in 0..view.rows {
                for c in 0..view.cols {
                    assert_eq!(
                        view.get(r, c),
                        copied.get(r, c),
                        "k{kernel}s{stride}p{padding} ({r},{c})"
                    );
                }
            }
            // And the engine produces byte-identical outputs from either.
            let filters = Tensor::random(4, 3, kernel, kernel, 80 + stride as u64);
            let b = filters_to_matrix(&filters);
            let eng = GemmEngine::with_default_tiling(GemmShape::new(
                view.rows as u64,
                b.cols as u64,
                b.rows as u64,
            ));
            let from_copy = eng.run(&copied, &b, || NoScheme, None);
            let from_view = eng.run(&view, &b, || NoScheme, None);
            assert_eq!(from_copy.c, from_view.c, "k{kernel}s{stride}p{padding}");
        }
    }

    #[test]
    fn strided_and_padded_windows_agree_with_reference() {
        for (kernel, stride, padding) in [(3, 2, 1), (5, 2, 2), (1, 1, 0), (7, 4, 3)] {
            let input = Tensor::random(1, 2, 13, 11, 40 + kernel as u64);
            let filters = Tensor::random(4, 2, kernel, kernel, 50 + stride as u64);
            let p = params(4, kernel, stride, padding);
            let a = im2col(&input, p);
            let b = filters_to_matrix(&filters);
            let gemm = gemm_reference_f64(&a, &b);
            let direct = conv_reference_f64(&input, &filters, p);
            let (ho, wo) = p.out_dims(13, 11);
            let mut max_err = 0.0f64;
            for row in 0..a.rows {
                for col in 0..4 {
                    let (n, co, oy, ox) = gemm_to_nchw(row, col, ho, wo);
                    let d = direct[((n * 4 + co) * ho + oy) * wo + ox];
                    max_err = max_err.max((d - gemm[row * 4 + col]).abs());
                }
            }
            assert!(max_err < 1e-9, "k{kernel}s{stride}p{padding}: {max_err}");
        }
    }

    #[test]
    fn functional_engine_runs_the_lowered_convolution() {
        // The whole path the paper protects: im2col -> Tensor Core GEMM.
        let input = Tensor::random(1, 3, 12, 12, 7);
        let filters = Tensor::random(16, 3, 3, 3, 8);
        let p = params(16, 3, 1, 1);
        let a = im2col(&input, p);
        let b = filters_to_matrix(&filters);
        let eng = GemmEngine::with_default_tiling(GemmShape::new(
            a.rows as u64,
            b.cols as u64,
            a.cols as u64,
        ));
        let out = eng.run(&a, &b, || NoScheme, None);
        let direct = conv_reference_f64(&input, &filters, p);
        for (i, &d) in direct.iter().enumerate() {
            // NCHW index i maps to (row, col) with n=0: i = (co*ho+oy)*wo+ox.
            let co = i / (12 * 12);
            let spatial = i % (12 * 12);
            let got = out.get(spatial, co) as f64;
            assert!((got - d).abs() < 2e-2, "elem {i}: {got} vs {d}");
        }
    }

    #[test]
    fn im2col_into_reuses_the_buffer_without_stale_data() {
        let p = params(4, 3, 1, 1);
        let big = Tensor::random(2, 3, 9, 9, 61);
        let small = Tensor::random(1, 2, 5, 5, 62);
        let mut ws = Workspace::new();
        im2col_into(&big, p, &mut ws);
        im2col_into(&small, p, &mut ws);
        // The reused buffer must equal a fresh lowering exactly.
        assert_eq!(*ws.lowering_mut(), im2col(&small, p));
    }

    #[test]
    fn gemm_to_nchw_is_a_bijection_on_the_grid() {
        let (ho, wo) = (5, 7);
        let mut seen = std::collections::HashSet::new();
        for row in 0..2 * ho * wo {
            for col in 0..4 {
                let coord = gemm_to_nchw(row, col, ho, wo);
                assert!(seen.insert(coord), "duplicate {coord:?}");
                assert!(coord.0 < 2 && coord.2 < ho && coord.3 < wo);
            }
        }
    }
}
