//! AlexNet (torchvision `alexnet`): five convolutions, adaptive-pooled to
//! 6×6, three-layer classifier.

use crate::layer::NetBuilder;
use crate::model::Model;

/// AlexNet as GEMMs.
pub fn alexnet(batch: u64, h: u64, w: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, h, w);
    b.conv("features.0", 64, 11, 4, 2).pool(3, 2, 0);
    b.conv("features.3", 192, 5, 1, 2).pool(3, 2, 0);
    b.conv("features.6", 384, 3, 1, 1);
    b.conv("features.8", 256, 3, 1, 1);
    b.conv("features.10", 256, 3, 1, 1).pool(3, 2, 0);
    b.adaptive_pool(6, 6);
    b.fc("classifier.1", 4096);
    b.fc("classifier.4", 4096);
    b.fc("classifier.6", 1000);
    b.build("AlexNet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::HD;

    #[test]
    fn imagenet_dims_match_torchvision() {
        let m = alexnet(1, 224, 224);
        // conv1 -> 55x55, conv2 -> 27x27, conv3..5 -> 13x13.
        assert_eq!(m.layers[0].shape.m, 55 * 55);
        assert_eq!(m.layers[1].shape.m, 27 * 27);
        assert_eq!(m.layers[2].shape.m, 13 * 13);
        assert_eq!(m.layers[5].shape.k, 256 * 36);
    }

    #[test]
    fn hd_aggregate_intensity_matches_paper() {
        // Fig. 8: AlexNet @HD has aggregate AI 125.5.
        let ai = alexnet(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 125.5).abs() < 7.0, "got {ai}");
    }
}
