//! SqueezeNet 1.0 (torchvision `squeezenet1_0`): a 7×7 stem, eight Fire
//! modules, and a 1×1 convolutional classifier. Its max pools use
//! ceil-mode extents.

use crate::layer::NetBuilder;
use crate::model::Model;

/// Emits one Fire module: squeeze 1×1, expand 1×1 and expand 3×3 reading
/// the squeezed tensor, outputs concatenated.
fn fire(b: &mut NetBuilder, idx: usize, c_in: u64, squeeze: u64, expand: u64) {
    b.conv_from(format!("fire{idx}.squeeze"), c_in, squeeze, 1, 1, 0);
    b.conv_from(format!("fire{idx}.expand1x1"), squeeze, expand, 1, 1, 0);
    b.conv_from(format!("fire{idx}.expand3x3"), squeeze, expand, 3, 1, 1);
    b.set_channels(2 * expand);
}

/// SqueezeNet 1.0 as GEMMs.
pub fn squeezenet(batch: u64, h: u64, w: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, h, w);
    b.conv("features.0", 96, 7, 2, 0).pool_ceil(3, 2, 0);
    fire(&mut b, 2, 96, 16, 64);
    fire(&mut b, 3, 128, 16, 64);
    fire(&mut b, 4, 128, 32, 128);
    b.pool_ceil(3, 2, 0);
    fire(&mut b, 5, 256, 32, 128);
    fire(&mut b, 6, 256, 48, 192);
    fire(&mut b, 7, 384, 48, 192);
    fire(&mut b, 8, 384, 64, 256);
    b.pool_ceil(3, 2, 0);
    fire(&mut b, 9, 512, 64, 256);
    // The classifier is itself a 1×1 convolution over the feature map.
    b.conv("classifier.1", 1000, 1, 1, 0);
    b.build("SqueezeNet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::HD;

    #[test]
    fn has_26_linear_layers() {
        // 1 stem + 8 fires × 3 + 1 classifier conv.
        let m = squeezenet(1, 224, 224);
        assert_eq!(m.layers.len(), 26);
    }

    #[test]
    fn fire_concat_feeds_next_squeeze() {
        let m = squeezenet(1, 224, 224);
        // fire3.squeeze reads fire2's concatenated 128 channels.
        let f3 = m.layers.iter().find(|l| l.name == "fire3.squeeze").unwrap();
        assert_eq!(f3.shape.k, 128);
    }

    #[test]
    fn hd_aggregate_intensity_matches_paper() {
        // Fig. 8: SqueezeNet @HD has aggregate AI 71.1.
        let ai = squeezenet(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 71.1).abs() < 4.0, "got {ai}");
    }
}
