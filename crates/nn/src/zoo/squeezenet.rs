//! SqueezeNet 1.0 (torchvision `squeezenet1_0`): a 7×7 stem, eight Fire
//! modules, and a 1×1 convolutional classifier. Its max pools use
//! ceil-mode extents.

use crate::graph::{Network, NetworkBuilder, NodeRef};
use crate::layer::NetBuilder;
use crate::model::Model;

/// Emits one Fire module: squeeze 1×1, expand 1×1 and expand 3×3 reading
/// the squeezed tensor, outputs concatenated.
fn fire(b: &mut NetBuilder, idx: usize, c_in: u64, squeeze: u64, expand: u64) {
    b.conv_from(format!("fire{idx}.squeeze"), c_in, squeeze, 1, 1, 0);
    b.conv_from(format!("fire{idx}.expand1x1"), squeeze, expand, 1, 1, 0);
    b.conv_from(format!("fire{idx}.expand3x3"), squeeze, expand, 3, 1, 1);
    b.set_channels(2 * expand);
}

/// SqueezeNet 1.0 as GEMMs.
pub fn squeezenet(batch: u64, h: u64, w: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, h, w);
    b.conv("features.0", 96, 7, 2, 0).pool_ceil(3, 2, 0);
    fire(&mut b, 2, 96, 16, 64);
    fire(&mut b, 3, 128, 16, 64);
    fire(&mut b, 4, 128, 32, 128);
    b.pool_ceil(3, 2, 0);
    fire(&mut b, 5, 256, 32, 128);
    fire(&mut b, 6, 256, 48, 192);
    fire(&mut b, 7, 384, 48, 192);
    fire(&mut b, 8, 384, 64, 256);
    b.pool_ceil(3, 2, 0);
    fire(&mut b, 9, 512, 64, 256);
    // The classifier is itself a 1×1 convolution over the feature map.
    b.conv("classifier.1", 1000, 1, 1, 0);
    b.build("SqueezeNet")
}

/// One executable Fire module: squeeze 1×1 → (expand 1×1 ∥ expand 3×3)
/// → channel concat, every conv ReLU'd.
fn fire_net(b: &mut NetworkBuilder, idx: usize, squeeze: usize, expand: usize) -> NodeRef {
    let s = b.conv(format!("fire{idx}.squeeze"), squeeze, 1, 1, 0, true);
    let e1 = b.conv_on(s, format!("fire{idx}.expand1x1"), expand, 1, 1, 0, true);
    let e3 = b.conv_on(s, format!("fire{idx}.expand3x3"), expand, 3, 1, 1, true);
    b.concat(format!("fire{idx}.concat"), vec![e1, e3])
}

/// *Executable* SqueezeNet 1.0 with real seeded FP16 weights: the same
/// topology as [`squeezenet`] — 7×7 stem, eight Fire modules, 1×1
/// convolutional classifier — plus the torchvision epilogue (ReLU and
/// global average pooling) as executable nodes. Compile it with
/// `aiga-core` to serve it end to end; `h`/`w` scale the input so tests
/// can run trimmed resolutions.
pub fn squeezenet_net(batch: u64, h: u64, w: u64, seed: u64) -> Network {
    let mut b = NetworkBuilder::new(
        "SqueezeNet",
        batch as usize,
        3,
        h as usize,
        w as usize,
        seed,
    );
    b.conv("features.0", 96, 7, 2, 0, true);
    b.max_pool_ceil("features.2", 3, 2, 0);
    fire_net(&mut b, 2, 16, 64);
    fire_net(&mut b, 3, 16, 64);
    fire_net(&mut b, 4, 32, 128);
    b.max_pool_ceil("features.6", 3, 2, 0);
    fire_net(&mut b, 5, 32, 128);
    fire_net(&mut b, 6, 48, 192);
    fire_net(&mut b, 7, 48, 192);
    fire_net(&mut b, 8, 64, 256);
    b.max_pool_ceil("features.11", 3, 2, 0);
    fire_net(&mut b, 9, 64, 256);
    b.conv("classifier.1", 1000, 1, 1, 0, true);
    b.global_avg_pool("classifier.3");
    b.build()
}

/// *Executable* SqueezeNet 1.1 (torchvision `squeezenet1_1`): the 2.4×
/// cheaper revision — a 64-channel 3×3 stride-2 stem replaces the 96-
/// channel 7×7, and the pools move earlier (after the stem, fire3, and
/// fire5) so the wide fires run at smaller spatial extents. Fire widths
/// follow torchvision: (16,64)×2, (32,128)×2, (48,192)×2, (64,256)×2.
/// At 224×224 the stem emits 111×111, and the pools take the map to
/// 55 → 27 → 13 before the 1×1 classifier.
pub fn squeezenet_v11_net(batch: u64, h: u64, w: u64, seed: u64) -> Network {
    let mut b = NetworkBuilder::new(
        "SqueezeNet-1.1",
        batch as usize,
        3,
        h as usize,
        w as usize,
        seed,
    );
    b.conv("features.0", 64, 3, 2, 0, true);
    b.max_pool_ceil("features.2", 3, 2, 0);
    fire_net(&mut b, 2, 16, 64);
    fire_net(&mut b, 3, 16, 64);
    b.max_pool_ceil("features.5", 3, 2, 0);
    fire_net(&mut b, 4, 32, 128);
    fire_net(&mut b, 5, 32, 128);
    b.max_pool_ceil("features.8", 3, 2, 0);
    fire_net(&mut b, 6, 48, 192);
    fire_net(&mut b, 7, 48, 192);
    fire_net(&mut b, 8, 64, 256);
    fire_net(&mut b, 9, 64, 256);
    b.conv("classifier.1", 1000, 1, 1, 0, true);
    b.global_avg_pool("classifier.3");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::HD;

    #[test]
    fn executable_squeezenet_matches_the_analytic_lowering() {
        // The compiled path plans on Network::to_model(); its GEMM
        // shapes must agree with the analytic zoo entry layer by layer.
        let net = squeezenet_net(1, 224, 224, 3);
        let analytic = squeezenet(1, 224, 224);
        let compiled = net.to_model();
        assert_eq!(compiled.layers.len(), analytic.layers.len());
        for (a, b) in compiled.layers.iter().zip(&analytic.layers) {
            assert_eq!(a.shape, b.shape, "{} vs {}", a.name, b.name);
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn squeezenet_v11_shrinks_the_feature_maps_early() {
        let net = squeezenet_v11_net(1, 224, 224, 3);
        // 1 stem + 8 fires × 3 + 1 classifier conv, same as 1.0.
        assert_eq!(net.gemm_count(), 26);
        // Stem: (224 − 3)/2 + 1 = 111; pools (ceil): 55 → 27 → 13.
        assert_eq!(net.nodes[0].out_dims, (64, 111, 111));
        assert_eq!(net.nodes[1].out_dims, (64, 55, 55));
        let pool5 = net.nodes.iter().find(|n| n.name == "features.5").unwrap();
        assert_eq!(pool5.out_dims, (128, 27, 27));
        let pool8 = net.nodes.iter().find(|n| n.name == "features.8").unwrap();
        assert_eq!(pool8.out_dims, (256, 13, 13));
        assert_eq!(net.output_features(), 1000);
        // 1.1's whole point: far fewer FLOPs than 1.0 at the same input.
        let flops_11: u64 = net.to_model().layers.iter().map(|l| l.shape.flops()).sum();
        let flops_10: u64 = squeezenet(1, 224, 224)
            .layers
            .iter()
            .map(|l| l.shape.flops())
            .sum();
        assert!(flops_11 * 2 < flops_10, "1.1 {flops_11} vs 1.0 {flops_10}");
    }

    #[test]
    fn has_26_linear_layers() {
        // 1 stem + 8 fires × 3 + 1 classifier conv.
        let m = squeezenet(1, 224, 224);
        assert_eq!(m.layers.len(), 26);
    }

    #[test]
    fn fire_concat_feeds_next_squeeze() {
        let m = squeezenet(1, 224, 224);
        // fire3.squeeze reads fire2's concatenated 128 channels.
        let f3 = m.layers.iter().find(|l| l.name == "fire3.squeeze").unwrap();
        assert_eq!(f3.shape.k, 128);
    }

    #[test]
    fn hd_aggregate_intensity_matches_paper() {
        // Fig. 8: SqueezeNet @HD has aggregate AI 71.1.
        let ai = squeezenet(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 71.1).abs() < 4.0, "got {ai}");
    }
}
