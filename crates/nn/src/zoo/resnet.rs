//! The ResNet-50 family: ResNet-50, ResNeXt-50 (non-grouped, per the
//! paper's §3.2 footnote 3), and Wide-ResNet-50-2.
//!
//! All three share the same skeleton: a 7×7 stem, four stages of
//! bottleneck blocks ([3, 4, 6, 3] of them), and a 1000-way classifier.
//! They differ only in the bottleneck's inner width: 64/128/256/512 for
//! ResNet-50, doubled for Wide-ResNet-50-2 — and ResNeXt-50-32x4d with
//! its 32 groups of width 4 replaced by a single non-grouped convolution
//! is architecturally identical to the wide variant, which is why the
//! paper reports the same aggregate intensity (220.8) for both.

use crate::graph::{Network, NetworkBuilder};
use crate::layer::{conv_out, LinearLayer, NetBuilder};
use crate::model::Model;

fn bottleneck_resnet(name: &str, batch: u64, h: u64, w: u64, width_mult: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, h, w);
    b.conv("conv1", 64, 7, 2, 3).pool(3, 2, 1);

    let stages: [(u64, u64); 4] = [(3, 64), (4, 128), (6, 256), (3, 512)];
    let mut c_in = 64u64;
    for (si, (blocks, base)) in stages.iter().enumerate() {
        let inner = base * width_mult;
        let c_out = base * 4;
        for bi in 0..*blocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let prefix = format!("layer{}.{}", si + 1, bi);
            let (bh, bw) = {
                let (_, h, w) = b.dims();
                (h, w)
            };
            b.conv_from(format!("{prefix}.conv1"), c_in, inner, 1, 1, 0);
            // torchvision's ResNet v1.5 places the stride on the 3x3.
            b.conv(format!("{prefix}.conv2"), inner, 3, stride, 1);
            b.conv(format!("{prefix}.conv3"), c_out, 1, 1, 0);
            if bi == 0 {
                // Projection shortcut on the block's input dimensions.
                let (ds, dh, dw) = LinearLayer::conv(
                    format!("{prefix}.downsample"),
                    batch,
                    c_in,
                    bh,
                    bw,
                    c_out,
                    1,
                    stride,
                    0,
                );
                debug_assert_eq!(
                    (dh, dw),
                    (conv_out(bh, 1, stride, 0), conv_out(bw, 1, stride, 0))
                );
                b.push_raw(ds);
            }
            c_in = c_out;
        }
    }
    b.global_pool().fc("fc", 1000);
    b.build(name)
}

/// ResNet-50 (torchvision) as GEMMs.
pub fn resnet50(batch: u64, h: u64, w: u64) -> Model {
    bottleneck_resnet("ResNet-50", batch, h, w, 1)
}

/// ResNeXt-50 32×4d with grouped convolutions replaced by non-grouped
/// ones (the paper's own simplification).
pub fn resnext50_nogroup(batch: u64, h: u64, w: u64) -> Model {
    bottleneck_resnet("ResNext-50", batch, h, w, 2)
}

/// Wide-ResNet-50-2.
pub fn wide_resnet50(batch: u64, h: u64, w: u64) -> Model {
    bottleneck_resnet("Wide-ResNet-50", batch, h, w, 2)
}

/// A *trimmed, executable* ResNet bottleneck block with real seeded
/// FP16 weights: the torchvision v1.5 stage-entry shape — 1×1 reduce,
/// strided 3×3, 1×1 expand, projection shortcut on the block input,
/// residual add + ReLU — followed by global average pooling and a
/// 10-way classifier head. Channels are scaled down (16 → 8 → 32) so
/// end-to-end protected execution stays fast at test resolutions;
/// the *structure* is exactly `layer2.0` of [`resnet50`].
pub fn resnet_block_net(batch: u64, h: u64, w: u64, seed: u64) -> Network {
    let (c_in, inner, c_out) = (16, 8, 32);
    let mut b = NetworkBuilder::new(
        "ResNet-block",
        batch as usize,
        c_in,
        h as usize,
        w as usize,
        seed,
    );
    let block_in = b.cursor();
    b.conv("block.conv1", inner, 1, 1, 0, true);
    b.conv("block.conv2", inner, 3, 2, 1, true);
    let main = b.conv("block.conv3", c_out, 1, 1, 0, false);
    let short = b.conv_on(block_in, "block.downsample", c_out, 1, 2, 0, false);
    b.add("block.add", main, short, true);
    b.global_avg_pool("avgpool");
    b.flatten("flatten");
    b.fc("fc", 10, false);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{HD, IMAGENET};

    #[test]
    fn resnet50_has_53_convs_and_one_fc() {
        let m = resnet50(1, IMAGENET.0, IMAGENET.1);
        let convs = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, crate::layer::LayerKind::Conv))
            .count();
        assert_eq!(convs, 53);
        assert_eq!(m.layers.len(), 54);
    }

    #[test]
    fn resnext_and_wide_resnet_have_identical_shapes() {
        // §3.2/Fig. 4: both report aggregate AI 220.8 — de-grouped
        // ResNeXt-50 is architecturally Wide-ResNet-50-2.
        let a = resnext50_nogroup(1, HD.0, HD.1);
        let b = wide_resnet50(1, HD.0, HD.1);
        let sa: Vec<_> = a.layers.iter().map(|l| l.shape).collect();
        let sb: Vec<_> = b.layers.iter().map(|l| l.shape).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn hd_stem_produces_540x960_feature_map() {
        let m = resnet50(1, HD.0, HD.1);
        // conv1: M = 540*960, N = 64, K = 147.
        assert_eq!(m.layers[0].shape.m, 540 * 960);
        assert_eq!(m.layers[0].shape.n, 64);
        assert_eq!(m.layers[0].shape.k, 147);
    }

    #[test]
    fn classifier_is_2048_to_1000() {
        let m = resnet50(2, IMAGENET.0, IMAGENET.1);
        let fc = m.layers.last().unwrap();
        assert_eq!(fc.shape.m, 2);
        assert_eq!(fc.shape.k, 2048);
        assert_eq!(fc.shape.n, 1000);
    }

    #[test]
    fn imagenet_aggregate_intensity_matches_paper() {
        // §3.2: ResNet-50 at 224×224 has aggregate AI ≈ 72.
        let ai = resnet50(1, IMAGENET.0, IMAGENET.1).aggregate_intensity();
        assert!((ai - 72.0).abs() < 4.0, "got {ai}");
    }

    #[test]
    fn hd_aggregate_intensity_matches_paper() {
        // Fig. 8: ResNet-50 at 1080×1920 has aggregate AI 122.0.
        let ai = resnet50(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 122.0).abs() < 6.0, "got {ai}");
    }

    #[test]
    fn wide_variant_hd_intensity_matches_paper() {
        let ai = wide_resnet50(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 220.8).abs() < 11.0, "got {ai}");
    }

    #[test]
    fn layer_intensities_span_the_figure_5_range() {
        // Fig. 5: ResNet-50 @HD layer intensities span roughly 1–511.
        let m = resnet50(1, HD.0, HD.1);
        let (lo, hi) = m.intensity_range();
        assert!(lo < 10.0, "min {lo}");
        assert!(hi > 400.0 && hi < 600.0, "max {hi}");
    }
}
