//! DenseNet-161 (torchvision `densenet161`): growth rate 48, 96-channel
//! stem, dense blocks of [6, 12, 36, 24] layers with bottleneck factor 4,
//! and channel-halving transitions.

use crate::layer::NetBuilder;
use crate::model::Model;

const GROWTH: u64 = 48;
const BN_SIZE: u64 = 4;

/// DenseNet-161 as GEMMs.
pub fn densenet161(batch: u64, h: u64, w: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, h, w);
    b.conv("features.conv0", 96, 7, 2, 3).pool(3, 2, 1);

    let mut channels = 96u64;
    for (bi, layers) in [6u64, 12, 36, 24].iter().enumerate() {
        for li in 0..*layers {
            // Each dense layer reads the concatenation of everything the
            // block has produced so far.
            let c_in = channels + li * GROWTH;
            let bottleneck = BN_SIZE * GROWTH;
            b.conv_from(
                format!("denseblock{}.denselayer{}.conv1", bi + 1, li + 1),
                c_in,
                bottleneck,
                1,
                1,
                0,
            );
            b.conv(
                format!("denseblock{}.denselayer{}.conv2", bi + 1, li + 1),
                GROWTH,
                3,
                1,
                1,
            );
        }
        channels += layers * GROWTH;
        if bi < 3 {
            // Transition: 1×1 conv halving channels, then 2×2 avg pool.
            channels /= 2;
            b.conv_from(
                format!("transition{}.conv", bi + 1),
                channels * 2,
                channels,
                1,
                1,
                0,
            );
            b.pool(2, 2, 0);
        }
    }
    b.set_channels(channels);
    b.global_pool().fc("classifier", 1000);
    b.build("DenseNet-161")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::HD;

    #[test]
    fn layer_count_explains_the_161_name() {
        // 1 stem + 2×(6+12+36+24) dense convs + 3 transitions + 1 fc = 161.
        let m = densenet161(1, 224, 224);
        assert_eq!(m.layers.len(), 161);
    }

    #[test]
    fn final_features_are_2208_channels() {
        let m = densenet161(1, 224, 224);
        let fc = m.layers.last().unwrap();
        // 1056 + 24*48 = 2208.
        assert_eq!(fc.shape.k, 2208);
    }

    #[test]
    fn dense_layers_read_growing_concatenations() {
        let m = densenet161(1, 224, 224);
        let l1 = m
            .layers
            .iter()
            .find(|l| l.name == "denseblock1.denselayer1.conv1")
            .unwrap();
        let l6 = m
            .layers
            .iter()
            .find(|l| l.name == "denseblock1.denselayer6.conv1")
            .unwrap();
        assert_eq!(l1.shape.k, 96);
        assert_eq!(l6.shape.k, 96 + 5 * GROWTH);
    }

    #[test]
    fn hd_aggregate_intensity_matches_paper() {
        // Fig. 8: DenseNet-161 @HD has aggregate AI 79.0.
        let ai = densenet161(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 79.0).abs() < 4.0, "got {ai}");
    }
}
