//! VGG-16 (torchvision `vgg16`): thirteen 3×3 convolutions in five
//! blocks, adaptive-pooled to 7×7, then a three-layer classifier.
//! [`vgg11_net`] is the executable VGG-11 sibling — the shallowest VGG
//! configuration, whose huge fc layers make it the zoo's best stress of
//! the chain (non-branching) compiled path.

use crate::graph::{Network, NetworkBuilder};
use crate::layer::NetBuilder;
use crate::model::Model;

/// VGG-16 as GEMMs.
pub fn vgg16(batch: u64, h: u64, w: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, h, w);
    let blocks: [&[u64]; 5] = [
        &[64, 64],
        &[128, 128],
        &[256, 256, 256],
        &[512, 512, 512],
        &[512, 512, 512],
    ];
    for (bi, widths) in blocks.iter().enumerate() {
        for (ci, &cout) in widths.iter().enumerate() {
            b.conv(format!("features.{}.{}", bi, ci), cout, 3, 1, 1);
        }
        b.pool(2, 2, 0);
    }
    b.adaptive_pool(7, 7);
    b.fc("classifier.0", 4096);
    b.fc("classifier.3", 4096);
    b.fc("classifier.6", 1000);
    b.build("VGG-16")
}

/// *Executable* VGG-11 (torchvision `vgg11`, configuration "A") with
/// real seeded FP16 weights: eight 3×3 stride-1 pad-1 convolutions with
/// a max pool after each of the five blocks, then the three-layer
/// 4096/4096/1000 classifier. torchvision's adaptive average pool to
/// 7×7 is the identity at 224×224 input (the fifth pool already emits
/// 7×7), so it is omitted; at other resolutions the flatten feeds the
/// classifier whatever the last pool produced, which keeps the network
/// executable at the trimmed test resolutions.
pub fn vgg11_net(batch: u64, h: u64, w: u64, seed: u64) -> Network {
    let mut b = NetworkBuilder::new("VGG-11", batch as usize, 3, h as usize, w as usize, seed);
    b.conv("features.0", 64, 3, 1, 1, true);
    b.max_pool("features.2", 2, 2, 0);
    b.conv("features.3", 128, 3, 1, 1, true);
    b.max_pool("features.5", 2, 2, 0);
    b.conv("features.6", 256, 3, 1, 1, true);
    b.conv("features.8", 256, 3, 1, 1, true);
    b.max_pool("features.10", 2, 2, 0);
    b.conv("features.11", 512, 3, 1, 1, true);
    b.conv("features.13", 512, 3, 1, 1, true);
    b.max_pool("features.15", 2, 2, 0);
    b.conv("features.16", 512, 3, 1, 1, true);
    b.conv("features.18", 512, 3, 1, 1, true);
    b.max_pool("features.20", 2, 2, 0);
    b.flatten("flatten");
    b.fc("classifier.0", 4096, true);
    b.fc("classifier.3", 4096, true);
    b.fc("classifier.6", 1000, false);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::HD;

    #[test]
    fn has_thirteen_convs_and_three_fcs() {
        let m = vgg16(1, 224, 224);
        assert_eq!(m.layers.len(), 16);
        assert_eq!(m.layers[13].shape.k, 512 * 49);
        assert_eq!(m.layers[13].shape.n, 4096);
    }

    #[test]
    fn vgg11_matches_the_torchvision_configuration() {
        // Construct at a trimmed resolution — the chain is identical,
        // only spatial extents shrink (224 would allocate the full 123M
        // weight elements, prohibitive for a unit test).
        let net = vgg11_net(1, 32, 32, 7);
        assert_eq!(net.gemm_count(), 11); // 8 convs + 3 fcs
        assert_eq!(net.output_features(), 1000);
        // Five pools halve 32 down to 1: classifier.0 reads 512 · 1 · 1.
        let model = net.to_model();
        assert_eq!(model.layers[8].name, "classifier.0");
        assert_eq!(model.layers[8].shape.k, 512);
        assert_eq!(model.layers[8].shape.n, 4096);
        // Channel progression of configuration "A".
        let widths: Vec<u64> = model.layers[..8].iter().map(|l| l.shape.n).collect();
        assert_eq!(widths, [64, 128, 256, 256, 512, 512, 512, 512]);
    }

    #[test]
    fn first_conv_runs_at_full_resolution() {
        let m = vgg16(1, HD.0, HD.1);
        assert_eq!(m.layers[0].shape.m, 1080 * 1920);
        assert_eq!(m.layers[0].shape.k, 27);
    }

    #[test]
    fn hd_aggregate_intensity_matches_paper() {
        // Fig. 8: VGG-16 @HD has aggregate AI 155.5.
        let ai = vgg16(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 155.5).abs() < 8.0, "got {ai}");
    }
}
