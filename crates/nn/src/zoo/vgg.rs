//! VGG-16 (torchvision `vgg16`): thirteen 3×3 convolutions in five
//! blocks, adaptive-pooled to 7×7, then a three-layer classifier.

use crate::layer::NetBuilder;
use crate::model::Model;

/// VGG-16 as GEMMs.
pub fn vgg16(batch: u64, h: u64, w: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, h, w);
    let blocks: [&[u64]; 5] = [
        &[64, 64],
        &[128, 128],
        &[256, 256, 256],
        &[512, 512, 512],
        &[512, 512, 512],
    ];
    for (bi, widths) in blocks.iter().enumerate() {
        for (ci, &cout) in widths.iter().enumerate() {
            b.conv(format!("features.{}.{}", bi, ci), cout, 3, 1, 1);
        }
        b.pool(2, 2, 0);
    }
    b.adaptive_pool(7, 7);
    b.fc("classifier.0", 4096);
    b.fc("classifier.3", 4096);
    b.fc("classifier.6", 1000);
    b.build("VGG-16")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::HD;

    #[test]
    fn has_thirteen_convs_and_three_fcs() {
        let m = vgg16(1, 224, 224);
        assert_eq!(m.layers.len(), 16);
        assert_eq!(m.layers[13].shape.k, 512 * 49);
        assert_eq!(m.layers[13].shape.n, 4096);
    }

    #[test]
    fn first_conv_runs_at_full_resolution() {
        let m = vgg16(1, HD.0, HD.1);
        assert_eq!(m.layers[0].shape.m, 1080 * 1920);
        assert_eq!(m.layers[0].shape.k, 27);
    }

    #[test]
    fn hd_aggregate_intensity_matches_paper() {
        // Fig. 8: VGG-16 @HD has aggregate AI 155.5.
        let ai = vgg16(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 155.5).abs() < 8.0, "got {ai}");
    }
}
