//! The model zoo: every network the paper evaluates.
//!
//! All CNN constructors take `(batch, height, width)` so the §6.4.1
//! resolution sweep and the batch-size sweeps come for free. Aggregate
//! arithmetic intensities of these reconstructions are validated against
//! the values printed in the paper's figures (see each module's tests and
//! `tests/zoo_intensities.rs`).

mod alexnet;
mod densenet;
mod dlrm;
mod noscope;
mod resnet;
mod shufflenet;
mod squeezenet;
mod vgg;

pub use alexnet::alexnet;
pub use densenet::densenet161;
pub use dlrm::{dlrm_mlp_bottom, dlrm_mlp_top, dlrm_net};
pub use noscope::{amsterdam, coral, roundabout, taipei};
pub use resnet::{resnet50, resnet_block_net, resnext50_nogroup, wide_resnet50};
pub use shufflenet::shufflenet_v2;
pub use squeezenet::{squeezenet, squeezenet_net, squeezenet_v11_net};
pub use vgg::{vgg11_net, vgg16};

use crate::model::Model;

/// HD resolution used for the paper's main CNN results (1080 × 1920).
pub const HD: (u64, u64) = (1080, 1920);
/// ImageNet resolution used in the §6.4.1 sweep (224 × 224).
pub const IMAGENET: (u64, u64) = (224, 224);

/// The eight general-purpose CNNs of Figures 4/8/9, at a given input.
pub fn general_cnns(batch: u64, h: u64, w: u64) -> Vec<Model> {
    vec![
        squeezenet(batch, h, w),
        shufflenet_v2(batch, h, w),
        densenet161(batch, h, w),
        resnet50(batch, h, w),
        alexnet(batch, h, w),
        vgg16(batch, h, w),
        resnext50_nogroup(batch, h, w),
        wide_resnet50(batch, h, w),
    ]
}

/// The four NoScope-style specialized CNNs of Figure 11 (batch 64 in the
/// paper).
pub fn specialized_cnns(batch: u64) -> Vec<Model> {
    vec![
        coral(batch),
        roundabout(batch),
        taipei(batch),
        amsterdam(batch),
    ]
}

/// All fourteen evaluated NNs in Figure 8's order (increasing aggregate
/// arithmetic intensity), with the paper's workload settings: CNNs at HD
/// batch 1, DLRM at batch 1, specialized CNNs at batch 64.
pub fn figure8_models() -> Vec<Model> {
    let (h, w) = HD;
    vec![
        dlrm_mlp_bottom(1),
        dlrm_mlp_top(1),
        coral(64),
        roundabout(64),
        taipei(64),
        amsterdam(64),
        squeezenet(1, h, w),
        shufflenet_v2(1, h, w),
        densenet161(1, h, w),
        resnet50(1, h, w),
        alexnet(1, h, w),
        vgg16(1, h, w),
        resnext50_nogroup(1, h, w),
        wide_resnet50(1, h, w),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_models_are_ordered_by_aggregate_intensity() {
        let models = figure8_models();
        let ais: Vec<f64> = models.iter().map(|m| m.aggregate_intensity()).collect();
        for pair in ais.windows(2) {
            assert!(
                pair[0] <= pair[1] * 1.02, // allow tiny reconstruction slack
                "figure 8 ordering violated: {pair:?}"
            );
        }
    }

    #[test]
    fn all_models_have_nonempty_layer_lists() {
        for m in figure8_models() {
            assert!(!m.layers.is_empty(), "{}", m.name);
            for l in &m.layers {
                assert!(l.shape.flops() > 0);
            }
        }
    }
}
