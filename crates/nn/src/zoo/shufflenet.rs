//! ShuffleNet V2 ×1.0 (torchvision `shufflenet_v2_x1_0`) with its
//! depthwise (grouped) convolutions replaced by ordinary convolutions, as
//! the paper does to ease lowering to GEMMs (§3.2 footnote 3).

use crate::layer::{conv_out, LinearLayer, NetBuilder};
use crate::model::Model;

/// Emits one stride-2 inverted-residual unit (both branches downsample);
/// output has `c_out` channels at half resolution.
fn unit_stride2(b: &mut NetBuilder, name: &str, c_in: u64, c_out: u64) {
    let branch = c_out / 2;
    let (_, h, w) = b.dims();
    let batch = b.batch();
    // Branch 1: (de-grouped) 3×3 s2 on the input, then 1×1.
    let (dw1, h2, w2) = LinearLayer::conv(
        format!("{name}.branch1.dw"),
        batch,
        c_in,
        h,
        w,
        c_in,
        3,
        2,
        1,
    );
    b.push_raw(dw1);
    let (pw1, _, _) = LinearLayer::conv(
        format!("{name}.branch1.pw"),
        batch,
        c_in,
        h2,
        w2,
        branch,
        1,
        1,
        0,
    );
    b.push_raw(pw1);
    // Branch 2: 1×1, (de-grouped) 3×3 s2, 1×1.
    let (pw2a, _, _) = LinearLayer::conv(
        format!("{name}.branch2.pw1"),
        batch,
        c_in,
        h,
        w,
        branch,
        1,
        1,
        0,
    );
    b.push_raw(pw2a);
    let (dw2, _, _) = LinearLayer::conv(
        format!("{name}.branch2.dw"),
        batch,
        branch,
        h,
        w,
        branch,
        3,
        2,
        1,
    );
    b.push_raw(dw2);
    let (pw2b, _, _) = LinearLayer::conv(
        format!("{name}.branch2.pw2"),
        batch,
        branch,
        h2,
        w2,
        branch,
        1,
        1,
        0,
    );
    b.push_raw(pw2b);
    debug_assert_eq!(h2, conv_out(h, 3, 2, 1));
    // Concat of the two halves at the downsampled resolution.
    b.set_channels(c_out);
    b.pool(3, 2, 1); // advance tracked dims to the strided resolution
}

/// Emits one stride-1 unit: half the channels pass through, the other
/// half go through 1×1 → 3×3 → 1×1.
fn unit_stride1(b: &mut NetBuilder, name: &str, c: u64) {
    let half = c / 2;
    b.conv_from(format!("{name}.branch2.pw1"), half, half, 1, 1, 0);
    b.conv(format!("{name}.branch2.dw"), half, 3, 1, 1);
    b.conv(format!("{name}.branch2.pw2"), half, 1, 1, 0);
    b.set_channels(c);
}

/// ShuffleNet V2 ×1.0 as GEMMs.
pub fn shufflenet_v2(batch: u64, h: u64, w: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, h, w);
    b.conv("conv1", 24, 3, 2, 1).pool(3, 2, 1);

    let stages: [(u64, u64); 3] = [(4, 116), (8, 232), (4, 464)];
    let mut c_in = 24u64;
    for (si, (repeats, c_out)) in stages.iter().enumerate() {
        unit_stride2(&mut b, &format!("stage{}.0", si + 2), c_in, *c_out);
        for r in 1..*repeats {
            unit_stride1(&mut b, &format!("stage{}.{r}", si + 2), *c_out);
        }
        c_in = *c_out;
    }
    b.conv("conv5", 1024, 1, 1, 0);
    b.global_pool().fc("fc", 1000);
    b.build("ShuffleNet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::HD;

    #[test]
    fn layer_count_matches_architecture() {
        // conv1 + 3 stages: stride-2 unit = 5 convs, stride-1 = 3 convs:
        // (5+3*3) + (5+7*3) + (5+3*3) = 54; + conv5 + fc = 57.
        let m = shufflenet_v2(1, 224, 224);
        assert_eq!(m.layers.len(), 57);
    }

    #[test]
    fn stride1_units_process_half_the_channels() {
        let m = shufflenet_v2(1, 224, 224);
        let u = m
            .layers
            .iter()
            .find(|l| l.name == "stage2.1.branch2.pw1")
            .unwrap();
        assert_eq!(u.shape.k, 58);
        assert_eq!(u.shape.n, 58);
    }

    #[test]
    fn hd_aggregate_intensity_matches_paper() {
        // Fig. 8: ShuffleNet @HD has aggregate AI 76.6.
        let ai = shufflenet_v2(1, HD.0, HD.1).aggregate_intensity();
        assert!((ai - 76.6).abs() < 4.0, "got {ai}");
    }
}
