//! NoScope-style specialized CNNs (§6.4.3): lightweight binary
//! classifiers placed in front of a large general-purpose CNN for offline
//! video analytics.
//!
//! The paper describes them as having "2–4 convolutional layers, each
//! with 16–64 channels, at most two fully-connected layers", operating
//! over 50×50-pixel regions of video frames at batch size 64, but does
//! not publish the exact per-model configurations. These reconstructions
//! follow that recipe with channel counts tuned so each model's aggregate
//! arithmetic intensity matches the value printed in Figures 8/11
//! (Coral 15.1, Roundabout 37.9, Taipei 51.9, Amsterdam 52.7); see
//! DESIGN.md §5.

use crate::layer::NetBuilder;
use crate::model::Model;

/// Input region side length (pixels).
pub const REGION: u64 = 50;

fn specialized(name: &str, batch: u64, convs: &[(u64, bool)], fc_hidden: u64) -> Model {
    let mut b = NetBuilder::new(batch, 3, REGION, REGION);
    for (i, &(c_out, pool)) in convs.iter().enumerate() {
        b.conv(format!("conv{}", i + 1), c_out, 3, 1, 1);
        if pool {
            b.pool(2, 2, 0);
        }
    }
    b.fc("fc1", fc_hidden);
    b.fc("fc2", 2); // binary query: object present / absent
    b.build(name)
}

/// The "Coral" video query CNN (aggregate AI ≈ 15.1 at batch 64).
pub fn coral(batch: u64) -> Model {
    specialized("Coral", batch, &[(32, true), (16, true)], 32)
}

/// The "Roundabout" video query CNN (aggregate AI ≈ 37.9 at batch 64).
pub fn roundabout(batch: u64) -> Model {
    specialized(
        "Roundabout",
        batch,
        &[(48, true), (64, true), (16, true)],
        64,
    )
}

/// The "Taipei" video query CNN (aggregate AI ≈ 51.9 at batch 64).
pub fn taipei(batch: u64) -> Model {
    specialized("Taipei", batch, &[(48, false), (64, true), (64, true)], 64)
}

/// The "Amsterdam" video query CNN (aggregate AI ≈ 52.7 at batch 64).
pub fn amsterdam(batch: u64) -> Model {
    specialized(
        "Amsterdam",
        batch,
        &[(64, false), (64, true), (64, true)],
        64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_intensities_match_figure_11_labels() {
        for (model, target) in [
            (coral(64), 15.1),
            (roundabout(64), 37.9),
            (taipei(64), 51.9),
            (amsterdam(64), 52.7),
        ] {
            let ai = model.aggregate_intensity();
            assert!(
                (ai - target).abs() / target < 0.08,
                "{}: got {ai}, want {target}",
                model.name
            );
        }
    }

    #[test]
    fn all_respect_the_paper_recipe() {
        for m in [coral(64), roundabout(64), taipei(64), amsterdam(64)] {
            let convs = m
                .layers
                .iter()
                .filter(|l| matches!(l.kind, crate::layer::LayerKind::Conv))
                .count();
            let fcs = m.layers.len() - convs;
            assert!((2..=4).contains(&convs), "{}: {convs} convs", m.name);
            assert!(fcs <= 2, "{}: {fcs} fcs", m.name);
            for l in m.layers.iter().take(convs) {
                assert!(l.shape.n >= 2 && l.shape.n <= 64, "{}", m.name);
            }
        }
    }

    #[test]
    fn intensity_scales_with_batch_through_fc_layers() {
        assert!(coral(1).aggregate_intensity() < coral(64).aggregate_intensity());
    }
}
