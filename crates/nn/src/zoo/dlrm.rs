//! The two MLPs of Facebook's DLRM recommendation model (§6.4.2):
//! MLP-Bottom processes 13 dense features through hidden layers of
//! 512/256/64; MLP-Top consumes the 512-wide interaction vector through
//! 512/256 and produces one output.
//!
//! The paper does not state MLP-Top's input width; 512 reproduces its
//! reported aggregate intensities exactly (7.7 at batch 1, 175.8 at batch
//! 2048 — see tests), so that is what we use (documented in DESIGN.md).

use crate::graph::{Network, NetworkBuilder};
use crate::layer::LinearLayer;
use crate::model::Model;

/// DLRM MLP-Bottom at a given batch size: 13 → 512 → 256 → 64.
pub fn dlrm_mlp_bottom(batch: u64) -> Model {
    Model::new(
        "MLP-Bottom",
        vec![
            LinearLayer::fc("bot.0", batch, 13, 512),
            LinearLayer::fc("bot.1", batch, 512, 256),
            LinearLayer::fc("bot.2", batch, 256, 64),
        ],
    )
}

/// DLRM MLP-Top at a given batch size: 512 → 512 → 256 → 1.
pub fn dlrm_mlp_top(batch: u64) -> Model {
    Model::new(
        "MLP-Top",
        vec![
            LinearLayer::fc("top.0", batch, 512, 512),
            LinearLayer::fc("top.1", batch, 512, 256),
            LinearLayer::fc("top.2", batch, 256, 1),
        ],
    )
}

/// *Executable* end-to-end DLRM: each request row carries 13 dense
/// features followed by `tables` categorical indices (exact integers in
/// fp16, valid up to 2048). The dense half runs through MLP-Bottom
/// (13 → 512 → 256 → `dim`), the indices gather one `dim`-wide row from
/// each embedding table, and the pairwise dot-product interaction of
/// the bottom output with the embeddings feeds MLP-Top (hidden widths
/// 512 → 256 → 1). MLP-Top's first weight matrix sizes to the actual
/// interaction width `dim + (tables+1)·tables/2`, so any table count
/// works; `dim = 64` matches the §6.4.2 MLP-Bottom output.
pub fn dlrm_net(
    batch: u64,
    tables: usize,
    rows_per_table: usize,
    dim: usize,
    seed: u64,
) -> Network {
    let mut b = NetworkBuilder::new("DLRM", batch as usize, 13 + tables, 1, 1, seed);
    let input = b.cursor();
    b.slice("dense", input, 0, 13);
    b.fc("bot.0", 512, true);
    b.fc("bot.1", 256, true);
    let bot = b.fc("bot.2", dim, true);
    let idx = b.slice("sparse", input, 13, tables);
    let emb = b.embedding_bag("emb", idx, rows_per_table, dim);
    b.interact("interact", vec![bot, emb]);
    b.fc("top.0", 512, true);
    b.fc("top.1", 256, true);
    b.fc("top.2", 1, false);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_net_wires_the_interaction_width_into_mlp_top() {
        let net = dlrm_net(4, 7, 100, 64, 11);
        assert_eq!(net.gemm_count(), 6);
        assert_eq!(net.input_features(), 13 + 7);
        assert_eq!(net.output_features(), 1);
        // 8 vectors of 64 (bottom + 7 embeddings): 64 + 8·7/2 = 92.
        let model = net.to_model();
        let top0 = model.layers.iter().find(|l| l.name == "top.0").unwrap();
        assert_eq!(top0.shape.k, 92);
        assert_eq!(top0.shape.n, 512);
    }

    #[test]
    fn batch_1_intensities_match_figure_8() {
        // Fig. 8 labels: MLP-Bottom (7.4), MLP-Top (7.7).
        let bot = dlrm_mlp_bottom(1).aggregate_intensity();
        let top = dlrm_mlp_top(1).aggregate_intensity();
        assert!((bot - 7.4).abs() < 0.1, "bottom {bot}");
        assert!((top - 7.7).abs() < 0.1, "top {top}");
    }

    #[test]
    fn batch_2048_intensities_match_figure_10() {
        // Fig. 10 labels: MLP-Bottom @2048 (92.0), MLP-Top @2048 (175.8).
        let bot = dlrm_mlp_bottom(2048).aggregate_intensity();
        let top = dlrm_mlp_top(2048).aggregate_intensity();
        assert!((bot - 92.0).abs() < 1.0, "bottom {bot}");
        assert!((top - 175.8).abs() < 1.0, "top {top}");
    }

    #[test]
    fn batch_256_intensities_match_section_3_2() {
        // §3.2: "aggregate arithmetic intensities of the NNs used in DLRM
        // increase from 7 at batch size of 1 to 70–109 at batch size 256".
        let bot = dlrm_mlp_bottom(256).aggregate_intensity();
        let top = dlrm_mlp_top(256).aggregate_intensity();
        assert!((bot - 70.0).abs() < 2.0, "bottom {bot}");
        assert!((top - 109.0).abs() < 2.5, "top {top}");
    }

    #[test]
    fn intensity_grows_monotonically_with_batch() {
        // Batches 1 and 8 pad to the same M = 8, so start at 8.
        assert_eq!(
            dlrm_mlp_bottom(1).aggregate_intensity(),
            dlrm_mlp_bottom(8).aggregate_intensity()
        );
        let mut prev = 0.0;
        for batch in [8u64, 64, 256, 1024, 2048] {
            let ai = dlrm_mlp_bottom(batch).aggregate_intensity();
            assert!(ai > prev, "batch {batch}");
            prev = ai;
        }
    }
}
