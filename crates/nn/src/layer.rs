//! Linear layers and their lowering to GEMM problem shapes.

use aiga_gpu::GemmShape;

/// What kind of linear layer a GEMM came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerKind {
    /// A convolution lowered by implicit GEMM.
    Conv,
    /// A fully-connected (dense / MLP) layer.
    FullyConnected,
}

/// One linear layer of a network, lowered to its GEMM shape.
#[derive(Clone, Debug)]
pub struct LinearLayer {
    /// Human-readable name (e.g. `"layer2.0.conv1"`).
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// The lowered (unpadded) GEMM shape.
    pub shape: GemmShape,
}

impl LinearLayer {
    /// Lowers a convolution to its implicit-GEMM shape and output spatial
    /// dimensions. Returns `(layer, h_out, w_out)`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: impl Into<String>,
        batch: u64,
        c_in: u64,
        h: u64,
        w: u64,
        c_out: u64,
        kernel: u64,
        stride: u64,
        padding: u64,
    ) -> (Self, u64, u64) {
        let h_out = conv_out(h, kernel, stride, padding);
        let w_out = conv_out(w, kernel, stride, padding);
        let layer = LinearLayer {
            name: name.into(),
            kind: LayerKind::Conv,
            shape: GemmShape::new(batch * h_out * w_out, c_out, c_in * kernel * kernel),
        };
        (layer, h_out, w_out)
    }

    /// Lowers a fully-connected layer.
    pub fn fc(name: impl Into<String>, batch: u64, in_features: u64, out_features: u64) -> Self {
        LinearLayer {
            name: name.into(),
            kind: LayerKind::FullyConnected,
            shape: GemmShape::new(batch, out_features, in_features),
        }
    }

    /// FP16 arithmetic intensity of this layer on its padded shape.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.shape.arithmetic_intensity_fp16()
    }
}

/// Spatial output extent of a convolution/pooling window (floor mode, as
/// torchvision's defaults).
pub fn conv_out(input: u64, kernel: u64, stride: u64, padding: u64) -> u64 {
    assert!(
        input + 2 * padding >= kernel,
        "window larger than padded input"
    );
    (input + 2 * padding - kernel) / stride + 1
}

/// Incrementally builds a feed-forward CNN, tracking spatial dimensions
/// through convolutions and pooling so each conv lowers to the right GEMM.
#[derive(Clone, Debug)]
pub struct NetBuilder {
    batch: u64,
    channels: u64,
    h: u64,
    w: u64,
    layers: Vec<LinearLayer>,
}

impl NetBuilder {
    /// Starts a network on `batch` inputs of `channels × h × w`.
    pub fn new(batch: u64, channels: u64, h: u64, w: u64) -> Self {
        NetBuilder {
            batch,
            channels,
            h,
            w,
            layers: Vec::new(),
        }
    }

    /// Current `(channels, h, w)` feature-map dimensions.
    pub fn dims(&self) -> (u64, u64, u64) {
        (self.channels, self.h, self.w)
    }

    /// Batch size the network was built for.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Appends a square convolution and updates the feature-map dims.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        c_out: u64,
        kernel: u64,
        stride: u64,
        padding: u64,
    ) -> &mut Self {
        let (layer, h, w) = LinearLayer::conv(
            name,
            self.batch,
            self.channels,
            self.h,
            self.w,
            c_out,
            kernel,
            stride,
            padding,
        );
        self.layers.push(layer);
        self.channels = c_out;
        self.h = h;
        self.w = w;
        self
    }

    /// Appends a convolution that consumes an explicit input channel
    /// count (for concatenation/split topologies like DenseNet and
    /// ShuffleNet, where the tensor fed to a conv is not simply the
    /// previous conv's output).
    #[allow(clippy::too_many_arguments)]
    pub fn conv_from(
        &mut self,
        name: impl Into<String>,
        c_in: u64,
        c_out: u64,
        kernel: u64,
        stride: u64,
        padding: u64,
    ) -> &mut Self {
        let (layer, h, w) = LinearLayer::conv(
            name, self.batch, c_in, self.h, self.w, c_out, kernel, stride, padding,
        );
        self.layers.push(layer);
        self.channels = c_out;
        self.h = h;
        self.w = w;
        self
    }

    /// Overrides the tracked channel count without emitting a layer
    /// (models concatenations and channel splits).
    pub fn set_channels(&mut self, channels: u64) -> &mut Self {
        self.channels = channels;
        self
    }

    /// Max/avg pooling: updates spatial dims, emits no GEMM.
    pub fn pool(&mut self, kernel: u64, stride: u64, padding: u64) -> &mut Self {
        self.h = conv_out(self.h, kernel, stride, padding);
        self.w = conv_out(self.w, kernel, stride, padding);
        self
    }

    /// Pooling with ceil-mode output extent (SqueezeNet's max pools).
    /// Follows torchvision: a last window starting inside the right
    /// padding is dropped.
    pub fn pool_ceil(&mut self, kernel: u64, stride: u64, padding: u64) -> &mut Self {
        let ceil = |input: u64| {
            let mut out = (input + 2 * padding - kernel).div_ceil(stride) + 1;
            if (out - 1) * stride >= input + padding {
                out -= 1;
            }
            out
        };
        self.h = ceil(self.h);
        self.w = ceil(self.w);
        self
    }

    /// Appends an externally-constructed layer without touching the
    /// tracked dims (residual downsamples, parallel branches).
    pub fn push_raw(&mut self, layer: LinearLayer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Adaptive average pooling to a fixed spatial size (torchvision
    /// classifier heads), emits no GEMM.
    pub fn adaptive_pool(&mut self, h: u64, w: u64) -> &mut Self {
        self.h = h;
        self.w = w;
        self
    }

    /// Global average pooling to 1×1.
    pub fn global_pool(&mut self) -> &mut Self {
        self.adaptive_pool(1, 1)
    }

    /// Fully-connected layer consuming the flattened feature map.
    pub fn fc(&mut self, name: impl Into<String>, out_features: u64) -> &mut Self {
        let in_features = self.channels * self.h * self.w;
        self.layers
            .push(LinearLayer::fc(name, self.batch, in_features, out_features));
        self.channels = out_features;
        self.h = 1;
        self.w = 1;
        self
    }

    /// Finishes the network.
    pub fn build(self, name: impl Into<String>) -> crate::model::Model {
        crate::model::Model::new(name, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_extent_matches_floor_formula() {
        // ResNet-50 conv1 on 1080x1920: 7x7 stride 2 pad 3 -> 540x960.
        assert_eq!(conv_out(1080, 7, 2, 3), 540);
        assert_eq!(conv_out(1920, 7, 2, 3), 960);
        // AlexNet conv1: 11x11 stride 4 pad 2 on 224 -> 55.
        assert_eq!(conv_out(224, 11, 4, 2), 55);
        // Pooling with floor: 3x3 stride 2 on 55 -> 27.
        assert_eq!(conv_out(55, 3, 2, 0), 27);
    }

    #[test]
    fn conv_lowering_produces_implicit_gemm_dims() {
        let (layer, ho, wo) = LinearLayer::conv("c", 2, 3, 224, 224, 64, 7, 2, 3);
        assert_eq!((ho, wo), (112, 112));
        assert_eq!(layer.shape, GemmShape::new(2 * 112 * 112, 64, 3 * 49));
        assert_eq!(layer.kind, LayerKind::Conv);
    }

    #[test]
    fn fc_lowering_is_batch_by_features() {
        let layer = LinearLayer::fc("fc", 32, 2048, 1000);
        assert_eq!(layer.shape, GemmShape::new(32, 1000, 2048));
        assert_eq!(layer.kind, LayerKind::FullyConnected);
    }

    #[test]
    fn builder_threads_dims_through_a_small_net() {
        let mut b = NetBuilder::new(1, 3, 32, 32);
        b.conv("c1", 16, 3, 1, 1)
            .pool(2, 2, 0)
            .conv("c2", 32, 3, 1, 1);
        assert_eq!(b.dims(), (32, 16, 16));
        b.global_pool().fc("fc", 10);
        let model = b.build("tiny");
        assert_eq!(model.layers.len(), 3);
        assert_eq!(model.layers[1].shape, GemmShape::new(256, 32, 144));
        assert_eq!(model.layers[2].shape, GemmShape::new(1, 10, 32));
    }

    #[test]
    fn conv_from_supports_concatenated_inputs() {
        let mut b = NetBuilder::new(1, 64, 56, 56);
        // A DenseNet-style layer reads 256 concatenated channels even
        // though the previous conv produced 64.
        b.conv_from("dense", 256, 48, 3, 1, 1);
        let model = b.build("concat");
        assert_eq!(model.layers[0].shape.k, 256 * 9);
    }

    #[test]
    #[should_panic(expected = "window larger")]
    fn oversized_window_is_rejected() {
        conv_out(2, 7, 1, 1);
    }
}
