//! Property-based tests on the performance-model invariants of the GPU
//! substrate.

use aiga_gpu::timing::{estimate, Calibration, KernelProfile};
use aiga_gpu::traffic::gemm_dram_bytes;
use aiga_gpu::{DeviceSpec, GemmShape, Roofline, TilingConfig};
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = GemmShape> {
    (1u64..=4096, 1u64..=4096, 1u64..=4096).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

fn devices() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(DeviceSpec::t4()),
        Just(DeviceSpec::p4()),
        Just(DeviceSpec::v100()),
        Just(DeviceSpec::a100()),
    ]
}

proptest! {
    /// Arithmetic intensity is invariant under padding (it is defined on
    /// the padded shape) and bounded by min(M,N,K)-ish harmonic limits.
    #[test]
    fn intensity_is_well_behaved(shape in shapes()) {
        let ai = shape.arithmetic_intensity_fp16();
        prop_assert!(ai > 0.0 && ai.is_finite());
        let p = shape.padded_to_mma();
        prop_assert_eq!(ai, p.arithmetic_intensity_fp16());
        // AI = MNK/(MK+KN+MN) <= min(M,N,K) on padded dims.
        let cap = p.m.min(p.n).min(p.k) as f64;
        prop_assert!(ai <= cap + 1e-9);
    }

    /// Padding never shrinks a dimension and adds at most 7.
    #[test]
    fn padding_is_tight(shape in shapes()) {
        let p = shape.padded_to_mma();
        for (orig, padded) in [(shape.m, p.m), (shape.n, p.n), (shape.k, p.k)] {
            prop_assert!(padded >= orig && padded - orig < 8);
            prop_assert!(padded.is_multiple_of(8));
        }
    }

    /// Any selected tiling fully covers the padded problem, and its grid
    /// never over-covers by more than one block tile per dimension.
    #[test]
    fn selected_tiling_covers_the_problem(shape in shapes(), dev in devices()) {
        let t = TilingConfig::select(shape, &dev);
        let p = shape.padded_to_mma();
        let (gm, gn) = t.grid(p);
        prop_assert!(gm * t.block_m >= p.m);
        prop_assert!(gn * t.block_n >= p.n);
        prop_assert!((gm - 1) * t.block_m < p.m);
        prop_assert!((gn - 1) * t.block_n < p.n);
    }

    /// DRAM traffic is at least the compulsory minimum and at most the
    /// documented 2x reuse cap plus the store.
    #[test]
    fn traffic_is_bounded(shape in shapes(), dev in devices()) {
        let t = TilingConfig::select(shape, &dev);
        let bytes = gemm_dram_bytes(shape, &t, &dev);
        let p = shape.padded_to_mma();
        let min = p.min_bytes_fp16() as f64;
        prop_assert!(bytes >= min * 0.999, "{bytes} < {min}");
        prop_assert!(bytes <= min * 2.0 + 1.0, "{bytes} > 2x{min}");
    }

    /// Estimated time is positive, finite, and at least the launch
    /// overhead plus the pure roofline lower bound.
    #[test]
    fn time_respects_the_roofline_lower_bound(shape in shapes(), dev in devices()) {
        let calib = Calibration::default();
        let profile = KernelProfile::baseline(shape, &dev, &calib);
        let e = estimate(&profile, &dev, &calib);
        prop_assert!(e.total_s.is_finite() && e.total_s > 0.0);
        let p = shape.padded_to_mma();
        let roofline_floor = (p.flops() as f64 / dev.tensor_flops)
            .max(p.min_bytes_fp16() as f64 / dev.mem_bw);
        prop_assert!(e.total_s + 1e-12 >= roofline_floor + calib.launch_s,
            "{} < {}", e.total_s, roofline_floor + calib.launch_s);
    }

    /// Growing any dimension never makes the kernel faster.
    #[test]
    fn time_is_monotone_in_each_dimension(
        m in 8u64..1024, n in 8u64..1024, k in 8u64..1024, dev in devices()
    ) {
        let calib = Calibration::default();
        let time = |s: GemmShape| {
            estimate(&KernelProfile::baseline(s, &dev, &calib), &dev, &calib).total_s
        };
        let base = time(GemmShape::new(m, n, k));
        prop_assert!(time(GemmShape::new(2 * m, n, k)) >= base * 0.999);
        prop_assert!(time(GemmShape::new(m, 2 * n, k)) >= base * 0.999);
        prop_assert!(time(GemmShape::new(m, n, 2 * k)) >= base * 0.999);
    }

    /// Roofline classification agrees with attainable-FLOPs saturation.
    #[test]
    fn classification_is_consistent_with_attainable(ai in 0.1f64..2000.0, dev in devices()) {
        let r = Roofline::new(dev);
        let attainable = r.attainable_flops(ai);
        match r.classify_intensity(ai) {
            aiga_gpu::Bound::Compute => prop_assert!(attainable >= r.device().tensor_flops * 0.999),
            aiga_gpu::Bound::MemoryBandwidth => {
                prop_assert!(attainable <= r.device().tensor_flops * 1.001)
            }
        }
    }
}
