//! Randomized property tests on the performance-model invariants of the
//! GPU substrate (seeded deterministic case loops; no external crates).

use aiga_gpu::timing::{estimate, Calibration, KernelProfile};
use aiga_gpu::traffic::gemm_dram_bytes;
use aiga_gpu::{DeviceSpec, GemmShape, Roofline, TilingConfig};
use aiga_util::Rng64;

fn random_shape(rng: &mut Rng64) -> GemmShape {
    GemmShape::new(
        rng.range_u64(1, 4097),
        rng.range_u64(1, 4097),
        rng.range_u64(1, 4097),
    )
}

fn random_device(rng: &mut Rng64) -> DeviceSpec {
    match rng.range_usize(0, 4) {
        0 => DeviceSpec::t4(),
        1 => DeviceSpec::p4(),
        2 => DeviceSpec::v100(),
        _ => DeviceSpec::a100(),
    }
}

/// Arithmetic intensity is invariant under padding (it is defined on the
/// padded shape) and bounded by min(M,N,K)-ish harmonic limits.
#[test]
fn intensity_is_well_behaved() {
    let mut rng = Rng64::seed_from_u64(0x6B0_0001);
    for _ in 0..500 {
        let shape = random_shape(&mut rng);
        let ai = shape.arithmetic_intensity_fp16();
        assert!(ai > 0.0 && ai.is_finite());
        let p = shape.padded_to_mma();
        assert_eq!(ai, p.arithmetic_intensity_fp16());
        // AI = MNK/(MK+KN+MN) <= min(M,N,K) on padded dims.
        let cap = p.m.min(p.n).min(p.k) as f64;
        assert!(ai <= cap + 1e-9);
    }
}

/// Padding never shrinks a dimension and adds at most 7.
#[test]
fn padding_is_tight() {
    let mut rng = Rng64::seed_from_u64(0x6B0_0002);
    for _ in 0..500 {
        let shape = random_shape(&mut rng);
        let p = shape.padded_to_mma();
        for (orig, padded) in [(shape.m, p.m), (shape.n, p.n), (shape.k, p.k)] {
            assert!(padded >= orig && padded - orig < 8);
            assert!(padded.is_multiple_of(8));
        }
    }
}

/// Any selected tiling fully covers the padded problem, and its grid
/// never over-covers by more than one block tile per dimension.
#[test]
fn selected_tiling_covers_the_problem() {
    let mut rng = Rng64::seed_from_u64(0x6B0_0003);
    for _ in 0..300 {
        let shape = random_shape(&mut rng);
        let dev = random_device(&mut rng);
        let t = TilingConfig::select(shape, &dev);
        let p = shape.padded_to_mma();
        let (gm, gn) = t.grid(p);
        assert!(gm * t.block_m >= p.m);
        assert!(gn * t.block_n >= p.n);
        assert!((gm - 1) * t.block_m < p.m);
        assert!((gn - 1) * t.block_n < p.n);
    }
}

/// DRAM traffic is at least the compulsory minimum and at most the
/// documented 2x reuse cap plus the store.
#[test]
fn traffic_is_bounded() {
    let mut rng = Rng64::seed_from_u64(0x6B0_0004);
    for _ in 0..300 {
        let shape = random_shape(&mut rng);
        let dev = random_device(&mut rng);
        let t = TilingConfig::select(shape, &dev);
        let bytes = gemm_dram_bytes(shape, &t, &dev);
        let p = shape.padded_to_mma();
        let min = p.min_bytes_fp16() as f64;
        assert!(bytes >= min * 0.999, "{bytes} < {min}");
        assert!(bytes <= min * 2.0 + 1.0, "{bytes} > 2x{min}");
    }
}

/// Estimated time is positive, finite, and at least the launch overhead
/// plus the pure roofline lower bound.
#[test]
fn time_respects_the_roofline_lower_bound() {
    let mut rng = Rng64::seed_from_u64(0x6B0_0005);
    let calib = Calibration::default();
    for _ in 0..300 {
        let shape = random_shape(&mut rng);
        let dev = random_device(&mut rng);
        let profile = KernelProfile::baseline(shape, &dev, &calib);
        let e = estimate(&profile, &dev, &calib);
        assert!(e.total_s.is_finite() && e.total_s > 0.0);
        let p = shape.padded_to_mma();
        let roofline_floor =
            (p.flops() as f64 / dev.tensor_flops).max(p.min_bytes_fp16() as f64 / dev.mem_bw);
        assert!(
            e.total_s + 1e-12 >= roofline_floor + calib.launch_s,
            "{} < {}",
            e.total_s,
            roofline_floor + calib.launch_s
        );
    }
}

/// Growing any dimension never makes the kernel faster.
#[test]
fn time_is_monotone_in_each_dimension() {
    let mut rng = Rng64::seed_from_u64(0x6B0_0006);
    let calib = Calibration::default();
    for _ in 0..200 {
        let (m, n, k) = (
            rng.range_u64(8, 1024),
            rng.range_u64(8, 1024),
            rng.range_u64(8, 1024),
        );
        let dev = random_device(&mut rng);
        let time = |s: GemmShape| {
            estimate(&KernelProfile::baseline(s, &dev, &calib), &dev, &calib).total_s
        };
        let base = time(GemmShape::new(m, n, k));
        assert!(time(GemmShape::new(2 * m, n, k)) >= base * 0.999);
        assert!(time(GemmShape::new(m, 2 * n, k)) >= base * 0.999);
        assert!(time(GemmShape::new(m, n, 2 * k)) >= base * 0.999);
    }
}

/// Roofline classification agrees with attainable-FLOPs saturation.
#[test]
fn classification_is_consistent_with_attainable() {
    let mut rng = Rng64::seed_from_u64(0x6B0_0007);
    for _ in 0..500 {
        let ai = rng.range_f64(0.1, 2000.0);
        let r = Roofline::new(random_device(&mut rng));
        let attainable = r.attainable_flops(ai);
        match r.classify_intensity(ai) {
            aiga_gpu::Bound::Compute => {
                assert!(attainable >= r.device().tensor_flops * 0.999)
            }
            aiga_gpu::Bound::MemoryBandwidth => {
                assert!(attainable <= r.device().tensor_flops * 1.001)
            }
        }
    }
}
