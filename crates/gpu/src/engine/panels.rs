//! Operand staging and the reusable [`Workspace`].
//!
//! [`Panels`] holds the per-run operand form the engine executes from:
//! pre-decoded f32 panels (B transposed so a thread's K-walk streams
//! both operands linearly) plus the raw padded FP16 panels, staged only
//! when a scheme consumes per-step fragments.
//!
//! [`Workspace`] owns *all* per-run scratch — panels, the per-block
//! accumulator tile, per-thread chunk buffers, the output buffer, and
//! staging space the layers above lend out (pipeline activations,
//! scheme-check scratch). Callers that hold a workspace across runs get
//! a steady state in which the whole execution path performs **zero
//! heap allocations**: every buffer is resized in place and capacities
//! only ratchet up to the high-water mark of the shapes served.

use super::fault_inject::{Detection, FaultKind};
use super::matrix::Matrix;
use super::scheme::ThreadCtx;
use super::{simd, EngineCounters, GemmOutput};
use crate::tiling::TilingConfig;
use aiga_dtype::Dtype;

/// Operand panels staged once per engine run.
#[derive(Clone, Debug, Default)]
pub(crate) struct Panels {
    /// Raw padded FP16 A panel (`cov_m × k`), staged only when a scheme
    /// consumes K-step fragments.
    pub(crate) a16: Matrix,
    /// Raw padded FP16 B panel, ditto — stored transposed (`cov_n × k`
    /// row-major, like `b_f32_t`) so each thread's K-step replay streams
    /// it linearly instead of striding a full row width per step.
    pub(crate) b16_t: Matrix,
    /// Whether the raw FP16 panels above are staged for this run.
    pub(crate) staged16: bool,
    /// Padded A decoded to f32, `cov_m × k` row-major.
    pub(crate) a_f32: Vec<f32>,
    /// Padded B decoded to f32 and transposed, `cov_n × k` row-major
    /// (one output column's K-walk is contiguous).
    pub(crate) b_f32_t: Vec<f32>,
    /// A re-packed into `MICRO_MR`-row strips for the SIMD microkernel
    /// (see [`simd::pack_a`]); empty when the scalar path is active.
    pub(crate) a_pack: Vec<f32>,
    /// B re-packed into `MICRO_PANEL`-wide K-major panels
    /// (see [`simd::pack_b`]); empty when the scalar path is active.
    pub(crate) b_pack: Vec<f32>,
    /// Shared inner dimension (the engine's padded K).
    pub(crate) k: usize,
    /// Storage format of the staged operands (both must agree); K-step
    /// fragments replayed to schemes carry this tag.
    pub(crate) dtype: Dtype,
}

impl Panels {
    /// Stages `a`/`b` for one run, reusing this instance's buffers.
    /// FP16 → f32 is exact, so every downstream product and
    /// accumulation is bit-identical to decoding inside the K-loop.
    /// `pack` additionally stages the microkernel pack layouts (skipped
    /// on the scalar path, which reads the decoded panels directly).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn stage(
        &mut self,
        a: &Matrix,
        b: &Matrix,
        needs16: bool,
        pack: bool,
        cov_m: usize,
        cov_n: usize,
        k: usize,
    ) {
        assert_eq!(a.dtype, b.dtype, "GEMM operands must share one dtype");
        self.dtype = a.dtype;
        self.staged16 = needs16;
        if needs16 {
            a.copy_padded_into(cov_m, k, &mut self.a16);
            b.copy_padded_transposed_into(k, cov_n, &mut self.b16_t);
        }
        a.decode_padded_into(cov_m, k, &mut self.a_f32);
        b.decode_padded_transposed_into(k, cov_n, &mut self.b_f32_t);
        if pack {
            simd::pack_a(&self.a_f32, cov_m, k, &mut self.a_pack);
            simd::pack_b(&self.b_f32_t, cov_n, k, &mut self.b_pack);
        }
        self.k = k;
    }
}

/// Per-block execution scratch: the accumulator tile plus every
/// loop-carried buffer of the simulated thread loop. One instance is
/// reused by every thread of every block — the thread loop itself
/// allocates nothing.
#[derive(Clone, Debug, Default)]
pub(crate) struct BlockScratch {
    /// `block_m × block_n` FP32 accumulator tile.
    pub(crate) tile: Vec<f32>,
    /// The thread's `Mt × Nt` FP32 accumulators.
    pub(crate) acc: Vec<f32>,
    /// `(accumulator index, after_step, kind)` of faults aimed at the
    /// current thread.
    pub(crate) fault_targets: Vec<(usize, u64, FaultKind)>,
    /// Reused thread identity (rows/cols vectors keep their capacity).
    pub(crate) ctx: ThreadCtx,
}

impl BlockScratch {
    /// Sizes every buffer for one run under `tiling`. Shrinks never
    /// release capacity, so repeated runs at the same tiling do not
    /// allocate.
    pub(crate) fn prepare(&mut self, tiling: &TilingConfig) {
        let mt = tiling.thread_mt() as usize;
        let nt = tiling.thread_nt() as usize;
        let tile_len = (tiling.block_m * tiling.block_n) as usize;
        self.tile.clear();
        self.tile.resize(tile_len, 0.0);
        self.acc.clear();
        self.acc.resize(mt * nt, 0.0);
        self.fault_targets.clear();
        self.ctx.rows.clear();
        self.ctx.rows.reserve(mt);
        self.ctx.cols.clear();
        self.ctx.cols.reserve(nt);
    }
}

/// Per-stripe scratch for the block-parallel workspace path: one worker
/// thread executes a contiguous range of block-row stripes from its own
/// instance, so workers share nothing but the read-only panels. The
/// pool these live in ([`Workspace::stripe_pool`]) ratchets like every
/// other workspace buffer.
#[derive(Clone, Debug, Default)]
pub(crate) struct StripeScratch {
    /// The worker's private block-execution scratch.
    pub(crate) block: BlockScratch,
    /// Detections flagged by this worker's stripes, in stripe order
    /// (drained into the output after the join, preserving the global
    /// `(block, warp, lane)` order).
    pub(crate) detections: Vec<Detection>,
    /// This worker's counter contribution.
    pub(crate) counters: EngineCounters,
}

/// Reusable scratch for kernel-level checksum verification (global
/// ABFT's activation checksum and friends). The engine itself never
/// touches these; they are owned here so one [`Workspace`] covers the
/// whole protected-execution path and `aiga-core`'s bound kernels can
/// verify without allocating.
#[derive(Clone, Debug, Default)]
pub struct CheckScratch {
    /// FP32 checksum accumulator (e.g. per-column activation checksums).
    pub chk: Vec<f32>,
    /// FP64 magnitude accumulator for the error bound.
    pub abs: Vec<f64>,
    /// FP32 gather buffer (e.g. one column staged for a pairwise sum).
    pub col: Vec<f32>,
}

/// All per-run scratch of the protected execution path, owned in one
/// place and reused across runs.
///
/// The execution contract is workspace-threaded at every layer:
/// [`crate::engine::GemmEngine::run_multi_into`] stages panels and
/// writes its output here; `aiga-core`'s `BoundKernel::run_into`,
/// `ProtectedPipeline::infer_into`, and `Session::serve` (via a
/// checkout pool) all reuse one workspace so the steady-state hot path
/// performs zero heap allocations. A fresh workspace warms up in one
/// run; mixed shapes ratchet each buffer to its high-water mark.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    pub(crate) panels: Panels,
    pub(crate) block: BlockScratch,
    pub(crate) out: GemmOutput,
    /// Activation staging for pipeline layers (padding + ReLU results).
    pub(crate) act: Matrix,
    /// Checksum-verification scratch lent to bound kernels.
    pub(crate) check: CheckScratch,
    /// Staging for convolution lowering (the im2col activation matrix).
    pub(crate) lowering: Matrix,
    /// Per-stage value slots lent to graph executors (compiled models
    /// park every stage's output here). The vector length and each
    /// slot's capacity only ratchet up, so steady-state graph execution
    /// allocates nothing.
    pub(crate) slots: Vec<Matrix>,
    /// Per-worker scratch for the block-parallel engine path (empty
    /// until a run actually fans out; ratchets to the worker high-water
    /// mark afterwards).
    pub(crate) stripe_pool: Vec<StripeScratch>,
    /// Per-branch child workspaces for branch-parallel graph execution:
    /// a pipeline level whose stages run concurrently gives each branch
    /// its own engine scratch here while every branch reads the shared
    /// value [`Self::slots`]. Empty until a request actually fans out;
    /// ratchets to the branch high-water mark afterwards.
    branch_pool: Vec<Workspace>,
}

impl Workspace {
    /// A fresh (cold) workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The output of the most recent engine run through this workspace.
    pub fn output(&self) -> &GemmOutput {
        &self.out
    }

    /// Mutable access to the most recent output. The correction path
    /// uses this to clear detections it has resolved by targeted
    /// recompute (the buffer keeps its capacity — no allocation).
    pub fn output_mut(&mut self) -> &mut GemmOutput {
        &mut self.out
    }

    /// Moves the most recent output out of the workspace (the buffer is
    /// replaced by an empty one, so the next run re-warms it). Used by
    /// the allocating convenience wrappers.
    pub fn take_output(&mut self) -> GemmOutput {
        std::mem::take(&mut self.out)
    }

    /// Split borrow for verification: the engine output together with
    /// the checksum scratch, so a bound kernel can verify the run it
    /// just executed without cloning either.
    pub fn output_and_check(&mut self) -> (&GemmOutput, &mut CheckScratch) {
        (&self.out, &mut self.check)
    }

    /// The activation staging matrix lent to pipeline layers. Intended
    /// use is `std::mem::take` / reassign around an engine call, so the
    /// staged activations can be the engine's input while the engine
    /// borrows the workspace mutably.
    pub fn activations_mut(&mut self) -> &mut Matrix {
        &mut self.act
    }

    /// The convolution-lowering staging matrix (`aiga-nn`'s
    /// `im2col_into` writes here). Like [`Self::activations_mut`], the
    /// intended pattern is [`Self::take_lowering`] / [`Self::put_lowering`]
    /// around the engine call that consumes it.
    pub fn lowering_mut(&mut self) -> &mut Matrix {
        &mut self.lowering
    }

    /// Moves the lowering buffer out (so it can be the engine's input
    /// while the engine mutably borrows this workspace). Pair with
    /// [`Self::put_lowering`]; the swap moves pointers, not data.
    pub fn take_lowering(&mut self) -> Matrix {
        std::mem::take(&mut self.lowering)
    }

    /// Returns a lowering buffer taken with [`Self::take_lowering`],
    /// preserving its capacity for the next conv stage.
    pub fn put_lowering(&mut self, m: Matrix) {
        self.lowering = m;
    }

    /// Grows the slot table to at least `n` entries (a one-time
    /// allocation; subsequent calls at or below the high-water mark are
    /// free).
    pub fn ensure_slots(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, Matrix::default);
        }
    }

    /// Reads value slot `i` (in range after [`Self::ensure_slots`]).
    pub fn slot(&self, i: usize) -> &Matrix {
        &self.slots[i]
    }

    /// Moves value slot `i` out of the workspace (growing the table if
    /// needed). Graph executors take a stage's input and output slots,
    /// compute, and [`Self::put_slot`] them back — moves, never copies.
    pub fn take_slot(&mut self, i: usize) -> Matrix {
        self.ensure_slots(i + 1);
        std::mem::take(&mut self.slots[i])
    }

    /// Returns a slot taken with [`Self::take_slot`], preserving its
    /// buffer capacity for the next request.
    pub fn put_slot(&mut self, i: usize, m: Matrix) {
        self.slots[i] = m;
    }

    /// Split borrow for branch-parallel graph execution: the shared
    /// value slots (read-only, so concurrent branches can gather from a
    /// common producer) together with `n` mutable child workspaces, one
    /// per branch, each giving its branch a private engine scratch and
    /// output. The pool only ratchets up, so steady-state fan-out does
    /// not allocate here; call again after the branches join to read
    /// each child's [`Self::output`] back on the merging thread.
    pub fn branch_split(&mut self, n: usize) -> (&[Matrix], &mut [Workspace]) {
        if self.branch_pool.len() < n {
            self.branch_pool.resize_with(n, Workspace::default);
        }
        (&self.slots, &mut self.branch_pool[..n])
    }

    /// Arms the block-parallel scratch pool for `n` workers under
    /// `tiling`: grows the pool if this is a new high-water mark, then
    /// re-prepares each worker's scratch in place.
    pub(crate) fn ensure_stripe_pool(&mut self, n: usize, tiling: &TilingConfig) {
        if self.stripe_pool.len() < n {
            self.stripe_pool.resize_with(n, StripeScratch::default);
        }
        for s in &mut self.stripe_pool[..n] {
            s.block.prepare(tiling);
            s.detections.clear();
            s.counters = EngineCounters::default();
        }
    }

    /// Recomputes output cell `(r, c)` from the staged operand panels
    /// of the most recent run, overwriting `out.c[r][c]` in place.
    ///
    /// The recompute replays the canonical accumulation order (one FMA
    /// per K element, in order — see [`super::simd`]) that the SIMD
    /// microkernel, the scalar oracle, and the hooked walk all share, so
    /// a recomputed cell is bit-exact with a clean run. Faults are never
    /// re-applied: the panels hold only operands. Returns `false` (no
    /// write) when the cell lies outside the cropped output — padded
    /// rows/columns have no output cell to repair.
    ///
    /// Allocation-free: reads the staged panels, writes one f32.
    pub fn recompute_cell(&mut self, r: usize, c: usize) -> bool {
        if r >= self.out.m || c >= self.out.n {
            return false;
        }
        let k = self.panels.k;
        let a_row = &self.panels.a_f32[r * k..r * k + k];
        let b_col = &self.panels.b_f32_t[c * k..c * k + k];
        self.out.c[r * self.out.n + c] = simd::dot(a_row, b_col);
        true
    }

    /// Recomputes every cell of output row `r` (see
    /// [`Self::recompute_cell`]). Returns `false` if the row is out of
    /// range.
    pub fn recompute_row(&mut self, r: usize) -> bool {
        if r >= self.out.m {
            return false;
        }
        for c in 0..self.out.n {
            self.recompute_cell(r, c);
        }
        true
    }

    /// Recomputes every cell of output column `c` (see
    /// [`Self::recompute_cell`]). Returns `false` if the column is out
    /// of range.
    pub fn recompute_col(&mut self, c: usize) -> bool {
        if c >= self.out.n {
            return false;
        }
        for r in 0..self.out.m {
            self.recompute_cell(r, c);
        }
        true
    }
}
