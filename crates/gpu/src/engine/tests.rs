//! Engine-level unit tests: reference agreement, padding/cropping,
//! counters, fault landing, the oracle conversion walk, and
//! workspace-path equivalence.

use super::*;
use aiga_fp16::F16;

fn engine_for(m: u64, n: u64, k: u64) -> GemmEngine {
    GemmEngine::new(
        GemmShape::new(m, n, k),
        TilingConfig {
            block_m: 32,
            block_n: 32,
            block_k: 16,
            warp_m: 16,
            warp_n: 16,
        },
    )
}

#[test]
fn matches_f64_reference_within_fp32_accumulation_error() {
    let (m, n, k) = (48, 40, 64);
    let a = Matrix::random(m, k, 1);
    let b = Matrix::random(k, n, 2);
    let out = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
    let reference = gemm_reference_f64(&a, &b);
    for (i, (&got, &want)) in out.c.iter().zip(&reference).enumerate() {
        let err = (got as f64 - want).abs();
        // K=64 FP32 accumulations of exact products: error well under
        // K * eps32 * |terms|.
        assert!(err < 1e-3, "element {i}: {got} vs {want}");
    }
}

#[test]
fn identity_multiplication_is_exact() {
    let n = 32;
    let ident = Matrix::from_fn(n, n, |r, c| if r == c { F16::ONE } else { F16::ZERO });
    let b = Matrix::random(n, n, 3);
    let out = engine_for(n as u64, n as u64, n as u64).run(&ident, &b, || NoScheme, None);
    for r in 0..n {
        for c in 0..n {
            assert_eq!(out.get(r, c), b.get(r, c).to_f32());
        }
    }
}

#[test]
fn unaligned_shapes_are_padded_and_cropped() {
    let (m, n, k) = (17, 9, 11);
    let a = Matrix::random(m, k, 4);
    let b = Matrix::random(k, n, 5);
    let out = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
    assert_eq!((out.m, out.n), (m, n));
    let reference = gemm_reference_f64(&a, &b);
    for (&got, &want) in out.c.iter().zip(&reference) {
        assert!((got as f64 - want).abs() < 1e-3);
    }
}

#[test]
fn every_output_element_is_written_exactly_once() {
    // A product of all-ones matrices has every element equal to K —
    // if fragment ownership double-wrote or missed elements the
    // block-tile assembly would show it.
    let (m, n, k) = (64, 64, 32);
    let ones = Matrix::from_fn(m, k, |_, _| F16::ONE);
    let ones_b = Matrix::from_fn(k, n, |_, _| F16::ONE);
    let out = engine_for(m as u64, n as u64, k as u64).run(&ones, &ones_b, || NoScheme, None);
    assert!(out.c.iter().all(|&v| v == k as f32));
}

#[test]
fn counters_match_tiling_formulas() {
    let eng = engine_for(64, 64, 64);
    let a = Matrix::random(64, 64, 6);
    let b = Matrix::random(64, 64, 7);
    let out = eng.run(&a, &b, || NoScheme, None);
    let t = eng.tiling();
    let threads = t.total_blocks(eng.shape()) * t.threads_per_block();
    assert_eq!(out.counters.threads, threads);
    assert_eq!(out.counters.k_steps, 32);
    assert_eq!(
        out.counters.baseline_mmas,
        threads * 32 * t.mmas_per_thread_step()
    );
}

#[test]
fn injected_fault_corrupts_exactly_one_element() {
    let (m, n, k) = (32, 32, 32);
    let a = Matrix::random(m, k, 8);
    let b = Matrix::random(k, n, 9);
    let eng = engine_for(m as u64, n as u64, k as u64);
    let clean = eng.run(&a, &b, || NoScheme, None);
    let fault = FaultPlan {
        row: 5,
        col: 7,
        after_step: u64::MAX,
        kind: FaultKind::AddValue(100.0),
    };
    let dirty = eng.run(&a, &b, || NoScheme, Some(fault));
    let mut diffs = 0;
    for i in 0..m * n {
        if clean.c[i] != dirty.c[i] {
            diffs += 1;
            assert_eq!(i, 5 * n + 7);
            assert!((dirty.c[i] - clean.c[i] - 100.0).abs() < 1e-3);
        }
    }
    assert_eq!(diffs, 1);
    // NoScheme never detects anything.
    assert!(!dirty.fault_detected());
}

#[test]
fn mid_kernel_fault_still_lands() {
    let (m, n, k) = (16, 16, 64);
    let a = Matrix::random(m, k, 10);
    let b = Matrix::random(k, n, 11);
    let eng = engine_for(m as u64, n as u64, k as u64);
    let clean = eng.run(&a, &b, || NoScheme, None);
    let fault = FaultPlan {
        row: 0,
        col: 0,
        after_step: 3,
        kind: FaultKind::SetValue(1e4),
    };
    let dirty = eng.run(&a, &b, || NoScheme, Some(fault));
    // The corrupted accumulator keeps accumulating afterwards, so the
    // output differs from clean but is not exactly 1e4.
    assert_ne!(clean.get(0, 0), dirty.get(0, 0));
    assert!(dirty.get(0, 0) > 5e3);
}

#[test]
fn output_is_byte_identical_to_an_oracle_conversion_walk() {
    // Replays every accumulator's exact operation sequence — the
    // canonical order: one correctly-rounded FMA per K element, in K
    // order — but converts the FP16 operands through the pre-table
    // arithmetic formulation instead of the decode table /
    // pre-decoded panels. Byte equality proves panel pre-decoding
    // changed no result bit.
    fn oracle_f32(h: F16) -> f32 {
        let bits = h.to_bits();
        let sign = if bits & 0x8000 != 0 { -1.0f64 } else { 1.0 };
        let exp = ((bits & 0x7c00) >> 10) as i32;
        let frac = (bits & 0x03ff) as f64;
        let wide = match exp {
            0 => sign * frac * 2.0_f64.powi(-24),
            31 => {
                if frac == 0.0 {
                    sign * f64::INFINITY
                } else {
                    f64::NAN
                }
            }
            _ => sign * (1024.0 + frac) * 2.0_f64.powi(exp - 25),
        };
        wide as f32
    }
    for &(m, n, k, seed) in &[(17usize, 9usize, 11usize, 90u64), (48, 40, 64, 91)] {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let eng = engine_for(m as u64, n as u64, k as u64);
        let out = eng.run(&a, &b, || NoScheme, None);
        let kp = eng.shape().k as usize; // padded K (zeros beyond k)
        let at = |r: usize, c: usize| {
            if c < k {
                oracle_f32(a.get(r, c))
            } else {
                0.0
            }
        };
        let bt = |r: usize, c: usize| {
            if r < k {
                oracle_f32(b.get(r, c))
            } else {
                0.0
            }
        };
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k0 in 0..kp {
                    acc = at(i, k0).mul_add(bt(k0, j), acc);
                }
                assert_eq!(
                    out.get(i, j).to_bits(),
                    acc.to_bits(),
                    "element ({i},{j}) of {m}x{n}x{k}"
                );
            }
        }
    }
}

#[test]
fn workspace_path_is_byte_identical_to_the_allocating_path() {
    // One workspace reused across shapes and schemes — the pooled
    // serving regime — must reproduce `run_multi`'s bytes exactly,
    // clean and faulted, hooked and fast path.
    struct Echo; // minimal hooked scheme: forces the step-ordered walk
    impl ThreadLocalScheme for Echo {
        fn begin(&mut self, _ctx: &ThreadCtx) {}
        fn on_k_step(&mut self, _step: &KStep<'_>) {}
        fn finalize(&mut self, _c: &ThreadCtx, _a: &[f32], _m: usize, _n: usize) -> ThreadVerdict {
            ThreadVerdict::clean()
        }
    }
    let mut ws = Workspace::new();
    for &(m, n, k, seed) in &[
        (17usize, 9usize, 11usize, 40u64),
        (64, 64, 64, 41),
        (33, 65, 40, 42),
    ] {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let eng = engine_for(m as u64, n as u64, k as u64);
        let fault = FaultPlan {
            row: m / 2,
            col: n / 2,
            after_step: 2,
            kind: FaultKind::AddValue(32.0),
        };
        for faults in [&[][..], &[fault][..]] {
            let alloc_fast = eng.run_multi(&a, &b, || NoScheme, faults);
            let ws_fast = eng.run_multi_into(&a, &b, || NoScheme, faults, &mut ws);
            assert_eq!(alloc_fast.c, ws_fast.c);
            assert_eq!(alloc_fast.counters.threads, ws_fast.counters.threads);
            let alloc_hooked = eng.run_multi(&a, &b, || Echo, faults);
            let ws_hooked = eng.run_multi_into(&a, &b, || Echo, faults, &mut ws);
            assert_eq!(alloc_hooked.c, ws_hooked.c);
        }
    }
}

#[test]
fn block_parallel_stripes_are_byte_identical_to_sequential() {
    // 256³ sits exactly at BLOCK_PAR_MIN_FLOPS; a single-core runner
    // would still serialize via `effective_workers`, so force a worker
    // count (3 over 8 stripes — deliberately uneven) to exercise the
    // stripe-parallel arm deterministically. Hooked scheme + detections
    // cover the replay epilogue and the merge ordering; the faulted
    // NoScheme run covers the cold recompute path.
    struct FlagAll; // hooked (default needs_k_steps) and flags every thread
    impl ThreadLocalScheme for FlagAll {
        fn begin(&mut self, _ctx: &ThreadCtx) {}
        fn on_k_step(&mut self, _step: &KStep<'_>) {}
        fn finalize(
            &mut self,
            ctx: &ThreadCtx,
            acc: &[f32],
            mt: usize,
            nt: usize,
        ) -> ThreadVerdict {
            ThreadVerdict {
                fault_detected: true,
                residual: acc[..mt * nt].iter().map(|&v| v.abs() as f64).sum(),
                threshold: ctx.lane as f64,
            }
        }
    }
    let (m, n, k) = (256usize, 256, 256);
    let a = Matrix::random(m, k, 70);
    let b = Matrix::random(k, n, 71);
    let eng = engine_for(m as u64, n as u64, k as u64);
    let faults = [FaultPlan {
        row: 200,
        col: 17,
        after_step: 5,
        kind: FaultKind::AddValue(96.0),
    }];
    let seq_clean = eng.run_multi(&a, &b, || FlagAll, &[]);
    let seq_fault = eng.run_multi(&a, &b, || NoScheme, &faults);
    let mut ws = Workspace::new();
    super::FORCE_WORKERS.store(3, std::sync::atomic::Ordering::Relaxed);
    {
        let par = eng.run_multi_into(&a, &b, || FlagAll, &[], &mut ws);
        assert_eq!(seq_clean.c, par.c);
        assert_eq!(seq_clean.detections, par.detections);
        assert_eq!(seq_clean.counters.threads, par.counters.threads);
        assert_eq!(seq_clean.counters.k_steps, par.counters.k_steps);
        assert_eq!(seq_clean.counters.baseline_mmas, par.counters.baseline_mmas);
    }
    {
        let par = eng.run_multi_into(&a, &b, || NoScheme, &faults, &mut ws);
        assert_eq!(seq_fault.c, par.c);
    }
    super::FORCE_WORKERS.store(0, std::sync::atomic::Ordering::Relaxed);
}

#[test]
fn random_dtype_f16_is_byte_identical_to_random() {
    let plain = Matrix::random(9, 13, 123);
    let tagged = Matrix::random_dtype(9, 13, 123, Dtype::F16);
    assert_eq!(plain.data, tagged.data);
    assert_eq!(tagged.dtype, Dtype::F16);
}

#[test]
fn every_dtype_runs_the_engine_against_its_f64_reference() {
    // Decoded-f32 panels are the common currency: each storage format's
    // GEMM must match the dtype-aware f64 reference to FP32-accumulation
    // error, on both an aligned and a padded shape.
    for dtype in Dtype::ALL {
        for &(m, n, k, seed) in &[(32usize, 32usize, 32usize, 60u64), (17, 9, 11, 61)] {
            let a = Matrix::random_dtype(m, k, seed, dtype);
            let b = Matrix::random_dtype(k, n, seed + 1, dtype);
            let out = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
            let reference = gemm_reference_f64(&a, &b);
            for (i, (&got, &want)) in out.c.iter().zip(&reference).enumerate() {
                assert!(
                    (got as f64 - want).abs() < 1e-3,
                    "{dtype} element {i}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn mixed_dtype_operands_are_rejected() {
    let a = Matrix::random_dtype(16, 16, 1, Dtype::Bf16);
    let b = Matrix::random_dtype(16, 16, 2, Dtype::Fp8E4M3);
    let eng = engine_for(16, 16, 16);
    let res = std::panic::catch_unwind(|| eng.run(&a, &b, || NoScheme, None));
    assert!(res.is_err(), "mismatched operand dtypes must panic");
}

#[test]
fn workspace_take_output_leaves_a_reusable_workspace() {
    let a = Matrix::random(16, 16, 50);
    let b = Matrix::random(16, 16, 51);
    let eng = engine_for(16, 16, 16);
    let mut ws = Workspace::new();
    eng.run_multi_into(&a, &b, || NoScheme, &[], &mut ws);
    let first = ws.take_output();
    assert_eq!((first.m, first.n), (16, 16));
    let second = eng.run_multi_into(&a, &b, || NoScheme, &[], &mut ws);
    assert_eq!(first.c, second.c);
}
