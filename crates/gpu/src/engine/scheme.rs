//! The thread-level redundancy-scheme seam ([`ThreadLocalScheme`]) and
//! the per-thread identity/verdict/counter types that cross it.
//!
//! This is where the paper modified CUTLASS's thread-level inner loops:
//! the engine calls the scheme with the very fragments the thread
//! loaded (sharing loads, never adding memory traffic — the §3.5 design
//! principle) and hands it the final accumulators for the thread-local
//! check.

use aiga_dtype::Dtype;
use aiga_fp16::F16;

/// Identity of a simulated thread and the global rows/columns of `C` its
/// fragments own.
#[derive(Clone, Debug, Default)]
pub struct ThreadCtx {
    /// Threadblock coordinates in the grid.
    pub block: (u64, u64),
    /// Warp index within the block.
    pub warp: u64,
    /// Lane within the warp, 0..32.
    pub lane: usize,
    /// Global row indices of the thread's `Mt` accumulator rows.
    pub rows: Vec<usize>,
    /// Global column indices of the thread's `Nt` accumulator columns.
    pub cols: Vec<usize>,
}

/// Result of one thread's local redundancy check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThreadVerdict {
    /// Whether the thread flagged a fault.
    pub fault_detected: bool,
    /// Largest check residual observed.
    pub residual: f64,
    /// Threshold the residual was compared against.
    pub threshold: f64,
}

impl ThreadVerdict {
    /// A clean (no-fault) verdict.
    pub fn clean() -> Self {
        ThreadVerdict {
            fault_detected: false,
            residual: 0.0,
            threshold: 0.0,
        }
    }
}

/// Per-thread cost counters a scheme self-reports, in the units of
/// Table 1 (per-K-step MMAs and checksum operations are accumulated over
/// all steps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeCounters {
    /// Redundant Tensor-Core MMA participations.
    pub extra_mmas: u64,
    /// Checksum-generation ALU operations (HADD2-class).
    pub checksum_ops: u64,
}

impl SchemeCounters {
    pub(crate) fn merge(&mut self, other: SchemeCounters) {
        self.extra_mmas += other.extra_mmas;
        self.checksum_ops += other.checksum_ops;
    }
}

/// The fragments one simulated thread loaded for one K-step, as handed
/// to [`ThreadLocalScheme::on_k_step`].
///
/// `a`/`b` are the raw storage-code fragments (16-bit lanes; see
/// [`crate::engine::Matrix::data`]): `a` is `Mt × 2` row-major (rows
/// ordered as `ctx.rows`), `b` is `2 × Nt` row-major (columns ordered as
/// `ctx.cols`). `a_f32`/`b_f32` are the same fragments pre-decoded to
/// `f32` by the engine — decoding is exact for every storage format, so
/// schemes that only need the numeric values (replication's shadow MMAs,
/// ABFT's redundant accumulations, magnitude tracking) should read these
/// instead of re-decoding the codes the engine already decoded. Schemes
/// that model low-precision checksum *arithmetic* round through
/// [`Dtype::chain_add`] on the decoded views, using `dtype` to pick the
/// chain's hardware precision.
#[derive(Clone, Copy, Debug)]
pub struct KStep<'a> {
    /// Raw `Mt × 2` A-fragment storage codes.
    pub a: &'a [F16],
    /// Raw `2 × Nt` B-fragment storage codes.
    pub b: &'a [F16],
    /// Pre-decoded `a` (same layout, exact values).
    pub a_f32: &'a [f32],
    /// Pre-decoded `b` (same layout, exact values).
    pub b_f32: &'a [f32],
    /// Rows of the thread's accumulator tile.
    pub mt: usize,
    /// Columns of the thread's accumulator tile.
    pub nt: usize,
    /// Storage format of the staged operands.
    pub dtype: Dtype,
}

/// One thread's entire K-walk, handed to
/// [`ThreadLocalScheme::walk_lane`] in a single call: panel-level slices
/// plus the lane's global row/column indices. Row `r`'s walk is
/// `a_f32[r*k..][..k]`; column `c`'s walk is `b_f32_t[c*k..][..k]` (the
/// B panels are stored transposed so a K-walk streams them linearly).
/// The raw storage-code panels mirror the decoded layouts and are empty
/// when the scheme opted out via
/// [`ThreadLocalScheme::uses_raw_fragments`].
#[derive(Clone, Copy, Debug)]
pub struct LaneWalk<'a> {
    /// Decoded A panel, `cov_m × k` row-major.
    pub a_f32: &'a [f32],
    /// Decoded B panel stored transposed, `cov_n × k` row-major.
    pub b_f32_t: &'a [f32],
    /// Raw storage-code A panel (layout of `a_f32`), possibly empty.
    pub a16: &'a [F16],
    /// Raw storage-code B panel (layout of `b_f32_t`), possibly empty.
    pub b16_t: &'a [F16],
    /// Panel K extent — the row stride of every panel slice above.
    pub k: usize,
    /// Global row indices of the lane's `Mt` accumulator rows.
    pub rows: &'a [usize],
    /// Global column indices of the lane's `Nt` accumulator columns.
    pub cols: &'a [usize],
    /// Steps in the walk (each consumes `STEP_K` = 2 elements of K).
    pub k_steps: u64,
    /// Storage format of the staged operands.
    pub dtype: Dtype,
}

/// A redundancy scheme living inside the thread-level inner loop.
///
/// One instance protects one simulated thread; the engine constructs an
/// instance per thread via the factory passed to
/// [`crate::engine::GemmEngine::run`]. Implementations should keep
/// their per-thread state inline (fixed-size arrays bounded by
/// [`crate::tiling::MAX_THREAD_MT`]/[`crate::tiling::MAX_THREAD_NT`])
/// so thread construction never touches the heap — that is what keeps
/// the serving hot path allocation-free under thread-level schemes.
pub trait ThreadLocalScheme: Send {
    /// Capability hook: whether this scheme consumes per-K-step
    /// fragments at all. Epilogue-only schemes (the unprotected
    /// baseline, kernel-level ABFT run via [`NoScheme`]) return `false`,
    /// which lets the engine skip fragment gathering *and* the per-step
    /// virtual call entirely and run its fused dot-product fast path —
    /// the serving common case. When this returns `false`,
    /// [`Self::on_k_step`] is never called; `begin`/`finalize` still are.
    ///
    /// Must be constant across all instances a factory produces: the
    /// engine probes one instance per run and stages the raw FP16
    /// panels (or not) for the whole run based on its answer.
    fn needs_k_steps(&self) -> bool {
        true
    }

    /// Called once before the K-walk with the thread's identity.
    fn begin(&mut self, ctx: &ThreadCtx);

    /// Capability hook: whether the scheme reads the *raw* storage-code
    /// fragments ([`KStep::a`]/[`KStep::b`], or [`LaneWalk::a16`]/
    /// [`LaneWalk::b16_t`]). Schemes that only consume the pre-decoded
    /// f32 views return `false`, letting the engine skip staging the raw
    /// FP16 panels for the run. Must be constant per factory, like
    /// [`Self::needs_k_steps`].
    fn uses_raw_fragments(&self) -> bool {
        true
    }

    /// Called for every K-step with the fragments the thread just loaded
    /// (raw FP16 and pre-decoded f32 views — see [`KStep`]). Sharing
    /// these loads is what keeps thread-level ABFT free of extra memory
    /// traffic (§5.1). Only called when [`Self::needs_k_steps`] is true.
    fn on_k_step(&mut self, step: &KStep<'_>);

    /// Consumes the lane's whole K-walk in one call. The default
    /// implementation replays it as step-ordered [`KStep`] fragments
    /// through [`Self::on_k_step`], so a scheme normally implements only
    /// the per-step hook. Hot schemes may override this with a fused
    /// walk that streams the panel slices directly; an override MUST
    /// perform arithmetic identical — operation for operation, in the
    /// same order — to `Self::on_k_step` over the replayed fragments, so
    /// verdicts, residuals, and counters stay bit-identical across the
    /// two paths. Only called when [`Self::needs_k_steps`] is true.
    fn walk_lane(&mut self, walk: &LaneWalk<'_>) {
        use crate::tiling::{MAX_THREAD_MT, MAX_THREAD_NT, STEP_K};
        let (mt, nt, k) = (walk.rows.len(), walk.cols.len(), walk.k);
        assert_eq!(
            walk.a16.len(),
            walk.a_f32.len(),
            "raw FP16 panels must be staged when a scheme consumes raw fragments"
        );
        let mut a_chunk = [F16::ZERO; MAX_THREAD_MT * 2];
        let mut b_chunk = [F16::ZERO; 2 * MAX_THREAD_NT];
        let mut af_chunk = [0.0f32; MAX_THREAD_MT * 2];
        let mut bf_chunk = [0.0f32; 2 * MAX_THREAD_NT];
        for step in 0..walk.k_steps {
            let k0 = (step * STEP_K) as usize;
            for (ri, &r) in walk.rows.iter().enumerate() {
                let base = r * k + k0;
                a_chunk[ri * 2] = walk.a16[base];
                a_chunk[ri * 2 + 1] = walk.a16[base + 1];
                af_chunk[ri * 2] = walk.a_f32[base];
                af_chunk[ri * 2 + 1] = walk.a_f32[base + 1];
            }
            for (ci, &c) in walk.cols.iter().enumerate() {
                let base = c * k + k0;
                b_chunk[ci] = walk.b16_t[base];
                b_chunk[nt + ci] = walk.b16_t[base + 1];
                bf_chunk[ci] = walk.b_f32_t[base];
                bf_chunk[nt + ci] = walk.b_f32_t[base + 1];
            }
            self.on_k_step(&KStep {
                a: &a_chunk[..mt * 2],
                b: &b_chunk[..2 * nt],
                a_f32: &af_chunk[..mt * 2],
                b_f32: &bf_chunk[..2 * nt],
                mt,
                nt,
                dtype: walk.dtype,
            });
        }
    }

    /// Called once after the K-walk with the thread's final `Mt × Nt`
    /// FP32 accumulators (row-major); performs the thread-local check.
    fn finalize(&mut self, ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict;

    /// Cost counters accumulated by this thread's instance.
    fn counters(&self) -> SchemeCounters {
        SchemeCounters::default()
    }
}

/// Boxed schemes forward to the inner implementation, so heterogeneous
/// scheme kernels (`aiga-core`'s `SchemeKernel` trait objects) can drive
/// the generic engine without monomorphizing per scheme.
impl ThreadLocalScheme for Box<dyn ThreadLocalScheme> {
    fn needs_k_steps(&self) -> bool {
        (**self).needs_k_steps()
    }
    fn uses_raw_fragments(&self) -> bool {
        (**self).uses_raw_fragments()
    }
    fn begin(&mut self, ctx: &ThreadCtx) {
        (**self).begin(ctx)
    }
    fn on_k_step(&mut self, step: &KStep<'_>) {
        (**self).on_k_step(step)
    }
    fn walk_lane(&mut self, walk: &LaneWalk<'_>) {
        (**self).walk_lane(walk)
    }
    fn finalize(&mut self, ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict {
        (**self).finalize(ctx, acc, mt, nt)
    }
    fn counters(&self) -> SchemeCounters {
        (**self).counters()
    }
}

/// The unprotected baseline: no redundant work, always-clean verdicts.
/// Opts out of K-step delivery, enabling the engine's fast path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoScheme;

impl ThreadLocalScheme for NoScheme {
    fn needs_k_steps(&self) -> bool {
        false
    }
    fn begin(&mut self, _ctx: &ThreadCtx) {}
    fn on_k_step(&mut self, _step: &KStep<'_>) {}
    fn finalize(
        &mut self,
        _ctx: &ThreadCtx,
        _acc: &[f32],
        _mt: usize,
        _nt: usize,
    ) -> ThreadVerdict {
        ThreadVerdict::clean()
    }
}
