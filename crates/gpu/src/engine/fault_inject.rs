//! Fault injection into the accumulator datapath.
//!
//! Models a soft error in processing logic per the fault model of §2.3:
//! operands are assumed correct (ECC-protected memory), control flow is
//! assumed correct, and a single output value of `C` is corrupted.

/// How an injected soft error corrupts an accumulator register.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Flip one bit (0..32) of the FP32 accumulator.
    BitFlip(u8),
    /// Add a value to the accumulator (models a wrong partial product).
    AddValue(f32),
    /// Overwrite the accumulator entirely (models a mux/select error).
    SetValue(f32),
}

impl FaultKind {
    /// Applies the corruption to an accumulator value.
    pub fn apply(self, v: f32) -> f32 {
        match self {
            FaultKind::BitFlip(bit) => f32::from_bits(v.to_bits() ^ (1 << (bit as u32 % 32))),
            FaultKind::AddValue(d) => v + d,
            FaultKind::SetValue(x) => x,
        }
    }
}

/// A single injected fault targeting output element `(row, col)` of `C`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Global row of the corrupted output element.
    pub row: usize,
    /// Global column of the corrupted output element.
    pub col: usize,
    /// K-step after which the corruption strikes; `u64::MAX` means after
    /// the final step (a fault in the epilogue datapath).
    pub after_step: u64,
    /// Corruption applied.
    pub kind: FaultKind,
}

/// One thread's positive detection, with provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Detection {
    /// Threadblock coordinates.
    pub block: (u64, u64),
    /// Warp index within the block.
    pub warp: u64,
    /// Lane within the warp.
    pub lane: usize,
    /// Check residual that tripped the detection.
    pub residual: f64,
    /// Threshold it exceeded.
    pub threshold: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitflip_fault_kind_flips_the_requested_bit() {
        let v = 1.5f32;
        let flipped = FaultKind::BitFlip(30).apply(v);
        assert_eq!(flipped.to_bits(), v.to_bits() ^ (1 << 30));
        // Applying twice restores the value.
        assert_eq!(FaultKind::BitFlip(30).apply(flipped), v);
    }

    #[test]
    fn add_and_set_apply_as_documented() {
        assert_eq!(FaultKind::AddValue(2.5).apply(1.0), 3.5);
        assert_eq!(FaultKind::SetValue(-7.0).apply(123.0), -7.0);
    }
}
