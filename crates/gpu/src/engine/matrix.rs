//! The row-major FP16 matrix the engine (and every layer above it)
//! traffics in, plus the FP64 reference GEMM used by correctness tests.
//!
//! Besides the allocating constructors, the type exposes `*_into`
//! variants that write into caller-owned buffers. Those are the
//! building blocks of the zero-allocation execution path: a
//! [`crate::engine::Workspace`] keeps the destination buffers warm
//! across runs, so steady-state staging never touches the heap.

use aiga_dtype::Dtype;
use aiga_fp16::F16;
use aiga_util::rng::Rng64;

/// Logical-to-physical element layout of a [`Matrix`].
///
/// Almost every matrix in the system is [`MatrixLayout::RowMajor`]. The
/// one exception is the zero-copy view a 1×1 convolution's GEMM takes
/// of an NCHW activation tensor: tagging the tensor's own buffer with
/// [`MatrixLayout::NchwLowered`] makes it *logically* identical to the
/// im2col-lowered matrix (same `(row, col) → value` mapping, so
/// checksums, reference oracles, and outputs are byte-identical)
/// without materializing the copy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatrixLayout {
    /// `data[r * cols + c]` — the default.
    #[default]
    RowMajor,
    /// An NCHW tensor viewed as the `(images·spatial) × channels`
    /// activation matrix of a 1×1 stride-1 unpadded convolution: row
    /// `r` is image `r / spatial`, pixel `r % spatial`; column `c` is a
    /// channel; element `(r, c)` lives at
    /// `((r / spatial)·cols + c)·spatial + (r % spatial)`.
    NchwLowered {
        /// Pixels per image plane (`height × width`).
        spatial: usize,
    },
}

/// A row-major FP16 matrix (see [`MatrixLayout`] for the one
/// alternative storage layout).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Element storage, `rows * cols` elements, addressed per `layout`.
    ///
    /// Elements are opaque 16-bit *storage codes* interpreted per
    /// `dtype`; 8-bit formats (fp8, int8) occupy the low byte. For the
    /// default [`Dtype::F16`] the codes are literal `F16` values, so the
    /// pre-dtype engine is byte-for-byte this type with `dtype = F16`.
    pub data: Vec<F16>,
    /// How `(row, col)` maps into `data`.
    pub layout: MatrixLayout,
    /// The storage format `data`'s codes decode through.
    pub dtype: Dtype,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F16::ZERO; rows * cols],
            layout: MatrixLayout::RowMajor,
            dtype: Dtype::F16,
        }
    }

    /// Re-tags the storage format (every format encodes zero as `0x0000`
    /// and existing codes are reinterpreted, so this is only meaningful
    /// on fresh/zeroed matrices or codes already produced by `dtype`).
    pub fn with_dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = dtype;
        self
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F16) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix {
            rows,
            cols,
            data,
            layout: MatrixLayout::RowMajor,
            dtype: Dtype::F16,
        }
    }

    /// Wraps an NCHW tensor buffer as the activation matrix of a 1×1
    /// stride-1 unpadded convolution — `images·spatial` rows (one per
    /// output pixel), `channels` columns — without copying. The caller
    /// gets the buffer back via `.data` when done.
    pub fn nchw_lowered(images: usize, channels: usize, spatial: usize, data: Vec<F16>) -> Self {
        assert_eq!(data.len(), images * channels * spatial, "NCHW extent");
        Matrix {
            rows: images * spatial,
            cols: channels,
            data,
            layout: MatrixLayout::NchwLowered { spatial },
            dtype: Dtype::F16,
        }
    }

    /// Physical index of logical element `(r, c)`.
    #[inline]
    fn index(&self, r: usize, c: usize) -> usize {
        match self.layout {
            MatrixLayout::RowMajor => r * self.cols + c,
            MatrixLayout::NchwLowered { spatial } => {
                ((r / spatial) * self.cols + c) * spatial + (r % spatial)
            }
        }
    }

    /// Deterministic pseudo-random matrix with entries in `[-2, 2]`
    /// quantized to FP16 — the magnitude regime of normalized NN
    /// activations and weights.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        Self::from_fn(rows, cols, |_, _| F16::from_f32(rng.range_f32(-2.0, 2.0)))
    }

    /// Like [`Self::random`], but quantizing the same pseudo-random
    /// sample stream into `dtype`'s codes — for `Dtype::F16` this is
    /// byte-identical to [`Self::random`], so cross-dtype campaigns and
    /// golden tests compare runs over the same underlying values.
    pub fn random_dtype(rows: usize, cols: usize, seed: u64, dtype: Dtype) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Self::from_fn(rows, cols, |_, _| {
            F16(dtype.encode(rng.range_f32(-2.0, 2.0)))
        });
        m.dtype = dtype;
        m
    }

    /// Element accessor (layout-aware). For non-F16 dtypes the returned
    /// value is the raw storage *code* in an `F16` wrapper — use
    /// [`Self::get_f32`]/[`Self::get_f64`] for the decoded value.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> F16 {
        self.data[self.index(r, c)]
    }

    /// Decoded element value (layout- and dtype-aware).
    #[inline]
    pub fn get_f32(&self, r: usize, c: usize) -> f32 {
        self.dtype.decode(self.data[self.index(r, c)].to_bits())
    }

    /// Decoded element value in f64 (exact widening of [`Self::get_f32`]).
    #[inline]
    pub fn get_f64(&self, r: usize, c: usize) -> f64 {
        self.get_f32(r, c) as f64
    }

    /// Element mutator (layout-aware).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F16) {
        let i = self.index(r, c);
        self.data[i] = v;
    }

    /// Copies into a larger zero-padded matrix. Already-fitting matrices
    /// take a no-op fast path (one bulk copy, no per-row loop).
    pub fn padded(&self, rows: usize, cols: usize) -> Matrix {
        if rows == self.rows && cols == self.cols {
            return self.clone();
        }
        let mut out = Matrix::default();
        self.copy_padded_into(rows, cols, &mut out);
        out
    }

    /// Like [`Self::padded`] but writing into a reusable destination:
    /// `out` is resized to `rows × cols` (reusing its buffer), zeroed,
    /// and the source is copied into its top-left corner.
    pub fn copy_padded_into(&self, rows: usize, cols: usize, out: &mut Matrix) {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        out.rows = rows;
        out.cols = cols;
        out.layout = MatrixLayout::RowMajor;
        out.dtype = self.dtype;
        out.data.clear();
        out.data.resize(rows * cols, F16::ZERO);
        if let MatrixLayout::NchwLowered { .. } = self.layout {
            // General gather for the non-row-major view (cold: only
            // hooked schemes stage raw panels from a lowered view).
            for r in 0..self.rows {
                for c in 0..self.cols {
                    out.data[r * cols + c] = self.get(r, c);
                }
            }
            return;
        }
        if cols == self.cols {
            out.data[..self.data.len()].copy_from_slice(&self.data);
            return;
        }
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            out.data[r * cols..r * cols + self.cols].copy_from_slice(src);
        }
    }

    /// Copies `rows` rows starting at `start` into a new matrix — the
    /// chunking primitive behind oversized-batch splitting.
    pub fn row_block(&self, start: usize, rows: usize) -> Matrix {
        assert!(start + rows <= self.rows, "row block out of range");
        assert_eq!(
            self.layout,
            MatrixLayout::RowMajor,
            "row_block requires a row-major matrix"
        );
        Matrix {
            rows,
            cols: self.cols,
            data: self.data[start * self.cols..(start + rows) * self.cols].to_vec(),
            layout: MatrixLayout::RowMajor,
            dtype: self.dtype,
        }
    }

    /// Decodes into a zero-padded row-major `f32` buffer of size
    /// `rows × cols` — the engine's pre-decoded panel form. Decoding is
    /// exact (every finite F16 is representable in f32), so downstream
    /// arithmetic is bit-identical to converting on the fly. The
    /// destination buffer is reused (resized, not reallocated, once its
    /// capacity covers the shape).
    pub(crate) fn decode_padded_into(&self, rows: usize, cols: usize, out: &mut Vec<f32>) {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        out.clear();
        out.resize(rows * cols, 0.0);
        if let MatrixLayout::NchwLowered { spatial } = self.layout {
            // Gather the lowered view channel-plane by channel-plane:
            // for a fixed (image, channel) the spatial run is contiguous
            // in the source and strided by `cols` in the destination.
            if self.dtype == Dtype::F16 {
                for n in 0..self.rows / spatial {
                    for c in 0..self.cols {
                        let src = &self.data[(n * self.cols + c) * spatial..][..spatial];
                        for (s, v) in src.iter().enumerate() {
                            out[(n * spatial + s) * cols + c] = v.to_f32();
                        }
                    }
                }
            } else {
                let d = self.dtype;
                for n in 0..self.rows / spatial {
                    for c in 0..self.cols {
                        let src = &self.data[(n * self.cols + c) * spatial..][..spatial];
                        for (s, v) in src.iter().enumerate() {
                            out[(n * spatial + s) * cols + c] = d.decode(v.to_bits());
                        }
                    }
                }
            }
            return;
        }
        // The dtype branch stays outside the element loops; F16 keeps
        // its original table-load loop untouched.
        if self.dtype == Dtype::F16 {
            for r in 0..self.rows {
                let src = &self.data[r * self.cols..(r + 1) * self.cols];
                let dst = &mut out[r * cols..r * cols + self.cols];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = s.to_f32();
                }
            }
        } else {
            let dt = self.dtype;
            for r in 0..self.rows {
                let src = &self.data[r * self.cols..(r + 1) * self.cols];
                let dst = &mut out[r * cols..r * cols + self.cols];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = dt.decode(s.to_bits());
                }
            }
        }
    }

    /// Like [`Self::decode_padded_into`] but transposed: the result is
    /// `cols × rows` row-major, so one *column* of `self` is contiguous.
    /// The engine stores the B panel this way so each thread's K-walk
    /// streams both operands linearly.
    pub(crate) fn decode_padded_transposed_into(
        &self,
        rows: usize,
        cols: usize,
        out: &mut Vec<f32>,
    ) {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        debug_assert_eq!(
            self.layout,
            MatrixLayout::RowMajor,
            "only the B operand (always row-major) is staged transposed"
        );
        out.clear();
        out.resize(rows * cols, 0.0);
        if self.dtype == Dtype::F16 {
            for r in 0..self.rows {
                let src = &self.data[r * self.cols..(r + 1) * self.cols];
                for (c, v) in src.iter().enumerate() {
                    out[c * rows + r] = v.to_f32();
                }
            }
        } else {
            let dt = self.dtype;
            for r in 0..self.rows {
                let src = &self.data[r * self.cols..(r + 1) * self.cols];
                for (c, v) in src.iter().enumerate() {
                    out[c * rows + r] = dt.decode(v.to_bits());
                }
            }
        }
    }
}

/// Reference GEMM in FP64, decoding each operand through its dtype
/// (exact for 16-bit-or-narrower inputs up to K ≈ 2^40 terms).
pub fn gemm_reference_f64(a: &Matrix, b: &Matrix) -> Vec<f64> {
    assert_eq!(a.cols, b.rows);
    let mut c = vec![0.0f64; a.rows * b.cols];
    for i in 0..a.rows {
        for kk in 0..a.cols {
            let av = a.get_f64(i, kk);
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols {
                c[i * b.cols + j] += av * b.get_f64(kk, j);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_matches_copy_padded_into() {
        let m = Matrix::random(5, 7, 3);
        let p = m.padded(8, 10);
        assert_eq!((p.rows, p.cols), (8, 10));
        let mut reused = Matrix::zeros(1, 1);
        m.copy_padded_into(8, 10, &mut reused);
        assert_eq!(p, reused);
        // Padding region is zero; source region is intact.
        for r in 0..8 {
            for c in 0..10 {
                let want = if r < 5 && c < 7 {
                    m.get(r, c)
                } else {
                    F16::ZERO
                };
                assert_eq!(p.get(r, c), want, "({r},{c})");
            }
        }
    }

    #[test]
    fn copy_padded_into_reuses_without_stale_data() {
        let big = Matrix::random(16, 16, 4);
        let small = Matrix::random(2, 2, 5);
        let mut buf = Matrix::default();
        big.copy_padded_into(16, 16, &mut buf);
        small.copy_padded_into(4, 4, &mut buf);
        assert_eq!((buf.rows, buf.cols), (4, 4));
        assert_eq!(buf.get(0, 0), small.get(0, 0));
        assert_eq!(buf.get(3, 3), F16::ZERO, "stale data must be zeroed");
    }

    #[test]
    fn row_block_extracts_contiguous_rows() {
        let m = Matrix::random(10, 4, 6);
        let block = m.row_block(3, 4);
        assert_eq!((block.rows, block.cols), (4, 4));
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(block.get(r, c), m.get(3 + r, c));
            }
        }
    }

    #[test]
    fn decode_padded_into_is_exact_and_zero_padded() {
        let m = Matrix::random(3, 5, 7);
        let mut buf = vec![f32::NAN; 2]; // must be fully overwritten
        m.decode_padded_into(4, 8, &mut buf);
        assert_eq!(buf.len(), 32);
        for r in 0..4 {
            for c in 0..8 {
                let want = if r < 3 && c < 5 {
                    m.get(r, c).to_f32()
                } else {
                    0.0
                };
                assert_eq!(buf[r * 8 + c].to_bits(), want.to_bits());
            }
        }
        let mut t = Vec::new();
        m.decode_padded_transposed_into(4, 8, &mut t);
        for r in 0..4 {
            for c in 0..8 {
                assert_eq!(t[c * 4 + r].to_bits(), buf[r * 8 + c].to_bits());
            }
        }
    }
}
