//! The row-major FP16 matrix the engine (and every layer above it)
//! traffics in, plus the FP64 reference GEMM used by correctness tests.
//!
//! Besides the allocating constructors, the type exposes `*_into`
//! variants that write into caller-owned buffers. Those are the
//! building blocks of the zero-allocation execution path: a
//! [`crate::engine::Workspace`] keeps the destination buffers warm
//! across runs, so steady-state staging never touches the heap.

use aiga_dtype::Dtype;
use aiga_fp16::F16;
use aiga_util::rng::Rng64;

/// Logical-to-physical element layout of a [`Matrix`].
///
/// Almost every matrix in the system is [`MatrixLayout::RowMajor`]. The
/// exceptions are the zero-copy views a convolution's GEMM takes of an
/// NCHW activation tensor: tagging the tensor's own buffer with
/// [`MatrixLayout::NchwLowered`] (1×1 stride-1 unpadded convs) or
/// [`MatrixLayout::Im2col`] (every other conv geometry) makes it
/// *logically* identical to the im2col-lowered matrix (same
/// `(row, col) → value` mapping, so checksums, reference oracles, and
/// outputs are byte-identical) without materializing the copy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatrixLayout {
    /// `data[r * cols + c]` — the default.
    #[default]
    RowMajor,
    /// An NCHW tensor viewed as the `(images·spatial) × channels`
    /// activation matrix of a 1×1 stride-1 unpadded convolution: row
    /// `r` is image `r / spatial`, pixel `r % spatial`; column `c` is a
    /// channel; element `(r, c)` lives at
    /// `((r / spatial)·cols + c)·spatial + (r % spatial)`.
    NchwLowered {
        /// Pixels per image plane (`height × width`).
        spatial: usize,
    },
    /// An NCHW tensor viewed as the im2col-lowered activation matrix of
    /// an arbitrary convolution geometry — the implicit-GEMM view. Row
    /// `r` is output pixel `(n, oy, ox)`, column `c` is filter tap
    /// `(channel, ky, kx)`; taps that fall into the zero padding have no
    /// physical element and read as zero.
    Im2col(Im2colView),
}

/// Geometry of an implicit-GEMM (fused im2col) activation view: enough
/// convolution parameters to map a lowered-matrix element `(row, col)`
/// onto the underlying NCHW tensor, or onto the zero padding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Im2colView {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square filter extent.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Im2colView {
    /// Physical NCHW index of lowered element `(r, c)`, or `None` when
    /// the tap lands in the zero padding.
    #[inline]
    fn tap(&self, r: usize, c: usize) -> Option<usize> {
        let spatial = self.out_h * self.out_w;
        let (n, p) = (r / spatial, r % spatial);
        let (oy, ox) = (p / self.out_w, p % self.out_w);
        let kk = self.kernel * self.kernel;
        let (ch, rem) = (c / kk, c % kk);
        let (ky, kx) = (rem / self.kernel, rem % self.kernel);
        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
        let ix = (ox * self.stride + kx) as isize - self.padding as isize;
        if iy < 0 || ix < 0 || iy as usize >= self.height || ix as usize >= self.width {
            return None;
        }
        Some(((n * self.channels + ch) * self.height + iy as usize) * self.width + ix as usize)
    }

    /// Rows of the lowered matrix for `images` images.
    pub fn rows(&self, images: usize) -> usize {
        images * self.out_h * self.out_w
    }

    /// Columns of the lowered matrix (`channels · kernel²`).
    pub fn cols(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }
}

/// Walks the in-bounds taps of an im2col view in lowered row-major
/// order as maximal contiguous runs: for each (row, channel, ky) whose
/// input row is in bounds, `run(row, col0, src0, len)` describes `len`
/// consecutive lowered columns starting at `col0` backed by `len`
/// consecutive NCHW elements starting at `src0`. Both the staging
/// decode and the raw-panel copy gather through this one walk, so the
/// fused path produces panels byte-identical to a materialized
/// lowering.
#[inline]
fn im2col_runs(v: &Im2colView, images: usize, mut run: impl FnMut(usize, usize, usize, usize)) {
    let kk = v.kernel * v.kernel;
    for n in 0..images {
        for oy in 0..v.out_h {
            for ox in 0..v.out_w {
                let r = (n * v.out_h + oy) * v.out_w + ox;
                let base_ix = (ox * v.stride) as isize - v.padding as isize;
                let kx0 = (-base_ix).max(0) as usize;
                let kx1 = (v.width as isize - base_ix).clamp(0, v.kernel as isize) as usize;
                if kx0 >= kx1 {
                    continue;
                }
                let ix0 = (base_ix + kx0 as isize) as usize;
                for ch in 0..v.channels {
                    for ky in 0..v.kernel {
                        let iy = (oy * v.stride + ky) as isize - v.padding as isize;
                        if iy < 0 || iy as usize >= v.height {
                            continue;
                        }
                        let src0 = ((n * v.channels + ch) * v.height + iy as usize) * v.width + ix0;
                        run(r, ch * kk + ky * v.kernel + kx0, src0, kx1 - kx0);
                    }
                }
            }
        }
    }
}

/// A row-major FP16 matrix (see [`MatrixLayout`] for the one
/// alternative storage layout).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Element storage, `rows * cols` elements, addressed per `layout`.
    ///
    /// Elements are opaque 16-bit *storage codes* interpreted per
    /// `dtype`; 8-bit formats (fp8, int8) occupy the low byte. For the
    /// default [`Dtype::F16`] the codes are literal `F16` values, so the
    /// pre-dtype engine is byte-for-byte this type with `dtype = F16`.
    pub data: Vec<F16>,
    /// How `(row, col)` maps into `data`.
    pub layout: MatrixLayout,
    /// The storage format `data`'s codes decode through.
    pub dtype: Dtype,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F16::ZERO; rows * cols],
            layout: MatrixLayout::RowMajor,
            dtype: Dtype::F16,
        }
    }

    /// Re-tags the storage format (every format encodes zero as `0x0000`
    /// and existing codes are reinterpreted, so this is only meaningful
    /// on fresh/zeroed matrices or codes already produced by `dtype`).
    pub fn with_dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = dtype;
        self
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F16) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix {
            rows,
            cols,
            data,
            layout: MatrixLayout::RowMajor,
            dtype: Dtype::F16,
        }
    }

    /// Wraps an NCHW tensor buffer as the activation matrix of a 1×1
    /// stride-1 unpadded convolution — `images·spatial` rows (one per
    /// output pixel), `channels` columns — without copying. The caller
    /// gets the buffer back via `.data` when done.
    pub fn nchw_lowered(images: usize, channels: usize, spatial: usize, data: Vec<F16>) -> Self {
        assert_eq!(data.len(), images * channels * spatial, "NCHW extent");
        Matrix {
            rows: images * spatial,
            cols: channels,
            data,
            layout: MatrixLayout::NchwLowered { spatial },
            dtype: Dtype::F16,
        }
    }

    /// Wraps an NCHW tensor buffer as the im2col-lowered activation
    /// matrix of an arbitrary convolution geometry — `images·out_h·out_w`
    /// rows (one per output pixel), `channels·kernel²` columns — without
    /// copying. Taps in the zero padding read as zero. The caller gets
    /// the buffer back via `.data` when done.
    pub fn im2col_lowered(images: usize, view: Im2colView, data: Vec<F16>) -> Self {
        assert_eq!(
            data.len(),
            images * view.channels * view.height * view.width,
            "NCHW extent"
        );
        Matrix {
            rows: view.rows(images),
            cols: view.cols(),
            data,
            layout: MatrixLayout::Im2col(view),
            dtype: Dtype::F16,
        }
    }

    /// Physical index of logical element `(r, c)`, or `None` when the
    /// element is a zero-padding tap of an im2col view (no storage).
    #[inline]
    fn index(&self, r: usize, c: usize) -> Option<usize> {
        match self.layout {
            MatrixLayout::RowMajor => Some(r * self.cols + c),
            MatrixLayout::NchwLowered { spatial } => {
                Some(((r / spatial) * self.cols + c) * spatial + (r % spatial))
            }
            MatrixLayout::Im2col(v) => v.tap(r, c),
        }
    }

    /// Deterministic pseudo-random matrix with entries in `[-2, 2]`
    /// quantized to FP16 — the magnitude regime of normalized NN
    /// activations and weights.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        Self::from_fn(rows, cols, |_, _| F16::from_f32(rng.range_f32(-2.0, 2.0)))
    }

    /// Like [`Self::random`], but quantizing the same pseudo-random
    /// sample stream into `dtype`'s codes — for `Dtype::F16` this is
    /// byte-identical to [`Self::random`], so cross-dtype campaigns and
    /// golden tests compare runs over the same underlying values.
    pub fn random_dtype(rows: usize, cols: usize, seed: u64, dtype: Dtype) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut m = Self::from_fn(rows, cols, |_, _| {
            F16(dtype.encode(rng.range_f32(-2.0, 2.0)))
        });
        m.dtype = dtype;
        m
    }

    /// Element accessor (layout-aware). For non-F16 dtypes the returned
    /// value is the raw storage *code* in an `F16` wrapper — use
    /// [`Self::get_f32`]/[`Self::get_f64`] for the decoded value.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> F16 {
        // Zero-padding taps read as the zero code, which every dtype
        // decodes to 0.0 — exactly what a materialized lowering stores.
        match self.index(r, c) {
            Some(i) => self.data[i],
            None => F16::ZERO,
        }
    }

    /// Decoded element value (layout- and dtype-aware).
    #[inline]
    pub fn get_f32(&self, r: usize, c: usize) -> f32 {
        self.dtype.decode(self.get(r, c).to_bits())
    }

    /// Decoded element value in f64 (exact widening of [`Self::get_f32`]).
    #[inline]
    pub fn get_f64(&self, r: usize, c: usize) -> f64 {
        self.get_f32(r, c) as f64
    }

    /// Element mutator (layout-aware). Panics on a zero-padding tap of
    /// an im2col view — those elements have no storage.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F16) {
        let i = self
            .index(r, c)
            .expect("cannot write through a zero-padding tap of an im2col view");
        self.data[i] = v;
    }

    /// Copies into a larger zero-padded matrix. Already-fitting matrices
    /// take a no-op fast path (one bulk copy, no per-row loop).
    pub fn padded(&self, rows: usize, cols: usize) -> Matrix {
        if rows == self.rows && cols == self.cols {
            return self.clone();
        }
        let mut out = Matrix::default();
        self.copy_padded_into(rows, cols, &mut out);
        out
    }

    /// Like [`Self::padded`] but writing into a reusable destination:
    /// `out` is resized to `rows × cols` (reusing its buffer), zeroed,
    /// and the source is copied into its top-left corner.
    pub fn copy_padded_into(&self, rows: usize, cols: usize, out: &mut Matrix) {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        out.rows = rows;
        out.cols = cols;
        out.layout = MatrixLayout::RowMajor;
        out.dtype = self.dtype;
        out.data.clear();
        out.data.resize(rows * cols, F16::ZERO);
        match self.layout {
            MatrixLayout::NchwLowered { .. } => {
                // General gather for the non-row-major view (cold: only
                // hooked schemes stage raw panels from a lowered view).
                for r in 0..self.rows {
                    for c in 0..self.cols {
                        out.data[r * cols + c] = self.get(r, c);
                    }
                }
                return;
            }
            MatrixLayout::Im2col(v) => {
                let images = self.rows / (v.out_h * v.out_w);
                im2col_runs(&v, images, |r, c0, s0, len| {
                    out.data[r * cols + c0..r * cols + c0 + len]
                        .copy_from_slice(&self.data[s0..s0 + len]);
                });
                return;
            }
            MatrixLayout::RowMajor => {}
        }
        if cols == self.cols {
            out.data[..self.data.len()].copy_from_slice(&self.data);
            return;
        }
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            out.data[r * cols..r * cols + self.cols].copy_from_slice(src);
        }
    }

    /// Copies `rows` rows starting at `start` into a new matrix — the
    /// chunking primitive behind oversized-batch splitting.
    pub fn row_block(&self, start: usize, rows: usize) -> Matrix {
        assert!(start + rows <= self.rows, "row block out of range");
        assert_eq!(
            self.layout,
            MatrixLayout::RowMajor,
            "row_block requires a row-major matrix"
        );
        Matrix {
            rows,
            cols: self.cols,
            data: self.data[start * self.cols..(start + rows) * self.cols].to_vec(),
            layout: MatrixLayout::RowMajor,
            dtype: self.dtype,
        }
    }

    /// Decodes into a zero-padded row-major `f32` buffer of size
    /// `rows × cols` — the engine's pre-decoded panel form. Decoding is
    /// exact (every finite F16 is representable in f32), so downstream
    /// arithmetic is bit-identical to converting on the fly. The
    /// destination buffer is reused (resized, not reallocated, once its
    /// capacity covers the shape).
    pub(crate) fn decode_padded_into(&self, rows: usize, cols: usize, out: &mut Vec<f32>) {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        out.clear();
        out.resize(rows * cols, 0.0);
        match self.layout {
            MatrixLayout::NchwLowered { spatial } => {
                // Gather the lowered view channel-plane by channel-plane:
                // for a fixed (image, channel) the spatial run is contiguous
                // in the source and strided by `cols` in the destination.
                if self.dtype == Dtype::F16 {
                    for n in 0..self.rows / spatial {
                        for c in 0..self.cols {
                            let src = &self.data[(n * self.cols + c) * spatial..][..spatial];
                            for (s, v) in src.iter().enumerate() {
                                out[(n * spatial + s) * cols + c] = v.to_f32();
                            }
                        }
                    }
                } else {
                    let d = self.dtype;
                    for n in 0..self.rows / spatial {
                        for c in 0..self.cols {
                            let src = &self.data[(n * self.cols + c) * spatial..][..spatial];
                            for (s, v) in src.iter().enumerate() {
                                out[(n * spatial + s) * cols + c] = d.decode(v.to_bits());
                            }
                        }
                    }
                }
                return;
            }
            MatrixLayout::Im2col(v) => {
                // Implicit-GEMM gather: each in-bounds filter-tap run is
                // contiguous in both the NCHW source and the lowered
                // destination row; padding taps stay at the zero fill.
                let images = self.rows / (v.out_h * v.out_w);
                if self.dtype == Dtype::F16 {
                    im2col_runs(&v, images, |r, c0, s0, len| {
                        let dst = &mut out[r * cols + c0..r * cols + c0 + len];
                        for (d, s) in dst.iter_mut().zip(&self.data[s0..s0 + len]) {
                            *d = s.to_f32();
                        }
                    });
                } else {
                    let dt = self.dtype;
                    im2col_runs(&v, images, |r, c0, s0, len| {
                        let dst = &mut out[r * cols + c0..r * cols + c0 + len];
                        for (d, s) in dst.iter_mut().zip(&self.data[s0..s0 + len]) {
                            *d = dt.decode(s.to_bits());
                        }
                    });
                }
                return;
            }
            MatrixLayout::RowMajor => {}
        }
        // The dtype branch stays outside the element loops; F16 keeps
        // its original table-load loop untouched.
        if self.dtype == Dtype::F16 {
            for r in 0..self.rows {
                let src = &self.data[r * self.cols..(r + 1) * self.cols];
                let dst = &mut out[r * cols..r * cols + self.cols];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = s.to_f32();
                }
            }
        } else {
            let dt = self.dtype;
            for r in 0..self.rows {
                let src = &self.data[r * self.cols..(r + 1) * self.cols];
                let dst = &mut out[r * cols..r * cols + self.cols];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = dt.decode(s.to_bits());
                }
            }
        }
    }

    /// Like [`Self::decode_padded_into`] but transposed: the result is
    /// `cols × rows` row-major, so one *column* of `self` is contiguous.
    /// The engine stores the B panel this way so each thread's K-walk
    /// streams both operands linearly.
    pub(crate) fn decode_padded_transposed_into(
        &self,
        rows: usize,
        cols: usize,
        out: &mut Vec<f32>,
    ) {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        debug_assert_eq!(
            self.layout,
            MatrixLayout::RowMajor,
            "only the B operand (always row-major) is staged transposed"
        );
        out.clear();
        out.resize(rows * cols, 0.0);
        if self.dtype == Dtype::F16 {
            for r in 0..self.rows {
                let src = &self.data[r * self.cols..(r + 1) * self.cols];
                for (c, v) in src.iter().enumerate() {
                    out[c * rows + r] = v.to_f32();
                }
            }
        } else {
            let dt = self.dtype;
            for r in 0..self.rows {
                let src = &self.data[r * self.cols..(r + 1) * self.cols];
                for (c, v) in src.iter().enumerate() {
                    out[c * rows + r] = dt.decode(v.to_bits());
                }
            }
        }
    }

    /// Raw-code sibling of [`Self::decode_padded_transposed_into`]: the
    /// zero-padded `rows × cols` panel stored transposed (`cols × rows`
    /// row-major) without decoding. Hooked schemes replay per-thread
    /// K-walks against this panel, and the walk strides along a fixed
    /// column — storing it transposed makes that replay stream linearly
    /// instead of hopping a full row width per K-step.
    pub(crate) fn copy_padded_transposed_into(&self, rows: usize, cols: usize, out: &mut Matrix) {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        debug_assert_eq!(
            self.layout,
            MatrixLayout::RowMajor,
            "only the B operand (always row-major) is staged transposed"
        );
        out.rows = cols;
        out.cols = rows;
        out.layout = MatrixLayout::RowMajor;
        out.dtype = self.dtype;
        out.data.clear();
        out.data.resize(rows * cols, F16::ZERO);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, v) in src.iter().enumerate() {
                out.data[c * rows + r] = *v;
            }
        }
    }
}

/// Reference GEMM in FP64, decoding each operand through its dtype
/// (exact for 16-bit-or-narrower inputs up to K ≈ 2^40 terms).
pub fn gemm_reference_f64(a: &Matrix, b: &Matrix) -> Vec<f64> {
    assert_eq!(a.cols, b.rows);
    let mut c = vec![0.0f64; a.rows * b.cols];
    for i in 0..a.rows {
        for kk in 0..a.cols {
            let av = a.get_f64(i, kk);
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols {
                c[i * b.cols + j] += av * b.get_f64(kk, j);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_matches_copy_padded_into() {
        let m = Matrix::random(5, 7, 3);
        let p = m.padded(8, 10);
        assert_eq!((p.rows, p.cols), (8, 10));
        let mut reused = Matrix::zeros(1, 1);
        m.copy_padded_into(8, 10, &mut reused);
        assert_eq!(p, reused);
        // Padding region is zero; source region is intact.
        for r in 0..8 {
            for c in 0..10 {
                let want = if r < 5 && c < 7 {
                    m.get(r, c)
                } else {
                    F16::ZERO
                };
                assert_eq!(p.get(r, c), want, "({r},{c})");
            }
        }
    }

    #[test]
    fn copy_padded_into_reuses_without_stale_data() {
        let big = Matrix::random(16, 16, 4);
        let small = Matrix::random(2, 2, 5);
        let mut buf = Matrix::default();
        big.copy_padded_into(16, 16, &mut buf);
        small.copy_padded_into(4, 4, &mut buf);
        assert_eq!((buf.rows, buf.cols), (4, 4));
        assert_eq!(buf.get(0, 0), small.get(0, 0));
        assert_eq!(buf.get(3, 3), F16::ZERO, "stale data must be zeroed");
    }

    #[test]
    fn row_block_extracts_contiguous_rows() {
        let m = Matrix::random(10, 4, 6);
        let block = m.row_block(3, 4);
        assert_eq!((block.rows, block.cols), (4, 4));
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(block.get(r, c), m.get(3 + r, c));
            }
        }
    }

    #[test]
    fn decode_padded_into_is_exact_and_zero_padded() {
        let m = Matrix::random(3, 5, 7);
        let mut buf = vec![f32::NAN; 2]; // must be fully overwritten
        m.decode_padded_into(4, 8, &mut buf);
        assert_eq!(buf.len(), 32);
        for r in 0..4 {
            for c in 0..8 {
                let want = if r < 3 && c < 5 {
                    m.get(r, c).to_f32()
                } else {
                    0.0
                };
                assert_eq!(buf[r * 8 + c].to_bits(), want.to_bits());
            }
        }
        let mut t = Vec::new();
        m.decode_padded_transposed_into(4, 8, &mut t);
        for r in 0..4 {
            for c in 0..8 {
                assert_eq!(t[c * 4 + r].to_bits(), buf[r * 8 + c].to_bits());
            }
        }
    }

    #[test]
    fn copy_padded_transposed_matches_decoded_transpose() {
        let m = Matrix::random(5, 7, 11);
        let mut raw = Matrix::default();
        m.copy_padded_transposed_into(8, 8, &mut raw);
        assert_eq!((raw.rows, raw.cols), (8, 8));
        let mut dec = Vec::new();
        m.decode_padded_transposed_into(8, 8, &mut dec);
        for (i, v) in raw.data.iter().enumerate() {
            assert_eq!(v.to_f32().to_bits(), dec[i].to_bits(), "elem {i}");
        }
    }

    /// Materializes an im2col view element-by-element through `get` —
    /// the oracle the run-based gathers must match bit-for-bit.
    fn materialize(view: &Matrix) -> Matrix {
        Matrix::from_fn(view.rows, view.cols, |r, c| view.get(r, c)).with_dtype(view.dtype)
    }

    fn sample_view(kernel: usize, stride: usize, padding: usize) -> Matrix {
        let (channels, height, width, images) = (3, 9, 9, 2);
        let out_h = (height + 2 * padding - kernel) / stride + 1;
        let out_w = (width + 2 * padding - kernel) / stride + 1;
        let v = Im2colView {
            channels,
            height,
            width,
            kernel,
            stride,
            padding,
            out_h,
            out_w,
        };
        let t = Matrix::random(1, images * channels * height * width, 17);
        Matrix::im2col_lowered(images, v, t.data)
    }

    #[test]
    fn im2col_view_gathers_match_elementwise_materialization() {
        for (kernel, stride, padding) in [(3, 1, 1), (3, 2, 1), (5, 2, 2), (1, 1, 0), (7, 2, 3)] {
            let view = sample_view(kernel, stride, padding);
            let dense = materialize(&view);
            let (pr, pc) = (view.rows + 3, view.cols + 5);

            let mut from_view = Vec::new();
            let mut from_dense = Vec::new();
            view.decode_padded_into(pr, pc, &mut from_view);
            dense.decode_padded_into(pr, pc, &mut from_dense);
            assert_eq!(from_view, from_dense, "decode k{kernel}s{stride}p{padding}");

            let mut raw_view = Matrix::default();
            let mut raw_dense = Matrix::default();
            view.copy_padded_into(pr, pc, &mut raw_view);
            dense.copy_padded_into(pr, pc, &mut raw_dense);
            assert_eq!(raw_view, raw_dense, "raw copy k{kernel}s{stride}p{padding}");
        }
    }

    #[test]
    fn im2col_view_padding_taps_read_zero_in_every_dtype() {
        for dtype in Dtype::ALL {
            let mut view = sample_view(3, 1, 1).with_dtype(dtype);
            // Row 0 is output pixel (0,0): tap (ch=0, ky=0, kx=0) lands at
            // input (-1,-1), firmly in the padding.
            assert_eq!(view.get(0, 0), F16::ZERO);
            assert_eq!(view.get_f32(0, 0).to_bits(), 0.0f32.to_bits(), "{dtype:?}");
            view.dtype = Dtype::F16;
        }
    }
}
