//! The simulated threadblock execution: the SIMD/scalar microkernel
//! fills the block tile first (see [`super::simd`]), then every warp
//! and lane of the block runs its *epilogue* — scheme hooks, targeted
//! fault injection, and per-thread verdicts — against the tile.
//!
//! Schemes that consume per-step fragments get the whole K-walk in one
//! [`ThreadLocalScheme::walk_lane`] call (whose default implementation
//! replays it step by step through `on_k_step`, feeding exactly the
//! fragments the old fused walk fed), without redoing the accumulator
//! math: accumulators are read back from the tile, which already holds
//! the canonical-order values. Faulted accumulators are the one
//! exception — they are recomputed by the scalar cold walk with the
//! corruption applied mid-walk (accumulators are independent, so this
//! reproduces the faulted value bit-exactly).
//!
//! Everything here writes into caller-owned scratch
//! ([`BlockScratch`][super::panels::BlockScratch]) — the loops allocate
//! nothing, which is what makes the workspace-threaded execution path
//! allocation-free after warmup.

use super::fault_inject::{Detection, FaultKind, FaultPlan};
use super::panels::{BlockScratch, Panels};
use super::scheme::{LaneWalk, ThreadLocalScheme};
use super::simd::{self, GemmPath};
use super::EngineCounters;
use crate::tiling::{TilingConfig, STEP_K};
use aiga_fp16::F16;

/// Executes threadblock `(br, bc)`: the microkernel computes the block
/// tile, then every warp and lane runs its scheme instance and applies
/// targeted faults against `scratch.tile`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block<S, F>(
    tiling: &TilingConfig,
    k_steps: u64,
    br: u64,
    bc: u64,
    path: GemmPath,
    panels: &Panels,
    make_scheme: &F,
    faults: &[FaultPlan],
    scratch: &mut BlockScratch,
    detections: &mut Vec<Detection>,
    counters: &mut EngineCounters,
) where
    S: ThreadLocalScheme,
    F: Fn() -> S + Sync,
{
    let t = tiling;
    let warps_m = t.block_m / t.warp_m;
    let warps_n = t.block_n / t.warp_n;
    let mt = t.thread_mt() as usize;
    let nt = t.thread_nt() as usize;
    let k = panels.k;
    counters.k_steps = k_steps;
    let bm = t.block_m as usize;
    let bn = t.block_n as usize;
    let row0 = (br * t.block_m) as usize;
    let col0 = (bc * t.block_n) as usize;

    // The substrate: one microkernel pass computes the whole block tile
    // in the canonical accumulation order (padded rows/columns are zero
    // in the panels, so computing them is harmless and branch-free).
    simd::fill_block_tile(path, panels, row0, col0, bm, bn, &mut scratch.tile);

    scratch.ctx.block = (br, bc);

    for wr in 0..warps_m {
        for wc in 0..warps_n {
            let warp = wr * warps_n + wc;
            for lane in 0..32usize {
                let group = lane / 4;
                let quad = lane % 4;
                // Global rows/cols owned by this lane (PTX m16n8k8
                // fragment layout tiled across the warp tile).
                let ctx = &mut scratch.ctx;
                ctx.warp = warp;
                ctx.lane = lane;
                ctx.rows.clear();
                for gran in 0..(t.warp_m / 16) {
                    let base = (br * t.block_m + wr * t.warp_m + gran * 16) as usize + group;
                    ctx.rows.push(base);
                    ctx.rows.push(base + 8);
                }
                ctx.cols.clear();
                for gran in 0..(t.warp_n / 8) {
                    let base = (bc * t.block_n + wc * t.warp_n + gran * 8) as usize + 2 * quad;
                    ctx.cols.push(base);
                    ctx.cols.push(base + 1);
                }

                // Which accumulators (if any) the fault plans target.
                // The whole targeting machinery is skipped when no
                // faults are injected — the serving common case.
                scratch.fault_targets.clear();
                if !faults.is_empty() {
                    let ctx = &scratch.ctx;
                    scratch.fault_targets.extend(faults.iter().filter_map(|f| {
                        let ri = ctx.rows.iter().position(|&r| r == f.row)?;
                        let ci = ctx.cols.iter().position(|&c| c == f.col)?;
                        Some((ri * nt + ci, f.after_step, f.kind))
                    }));
                }

                let mut scheme = make_scheme();
                scheme.begin(&scratch.ctx);

                if scheme.needs_k_steps() {
                    // Whole-lane walk for hooked schemes: the scheme
                    // sees the same step-ordered fragments the fused
                    // walk used to feed it (via the default per-step
                    // replay, or a scheme's own fused walk over the
                    // panel slices); the accumulator math itself
                    // already happened in the microkernel. Raw panels
                    // are staged only when the scheme consumes them.
                    let (a16, b16_t): (&[F16], &[F16]) = if panels.staged16 {
                        (&panels.a16.data, &panels.b16_t.data)
                    } else {
                        (&[], &[])
                    };
                    scheme.walk_lane(&LaneWalk {
                        a_f32: &panels.a_f32,
                        b_f32_t: &panels.b_f32_t,
                        a16,
                        b16_t,
                        k,
                        rows: &scratch.ctx.rows,
                        cols: &scratch.ctx.cols,
                        k_steps,
                        dtype: panels.dtype,
                    });
                }

                // Gather the lane's accumulators from the tile. Columns
                // come in contiguous pairs (the fragment layout owns 2
                // adjacent columns per granule), so each pair is one
                // slice copy.
                {
                    let (ctx, acc, tile) = (&scratch.ctx, &mut scratch.acc, &scratch.tile);
                    for (ri, &r) in ctx.rows.iter().enumerate() {
                        let trow = (r - row0) * bn;
                        let acc_row = &mut acc[ri * nt..ri * nt + nt];
                        for (pair, chunk) in
                            ctx.cols.chunks_exact(2).zip(acc_row.chunks_exact_mut(2))
                        {
                            let c = pair[0] - col0;
                            chunk.copy_from_slice(&tile[trow + c..trow + c + 2]);
                        }
                    }
                }

                if !scratch.fault_targets.is_empty() {
                    let BlockScratch {
                        ctx,
                        acc,
                        fault_targets,
                        tile,
                        ..
                    } = scratch;
                    // Mid-kernel faults: recompute each targeted
                    // accumulator with the cold walk, corrupting it at
                    // the targeted K-step exactly as the in-loop
                    // injection used to.
                    for i in 0..fault_targets.len() {
                        let (idx, after, _) = fault_targets[i];
                        if after != u64::MAX {
                            let (ri, ci) = (idx / nt, idx % nt);
                            let r = ctx.rows[ri];
                            let c = ctx.cols[ci];
                            acc[idx] = faulted_dot(
                                &panels.a_f32[r * k..r * k + k],
                                &panels.b_f32_t[c * k..c * k + k],
                                idx,
                                fault_targets,
                            );
                        }
                    }
                    // Epilogue-datapath faults strike after the K-walk.
                    for &(idx, after, kind) in fault_targets.iter() {
                        if after == u64::MAX {
                            acc[idx] = kind.apply(acc[idx]);
                        }
                    }
                    // Write the corrupted accumulators back so the
                    // scattered output carries the fault.
                    for (ri, &r) in ctx.rows.iter().enumerate() {
                        let trow = (r - row0) * bn;
                        let acc_row = &acc[ri * nt..ri * nt + nt];
                        for (pair, chunk) in ctx.cols.chunks_exact(2).zip(acc_row.chunks_exact(2)) {
                            let c = pair[0] - col0;
                            tile[trow + c..trow + c + 2].copy_from_slice(chunk);
                        }
                    }
                }

                let verdict = scheme.finalize(&scratch.ctx, &scratch.acc, mt, nt);
                if verdict.fault_detected {
                    detections.push(Detection {
                        block: (br, bc),
                        warp,
                        lane,
                        residual: verdict.residual,
                        threshold: verdict.threshold,
                    });
                }
                counters.threads += 1;
                counters.baseline_mmas += k_steps * t.mmas_per_thread_step();
                counters.scheme.merge(scheme.counters());
            }
        }
    }
}

/// The cold walk for a faulted accumulator: the canonical FMA chain
/// with the corruption applied at the targeted simulated K-step (one
/// step consumes [`STEP_K`] = 2 elements, as in Figure 3).
fn faulted_dot(
    a_row: &[f32],
    b_col: &[f32],
    idx: usize,
    fault_targets: &[(usize, u64, FaultKind)],
) -> f32 {
    let mut s = 0.0f32;
    for (step, (aa, bb)) in a_row
        .chunks_exact(STEP_K as usize)
        .zip(b_col.chunks_exact(STEP_K as usize))
        .enumerate()
    {
        s = aa[0].mul_add(bb[0], s);
        s = aa[1].mul_add(bb[1], s);
        for &(i, after, kind) in fault_targets {
            if i == idx && after == step as u64 {
                s = kind.apply(s);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::super::scheme::{KStep, ThreadCtx};
    use super::super::{GemmEngine, Matrix, NoScheme, ThreadVerdict};
    use super::*;
    use crate::shape::GemmShape;

    fn engine_for(m: u64, n: u64, k: u64) -> GemmEngine {
        GemmEngine::new(
            GemmShape::new(m, n, k),
            TilingConfig {
                block_m: 32,
                block_n: 32,
                block_k: 16,
                warp_m: 16,
                warp_n: 16,
            },
        )
    }

    #[test]
    fn hooked_schemes_see_matching_raw_and_decoded_fragments() {
        // A probe scheme that verifies the engine hands `on_k_step`
        // consistent views: decoded fragments must equal the raw FP16
        // fragments element for element, every step.
        #[derive(Default)]
        struct Probe {
            steps_seen: u64,
        }
        impl ThreadLocalScheme for Probe {
            fn begin(&mut self, _ctx: &ThreadCtx) {}
            fn on_k_step(&mut self, step: &KStep<'_>) {
                assert_eq!(step.a.len(), step.mt * 2);
                assert_eq!(step.b.len(), 2 * step.nt);
                for (raw, dec) in step.a.iter().zip(step.a_f32) {
                    assert_eq!(raw.to_f32().to_bits(), dec.to_bits());
                }
                for (raw, dec) in step.b.iter().zip(step.b_f32) {
                    assert_eq!(raw.to_f32().to_bits(), dec.to_bits());
                }
                self.steps_seen += 1;
            }
            fn finalize(
                &mut self,
                _ctx: &ThreadCtx,
                _acc: &[f32],
                _mt: usize,
                _nt: usize,
            ) -> ThreadVerdict {
                assert_eq!(self.steps_seen, 32, "one hook call per K-step");
                ThreadVerdict::clean()
            }
        }
        let a = Matrix::random(32, 64, 14);
        let b = Matrix::random(64, 32, 15);
        let eng = engine_for(32, 32, 64);
        let hooked = eng.run(&a, &b, Probe::default, None);
        let fast = eng.run(&a, &b, || NoScheme, None);
        // And the hooked walk must agree with the fast path bit for bit.
        assert_eq!(hooked.c, fast.c);
    }

    #[test]
    fn larger_tiling_produces_identical_results() {
        let (m, n, k) = (128, 128, 32);
        let a = Matrix::random(m, k, 12);
        let b = Matrix::random(k, n, 13);
        let small = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
        let big = GemmEngine::new(
            GemmShape::new(m as u64, n as u64, k as u64),
            TilingConfig {
                block_m: 128,
                block_n: 128,
                block_k: 32,
                warp_m: 64,
                warp_n: 64,
            },
        )
        .run(&a, &b, || NoScheme, None);
        // Same K-walk order per element => bit-identical FP32 outputs.
        assert_eq!(small.c, big.c);
    }
}
