//! The functional GEMM engine: a software model of a CUTLASS-style FP16
//! Tensor Core kernel.
//!
//! The engine executes `C = A · B` through the full hierarchy of Figure 2:
//! the grid is split into threadblock tiles, threadblocks into warp tiles,
//! and warp tiles into per-thread fragments following the `m16n8k8` PTX
//! layout (each lane owns 2 rows per 16-row MMA granule and 2 columns per
//! 8-column granule). Each simulated thread walks the K dimension in
//! steps of 2, loading an `Mt × 2` chunk of `At` and a `2 × Nt` chunk of
//! `Bt` exactly as Figure 3 describes, accumulating into FP32 registers.
//!
//! # Module map
//!
//! The engine is decomposed into focused modules:
//!
//! - [`matrix`] — the row-major FP16 [`Matrix`] plus the `*_into`
//!   staging primitives and the FP64 reference GEMM;
//! - [`scheme`] — the [`ThreadLocalScheme`] seam where redundancy
//!   schemes plug into the thread-level inner loop, with the
//!   [`KStep`]/[`ThreadCtx`]/[`ThreadVerdict`] types that cross it;
//! - [`fault_inject`] — the §2.3 fault model ([`FaultPlan`],
//!   [`FaultKind`]) and per-thread [`Detection`] provenance;
//! - [`panels`] — per-run operand staging (decoded + microkernel-packed
//!   panels) and the reusable [`Workspace`] that owns all scratch
//!   (panels, block tile, thread buffers, output, activation staging,
//!   checksum scratch, the block-parallel stripe pool);
//! - [`simd`] — the register-tiled AVX2+FMA microkernel, the scalar
//!   oracle, the canonical accumulation-order contract, and the runtime
//!   dispatch between them ([`GemmPath`], `AIGA_FORCE_SCALAR`);
//! - [`walk`] (private) — block execution: microkernel tile fill, then
//!   the per-lane epilogue (scheme hooks, fault targeting, verdicts)
//!   with a step-ordered fragment replay for hooked schemes;
//! - this module — [`GemmEngine`] itself with the two execution entry
//!   points and output assembly.
//!
//! # Execution contract
//!
//! [`GemmEngine::run_multi_into`] is the hot-path entry: the caller
//! supplies a [`Workspace`] and the engine stages, executes, and leaves
//! the [`GemmOutput`] inside it — zero heap allocations once the
//! workspace is warm. Large multi-stripe problems fan out across
//! block-row stripes onto scoped worker threads, each driving private
//! [`Workspace`] stripe scratch; small problems (the serving common
//! case, where concurrency comes from many requests each holding a warm
//! workspace) stay sequential and allocation-free.
//! [`GemmEngine::run`]/[`GemmEngine::run_multi`] are the allocating
//! conveniences (block-parallel via `aiga_util::par_map`) that return an
//! owned output. All paths produce byte-identical results;
//! `crates/core/tests/engine_golden.rs` pins them to the canonical
//! accumulation order's bytes on both [`GemmPath`]s.

pub mod fault_inject;
pub mod matrix;
pub mod panels;
pub mod scheme;
pub mod simd;
mod walk;

pub use aiga_dtype::Dtype;
pub use fault_inject::{Detection, FaultKind, FaultPlan};
pub use matrix::{gemm_reference_f64, Im2colView, Matrix, MatrixLayout};
pub use panels::{CheckScratch, Workspace};
pub use scheme::{
    KStep, LaneWalk, NoScheme, SchemeCounters, ThreadCtx, ThreadLocalScheme, ThreadVerdict,
};
pub use simd::GemmPath;

use crate::shape::GemmShape;
use crate::tiling::TilingConfig;
use panels::{BlockScratch, Panels};

/// Minimum covered FLOP count (`2·cov_m·cov_n·k`) before
/// [`GemmEngine::run_multi_into`] fans block-row stripes out across
/// worker threads. Below this, spawn overhead dwarfs the win and the
/// sequential regime keeps its zero-allocation guarantee; 2·256³ (a
/// 256³ GEMM) sits exactly at the threshold.
pub const BLOCK_PAR_MIN_FLOPS: u128 = 32 * 1024 * 1024;

/// Test seam: forces the stripe-parallel worker count (0 = off) so the
/// block-parallel arm can be exercised on single-core runners, where
/// `effective_workers` would otherwise always serialize. Only consulted
/// when a problem already qualifies for the parallel regime.
#[cfg(test)]
static FORCE_WORKERS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Aggregated execution statistics of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineCounters {
    /// Simulated threads executed.
    pub threads: u64,
    /// K-steps per thread.
    pub k_steps: u64,
    /// Baseline MMA participations (Table 1: `Mt·Nt/2` per thread-step).
    pub baseline_mmas: u64,
    /// Scheme-reported extras, summed over threads.
    pub scheme: SchemeCounters,
}

/// Output of one simulated GEMM kernel.
#[derive(Clone, Debug, Default)]
pub struct GemmOutput {
    /// Row-major FP32 pre-activation output, `m × n` (unpadded).
    pub c: Vec<f32>,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Threads that flagged a fault.
    pub detections: Vec<Detection>,
    /// Execution statistics.
    pub counters: EngineCounters,
}

impl GemmOutput {
    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.c[r * self.n + c]
    }

    /// True if any thread flagged a fault.
    pub fn fault_detected(&self) -> bool {
        !self.detections.is_empty()
    }

    /// Re-arms this output for a fresh `m × n` run, reusing its buffers.
    fn reset(&mut self, m: usize, n: usize) {
        self.m = m;
        self.n = n;
        self.c.clear();
        self.c.resize(m * n, 0.0);
        self.detections.clear();
        self.counters = EngineCounters::default();
    }
}

/// The functional GEMM engine for one problem shape and tiling.
#[derive(Clone, Debug)]
pub struct GemmEngine {
    shape: GemmShape,
    tiling: TilingConfig,
}

impl GemmEngine {
    /// Creates an engine with an explicit tiling.
    pub fn new(shape: GemmShape, tiling: TilingConfig) -> Self {
        tiling.validate();
        GemmEngine {
            shape: shape.padded_to_mma(),
            tiling,
        }
    }

    /// Creates an engine with the default tiling for the shape on a T4.
    pub fn with_default_tiling(shape: GemmShape) -> Self {
        let tiling = TilingConfig::select(shape, &crate::device::DeviceSpec::t4());
        Self::new(shape, tiling)
    }

    /// The padded shape this engine executes.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// The tiling in use.
    pub fn tiling(&self) -> TilingConfig {
        self.tiling
    }

    /// Covered (grid-padded) output extent and the padded K.
    fn coverage(&self) -> (u64, u64, usize, usize, usize) {
        let (gm, gn) = self.tiling.grid(self.shape);
        let cov_m = (gm * self.tiling.block_m) as usize;
        let cov_n = (gn * self.tiling.block_n) as usize;
        (gm, gn, cov_m, cov_n, self.shape.k as usize)
    }

    /// Runs the kernel: multiplies `a` (`m × k`) by `b` (`k × n`),
    /// executing `make_scheme()` inside every simulated thread and
    /// applying `fault` if given. Returns the unpadded `m × n` output.
    pub fn run<S, F>(
        &self,
        a: &Matrix,
        b: &Matrix,
        make_scheme: F,
        fault: Option<FaultPlan>,
    ) -> GemmOutput
    where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        let faults: Vec<FaultPlan> = fault.into_iter().collect();
        self.run_multi(a, b, make_scheme, &faults)
    }

    /// Like [`Self::run`] but injecting any number of simultaneous faults
    /// — used to exercise the multi-checksum extension of §2.4 (single-
    /// checksum ABFT only guarantees detection of one fault).
    ///
    /// This is the allocating convenience: it stages fresh panels and
    /// executes blocks in parallel. The serving hot path uses
    /// [`Self::run_multi_into`] instead.
    pub fn run_multi<S, F>(
        &self,
        a: &Matrix,
        b: &Matrix,
        make_scheme: F,
        faults: &[FaultPlan],
    ) -> GemmOutput
    where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        let (out_m, out_n) = (a.rows, b.cols);
        let (gm, gn, cov_m, cov_n, k) = self.coverage();
        let k_steps = self.tiling.k_steps(self.shape);

        // Capability probe: schemes that never consume K-step fragments
        // (the serving common case) let the engine skip both the raw
        // FP16 panel staging and the per-step virtual call; fragment
        // consumers that only read the decoded views skip the raw
        // staging too.
        let probe = make_scheme();
        let needs16 = probe.needs_k_steps() && probe.uses_raw_fragments();
        let path = simd::active_path();
        let mut panels = Panels::default();
        panels.stage(a, b, needs16, path.is_simd(), cov_m, cov_n, k);

        let blocks: Vec<(u64, u64)> = (0..gm)
            .flat_map(|br| (0..gn).map(move |bc| (br, bc)))
            .collect();

        let results = aiga_util::par_map(&blocks, |&(br, bc)| {
            let mut scratch = BlockScratch::default();
            scratch.prepare(&self.tiling);
            let mut detections = Vec::new();
            let mut counters = EngineCounters::default();
            walk::run_block(
                &self.tiling,
                k_steps,
                br,
                bc,
                path,
                &panels,
                &make_scheme,
                faults,
                &mut scratch,
                &mut detections,
                &mut counters,
            );
            (br, bc, scratch.tile, detections, counters)
        });

        let mut out = GemmOutput::default();
        out.reset(out_m, out_n);
        for (br, bc, tile, detections, counters) in results {
            scatter_tile(&tile, &self.tiling, br, bc, 0, out_m, out_n, &mut out.c);
            out.detections.extend(detections);
            out.counters.threads += counters.threads;
            out.counters.baseline_mmas += counters.baseline_mmas;
            out.counters.scheme.merge(counters.scheme);
            out.counters.k_steps = counters.k_steps;
        }
        out
    }

    /// The workspace-threaded execution entry: runs the kernel entirely
    /// inside `ws`, leaving the result in [`Workspace::output`] (also
    /// returned by reference). After one warm-up run at a given shape,
    /// subsequent runs perform **zero heap allocations** — panels,
    /// block scratch, and the output buffer are all resized in place.
    ///
    /// Small problems execute their blocks sequentially on the calling
    /// thread: the intended serving concurrency regime is many
    /// concurrent requests each holding a warm workspace (the `Session`
    /// checkout pool), not intra-GEMM fan-out per call, and the
    /// sequential regime is the one the allocation tests pin at zero.
    /// Problems spanning several block-row stripes with at least
    /// [`BLOCK_PAR_MIN_FLOPS`] of work fan the stripes out across scoped
    /// worker threads, each executing from private stripe scratch in
    /// `ws` (output rows are disjoint per stripe, so workers share only
    /// the read-only panels); the stripe pool ratchets like every other
    /// workspace buffer, though thread spawning itself is not
    /// allocation-free. Results are byte-identical to
    /// [`Self::run_multi`] in either regime, detections in the same
    /// block-major order.
    pub fn run_multi_into<'w, S, F>(
        &self,
        a: &Matrix,
        b: &Matrix,
        make_scheme: F,
        faults: &[FaultPlan],
        ws: &'w mut Workspace,
    ) -> &'w GemmOutput
    where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        let (out_m, out_n) = (a.rows, b.cols);
        let (gm, gn, cov_m, cov_n, k) = self.coverage();
        let k_steps = self.tiling.k_steps(self.shape);

        let probe = make_scheme();
        let needs16 = probe.needs_k_steps() && probe.uses_raw_fragments();
        let path = simd::active_path();
        ws.panels
            .stage(a, b, needs16, path.is_simd(), cov_m, cov_n, k);
        ws.out.reset(out_m, out_n);

        let stripes = gm as usize;
        let flops = 2 * cov_m as u128 * cov_n as u128 * k as u128;
        let workers = if stripes >= 2 && flops >= BLOCK_PAR_MIN_FLOPS {
            aiga_util::effective_workers(stripes)
        } else {
            1
        };
        #[cfg(test)]
        let workers = match FORCE_WORKERS.load(std::sync::atomic::Ordering::Relaxed) {
            0 => workers,
            f if stripes >= 2 && flops >= BLOCK_PAR_MIN_FLOPS => f.min(stripes),
            _ => workers,
        };

        if workers <= 1 {
            ws.block.prepare(&self.tiling);
            for br in 0..gm {
                for bc in 0..gn {
                    walk::run_block(
                        &self.tiling,
                        k_steps,
                        br,
                        bc,
                        path,
                        &ws.panels,
                        &make_scheme,
                        faults,
                        &mut ws.block,
                        &mut ws.out.detections,
                        &mut ws.out.counters,
                    );
                    scatter_tile(
                        &ws.block.tile,
                        &self.tiling,
                        br,
                        bc,
                        0,
                        out_m,
                        out_n,
                        &mut ws.out.c,
                    );
                }
            }
            return &ws.out;
        }

        // Block-parallel regime: contiguous block-row stripe ranges per
        // worker. Stripe s owns output rows [s·block_m, (s+1)·block_m),
        // so each worker scatters into a disjoint row slice of the
        // output carved off with split_at_mut.
        ws.ensure_stripe_pool(workers, &self.tiling);
        let bm = self.tiling.block_m as usize;
        let per = stripes.div_ceil(workers);
        let tiling = &self.tiling;
        let panels = &ws.panels;
        std::thread::scope(|scope| {
            let mut rest: &mut [f32] = &mut ws.out.c;
            let mut row_base = 0usize;
            for (w, scr) in ws.stripe_pool[..workers].iter_mut().enumerate() {
                let s0 = w * per;
                let s1 = ((w + 1) * per).min(stripes);
                if s0 >= s1 {
                    break;
                }
                let rows = (s1 * bm).min(out_m) - row_base;
                let (mine, rem) = std::mem::take(&mut rest).split_at_mut(rows * out_n);
                rest = rem;
                let base = row_base;
                row_base += rows;
                let make_scheme = &make_scheme;
                scope.spawn(move || {
                    // Workers obey the no-nested-fan-out discipline of
                    // `par_map` (a scheme or campaign above us may
                    // already be parallel).
                    aiga_util::as_worker(|| {
                        for br in s0 as u64..s1 as u64 {
                            for bc in 0..gn {
                                walk::run_block(
                                    tiling,
                                    k_steps,
                                    br,
                                    bc,
                                    path,
                                    panels,
                                    make_scheme,
                                    faults,
                                    &mut scr.block,
                                    &mut scr.detections,
                                    &mut scr.counters,
                                );
                                scatter_tile(
                                    &scr.block.tile,
                                    tiling,
                                    br,
                                    bc,
                                    base,
                                    out_m,
                                    out_n,
                                    mine,
                                );
                            }
                        }
                    });
                });
            }
        });
        // Merge in worker (= stripe) order so detections keep the same
        // block-major order the sequential walk produces.
        for scr in &mut ws.stripe_pool[..workers] {
            ws.out.detections.append(&mut scr.detections);
            ws.out.counters.threads += scr.counters.threads;
            ws.out.counters.baseline_mmas += scr.counters.baseline_mmas;
            ws.out.counters.scheme.merge(scr.counters.scheme);
        }
        ws.out.counters.k_steps = k_steps;
        &ws.out
    }

    /// Recomputes every output cell owned by one simulated lane,
    /// reading the operand panels still staged in `ws` from the most
    /// recent run. This is the targeted-recompute primitive behind
    /// thread-level fault correction: a `Detection` names the
    /// `(block, warp, lane)` that flagged, and the `m16n8k8` fragment
    /// layout determines exactly which `Mt × Nt` cells that lane owns.
    ///
    /// Returns the number of cells rewritten (cells falling in the
    /// cropped-away padding are skipped). Allocation-free.
    pub fn recompute_lane_into(
        &self,
        block: (u64, u64),
        warp: u64,
        lane: usize,
        ws: &mut Workspace,
    ) -> u32 {
        let t = &self.tiling;
        let (br, bc) = block;
        let warps_n = t.block_n / t.warp_n;
        let wr = warp / warps_n;
        let wc = warp % warps_n;
        let group = lane / 4;
        let quad = lane % 4;
        let mut repaired = 0u32;
        for rgran in 0..(t.warp_m / 16) {
            let rbase = (br * t.block_m + wr * t.warp_m + rgran * 16) as usize + group;
            for &r in &[rbase, rbase + 8] {
                for cgran in 0..(t.warp_n / 8) {
                    let cbase = (bc * t.block_n + wc * t.warp_n + cgran * 8) as usize + 2 * quad;
                    for &c in &[cbase, cbase + 1] {
                        if ws.recompute_cell(r, c) {
                            repaired += 1;
                        }
                    }
                }
            }
        }
        repaired
    }
}

/// Copies one block tile into the cropped output buffer. `c` holds
/// output rows starting at `row_base` (the whole output for the
/// sequential path, one worker's disjoint row slice for the
/// block-parallel path).
#[allow(clippy::too_many_arguments)]
fn scatter_tile(
    tile: &[f32],
    tiling: &TilingConfig,
    br: u64,
    bc: u64,
    row_base: usize,
    out_m: usize,
    out_n: usize,
    c: &mut [f32],
) {
    let bm = tiling.block_m as usize;
    let bn = tiling.block_n as usize;
    let row0 = br as usize * bm;
    let col0 = bc as usize * bn;
    debug_assert!(row0 >= row_base, "tile precedes the caller's row slice");
    for lr in 0..bm {
        let gr = row0 + lr;
        if gr >= out_m {
            break;
        }
        let cols = bn.min(out_n.saturating_sub(col0));
        if cols == 0 {
            break;
        }
        let lrow = (gr - row_base) * out_n;
        c[lrow + col0..lrow + col0 + cols].copy_from_slice(&tile[lr * bn..lr * bn + cols]);
    }
}

#[cfg(test)]
mod tests;
