//! SIMD register-tiled GEMM microkernels and their runtime dispatch.
//!
//! The functional engine models a CUTLASS kernel's *semantics* (the
//! warp/lane fragment layout, the scheme hooks, the fault targeting),
//! but the arithmetic that fills a block tile is plain FP32 math — so it
//! can run on whatever the host does fastest. This module supplies that
//! substrate in the same pack→microkernel→epilogue decomposition real
//! GEMM libraries use:
//!
//! - [`pack_a`]/[`pack_b`] re-lay the decoded f32 panels into
//!   microkernel-friendly strips/panels (done once per run in
//!   `Panels::stage`);
//! - [`fill_block_tile`] computes one threadblock tile through either
//!   the AVX2+FMA register-tiled microkernel or the scalar oracle;
//! - [`active_path`] picks between them at runtime
//!   (`is_x86_feature_detected!`), honouring the `AIGA_FORCE_SCALAR=1`
//!   override so CI can exercise the oracle on any machine.
//!
//! # The canonical accumulation-order contract
//!
//! Every output element is produced by **one** FP32 accumulator updated
//! by a fused multiply-add per K element, in K order:
//!
//! ```text
//! acc = 0;  for kk in 0..k { acc = fma(a[row][kk], b[kk][col], acc) }
//! ```
//!
//! `fma` is the correctly-rounded fused multiply-add (`f32::mul_add` /
//! `vfmadd`), so the sequence is a pure function of the operands — not
//! of how it is compiled. The AVX2 microkernel gets its parallelism from
//! computing [`MICRO_MR`]`×`[`MICRO_NR`] *independent* chains at once,
//! never from splitting one chain, which is why the SIMD path, the
//! scalar oracle, the targeted-recompute repair path, and the faulted
//! cold walk are all byte-identical by construction. The golden tests in
//! `crates/core/tests/engine_golden.rs` pin this contract.

use super::panels::Panels;
use crate::tiling::{MICRO_MR, MICRO_NR, MICRO_PANEL};

// The main microkernel drives two B panels at once.
const _: () = assert!(MICRO_NR == 2 * MICRO_PANEL);
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which GEMM substrate fills block tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmPath {
    /// Register-tiled `MICRO_MR × MICRO_NR` microkernel using AVX2+FMA
    /// intrinsics over packed panels.
    Avx2Fma,
    /// The per-element scalar walk over the decoded panels — the
    /// bit-exact oracle (it may still use the hardware scalar FMA
    /// instruction; the contract fixes the *operation sequence*, and
    /// every correctly-rounded FMA computes the same bytes).
    Scalar,
}

impl GemmPath {
    /// True for vectorized paths.
    pub fn is_simd(self) -> bool {
        matches!(self, GemmPath::Avx2Fma)
    }

    /// Stable label for logs and bench records.
    pub fn as_str(self) -> &'static str {
        match self {
            GemmPath::Avx2Fma => "avx2+fma",
            GemmPath::Scalar => "scalar",
        }
    }
}

/// Test/bench override: 0 = none, 1 = Avx2Fma, 2 = Scalar.
static FORCED: AtomicU8 = AtomicU8::new(0);
static DETECTED: OnceLock<GemmPath> = OnceLock::new();
static ACTIVE: OnceLock<GemmPath> = OnceLock::new();

/// The best path this host supports, ignoring every override.
pub fn detect_path() -> GemmPath {
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return GemmPath::Avx2Fma;
            }
        }
        GemmPath::Scalar
    })
}

/// The path the engine dispatches to: a [`force_path`] override if one
/// is set, else `AIGA_FORCE_SCALAR=1` (checked once per process), else
/// [`detect_path`].
pub fn active_path() -> GemmPath {
    match FORCED.load(Ordering::Relaxed) {
        1 => return GemmPath::Avx2Fma,
        2 => return GemmPath::Scalar,
        _ => {}
    }
    *ACTIVE.get_or_init(|| {
        let forced_scalar =
            std::env::var_os("AIGA_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
        if forced_scalar {
            GemmPath::Scalar
        } else {
            detect_path()
        }
    })
}

/// Process-global dispatch override for tests and benches (`None`
/// restores normal dispatch). Forcing [`GemmPath::Avx2Fma`] on a host
/// where [`detect_path`] reports scalar is illegal (the microkernel
/// would execute unsupported instructions).
pub fn force_path(path: Option<GemmPath>) {
    let v = match path {
        None => 0,
        Some(GemmPath::Avx2Fma) => {
            assert!(
                detect_path().is_simd(),
                "cannot force the AVX2 path on a host without AVX2+FMA"
            );
            1
        }
        Some(GemmPath::Scalar) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// Packs the decoded A panel (`cov_m × k` row-major) into
/// [`MICRO_MR`]-row strips: strip `s` holds rows `s·MR .. s·MR+MR`,
/// element `(r, kk)` at `kk·MR + r` — one K step of a strip is one
/// contiguous broadcast group for the microkernel.
pub(crate) fn pack_a(a_f32: &[f32], cov_m: usize, k: usize, out: &mut Vec<f32>) {
    debug_assert_eq!(cov_m % MICRO_MR, 0, "coverage is strip-aligned");
    out.clear();
    out.resize(cov_m * k, 0.0);
    for s in 0..cov_m / MICRO_MR {
        let strip = &mut out[s * MICRO_MR * k..(s + 1) * MICRO_MR * k];
        for r in 0..MICRO_MR {
            let row = &a_f32[(s * MICRO_MR + r) * k..][..k];
            for (kk, &v) in row.iter().enumerate() {
                strip[kk * MICRO_MR + r] = v;
            }
        }
    }
}

/// Packs the decoded transposed B panel (`cov_n × k` row-major, one row
/// per output column) into [`MICRO_PANEL`]-wide K-major panels: panel
/// `p` holds columns `p·P .. p·P+P`, element `(kk, j)` at `kk·P + j` —
/// one K step of a panel is one aligned SIMD vector.
pub(crate) fn pack_b(b_f32_t: &[f32], cov_n: usize, k: usize, out: &mut Vec<f32>) {
    debug_assert_eq!(cov_n % MICRO_PANEL, 0, "coverage is panel-aligned");
    out.clear();
    out.resize(cov_n * k, 0.0);
    for p in 0..cov_n / MICRO_PANEL {
        let panel = &mut out[p * MICRO_PANEL * k..(p + 1) * MICRO_PANEL * k];
        for j in 0..MICRO_PANEL {
            let col = &b_f32_t[(p * MICRO_PANEL + j) * k..][..k];
            for (kk, &v) in col.iter().enumerate() {
                panel[kk * MICRO_PANEL + j] = v;
            }
        }
    }
}

/// The canonical dot product: one FMA per K element, in order (see the
/// module docs). This is the scalar oracle's inner loop and the shared
/// primitive behind targeted recompute and faulted-accumulator replay.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if detect_path().is_simd() {
            // SAFETY: FMA support was verified by detect_path.
            return unsafe { dot_fma(a, b) };
        }
    }
    dot_generic(a, b)
}

/// `dot_generic` compiled with the FMA target feature, so `mul_add`
/// lowers to the hardware instruction instead of a libm call. Bytes are
/// identical either way — both are correctly rounded.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
unsafe fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
    dot_generic(a, b)
}

#[inline(always)]
fn dot_generic(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        s = x.mul_add(*y, s);
    }
    s
}

/// Fills one `bm × bn` block tile (global origin `(row0, col0)`) from
/// the staged panels, through the dispatched microkernel. The tile
/// covers grid padding too (padded rows/columns are zero in the panels),
/// exactly like the simulated thread loop it replaces.
pub(crate) fn fill_block_tile(
    path: GemmPath,
    panels: &Panels,
    row0: usize,
    col0: usize,
    bm: usize,
    bn: usize,
    tile: &mut [f32],
) {
    debug_assert!(tile.len() >= bm * bn);
    match path {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the dispatcher only selects Avx2Fma when AVX2 and FMA
        // are present (detect_path / force_path enforce it).
        GemmPath::Avx2Fma => unsafe {
            fill_block_tile_avx2(panels, row0, col0, bm, bn, tile);
        },
        #[cfg(not(target_arch = "x86_64"))]
        GemmPath::Avx2Fma => unreachable!("AVX2 path dispatched on non-x86_64"),
        GemmPath::Scalar => {
            let k = panels.k;
            for lr in 0..bm {
                let a_row = &panels.a_f32[(row0 + lr) * k..][..k];
                let trow = &mut tile[lr * bn..(lr + 1) * bn];
                for (lc, out) in trow.iter_mut().enumerate() {
                    *out = dot(a_row, &panels.b_f32_t[(col0 + lc) * k..][..k]);
                }
            }
        }
    }
}

/// The AVX2+FMA register-tiled microkernel: walks the block tile in
/// `MICRO_MR × MICRO_NR` register tiles. Each register tile keeps 8 ymm
/// accumulators live (4 broadcast rows × 2 column vectors) across the
/// *entire* K extent — accumulators never spill, so each output element
/// is one in-order FMA chain, exactly the canonical order. Per K step:
/// 2 vector loads of B, 4 broadcasts of A, 8 FMAs.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fill_block_tile_avx2(
    panels: &Panels,
    row0: usize,
    col0: usize,
    bm: usize,
    bn: usize,
    tile: &mut [f32],
) {
    use std::arch::x86_64::*;
    let k = panels.k;
    debug_assert_eq!(row0 % MICRO_MR, 0);
    debug_assert_eq!(col0 % MICRO_PANEL, 0);
    debug_assert_eq!(bm % MICRO_MR, 0);
    debug_assert_eq!(bn % MICRO_PANEL, 0);
    debug_assert!(panels.a_pack.len() >= (row0 + bm) * k);
    debug_assert!(panels.b_pack.len() >= (col0 + bn) * k);
    let strips = bm / MICRO_MR;
    let npanels = bn / MICRO_PANEL;
    let s0 = row0 / MICRO_MR;
    let p0 = col0 / MICRO_PANEL;
    let a_pack = panels.a_pack.as_ptr();
    let b_pack = panels.b_pack.as_ptr();
    let tile = tile.as_mut_ptr();

    for s in 0..strips {
        let a_strip = a_pack.add((s0 + s) * MICRO_MR * k);
        let mut p = 0;
        // Main 4×16 tiles: two adjacent B panels at once.
        while p + 1 < npanels {
            let b_lo = b_pack.add((p0 + p) * MICRO_PANEL * k);
            let b_hi = b_pack.add((p0 + p + 1) * MICRO_PANEL * k);
            let mut acc0l = _mm256_setzero_ps();
            let mut acc0h = _mm256_setzero_ps();
            let mut acc1l = _mm256_setzero_ps();
            let mut acc1h = _mm256_setzero_ps();
            let mut acc2l = _mm256_setzero_ps();
            let mut acc2h = _mm256_setzero_ps();
            let mut acc3l = _mm256_setzero_ps();
            let mut acc3h = _mm256_setzero_ps();
            for kk in 0..k {
                let vb_lo = _mm256_loadu_ps(b_lo.add(kk * MICRO_PANEL));
                let vb_hi = _mm256_loadu_ps(b_hi.add(kk * MICRO_PANEL));
                let a_step = a_strip.add(kk * MICRO_MR);
                let va0 = _mm256_set1_ps(*a_step);
                acc0l = _mm256_fmadd_ps(va0, vb_lo, acc0l);
                acc0h = _mm256_fmadd_ps(va0, vb_hi, acc0h);
                let va1 = _mm256_set1_ps(*a_step.add(1));
                acc1l = _mm256_fmadd_ps(va1, vb_lo, acc1l);
                acc1h = _mm256_fmadd_ps(va1, vb_hi, acc1h);
                let va2 = _mm256_set1_ps(*a_step.add(2));
                acc2l = _mm256_fmadd_ps(va2, vb_lo, acc2l);
                acc2h = _mm256_fmadd_ps(va2, vb_hi, acc2h);
                let va3 = _mm256_set1_ps(*a_step.add(3));
                acc3l = _mm256_fmadd_ps(va3, vb_lo, acc3l);
                acc3h = _mm256_fmadd_ps(va3, vb_hi, acc3h);
            }
            let col = p * MICRO_PANEL;
            let t0 = tile.add((s * MICRO_MR) * bn + col);
            _mm256_storeu_ps(t0, acc0l);
            _mm256_storeu_ps(t0.add(MICRO_PANEL), acc0h);
            let t1 = tile.add((s * MICRO_MR + 1) * bn + col);
            _mm256_storeu_ps(t1, acc1l);
            _mm256_storeu_ps(t1.add(MICRO_PANEL), acc1h);
            let t2 = tile.add((s * MICRO_MR + 2) * bn + col);
            _mm256_storeu_ps(t2, acc2l);
            _mm256_storeu_ps(t2.add(MICRO_PANEL), acc2h);
            let t3 = tile.add((s * MICRO_MR + 3) * bn + col);
            _mm256_storeu_ps(t3, acc3l);
            _mm256_storeu_ps(t3.add(MICRO_PANEL), acc3h);
            p += 2;
        }
        // 4×8 tail when the block is an odd number of panels wide.
        if p < npanels {
            let b_lo = b_pack.add((p0 + p) * MICRO_PANEL * k);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for kk in 0..k {
                let vb = _mm256_loadu_ps(b_lo.add(kk * MICRO_PANEL));
                let a_step = a_strip.add(kk * MICRO_MR);
                acc0 = _mm256_fmadd_ps(_mm256_set1_ps(*a_step), vb, acc0);
                acc1 = _mm256_fmadd_ps(_mm256_set1_ps(*a_step.add(1)), vb, acc1);
                acc2 = _mm256_fmadd_ps(_mm256_set1_ps(*a_step.add(2)), vb, acc2);
                acc3 = _mm256_fmadd_ps(_mm256_set1_ps(*a_step.add(3)), vb, acc3);
            }
            let col = p * MICRO_PANEL;
            _mm256_storeu_ps(tile.add((s * MICRO_MR) * bn + col), acc0);
            _mm256_storeu_ps(tile.add((s * MICRO_MR + 1) * bn + col), acc1);
            _mm256_storeu_ps(tile.add((s * MICRO_MR + 2) * bn + col), acc2);
            _mm256_storeu_ps(tile.add((s * MICRO_MR + 3) * bn + col), acc3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged_panels(m: usize, n: usize, k: usize, seed: u64) -> Panels {
        use super::super::matrix::Matrix;
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let mut p = Panels::default();
        p.stage(&a, &b, false, true, m, n, k);
        p
    }

    #[test]
    fn packed_layouts_round_trip_the_panels() {
        let (m, n, k) = (16, 24, 8);
        let p = staged_panels(m, n, k, 42);
        for r in 0..m {
            for kk in 0..k {
                let s = r / MICRO_MR;
                let packed = p.a_pack[s * MICRO_MR * k + kk * MICRO_MR + (r % MICRO_MR)];
                assert_eq!(packed.to_bits(), p.a_f32[r * k + kk].to_bits());
            }
        }
        for c in 0..n {
            for kk in 0..k {
                let pan = c / MICRO_PANEL;
                let packed = p.b_pack[pan * MICRO_PANEL * k + kk * MICRO_PANEL + (c % MICRO_PANEL)];
                assert_eq!(packed.to_bits(), p.b_f32_t[c * k + kk].to_bits());
            }
        }
    }

    #[test]
    fn dot_is_the_in_order_fma_chain() {
        let a: Vec<f32> = (0..33).map(|i| (i as f32) * 0.37 - 3.0).collect();
        let b: Vec<f32> = (0..33).map(|i| 1.5 - (i as f32) * 0.21).collect();
        let mut want = 0.0f32;
        for (x, y) in a.iter().zip(&b) {
            want = x.mul_add(*y, want);
        }
        assert_eq!(dot(&a, &b).to_bits(), want.to_bits());
    }

    #[test]
    fn microkernel_matches_the_scalar_oracle_bit_for_bit() {
        if !detect_path().is_simd() {
            return; // nothing to compare on this host
        }
        // Odd-ish extents exercise the 4×8 tail (bn = 24 ⇒ 3 panels).
        for &(bm, bn, k) in &[(16usize, 16usize, 32usize), (32, 24, 56), (8, 40, 10)] {
            let p = staged_panels(bm, bn, k, 7 + (bm + bn + k) as u64);
            let mut simd = vec![0.0f32; bm * bn];
            let mut scalar = vec![0.0f32; bm * bn];
            fill_block_tile(GemmPath::Avx2Fma, &p, 0, 0, bm, bn, &mut simd);
            fill_block_tile(GemmPath::Scalar, &p, 0, 0, bm, bn, &mut scalar);
            let sb: Vec<u32> = simd.iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, cb, "bm={bm} bn={bn} k={k}");
        }
    }

    #[test]
    fn dispatch_honours_the_forced_override() {
        force_path(Some(GemmPath::Scalar));
        assert_eq!(active_path(), GemmPath::Scalar);
        force_path(None);
        // Ambient dispatch (env or detection) — just has to be callable.
        let _ = active_path();
    }
}
