//! DRAM traffic model for hierarchical GEMM kernels.
//!
//! The minimum possible traffic reads `A` and `B` once and writes `C`
//! once. Real kernels re-read operand tiles once working sets exceed the
//! L2 cache: every threadblock column re-reads its `A` panel and every
//! block row its `B` panel unless L2 retains them. We interpolate between
//! these extremes with a smooth L2-capacity factor — coarse, but monotone
//! and enough to keep large compute-bound GEMMs from looking
//! bandwidth-starved while leaving skinny NN layers at the minimum-traffic
//! limit (which dominates the paper's workloads).

use crate::device::DeviceSpec;
use crate::shape::{GemmShape, FP16_BYTES};
use crate::tiling::TilingConfig;

/// Estimated DRAM bytes moved by one FP16 GEMM kernel (reads + the FP16
/// store of `C`).
pub fn gemm_dram_bytes(shape: GemmShape, tiling: &TilingConfig, device: &DeviceSpec) -> f64 {
    gemm_dram_bytes_dtype(shape, tiling, device, FP16_BYTES)
}

/// Estimated DRAM bytes moved by one GEMM kernel whose operands (and
/// `C` store) are `elem_bytes` wide — the storage-dtype-aware traffic
/// model. Narrower storage shrinks the operand working set, which also
/// relieves the L2-pressure reread term.
pub fn gemm_dram_bytes_dtype(
    shape: GemmShape,
    tiling: &TilingConfig,
    device: &DeviceSpec,
    elem_bytes: u64,
) -> f64 {
    let p = shape.padded_to_mma();
    let (gm, gn) = tiling.grid(p);
    let a_bytes = (p.m * p.k * elem_bytes) as f64;
    let b_bytes = (p.k * p.n * elem_bytes) as f64;
    let c_bytes = (p.m * p.n * elem_bytes) as f64;

    // How many times the operand working set overflows L2 determines how
    // much re-reading the cache fails to absorb. CUTLASS's block swizzle
    // schedules tiles so that panels are reused while resident, which in
    // practice bounds re-reading to a small constant over the minimum
    // traffic — we cap it at 2× so that the roofline classification of a
    // layer stays governed by its arithmetic intensity (Eq. 1), as the
    // paper assumes.
    const MAX_REREAD: f64 = 2.0;
    let working_set = a_bytes + b_bytes;
    let pressure = working_set / device.l2_bytes as f64;
    let reread = |max_rereads: f64| -> f64 {
        if pressure <= 1.0 {
            1.0
        } else {
            pressure.min(max_rereads).min(MAX_REREAD)
        }
    };
    a_bytes * reread(gn as f64) + b_bytes * reread(gm as f64) + c_bytes
}

/// Effective achievable bandwidth given occupancy-derived efficiency.
pub fn effective_bandwidth(device: &DeviceSpec, efficiency: f64) -> f64 {
    device.mem_bw * efficiency.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(s: u64) -> (GemmShape, TilingConfig, DeviceSpec) {
        let shape = GemmShape::square(s);
        let dev = DeviceSpec::t4();
        (shape, TilingConfig::select(shape, &dev), dev)
    }

    #[test]
    fn small_problems_hit_the_minimum_traffic_bound() {
        let (shape, tiling, dev) = setup(256);
        let bytes = gemm_dram_bytes(shape, &tiling, &dev);
        assert_eq!(bytes, shape.min_bytes_fp16() as f64);
    }

    #[test]
    fn large_problems_reread_operands() {
        let (shape, tiling, dev) = setup(4096);
        let bytes = gemm_dram_bytes(shape, &tiling, &dev);
        assert!(bytes > shape.min_bytes_fp16() as f64);
        // But never more than the no-cache-at-all bound.
        let (gm, gn) = tiling.grid(shape);
        let worst = (shape.m * shape.k * 2 * gn
            + shape.k * shape.n * 2 * gm
            + shape.m * shape.n * 2) as f64;
        assert!(bytes <= worst);
    }

    #[test]
    fn traffic_is_monotone_in_problem_size() {
        let dev = DeviceSpec::t4();
        let mut prev = 0.0;
        for s in [32u64, 64, 128, 256, 512, 1024, 2048, 4096] {
            let shape = GemmShape::square(s);
            let tiling = TilingConfig::select(shape, &dev);
            let bytes = gemm_dram_bytes(shape, &tiling, &dev);
            assert!(bytes > prev, "size {s}");
            prev = bytes;
        }
    }

    #[test]
    fn skinny_nn_layers_stay_near_minimum() {
        // Huge-M, small-N conv-style layer: grid has one block column, so
        // no reread of A is possible and B trivially fits.
        let shape = GemmShape::new(518_400, 64, 64);
        let dev = DeviceSpec::t4();
        let tiling = TilingConfig::select(shape, &dev);
        let bytes = gemm_dram_bytes(shape, &tiling, &dev);
        assert!(bytes <= shape.min_bytes_fp16() as f64 * 1.6);
    }

    #[test]
    fn effective_bandwidth_clamps() {
        let dev = DeviceSpec::t4();
        assert_eq!(effective_bandwidth(&dev, 1.5), dev.mem_bw);
        assert_eq!(effective_bandwidth(&dev, 0.5), dev.mem_bw * 0.5);
    }
}
