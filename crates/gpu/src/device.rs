//! GPU device models.
//!
//! Published hardware parameters for the devices the paper discusses
//! (§3.3, §6.2). The compute-to-memory-bandwidth ratio (CMR) these
//! specifications produce is the right-hand side of the paper's Eq. 1 and
//! is what intensity-guided ABFT compares a layer's arithmetic intensity
//! against.

/// Hardware parameters of one GPU.
///
/// Throughputs are *peak* device-wide numbers (the same figures the paper
/// quotes from vendor datasheets); the timing model derates them through
/// utilization and occupancy factors.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA T4"`.
    pub name: &'static str,
    /// Peak matrix-unit (Tensor Core) throughput in FLOP/s for the
    /// precision being modeled (FP16 unless stated otherwise).
    pub tensor_flops: f64,
    /// Peak traditional-ALU throughput in FLOP/s for FP16-class packed
    /// math (`HADD2`/`HFMA2`); checksum generation runs here (§5.2.2).
    pub alu_flops: f64,
    /// Peak DRAM bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum threads per threadblock.
    pub max_threads_per_block: u32,
    /// Last-level (L2) cache capacity in bytes.
    pub l2_bytes: u64,
}

impl DeviceSpec {
    /// Compute-to-memory-bandwidth ratio (FLOPs per byte), the right-hand
    /// side of the paper's Eq. 1.
    pub fn cmr(&self) -> f64 {
        self.tensor_flops / self.mem_bw
    }

    /// Peak Tensor-Core throughput available to a single SM.
    pub fn tensor_flops_per_sm(&self) -> f64 {
        self.tensor_flops / self.sm_count as f64
    }

    /// Peak ALU throughput available to a single SM.
    pub fn alu_flops_per_sm(&self) -> f64 {
        self.alu_flops / self.sm_count as f64
    }

    /// The inference-optimized NVIDIA T4 (Turing), the paper's evaluation
    /// platform: 65 FP16 TFLOP/s via Tensor Cores, 320 GB/s GDDR6,
    /// CMR = 203 (§3.3, §6.2).
    pub fn t4() -> Self {
        DeviceSpec {
            name: "NVIDIA T4",
            tensor_flops: 65e12,
            // Turing SM: 64 FP32 cores/SM; FP16 packed math doubles it.
            alu_flops: 16.3e12,
            mem_bw: 320e9,
            sm_count: 40,
            regs_per_sm: 65_536,
            max_warps_per_sm: 32,
            max_threads_per_block: 1024,
            l2_bytes: 4 << 20,
        }
    }

    /// The T4's predecessor, the P4 (Pascal): 11 FP16 TFLOP/s (no Tensor
    /// Cores), 192 GB/s, CMR = 57 (§3.3).
    pub fn p4() -> Self {
        DeviceSpec {
            name: "NVIDIA P4",
            tensor_flops: 11e12,
            alu_flops: 11e12,
            mem_bw: 192e9,
            sm_count: 20,
            regs_per_sm: 65_536,
            max_warps_per_sm: 64,
            max_threads_per_block: 1024,
            l2_bytes: 2 << 20,
        }
    }

    /// NVIDIA V100 (Volta): 125 FP16 TFLOP/s, 900 GB/s HBM2, CMR = 139.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "NVIDIA V100",
            tensor_flops: 125e12,
            alu_flops: 31.3e12,
            mem_bw: 900e9,
            sm_count: 80,
            regs_per_sm: 65_536,
            max_warps_per_sm: 64,
            max_threads_per_block: 1024,
            l2_bytes: 6 << 20,
        }
    }

    /// NVIDIA A100 (Ampere): 312 FP16 TFLOP/s, 1555 GB/s, CMR = 201.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "NVIDIA A100",
            tensor_flops: 312e12,
            alu_flops: 78e12,
            mem_bw: 1555e9,
            sm_count: 108,
            regs_per_sm: 65_536,
            max_warps_per_sm: 64,
            max_threads_per_block: 1024,
            l2_bytes: 40 << 20,
        }
    }

    /// NVIDIA Jetson AGX Xavier at INT8: 32 TOP/s via Tensor Cores,
    /// 137 GB/s, CMR = 234 (§3.3 quotes 235).
    pub fn jetson_agx_xavier_int8() -> Self {
        DeviceSpec {
            name: "NVIDIA Jetson AGX Xavier (INT8)",
            tensor_flops: 32e12,
            alu_flops: 11e12,
            mem_bw: 137e9,
            sm_count: 8,
            regs_per_sm: 65_536,
            max_warps_per_sm: 64,
            max_threads_per_block: 1024,
            l2_bytes: 512 << 10,
        }
    }

    /// All modeled devices, in the order the paper introduces them.
    pub fn all() -> Vec<DeviceSpec> {
        vec![
            Self::p4(),
            Self::t4(),
            Self::v100(),
            Self::a100(),
            Self::jetson_agx_xavier_int8(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmr_values_match_the_paper() {
        // §3.3: "the FP16 CMR of the T4 GPU is 203, while that of the P4
        // was 58", V100 139, A100 201, Xavier 235 (INT8).
        assert!((DeviceSpec::t4().cmr() - 203.0).abs() < 1.0);
        assert!((DeviceSpec::p4().cmr() - 57.3).abs() < 1.0);
        assert!((DeviceSpec::v100().cmr() - 138.9).abs() < 1.0);
        assert!((DeviceSpec::a100().cmr() - 200.6).abs() < 1.0);
        assert!((DeviceSpec::jetson_agx_xavier_int8().cmr() - 233.6).abs() < 2.0);
    }

    #[test]
    fn t4_to_p4_generational_ratios_match_section_3_3() {
        // "the T4 GPU increases FP16 FLOPs/sec by 5.9x compared to the P4
        // GPU, it offers only a 1.7x increase in memory bandwidth".
        let t4 = DeviceSpec::t4();
        let p4 = DeviceSpec::p4();
        let flops_ratio = t4.tensor_flops / p4.tensor_flops;
        let bw_ratio = t4.mem_bw / p4.mem_bw;
        assert!(
            (flops_ratio - 5.9).abs() < 0.05,
            "flops ratio {flops_ratio}"
        );
        assert!((bw_ratio - 1.67).abs() < 0.05, "bw ratio {bw_ratio}");
    }

    #[test]
    fn per_sm_throughput_sums_back_to_device() {
        let t4 = DeviceSpec::t4();
        let total = t4.tensor_flops_per_sm() * t4.sm_count as f64;
        assert!((total - t4.tensor_flops).abs() < 1.0);
    }

    #[test]
    fn all_devices_have_sane_parameters() {
        for d in DeviceSpec::all() {
            assert!(d.tensor_flops >= d.alu_flops, "{}", d.name);
            assert!(d.mem_bw > 0.0 && d.sm_count > 0, "{}", d.name);
            assert!(d.cmr() > 10.0 && d.cmr() < 1000.0, "{}", d.name);
        }
    }
}
