//! The analytical kernel timing model.
//!
//! This replaces the paper's wall-clock measurements on a physical T4.
//! A kernel is summarized as a [`KernelProfile`] — Tensor-Core FLOPs, ALU
//! operations, DRAM bytes, register pressure, in-kernel tail latency, and
//! any auxiliary kernels (global ABFT's reduce-and-compare launch). The
//! estimate combines:
//!
//! - a roofline split: execution time is the maximum of the compute-side
//!   time and the memory-side time (§3.1);
//! - serial issue *within* the compute side: Tensor-Core time and ALU
//!   (checksum) time add, reflecting the paper's observation that
//!   checksum generation competes with the kernel's own control-flow and
//!   addressing work for traditional arithmetic units (§5.2.2);
//! - occupancy-derived bandwidth efficiency (register pressure lowers
//!   resident warps, which lowers achievable bandwidth — the §4
//!   replication cliff);
//! - a fixed kernel launch overhead, which dominates tiny
//!   bandwidth-bound layers and is what makes global ABFT's extra kernel
//!   expensive exactly where thread-level ABFT is free.
//!
//! Every constant lives in [`Calibration`] and is documented there.
//! Absolute times are *estimates*; the reproduction targets the paper's
//! shapes (orderings, crossovers, ratios), recorded in `EXPERIMENTS.md`.

use crate::device::DeviceSpec;
use crate::occupancy::Occupancy;
use crate::roofline::Bound;
use crate::shape::GemmShape;
use crate::tiling::TilingConfig;
use crate::traffic;

/// Tunable constants of the timing model.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Fixed cost of launching a kernel and draining its tail
    /// (driver + hardware pipeline), seconds. T4-era CUDA launches
    /// measure 2–4 µs; we use the low end since the paper streams 1000
    /// back-to-back runs.
    pub launch_s: f64,
    /// Base cost of an auxiliary kernel (global ABFT's reduce + compare,
    /// §2.5 step 5): a launch plus a device-wide reduction of
    /// per-threadblock partials. Its work terms are added on top.
    pub aux_kernel_base_s: f64,
    /// In-kernel tail added by a thread-local final checksum comparison
    /// (thread-level ABFT's epilogue check), seconds. A handful of
    /// dependent FP16/FP32 instructions after the last MMA.
    pub thread_check_tail_s: f64,
    /// Baseline ALU operations per thread per K-step (loop bookkeeping,
    /// address generation, predicate updates) that checksum ops contend
    /// with.
    pub baseline_alu_per_step: f64,
    /// Derating applied to peak ALU throughput for dependent checksum
    /// chains (bank conflicts, issue pressure); 1.0 = no derate.
    pub alu_derate: f64,
    /// Per-threadblock scheduling/dispatch cost, seconds (work
    /// distribution by the GigaThread engine).
    pub block_dispatch_s: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            launch_s: 2.5e-6,
            aux_kernel_base_s: 1.0e-6,
            thread_check_tail_s: 0.15e-6,
            baseline_alu_per_step: 2.0,
            alu_derate: 1.0,
            // Kept below the per-block C-tile store time on every modeled
            // device so more work can never be estimated as faster merely
            // through a tile-size reselection.
            block_dispatch_s: 1e-9,
        }
    }
}

/// An auxiliary kernel launched alongside the main GEMM (e.g. the global
/// ABFT reduce-and-compare kernel).
#[derive(Clone, Debug, Default)]
pub struct AuxKernel {
    /// Human-readable label for reports.
    pub name: &'static str,
    /// ALU FLOPs it performs.
    pub alu_flops: f64,
    /// DRAM bytes it moves.
    pub dram_bytes: f64,
}

/// Work summary of one (possibly redundancy-augmented) GEMM kernel.
#[derive(Clone, Debug)]
pub struct KernelProfile {
    /// Problem shape (will be padded internally).
    pub shape: GemmShape,
    /// Tiling configuration executing it.
    pub tiling: TilingConfig,
    /// Tensor-Core FLOPs issued by the main kernel.
    pub tc_flops: f64,
    /// Traditional-ALU operations issued by the main kernel (baseline
    /// bookkeeping + any checksum generation).
    pub alu_ops: f64,
    /// DRAM bytes moved by the main kernel.
    pub dram_bytes: f64,
    /// Extra registers per thread demanded by the redundancy scheme.
    pub extra_regs_per_thread: u64,
    /// Fixed in-kernel tail latency (e.g. thread-local final checks).
    pub tail_s: f64,
    /// Auxiliary kernels measured as part of this layer's time.
    pub aux_kernels: Vec<AuxKernel>,
}

impl KernelProfile {
    /// Profile of the unprotected baseline GEMM for a shape: full
    /// Tensor-Core math, bookkeeping ALU work, minimum-plus-reuse DRAM
    /// traffic, no extras.
    pub fn baseline(shape: GemmShape, device: &DeviceSpec, calib: &Calibration) -> Self {
        let tiling = TilingConfig::select(shape, device);
        Self::baseline_with_tiling(shape, tiling, device, calib)
    }

    /// [`Self::baseline`] with operands stored at `elem_bytes` bytes per
    /// element: same compute, scaled DRAM traffic. This is how narrower
    /// storage dtypes (fp8/int8 at 1 B) shift a layer toward the
    /// compute-bound side of the roofline.
    pub fn baseline_dtype(
        shape: GemmShape,
        device: &DeviceSpec,
        calib: &Calibration,
        elem_bytes: u64,
    ) -> Self {
        let tiling = TilingConfig::select(shape, device);
        Self::baseline_with_tiling_dtype(shape, tiling, device, calib, elem_bytes)
    }

    /// Baseline profile with an explicit tiling (used by sweeps that hold
    /// tiling fixed across schemes).
    pub fn baseline_with_tiling(
        shape: GemmShape,
        tiling: TilingConfig,
        device: &DeviceSpec,
        calib: &Calibration,
    ) -> Self {
        Self::baseline_with_tiling_dtype(shape, tiling, device, calib, crate::shape::FP16_BYTES)
    }

    /// [`Self::baseline_with_tiling`] at an explicit storage width.
    pub fn baseline_with_tiling_dtype(
        shape: GemmShape,
        tiling: TilingConfig,
        device: &DeviceSpec,
        calib: &Calibration,
        elem_bytes: u64,
    ) -> Self {
        let p = shape.padded_to_mma();
        // Tensor cores execute the padded/tiled problem: count whole MMA
        // granules actually issued by the grid.
        let (gm, gn) = tiling.grid(p);
        let covered_m = gm * tiling.block_m;
        let covered_n = gn * tiling.block_n;
        let tc_flops = (2 * covered_m * covered_n * p.k) as f64;
        let total_threads = (tiling.total_blocks(p) * tiling.threads_per_block()) as f64;
        let alu_ops = total_threads * tiling.k_steps(p) as f64 * calib.baseline_alu_per_step;
        KernelProfile {
            shape: p,
            tiling,
            tc_flops,
            alu_ops,
            dram_bytes: traffic::gemm_dram_bytes_dtype(p, &tiling, device, elem_bytes),
            extra_regs_per_thread: 0,
            tail_s: 0.0,
            aux_kernels: Vec::new(),
        }
    }

    /// Total thread-K-steps executed by the grid — the unit redundancy
    /// schemes use to scale their per-step costs from Table 1.
    pub fn total_thread_steps(&self) -> f64 {
        (self.tiling.total_blocks(self.shape) * self.tiling.threads_per_block()) as f64
            * self.tiling.k_steps(self.shape) as f64
    }
}

/// Timing estimate with its breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeEstimate {
    /// Total estimated execution time, seconds.
    pub total_s: f64,
    /// Main-kernel memory-side time.
    pub t_mem_s: f64,
    /// Main-kernel Tensor-Core time.
    pub t_tc_s: f64,
    /// Main-kernel traditional-ALU time.
    pub t_alu_s: f64,
    /// Auxiliary kernels' total time.
    pub t_aux_s: f64,
    /// Which side of the roofline bound the main kernel.
    pub bound: Bound,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
}

/// Estimates execution time for a kernel profile on a device.
pub fn estimate(profile: &KernelProfile, device: &DeviceSpec, calib: &Calibration) -> TimeEstimate {
    let occ = Occupancy::compute(device, &profile.tiling, profile.extra_regs_per_thread);
    let blocks = profile.tiling.total_blocks(profile.shape);

    // SMs that actually receive work (tail-aware only via the min).
    let active_sms = (blocks.min(device.sm_count as u64)) as f64;
    let t_tc = profile.tc_flops / (device.tensor_flops_per_sm() * active_sms);
    // Spilled registers that live in the inner loop (accumulators) incur
    // local-memory round trips on every K-step — the §4 cost of
    // traditional replication once the 255-register ceiling is hit.
    let spill_ops = occ.spilled_regs_per_thread as f64 * profile.total_thread_steps();
    let t_alu =
        (profile.alu_ops + spill_ops) / (device.alu_flops_per_sm() * calib.alu_derate * active_sms);
    let t_comp = t_tc + t_alu;

    // Bandwidth achievable given per-SM occupancy: latency hiding is a
    // local property of each active SM (grid size already shows up in the
    // compute terms through `active_sms`), so register pressure — not
    // grid extent — is what degrades it.
    let bw_eff = occ.bandwidth_efficiency();
    // Register spills add round trips to local memory.
    let spill_bytes =
        (occ.spilled_regs_per_thread * 8 * blocks * profile.tiling.threads_per_block()) as f64;
    let t_mem = (profile.dram_bytes + spill_bytes) / traffic::effective_bandwidth(device, bw_eff);

    let bound = if t_comp > t_mem {
        Bound::Compute
    } else {
        Bound::MemoryBandwidth
    };
    let t_main = t_comp.max(t_mem)
        + calib.launch_s
        + profile.tail_s
        + blocks as f64 * calib.block_dispatch_s;

    let mut t_aux = 0.0;
    for aux in &profile.aux_kernels {
        t_aux += calib.aux_kernel_base_s
            + aux.alu_flops / device.alu_flops
            + aux.dram_bytes / device.mem_bw;
    }

    TimeEstimate {
        total_s: t_main + t_aux,
        t_mem_s: t_mem,
        t_tc_s: t_tc,
        t_alu_s: t_alu,
        t_aux_s: t_aux,
        bound,
        occupancy: occ,
    }
}

/// Percentage execution-time overhead of `protected` relative to
/// `baseline` — the paper's primary metric ((Tr − To)/To × 100, §6.2).
pub fn overhead_percent(baseline: &TimeEstimate, protected: &TimeEstimate) -> f64 {
    (protected.total_s - baseline.total_s) / baseline.total_s * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> DeviceSpec {
        DeviceSpec::t4()
    }

    fn baseline(s: u64) -> (KernelProfile, TimeEstimate) {
        let calib = Calibration::default();
        let p = KernelProfile::baseline(GemmShape::square(s), &t4(), &calib);
        let e = estimate(&p, &t4(), &calib);
        (p, e)
    }

    #[test]
    fn large_gemm_is_compute_bound_and_near_peak() {
        let (_, e) = baseline(2048);
        assert_eq!(e.bound, Bound::Compute);
        // 2·2048³ / 65e12 ≈ 264 µs of pure TC time; total within 2x.
        assert!(e.total_s > 264e-6 && e.total_s < 530e-6, "{}", e.total_s);
    }

    #[test]
    fn small_gemm_is_launch_dominated() {
        let (_, e) = baseline(32);
        // Launch overhead is most of the time; the compute/memory split
        // underneath is in the noise (both are tens of nanoseconds).
        assert!(e.total_s < 5e-6 && e.total_s >= 2.5e-6, "{}", e.total_s);
        assert!(e.t_mem_s.max(e.t_tc_s + e.t_alu_s) < 0.2 * e.total_s);
    }

    #[test]
    fn time_is_monotone_in_size() {
        let mut prev = 0.0;
        for s in [32u64, 64, 128, 256, 512, 1024, 2048] {
            let (_, e) = baseline(s);
            assert!(e.total_s > prev, "size {s}: {} <= {prev}", e.total_s);
            prev = e.total_s;
        }
    }

    #[test]
    fn roofline_crossover_matches_cmr_neighborhood() {
        // Bandwidth bound at 512 (AI 171 < 203), compute bound at 1024
        // (AI 341 > 203) — mirrors Figure 12's dashed line.
        let (_, e512) = baseline(512);
        let (_, e1024) = baseline(1024);
        assert_eq!(e512.bound, Bound::MemoryBandwidth);
        assert_eq!(e1024.bound, Bound::Compute);
    }

    #[test]
    fn extra_tc_flops_are_free_when_bandwidth_bound() {
        let calib = Calibration::default();
        let dev = t4();
        let mut p = KernelProfile::baseline(GemmShape::square(256), &dev, &calib);
        let base = estimate(&p, &dev, &calib);
        // +25% Tensor-Core work hides under the memory time.
        p.tc_flops *= 1.25;
        let more = estimate(&p, &dev, &calib);
        assert!(overhead_percent(&base, &more) < 1.0);
    }

    #[test]
    fn extra_tc_flops_cost_linearly_when_compute_bound() {
        let calib = Calibration::default();
        let dev = t4();
        let mut p = KernelProfile::baseline(GemmShape::square(2048), &dev, &calib);
        let base = estimate(&p, &dev, &calib);
        p.tc_flops *= 2.0; // replication
        let repl = estimate(&p, &dev, &calib);
        let ovh = overhead_percent(&base, &repl);
        assert!(ovh > 70.0, "replication overhead {ovh}%"); // §6.5: cut off above 70%
    }

    #[test]
    fn aux_kernel_dominates_overhead_only_for_tiny_layers() {
        let calib = Calibration::default();
        let dev = t4();
        for (s, lo, hi) in [(32u64, 10.0, 40.0), (2048u64, 0.0, 2.0)] {
            let mut p = KernelProfile::baseline(GemmShape::square(s), &dev, &calib);
            let base = estimate(&p, &dev, &calib);
            p.aux_kernels.push(AuxKernel {
                name: "reduce",
                alu_flops: 2.0 * s as f64,
                dram_bytes: 1024.0,
            });
            let with_aux = estimate(&p, &dev, &calib);
            let ovh = overhead_percent(&base, &with_aux);
            assert!(ovh >= lo && ovh <= hi, "size {s}: overhead {ovh}%");
        }
    }

    #[test]
    fn register_pressure_slows_bandwidth_bound_kernels() {
        let calib = Calibration::default();
        let dev = t4();
        let shape = GemmShape::new(4096, 128, 128);
        let base_p = KernelProfile::baseline(shape, &dev, &calib);
        let base = estimate(&base_p, &dev, &calib);
        let mut pressured = base_p.clone();
        pressured.extra_regs_per_thread = pressured.tiling.accumulators_per_thread();
        let slow = estimate(&pressured, &dev, &calib);
        assert!(
            slow.total_s >= base.total_s,
            "register pressure must never speed things up"
        );
    }

    #[test]
    fn overhead_percent_matches_definition() {
        let a = TimeEstimate {
            total_s: 10e-6,
            t_mem_s: 0.0,
            t_tc_s: 0.0,
            t_alu_s: 0.0,
            t_aux_s: 0.0,
            bound: Bound::Compute,
            occupancy: Occupancy {
                blocks_per_sm: 1,
                warps_per_sm: 4,
                fraction: 0.125,
                regs_per_thread: 100,
                spilled_regs_per_thread: 0,
            },
        };
        let mut b = a.clone();
        b.total_s = 12e-6;
        assert!((overhead_percent(&a, &b) - 20.0).abs() < 1e-9);
    }
}
