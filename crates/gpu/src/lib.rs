//! # aiga-gpu — the simulated GPU substrate
//!
//! The paper evaluates ABFT schemes inside CUTLASS matrix-multiplication
//! kernels on an NVIDIA T4. This crate rebuilds everything those kernels
//! depend on, in Rust, so the ABFT schemes in `aiga-core` can be exercised
//! without a GPU:
//!
//! - [`device`]: published hardware parameters for the GPUs the paper
//!   discusses (T4, P4, V100, A100, Jetson AGX Xavier) including the
//!   compute-to-memory-bandwidth ratio (CMR) of §3.3.
//! - [`shape`]: padded GEMM problem shapes and the FLOPs/bytes/arithmetic-
//!   intensity accounting of §3.1 (Eq. 1).
//! - [`roofline`]: the roofline classification (compute vs. bandwidth
//!   bound) that drives intensity-guided selection.
//! - [`tiling`]: the kernel → threadblock → warp → thread decomposition of
//!   §2.1 (Figure 2), including per-thread tile sizes `Mt × Nt` and the
//!   per-K-step MMA/fragment accounting of Figure 3.
//! - [`engine`]: a functional simulator that executes a GEMM through that
//!   hierarchy with `m16n8k8` Tensor Core semantics, calling back into a
//!   pluggable [`engine::ThreadLocalScheme`] exactly where CUTLASS's
//!   thread-level inner loop was modified by the paper — this is where
//!   `aiga-core`'s thread-level ABFT schemes run.
//! - [`occupancy`]: the register-pressure / resident-warp model that
//!   explains why traditional thread-level replication is slow (§4).
//! - [`traffic`]: a DRAM traffic model with tile reuse and an L2 term.
//! - [`timing`]: the calibrated analytical kernel timing model that maps a
//!   [`timing::KernelProfile`] (Tensor-Core FLOPs, ALU ops, DRAM bytes,
//!   register pressure, extra kernel launches) to an execution-time
//!   estimate. All calibration constants are documented in one place.

pub mod device;
pub mod engine;
pub mod occupancy;
pub mod roofline;
pub mod shape;
pub mod tiling;
pub mod timing;
pub mod traffic;

pub use device::DeviceSpec;
pub use engine::{
    GemmEngine, GemmOutput, GemmPath, Im2colView, Matrix, MatrixLayout, ThreadLocalScheme,
    ThreadVerdict, Workspace,
};
pub use roofline::{Bound, Roofline};
pub use shape::GemmShape;
pub use tiling::TilingConfig;
pub use timing::{Calibration, KernelProfile, TimeEstimate};
