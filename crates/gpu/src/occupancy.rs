//! Occupancy: how many threadblocks co-reside on an SM.
//!
//! Occupancy is limited by register-file capacity and resident-warp slots.
//! It matters to the paper twice: (1) traditional thread-level replication
//! doubles accumulator registers per thread, cutting occupancy and causing
//! "significant slowdowns" (§4); (2) low occupancy reduces a kernel's
//! ability to hide memory latency, derating achievable bandwidth in the
//! timing model.

use crate::device::DeviceSpec;
use crate::tiling::TilingConfig;

/// Architectural per-thread register ceiling; allocations beyond this spill
/// to local memory (extra DRAM traffic).
pub const MAX_REGS_PER_THREAD: u64 = 255;

/// Resident warps per SM needed to reach full memory bandwidth; below
/// this, achievable bandwidth degrades roughly linearly (a standard
/// little's-law-style approximation).
pub const WARPS_FOR_PEAK_BW: f64 = 8.0;

/// Occupancy analysis for one kernel configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Threadblocks co-resident per SM.
    pub blocks_per_sm: u64,
    /// Warps co-resident per SM.
    pub warps_per_sm: u64,
    /// Fraction of the device's warp slots occupied (0..=1).
    pub fraction: f64,
    /// Registers the compiler would allocate per thread (clamped to the
    /// ISA ceiling).
    pub regs_per_thread: u64,
    /// Registers that did not fit and spill to local memory, per thread.
    pub spilled_regs_per_thread: u64,
}

impl Occupancy {
    /// Computes occupancy for a tiling with `extra_regs` additional
    /// registers per thread on top of the baseline GEMM allocation
    /// (redundancy schemes pass their own register footprint here).
    pub fn compute(device: &DeviceSpec, tiling: &TilingConfig, extra_regs: u64) -> Self {
        let wanted = tiling.base_regs_per_thread() + extra_regs;
        let regs_per_thread = wanted.min(MAX_REGS_PER_THREAD);
        let spilled = wanted - regs_per_thread;

        let threads_per_block = tiling.threads_per_block();
        let regs_per_block = regs_per_thread * threads_per_block;
        let by_regs = (device.regs_per_sm as u64) / regs_per_block.max(1);
        let by_warps = (device.max_warps_per_sm as u64) / tiling.warps_per_block().max(1);
        let by_threads =
            (device.max_threads_per_block as u64).max(threads_per_block) / threads_per_block; // blocks aren't limited below 1 by thread count
        let blocks_per_sm = by_regs.min(by_warps).min(by_threads).max(
            // A kernel that fits at all always gets one block resident.
            u64::from(by_regs >= 1),
        );
        let warps_per_sm = blocks_per_sm * tiling.warps_per_block();
        Occupancy {
            blocks_per_sm,
            warps_per_sm,
            fraction: warps_per_sm as f64 / device.max_warps_per_sm as f64,
            regs_per_thread,
            spilled_regs_per_thread: spilled,
        }
    }

    /// Memory-latency-hiding efficiency: the fraction of peak DRAM
    /// bandwidth sustainable with this many resident warps per SM.
    pub fn bandwidth_efficiency(&self) -> f64 {
        (self.warps_per_sm as f64 / WARPS_FOR_PEAK_BW).clamp(0.05, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> TilingConfig {
        TilingConfig::candidates()[0]
    }

    #[test]
    fn baseline_large_tile_achieves_moderate_occupancy() {
        let occ = Occupancy::compute(&DeviceSpec::t4(), &big(), 0);
        assert!(occ.blocks_per_sm >= 2, "got {occ:?}");
        assert!(occ.spilled_regs_per_thread == 0);
        assert!(occ.fraction > 0.2 && occ.fraction <= 1.0);
    }

    #[test]
    fn doubling_accumulators_cuts_occupancy() {
        // Traditional replication (§4) doubles the MtNt accumulator
        // registers. On the medium tile this fits under the ISA register
        // ceiling, so the cost shows up purely as an occupancy drop.
        let t4 = DeviceSpec::t4();
        let medium = TilingConfig::candidates()[1];
        let base = Occupancy::compute(&t4, &medium, 0);
        let repl = Occupancy::compute(&t4, &medium, medium.accumulators_per_thread());
        assert_eq!(repl.spilled_regs_per_thread, 0);
        assert!(
            repl.blocks_per_sm < base.blocks_per_sm,
            "{base:?} vs {repl:?}"
        );
        assert!(repl.fraction < base.fraction);
    }

    #[test]
    fn doubling_accumulators_spills_on_the_large_tile() {
        // On the large tile the doubled accumulators blow past the 255-
        // register ISA ceiling: the compiler spills instead (which the
        // timing model charges as extra DRAM traffic).
        let t4 = DeviceSpec::t4();
        let repl = Occupancy::compute(&t4, &big(), big().accumulators_per_thread());
        assert_eq!(repl.regs_per_thread, MAX_REGS_PER_THREAD);
        assert!(repl.spilled_regs_per_thread > 0);
    }

    #[test]
    fn register_ceiling_forces_spills() {
        let occ = Occupancy::compute(&DeviceSpec::t4(), &big(), 300);
        assert_eq!(occ.regs_per_thread, MAX_REGS_PER_THREAD);
        assert!(occ.spilled_regs_per_thread > 0);
    }

    #[test]
    fn small_tiles_reach_high_occupancy() {
        let small = TilingConfig::candidates()[2];
        let occ = Occupancy::compute(&DeviceSpec::t4(), &small, 0);
        assert!(occ.fraction >= 0.5, "{occ:?}");
    }

    #[test]
    fn bandwidth_efficiency_saturates_at_one() {
        let small = TilingConfig::candidates()[2];
        let occ = Occupancy::compute(&DeviceSpec::t4(), &small, 0);
        assert!(occ.bandwidth_efficiency() <= 1.0);
        let starved = Occupancy {
            blocks_per_sm: 1,
            warps_per_sm: 2,
            fraction: 0.06,
            regs_per_thread: 255,
            spilled_regs_per_thread: 0,
        };
        assert!((starved.bandwidth_efficiency() - 0.25).abs() < 1e-12);
    }
}
