//! GEMM problem shapes and the FLOPs / bytes / arithmetic-intensity
//! accounting of §3.1.
//!
//! A linear layer is the multiplication of an `M × K` activation matrix
//! `A` by a `K × N` weight matrix `B` (§2.1). The paper pads all three
//! dimensions to multiples of eight to fit the `m16n8k8` Tensor Core
//! operation (§6.2); padding is what makes a batch-1 MLP layer's
//! arithmetic intensity come out near 8 rather than near 1, so it matters
//! for reproducing the DLRM numbers.

/// Bytes per FP16 element.
pub const FP16_BYTES: u64 = 2;

/// A (possibly unpadded) GEMM problem size: `C[M×N] = A[M×K] · B[K×N]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of `A` and `C` (activations / batch-spatial extent).
    pub m: u64,
    /// Columns of `B` and `C` (output features).
    pub n: u64,
    /// Inner dimension (input features).
    pub k: u64,
}

impl GemmShape {
    /// Creates a shape; all dimensions must be nonzero.
    pub fn new(m: u64, n: u64, k: u64) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM dims must be nonzero");
        GemmShape { m, n, k }
    }

    /// Square shape `M = N = K = s` (the §6.5 microbenchmark sweep).
    pub fn square(s: u64) -> Self {
        Self::new(s, s, s)
    }

    /// Pads every dimension up to a multiple of eight, as required by the
    /// `m16n8k8` operation (§6.2).
    pub fn padded_to_mma(self) -> Self {
        fn pad8(x: u64) -> u64 {
            x.div_ceil(8) * 8
        }
        GemmShape {
            m: pad8(self.m),
            n: pad8(self.n),
            k: pad8(self.k),
        }
    }

    /// True if all dimensions are already multiples of eight.
    pub fn is_mma_aligned(self) -> bool {
        self.m.is_multiple_of(8) && self.n.is_multiple_of(8) && self.k.is_multiple_of(8)
    }

    /// Arithmetic operations performed: `2·M·N·K` (one multiply and one
    /// add per MAC).
    pub fn flops(self) -> u64 {
        2 * self.m * self.n * self.k
    }

    /// Minimum data transferred to/from memory at `elem_bytes` bytes per
    /// element: read `A` and `B` once, write `C` once. Storage dtypes
    /// narrower than fp16 halve the operand terms, which is what moves
    /// the intensity frontier (the `C` write-back stays at the storage
    /// width too: quantized serving writes quantized activations).
    pub fn min_bytes(self, elem_bytes: u64) -> u64 {
        elem_bytes * (self.m * self.k + self.k * self.n + self.m * self.n)
    }

    /// Minimum data transferred to/from memory in FP16 — the numerator
    /// the paper uses when reporting arithmetic intensities.
    pub fn min_bytes_fp16(self) -> u64 {
        self.min_bytes(FP16_BYTES)
    }

    /// Arithmetic intensity (FLOPs per byte) at `elem_bytes` bytes per
    /// element, computed on the padded shape as the paper reports it.
    /// Halving the storage width doubles a layer's intensity, shifting
    /// where it crosses a device's compute/memory ratio — and therefore
    /// which ABFT scheme the intensity-guided selector picks.
    pub fn arithmetic_intensity(self, elem_bytes: u64) -> f64 {
        let p = self.padded_to_mma();
        p.flops() as f64 / p.min_bytes(elem_bytes) as f64
    }

    /// FP16 arithmetic intensity (FLOPs per byte), the left-hand side of
    /// Eq. 1.
    pub fn arithmetic_intensity_fp16(self) -> f64 {
        self.arithmetic_intensity(FP16_BYTES)
    }

    /// Number of `m16n8k8` MMA instructions a kernel issues for this
    /// (padded) problem.
    pub fn mma_count(self) -> u64 {
        let p = self.padded_to_mma();
        // Each MMA covers a 16×8 output tile over k-depth 8; M is padded
        // to 8, so a 16-row MMA granule may be half-empty — count granules.
        p.m.div_ceil(16) * (p.n / 8) * (p.k / 8)
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_intensity_matches_figure_12_labels() {
        // Figure 12 annotates M=N=K sweeps with their FP16 arithmetic
        // intensities: 32→10.7, 64→21.3, ..., 2048→682.7 (= s/3).
        let expected = [
            (32, 10.7),
            (64, 21.3),
            (128, 42.7),
            (256, 85.3),
            (512, 170.7),
            (1024, 341.3),
            (2048, 682.7),
        ];
        for (s, ai) in expected {
            let got = GemmShape::square(s).arithmetic_intensity_fp16();
            assert!((got - ai).abs() < 0.05, "size {s}: got {got}, want {ai}");
        }
    }

    #[test]
    fn padding_rounds_up_to_multiples_of_eight() {
        let s = GemmShape::new(1, 13, 511).padded_to_mma();
        assert_eq!((s.m, s.n, s.k), (8, 16, 512));
        assert!(s.is_mma_aligned());
        // Already-aligned shapes are unchanged.
        let t = GemmShape::new(64, 64, 64);
        assert_eq!(t.padded_to_mma(), t);
    }

    #[test]
    fn padding_is_what_lifts_batch_1_mlp_intensity() {
        // Unpadded, a batch-1 FC layer has AI ≈ 1 in FP16 (2 FLOPs per 2
        // bytes of weight); padding M to 8 lifts it to ≈ 8 — this is the
        // §3.2/§6.2 effect behind DLRM's aggregate AI of ~7.4.
        let layer = GemmShape::new(1, 512, 512);
        let unpadded = layer.flops() as f64 / layer.min_bytes_fp16() as f64;
        assert!(unpadded < 1.1, "unpadded AI {unpadded}");
        let padded = layer.arithmetic_intensity_fp16();
        assert!((padded - 7.8).abs() < 0.3, "padded AI {padded}");
    }

    #[test]
    fn flops_and_bytes_formulas() {
        let s = GemmShape::new(16, 8, 8);
        assert_eq!(s.flops(), 2 * 16 * 8 * 8);
        assert_eq!(s.min_bytes_fp16(), 2 * (16 * 8 + 8 * 8 + 16 * 8));
        assert_eq!(s.mma_count(), 1);
        assert_eq!(GemmShape::new(32, 16, 24).mma_count(), 2 * 2 * 3);
        // An 8-row problem still occupies one 16-row MMA granule.
        assert_eq!(GemmShape::new(8, 8, 8).mma_count(), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_are_rejected() {
        GemmShape::new(0, 1, 1);
    }
}
