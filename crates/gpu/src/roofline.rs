//! The roofline performance model (§3.1, Eq. 1).
//!
//! A kernel is compute bound when its arithmetic intensity exceeds the
//! device's compute-to-memory-bandwidth ratio (CMR), and memory-bandwidth
//! bound otherwise. This classification is the heart of the paper's
//! argument: bandwidth-bound layers leave Tensor Cores idle, and
//! thread-level ABFT can spend those idle cycles for free.

use crate::device::DeviceSpec;
use crate::shape::GemmShape;

/// Which resource limits a kernel under the roofline model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Arithmetic intensity above the CMR: Tensor Cores are the
    /// bottleneck; global ABFT's minimal redundant computation wins.
    Compute,
    /// Arithmetic intensity below the CMR: DRAM bandwidth is the
    /// bottleneck; Tensor Cores idle and thread-level ABFT is near-free.
    MemoryBandwidth,
}

/// Roofline analysis for one device.
#[derive(Clone, Debug)]
pub struct Roofline {
    device: DeviceSpec,
}

impl Roofline {
    /// Builds a roofline for `device`.
    pub fn new(device: DeviceSpec) -> Self {
        Roofline { device }
    }

    /// The device this roofline describes.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Classifies an arithmetic intensity against the device CMR (Eq. 1).
    pub fn classify_intensity(&self, intensity: f64) -> Bound {
        if intensity > self.device.cmr() {
            Bound::Compute
        } else {
            Bound::MemoryBandwidth
        }
    }

    /// Classifies a GEMM shape by its padded FP16 arithmetic intensity.
    pub fn classify(&self, shape: GemmShape) -> Bound {
        self.classify_intensity(shape.arithmetic_intensity_fp16())
    }

    /// Attainable FLOP/s at a given arithmetic intensity — the classic
    /// roofline curve `min(peak, intensity × bandwidth)`.
    pub fn attainable_flops(&self, intensity: f64) -> f64 {
        (intensity * self.device.mem_bw).min(self.device.tensor_flops)
    }

    /// Fraction of peak Tensor-Core throughput attainable at a given
    /// intensity; `1.0` exactly at and beyond the ridge point.
    pub fn tensor_core_utilization(&self, intensity: f64) -> f64 {
        self.attainable_flops(intensity) / self.device.tensor_flops
    }

    /// Idle Tensor-Core headroom (fraction of peak) at a given intensity —
    /// the "free" compute budget thread-level ABFT can consume (§3.5).
    pub fn idle_compute_fraction(&self, intensity: f64) -> f64 {
        1.0 - self.tensor_core_utilization(intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> Roofline {
        Roofline::new(DeviceSpec::t4())
    }

    #[test]
    fn figure_12_dashed_line_sits_between_512_and_1024() {
        // §6.5: "Sizes left of the dashed line have arithmetic intensity
        // below the T4's FP16 CMR" — 512 (AI 170.7) is bandwidth bound,
        // 1024 (AI 341.3) is compute bound.
        let r = t4();
        for s in [32u64, 64, 128, 256, 512] {
            assert_eq!(r.classify(GemmShape::square(s)), Bound::MemoryBandwidth);
        }
        for s in [1024u64, 2048] {
            assert_eq!(r.classify(GemmShape::square(s)), Bound::Compute);
        }
    }

    #[test]
    fn attainable_flops_is_min_of_rooflines() {
        let r = t4();
        let cmr = r.device().cmr();
        // Below the ridge: bandwidth-limited, linear in intensity.
        assert!((r.attainable_flops(cmr / 2.0) - 0.5 * 65e12).abs() / 65e12 < 1e-9);
        // At and beyond the ridge: flat at peak.
        assert_eq!(r.attainable_flops(cmr), 65e12);
        assert_eq!(r.attainable_flops(cmr * 10.0), 65e12);
    }

    #[test]
    fn idle_fraction_complements_utilization() {
        let r = t4();
        for ai in [1.0, 50.0, 203.0, 500.0] {
            let u = r.tensor_core_utilization(ai);
            let idle = r.idle_compute_fraction(ai);
            assert!((u + idle - 1.0).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn low_intensity_layers_leave_most_compute_idle() {
        // A batch-1 DLRM layer (AI ≈ 8) on a T4 leaves > 95% of Tensor
        // Core throughput idle — the §3 opportunity.
        let r = t4();
        assert!(r.idle_compute_fraction(8.0) > 0.95);
    }

    #[test]
    fn classification_depends_on_device() {
        // ResNet-50 @HD aggregate AI ≈ 122: bandwidth bound on a T4
        // (CMR 203) but compute bound on a P4 (CMR 57).
        let ai = 122.0;
        assert_eq!(
            Roofline::new(DeviceSpec::t4()).classify_intensity(ai),
            Bound::MemoryBandwidth
        );
        assert_eq!(
            Roofline::new(DeviceSpec::p4()).classify_intensity(ai),
            Bound::Compute
        );
    }
}
