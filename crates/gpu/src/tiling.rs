//! Hierarchical GEMM tiling (§2.1, Figure 2).
//!
//! High-performance GEMM kernels decompose the problem across
//! threadblocks, warps, and threads. The quantities this module derives —
//! especially the per-thread tile `Mt × Nt` and the per-K-step MMA count
//! `Mt·Nt/2` — are exactly the units the paper uses in Table 1 to compare
//! redundant-execution schemes, and the register accounting feeds the
//! occupancy model that explains §4's replication slowdown.
//!
//! Per Figure 3, one "step along the K dimension" advances `k` by 2: each
//! thread loads an `Mt × 2` chunk of `At` and a `2 × Nt` chunk of `Bt`
//! and participates in `Mt·Nt/2` MMAs.

use crate::device::DeviceSpec;
use crate::shape::GemmShape;

/// K-extent of one thread step (Figure 3).
pub const STEP_K: u64 = 2;

/// Largest per-thread tile rows (`Mt`) any valid tiling can produce:
/// warp tiles cap at 64 rows (the register file bounds warp tiles in
/// real CUTLASS configurations too), so `Mt = 2·(64/16) = 8`.
/// Thread-level schemes size their inline per-thread state from these
/// bounds, which is what lets them run without heap allocation.
pub const MAX_THREAD_MT: usize = 8;
/// Largest per-thread tile columns (`Nt`): `2·(64/8) = 16`.
pub const MAX_THREAD_NT: usize = 16;
/// Largest per-thread accumulator count (`Mt·Nt`).
pub const MAX_THREAD_ACC: usize = MAX_THREAD_MT * MAX_THREAD_NT;

/// Host-microkernel register-tile rows: the SIMD fast path computes the
/// block tile in `MICRO_MR × MICRO_NR` register tiles (4 broadcast rows
/// of A against two 8-lane B vectors — 8 independent FMA chains, enough
/// to hide the FMA latency on two issue ports). Every valid
/// [`TilingConfig`] block is a whole number of microkernel tiles:
/// `block_m` is a multiple of 16 and `block_n` a multiple of 8 (see
/// [`TilingConfig::validate`]), so the packed-panel layouts in
/// `engine::panels` never need edge handling.
pub const MICRO_MR: usize = 4;
/// Host-microkernel register-tile columns (two 8-wide SIMD lanes).
pub const MICRO_NR: usize = 16;
/// Width of one packed B panel (one SIMD vector of f32).
pub const MICRO_PANEL: usize = 8;

/// One tiling configuration for the hierarchy of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TilingConfig {
    /// Threadblock tile rows (`Mb`).
    pub block_m: u64,
    /// Threadblock tile columns (`Nb`).
    pub block_n: u64,
    /// Threadblock K-slice staged through shared memory (`Kb`).
    pub block_k: u64,
    /// Warp tile rows (`Mw`), a multiple of the MMA's 16.
    pub warp_m: u64,
    /// Warp tile columns (`Nw`), a multiple of the MMA's 8.
    pub warp_n: u64,
}

impl TilingConfig {
    /// Validates invariant relationships between the levels.
    pub fn validate(&self) {
        assert!(
            self.block_m.is_multiple_of(self.warp_m) && self.block_n.is_multiple_of(self.warp_n),
            "block tile must be a whole number of warp tiles"
        );
        assert!(
            self.warp_m.is_multiple_of(16) && self.warp_n.is_multiple_of(8),
            "warp tile must be a whole number of m16n8k8 tiles"
        );
        assert!(
            self.block_k.is_multiple_of(8),
            "block K-slice must cover whole MMAs"
        );
        assert!(
            self.thread_mt() as usize <= MAX_THREAD_MT
                && self.thread_nt() as usize <= MAX_THREAD_NT,
            "warp tile exceeds the register-file bound (warp_m <= 64, warp_n <= 64)"
        );
    }

    /// Warps per threadblock.
    pub fn warps_per_block(&self) -> u64 {
        (self.block_m / self.warp_m) * (self.block_n / self.warp_n)
    }

    /// Threads per threadblock.
    pub fn threads_per_block(&self) -> u64 {
        self.warps_per_block() * 32
    }

    /// Per-thread tile rows `Mt`: each lane owns 2 rows per 16-row MMA
    /// granule of its warp tile.
    pub fn thread_mt(&self) -> u64 {
        2 * (self.warp_m / 16)
    }

    /// Per-thread tile columns `Nt`: each lane owns 2 columns per 8-column
    /// MMA granule of its warp tile.
    pub fn thread_nt(&self) -> u64 {
        2 * (self.warp_n / 8)
    }

    /// FP32 accumulator registers per thread (`Mt·Nt`).
    pub fn accumulators_per_thread(&self) -> u64 {
        self.thread_mt() * self.thread_nt()
    }

    /// Baseline MMAs a thread participates in per K-step (Table 1's unit).
    pub fn mmas_per_thread_step(&self) -> u64 {
        self.accumulators_per_thread() / 2
    }

    /// Grid dimensions (`blocks_m, blocks_n`) for a padded shape.
    pub fn grid(&self, shape: GemmShape) -> (u64, u64) {
        let p = shape.padded_to_mma();
        (p.m.div_ceil(self.block_m), p.n.div_ceil(self.block_n))
    }

    /// Total threadblocks launched for a shape.
    pub fn total_blocks(&self, shape: GemmShape) -> u64 {
        let (gm, gn) = self.grid(shape);
        gm * gn
    }

    /// K-steps each thread walks for a padded shape.
    pub fn k_steps(&self, shape: GemmShape) -> u64 {
        shape.padded_to_mma().k / STEP_K
    }

    /// Baseline register estimate per thread: FP32 accumulators plus
    /// double-buffered FP16 operand fragments (two packed halves per
    /// register) plus a fixed allowance for addresses, loop counters, and
    /// predicates. A redundancy scheme adds its own registers on top
    /// (traditional replication doubles the accumulators — the §4
    /// occupancy cliff).
    pub fn base_regs_per_thread(&self) -> u64 {
        const ADDRESSING_ALLOWANCE: u64 = 40;
        let accum = self.accumulators_per_thread();
        let operand_frags = self.thread_mt() + self.thread_nt(); // 2 buffers × (Mt+Nt) halves / 2 per reg
        ADDRESSING_ALLOWANCE + accum + operand_frags
    }

    /// The three CUTLASS-style configurations the selection heuristic
    /// chooses among (large/medium/small tiles).
    pub fn candidates() -> [TilingConfig; 3] {
        [
            TilingConfig {
                block_m: 128,
                block_n: 128,
                block_k: 32,
                warp_m: 64,
                warp_n: 64,
            },
            TilingConfig {
                block_m: 64,
                block_n: 64,
                block_k: 32,
                warp_m: 32,
                warp_n: 32,
            },
            TilingConfig {
                block_m: 32,
                block_n: 32,
                block_k: 16,
                warp_m: 16,
                warp_n: 16,
            },
        ]
    }

    /// Picks the candidate that best balances tile waste (padding the grid
    /// out to whole block tiles) against having enough threadblocks to
    /// occupy the device — mirroring what the CUTLASS profiler's
    /// pre-deployment sweep settles on (§5.3).
    pub fn select(shape: GemmShape, device: &DeviceSpec) -> TilingConfig {
        let p = shape.padded_to_mma();
        let mut best = Self::candidates()[0];
        let mut best_score = f64::MIN;
        for cfg in Self::candidates() {
            let (gm, gn) = cfg.grid(p);
            let covered = (gm * cfg.block_m) * (gn * cfg.block_n);
            let waste = covered as f64 / (p.m * p.n) as f64;
            let blocks = gm * gn;
            // Full marks once there are ~2 blocks per SM to hide latency;
            // square-root softens the penalty for moderate undersubscription.
            let util = (blocks as f64 / (2.0 * device.sm_count as f64))
                .min(1.0)
                .sqrt();
            // Bigger tiles amortize operand loads (more data reuse per
            // shared-memory stage); mild superlinear bonus.
            let reuse_bonus = ((cfg.block_m * cfg.block_n) as f64 / 1024.0).powf(0.12);
            let score = util / waste * reuse_bonus;
            if score > best_score {
                best_score = score;
                best = cfg;
            }
        }
        best.validate();
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_configs_are_internally_consistent() {
        for cfg in TilingConfig::candidates() {
            cfg.validate();
            // Per-thread accumulators × threads = block tile area.
            assert_eq!(
                cfg.accumulators_per_thread() * cfg.threads_per_block(),
                cfg.block_m * cfg.block_n,
                "{cfg:?}"
            );
        }
    }

    #[test]
    fn large_config_matches_paper_scale_thread_tiles() {
        let big = TilingConfig::candidates()[0];
        assert_eq!(big.thread_mt(), 8);
        assert_eq!(big.thread_nt(), 16);
        assert_eq!(big.mmas_per_thread_step(), 64);
        assert_eq!(big.warps_per_block(), 4);
        assert_eq!(big.threads_per_block(), 128);
    }

    #[test]
    fn grid_covers_the_padded_problem() {
        let cfg = TilingConfig::candidates()[0];
        let shape = GemmShape::new(300, 200, 64);
        let (gm, gn) = cfg.grid(shape);
        assert!(gm * cfg.block_m >= 304); // padded M = 304
        assert!(gn * cfg.block_n >= 200);
        assert_eq!((gm, gn), (3, 2));
    }

    #[test]
    fn selection_prefers_small_tiles_for_small_problems() {
        let t4 = DeviceSpec::t4();
        let small = TilingConfig::select(GemmShape::square(32), &t4);
        assert_eq!(small.block_m, 32, "tiny problem should use tiny tiles");
        let big = TilingConfig::select(GemmShape::square(2048), &t4);
        assert_eq!(big.block_m, 128, "large problem should use large tiles");
    }

    #[test]
    fn selection_prefers_parallelism_for_skinny_layers() {
        // A conv layer with huge M and small N: plenty of blocks either
        // way, so the large tile's reuse should win on the M side.
        let t4 = DeviceSpec::t4();
        let cfg = TilingConfig::select(GemmShape::new(100_000, 64, 64), &t4);
        assert!(cfg.block_n <= 64, "should not waste an oversized N tile");
    }

    #[test]
    fn k_steps_walk_in_pairs() {
        let cfg = TilingConfig::candidates()[1];
        assert_eq!(cfg.k_steps(GemmShape::new(64, 64, 64)), 32);
        assert_eq!(cfg.k_steps(GemmShape::new(64, 64, 60)), 32); // padded to 64
    }

    #[test]
    fn register_estimate_is_dominated_by_accumulators() {
        let big = TilingConfig::candidates()[0];
        let regs = big.base_regs_per_thread();
        assert!(regs > big.accumulators_per_thread());
        assert!(regs < 256, "base config should fit the 255-reg ISA limit");
    }
}
