//! The functional GEMM engine: a software model of a CUTLASS-style FP16
//! Tensor Core kernel.
//!
//! The engine executes `C = A · B` through the full hierarchy of Figure 2:
//! the grid is split into threadblock tiles, threadblocks into warp tiles,
//! and warp tiles into per-thread fragments following the `m16n8k8` PTX
//! layout (each lane owns 2 rows per 16-row MMA granule and 2 columns per
//! 8-column granule). Each simulated thread walks the K dimension in
//! steps of 2, loading an `Mt × 2` chunk of `At` and a `2 × Nt` chunk of
//! `Bt` exactly as Figure 3 describes, accumulating into FP32 registers.
//!
//! Redundancy schemes plug in through [`ThreadLocalScheme`]: the engine
//! calls the scheme with the very fragments the thread loaded (sharing
//! loads, never adding memory traffic — the §3.5 design principle) and
//! hands it the final accumulators for the thread-local check. This is
//! the seam where the paper modified CUTLASS's thread-level inner loops.
//!
//! Faults are injected into the accumulator datapath ([`FaultPlan`]),
//! modeling a soft error in processing logic per the fault model of §2.3:
//! operands are assumed correct (ECC-protected memory), control flow is
//! assumed correct, and a single output value of `C` is corrupted.

use crate::shape::GemmShape;
use crate::tiling::{TilingConfig, STEP_K};
use aiga_fp16::F16;
use aiga_util::rng::Rng64;

/// A row-major FP16 matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` elements.
    pub data: Vec<F16>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F16::ZERO; rows * cols],
        }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F16) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix with entries in `[-2, 2]`
    /// quantized to FP16 — the magnitude regime of normalized NN
    /// activations and weights.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        Self::from_fn(rows, cols, |_, _| F16::from_f32(rng.range_f32(-2.0, 2.0)))
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> F16 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F16) {
        self.data[r * self.cols + c] = v;
    }

    /// Copies into a larger zero-padded matrix. Already-fitting matrices
    /// take a no-op fast path (one bulk copy, no per-row loop).
    pub fn padded(&self, rows: usize, cols: usize) -> Matrix {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        if rows == self.rows && cols == self.cols {
            return self.clone();
        }
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            out.data[r * cols..r * cols + self.cols].copy_from_slice(src);
        }
        out
    }

    /// Decodes into a zero-padded row-major `f32` buffer of size
    /// `rows × cols` — the engine's pre-decoded panel form. Decoding is
    /// exact (every finite F16 is representable in f32), so downstream
    /// arithmetic is bit-identical to converting on the fly.
    fn decoded_padded(&self, rows: usize, cols: usize) -> Vec<f32> {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            let dst = &mut out[r * cols..r * cols + self.cols];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.to_f32();
            }
        }
        out
    }

    /// Like [`Self::decoded_padded`] but transposed: the result is
    /// `cols × rows` row-major, so one *column* of `self` is contiguous.
    /// The engine stores the B panel this way so each thread's K-walk
    /// streams both operands linearly.
    fn decoded_padded_transposed(&self, rows: usize, cols: usize) -> Vec<f32> {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, v) in src.iter().enumerate() {
                out[c * rows + r] = v.to_f32();
            }
        }
        out
    }
}

/// Identity of a simulated thread and the global rows/columns of `C` its
/// fragments own.
#[derive(Clone, Debug)]
pub struct ThreadCtx {
    /// Threadblock coordinates in the grid.
    pub block: (u64, u64),
    /// Warp index within the block.
    pub warp: u64,
    /// Lane within the warp, 0..32.
    pub lane: usize,
    /// Global row indices of the thread's `Mt` accumulator rows.
    pub rows: Vec<usize>,
    /// Global column indices of the thread's `Nt` accumulator columns.
    pub cols: Vec<usize>,
}

/// Result of one thread's local redundancy check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThreadVerdict {
    /// Whether the thread flagged a fault.
    pub fault_detected: bool,
    /// Largest check residual observed.
    pub residual: f64,
    /// Threshold the residual was compared against.
    pub threshold: f64,
}

impl ThreadVerdict {
    /// A clean (no-fault) verdict.
    pub fn clean() -> Self {
        ThreadVerdict {
            fault_detected: false,
            residual: 0.0,
            threshold: 0.0,
        }
    }
}

/// Per-thread cost counters a scheme self-reports, in the units of
/// Table 1 (per-K-step MMAs and checksum operations are accumulated over
/// all steps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeCounters {
    /// Redundant Tensor-Core MMA participations.
    pub extra_mmas: u64,
    /// Checksum-generation ALU operations (HADD2-class).
    pub checksum_ops: u64,
}

impl SchemeCounters {
    fn merge(&mut self, other: SchemeCounters) {
        self.extra_mmas += other.extra_mmas;
        self.checksum_ops += other.checksum_ops;
    }
}

/// The fragments one simulated thread loaded for one K-step, as handed
/// to [`ThreadLocalScheme::on_k_step`].
///
/// `a`/`b` are the raw FP16 fragments: `a` is `Mt × 2` row-major (rows
/// ordered as `ctx.rows`), `b` is `2 × Nt` row-major (columns ordered as
/// `ctx.cols`). `a_f32`/`b_f32` are the same fragments pre-decoded to
/// `f32` by the engine — decoding FP16 is exact in `f32`, so schemes
/// that only need the numeric values (replication's shadow MMAs, ABFT's
/// redundant accumulations, magnitude tracking) should read these
/// instead of re-converting the raw bits the engine already decoded.
/// Schemes that model FP16 *arithmetic* (sequential HADD checksum
/// chains) still need the raw fragments.
#[derive(Clone, Copy, Debug)]
pub struct KStep<'a> {
    /// Raw FP16 `Mt × 2` A-fragment.
    pub a: &'a [F16],
    /// Raw FP16 `2 × Nt` B-fragment.
    pub b: &'a [F16],
    /// Pre-decoded `a` (same layout, exact values).
    pub a_f32: &'a [f32],
    /// Pre-decoded `b` (same layout, exact values).
    pub b_f32: &'a [f32],
    /// Rows of the thread's accumulator tile.
    pub mt: usize,
    /// Columns of the thread's accumulator tile.
    pub nt: usize,
}

/// A redundancy scheme living inside the thread-level inner loop.
///
/// One instance protects one simulated thread; the engine constructs an
/// instance per thread via the factory passed to [`GemmEngine::run`].
pub trait ThreadLocalScheme: Send {
    /// Capability hook: whether this scheme consumes per-K-step
    /// fragments at all. Epilogue-only schemes (the unprotected
    /// baseline, kernel-level ABFT run via [`NoScheme`]) return `false`,
    /// which lets the engine skip fragment gathering *and* the per-step
    /// virtual call entirely and run its fused dot-product fast path —
    /// the serving common case. When this returns `false`,
    /// [`Self::on_k_step`] is never called; `begin`/`finalize` still are.
    ///
    /// Must be constant across all instances a factory produces: the
    /// engine probes one instance per run and stages the raw FP16
    /// panels (or not) for the whole run based on its answer.
    fn needs_k_steps(&self) -> bool {
        true
    }

    /// Called once before the K-walk with the thread's identity.
    fn begin(&mut self, ctx: &ThreadCtx);

    /// Called for every K-step with the fragments the thread just loaded
    /// (raw FP16 and pre-decoded f32 views — see [`KStep`]). Sharing
    /// these loads is what keeps thread-level ABFT free of extra memory
    /// traffic (§5.1). Only called when [`Self::needs_k_steps`] is true.
    fn on_k_step(&mut self, step: &KStep<'_>);

    /// Called once after the K-walk with the thread's final `Mt × Nt`
    /// FP32 accumulators (row-major); performs the thread-local check.
    fn finalize(&mut self, ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict;

    /// Cost counters accumulated by this thread's instance.
    fn counters(&self) -> SchemeCounters {
        SchemeCounters::default()
    }
}

/// Boxed schemes forward to the inner implementation, so heterogeneous
/// scheme kernels (`aiga-core`'s `SchemeKernel` trait objects) can drive
/// the generic engine without monomorphizing per scheme.
impl ThreadLocalScheme for Box<dyn ThreadLocalScheme> {
    fn needs_k_steps(&self) -> bool {
        (**self).needs_k_steps()
    }
    fn begin(&mut self, ctx: &ThreadCtx) {
        (**self).begin(ctx)
    }
    fn on_k_step(&mut self, step: &KStep<'_>) {
        (**self).on_k_step(step)
    }
    fn finalize(&mut self, ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict {
        (**self).finalize(ctx, acc, mt, nt)
    }
    fn counters(&self) -> SchemeCounters {
        (**self).counters()
    }
}

/// The unprotected baseline: no redundant work, always-clean verdicts.
/// Opts out of K-step delivery, enabling the engine's fast path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoScheme;

impl ThreadLocalScheme for NoScheme {
    fn needs_k_steps(&self) -> bool {
        false
    }
    fn begin(&mut self, _ctx: &ThreadCtx) {}
    fn on_k_step(&mut self, _step: &KStep<'_>) {}
    fn finalize(
        &mut self,
        _ctx: &ThreadCtx,
        _acc: &[f32],
        _mt: usize,
        _nt: usize,
    ) -> ThreadVerdict {
        ThreadVerdict::clean()
    }
}

/// How an injected soft error corrupts an accumulator register.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Flip one bit (0..32) of the FP32 accumulator.
    BitFlip(u8),
    /// Add a value to the accumulator (models a wrong partial product).
    AddValue(f32),
    /// Overwrite the accumulator entirely (models a mux/select error).
    SetValue(f32),
}

/// A single injected fault targeting output element `(row, col)` of `C`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Global row of the corrupted output element.
    pub row: usize,
    /// Global column of the corrupted output element.
    pub col: usize,
    /// K-step after which the corruption strikes; `u64::MAX` means after
    /// the final step (a fault in the epilogue datapath).
    pub after_step: u64,
    /// Corruption applied.
    pub kind: FaultKind,
}

impl FaultKind {
    /// Applies the corruption to an accumulator value.
    pub fn apply(self, v: f32) -> f32 {
        match self {
            FaultKind::BitFlip(bit) => f32::from_bits(v.to_bits() ^ (1 << (bit as u32 % 32))),
            FaultKind::AddValue(d) => v + d,
            FaultKind::SetValue(x) => x,
        }
    }
}

/// One thread's positive detection, with provenance.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Threadblock coordinates.
    pub block: (u64, u64),
    /// Warp index within the block.
    pub warp: u64,
    /// Lane within the warp.
    pub lane: usize,
    /// Check residual that tripped the detection.
    pub residual: f64,
    /// Threshold it exceeded.
    pub threshold: f64,
}

/// Aggregated execution statistics of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineCounters {
    /// Simulated threads executed.
    pub threads: u64,
    /// K-steps per thread.
    pub k_steps: u64,
    /// Baseline MMA participations (Table 1: `Mt·Nt/2` per thread-step).
    pub baseline_mmas: u64,
    /// Scheme-reported extras, summed over threads.
    pub scheme: SchemeCounters,
}

/// Output of one simulated GEMM kernel.
#[derive(Clone, Debug)]
pub struct GemmOutput {
    /// Row-major FP32 pre-activation output, `m × n` (unpadded).
    pub c: Vec<f32>,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Threads that flagged a fault.
    pub detections: Vec<Detection>,
    /// Execution statistics.
    pub counters: EngineCounters,
}

impl GemmOutput {
    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.c[r * self.n + c]
    }

    /// True if any thread flagged a fault.
    pub fn fault_detected(&self) -> bool {
        !self.detections.is_empty()
    }
}

/// The functional GEMM engine for one problem shape and tiling.
#[derive(Clone, Debug)]
pub struct GemmEngine {
    shape: GemmShape,
    tiling: TilingConfig,
}

impl GemmEngine {
    /// Creates an engine with an explicit tiling.
    pub fn new(shape: GemmShape, tiling: TilingConfig) -> Self {
        tiling.validate();
        GemmEngine {
            shape: shape.padded_to_mma(),
            tiling,
        }
    }

    /// Creates an engine with the default tiling for the shape on a T4.
    pub fn with_default_tiling(shape: GemmShape) -> Self {
        let tiling = TilingConfig::select(shape, &crate::device::DeviceSpec::t4());
        Self::new(shape, tiling)
    }

    /// The padded shape this engine executes.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// The tiling in use.
    pub fn tiling(&self) -> TilingConfig {
        self.tiling
    }

    /// Runs the kernel: multiplies `a` (`m × k`) by `b` (`k × n`),
    /// executing `make_scheme()` inside every simulated thread and
    /// applying `fault` if given. Returns the unpadded `m × n` output.
    pub fn run<S, F>(
        &self,
        a: &Matrix,
        b: &Matrix,
        make_scheme: F,
        fault: Option<FaultPlan>,
    ) -> GemmOutput
    where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        let faults: Vec<FaultPlan> = fault.into_iter().collect();
        self.run_multi(a, b, make_scheme, &faults)
    }

    /// Like [`Self::run`] but injecting any number of simultaneous faults
    /// — used to exercise the multi-checksum extension of §2.4 (single-
    /// checksum ABFT only guarantees detection of one fault).
    pub fn run_multi<S, F>(
        &self,
        a: &Matrix,
        b: &Matrix,
        make_scheme: F,
        faults: &[FaultPlan],
    ) -> GemmOutput
    where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        let out_m = a.rows;
        let out_n = b.cols;
        let (gm, gn) = self.tiling.grid(self.shape);
        let cov_m = (gm * self.tiling.block_m) as usize;
        let cov_n = (gn * self.tiling.block_n) as usize;
        let k = self.shape.k as usize;

        // Capability probe: schemes that never consume K-step fragments
        // (the serving common case) let the engine skip both the raw
        // FP16 panel staging and the per-step virtual call.
        let needs_k_steps = make_scheme().needs_k_steps();

        // Pre-decode the panels to f32 once per run. FP16 → f32 is
        // exact, so every downstream product and accumulation is
        // bit-identical to decoding inside the K-loop. B is stored
        // transposed so a thread's K-walk streams both panels linearly.
        let panels = Panels {
            a16: needs_k_steps.then(|| a.padded(cov_m, k)),
            b16: needs_k_steps.then(|| b.padded(k, cov_n)),
            a_f32: a.decoded_padded(cov_m, k),
            b_f32_t: b.decoded_padded_transposed(k, cov_n),
            k,
        };

        let blocks: Vec<(u64, u64)> = (0..gm)
            .flat_map(|br| (0..gn).map(move |bc| (br, bc)))
            .collect();

        struct BlockResult {
            br: u64,
            bc: u64,
            tile: Vec<f32>,
            detections: Vec<Detection>,
            counters: EngineCounters,
        }

        let results: Vec<BlockResult> = aiga_util::par_map(&blocks, |&(br, bc)| {
            let mut tile = vec![0.0f32; (self.tiling.block_m * self.tiling.block_n) as usize];
            let mut detections = Vec::new();
            let mut counters = EngineCounters::default();
            self.run_block(
                br,
                bc,
                &panels,
                &make_scheme,
                faults,
                &mut tile,
                &mut detections,
                &mut counters,
            );
            BlockResult {
                br,
                bc,
                tile,
                detections,
                counters,
            }
        });

        let mut c = vec![0.0f32; out_m * out_n];
        let mut detections = Vec::new();
        let mut counters = EngineCounters::default();
        for r in results {
            let row0 = (r.br * self.tiling.block_m) as usize;
            let col0 = (r.bc * self.tiling.block_n) as usize;
            for lr in 0..self.tiling.block_m as usize {
                let gr = row0 + lr;
                if gr >= out_m {
                    break;
                }
                for lc in 0..self.tiling.block_n as usize {
                    let gc = col0 + lc;
                    if gc >= out_n {
                        break;
                    }
                    c[gr * out_n + gc] = r.tile[lr * self.tiling.block_n as usize + lc];
                }
            }
            detections.extend(r.detections);
            counters.threads += r.counters.threads;
            counters.baseline_mmas += r.counters.baseline_mmas;
            counters.scheme.merge(r.counters.scheme);
            counters.k_steps = r.counters.k_steps;
        }

        GemmOutput {
            c,
            m: out_m,
            n: out_n,
            detections,
            counters,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_block<S, F>(
        &self,
        br: u64,
        bc: u64,
        panels: &Panels,
        make_scheme: &F,
        faults: &[FaultPlan],
        tile: &mut [f32],
        detections: &mut Vec<Detection>,
        counters: &mut EngineCounters,
    ) where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        let t = &self.tiling;
        let warps_m = t.block_m / t.warp_m;
        let warps_n = t.block_n / t.warp_n;
        let mt = t.thread_mt() as usize;
        let nt = t.thread_nt() as usize;
        let k = panels.k;
        let k_steps = t.k_steps(self.shape);
        counters.k_steps = k_steps;
        let bn = t.block_n as usize;
        let row0 = (br * t.block_m) as usize;
        let col0 = (bc * t.block_n) as usize;

        // All loop-carried buffers live at block scope and are reused by
        // every simulated thread: the thread loop itself allocates
        // nothing.
        let mut a_chunk = vec![F16::ZERO; mt * 2];
        let mut b_chunk = vec![F16::ZERO; 2 * nt];
        let mut af_chunk = vec![0.0f32; mt * 2];
        let mut bf_chunk = vec![0.0f32; 2 * nt];
        let mut acc = vec![0.0f32; mt * nt];
        let mut fault_targets: Vec<(usize, u64, FaultKind)> = Vec::new();
        let mut ctx = ThreadCtx {
            block: (br, bc),
            warp: 0,
            lane: 0,
            rows: Vec::with_capacity(mt),
            cols: Vec::with_capacity(nt),
        };

        for wr in 0..warps_m {
            for wc in 0..warps_n {
                let warp = wr * warps_n + wc;
                for lane in 0..32usize {
                    let group = lane / 4;
                    let quad = lane % 4;
                    // Global rows/cols owned by this lane (PTX m16n8k8
                    // fragment layout tiled across the warp tile).
                    ctx.warp = warp;
                    ctx.lane = lane;
                    ctx.rows.clear();
                    for gran in 0..(t.warp_m / 16) {
                        let base = (br * t.block_m + wr * t.warp_m + gran * 16) as usize + group;
                        ctx.rows.push(base);
                        ctx.rows.push(base + 8);
                    }
                    ctx.cols.clear();
                    for gran in 0..(t.warp_n / 8) {
                        let base = (bc * t.block_n + wc * t.warp_n + gran * 8) as usize + 2 * quad;
                        ctx.cols.push(base);
                        ctx.cols.push(base + 1);
                    }

                    // Which accumulators (if any) the fault plans
                    // target. The whole targeting machinery is skipped
                    // when no faults are injected — the serving common
                    // case.
                    fault_targets.clear();
                    if !faults.is_empty() {
                        fault_targets.extend(faults.iter().filter_map(|f| {
                            let ri = ctx.rows.iter().position(|&r| r == f.row)?;
                            let ci = ctx.cols.iter().position(|&c| c == f.col)?;
                            Some((ri * nt + ci, f.after_step, f.kind))
                        }));
                    }

                    let mut scheme = make_scheme();
                    scheme.begin(&ctx);

                    if scheme.needs_k_steps() {
                        self.walk_k_with_scheme(
                            panels,
                            &ctx,
                            &mut scheme,
                            &fault_targets,
                            &mut a_chunk,
                            &mut b_chunk,
                            &mut af_chunk,
                            &mut bf_chunk,
                            &mut acc,
                        );
                    } else {
                        // Fast path: per-accumulator fused dot-product
                        // walk over the pre-decoded panels. Each
                        // accumulator sees the identical FP32 operation
                        // sequence as the step-ordered walk (accumulators
                        // are independent), so outputs stay bit-exact.
                        for (ri, &r) in ctx.rows.iter().enumerate() {
                            let a_row = &panels.a_f32[r * k..r * k + k];
                            for (ci, &c) in ctx.cols.iter().enumerate() {
                                let b_col = &panels.b_f32_t[c * k..c * k + k];
                                let idx = ri * nt + ci;
                                acc[idx] = if fault_targets.is_empty()
                                    || !fault_targets.iter().any(|&(i, _, _)| i == idx)
                                {
                                    let mut s = 0.0f32;
                                    for (aa, bb) in a_row.chunks_exact(2).zip(b_col.chunks_exact(2))
                                    {
                                        s += aa[0] * bb[0] + aa[1] * bb[1];
                                    }
                                    s
                                } else {
                                    // Cold variant for the (rare) faulted
                                    // accumulator: corrupt mid-walk, then
                                    // keep accumulating.
                                    let mut s = 0.0f32;
                                    for (step, (aa, bb)) in
                                        a_row.chunks_exact(2).zip(b_col.chunks_exact(2)).enumerate()
                                    {
                                        s += aa[0] * bb[0] + aa[1] * bb[1];
                                        for &(i, after, kind) in &fault_targets {
                                            if i == idx && after == step as u64 {
                                                s = kind.apply(s);
                                            }
                                        }
                                    }
                                    s
                                };
                            }
                        }
                    }

                    // Epilogue-datapath faults strike after the K-walk.
                    for &(idx, after, kind) in &fault_targets {
                        if after == u64::MAX {
                            acc[idx] = kind.apply(acc[idx]);
                        }
                    }

                    let verdict = scheme.finalize(&ctx, &acc, mt, nt);
                    if verdict.fault_detected {
                        detections.push(Detection {
                            block: (br, bc),
                            warp,
                            lane,
                            residual: verdict.residual,
                            threshold: verdict.threshold,
                        });
                    }
                    counters.threads += 1;
                    counters.baseline_mmas += k_steps * t.mmas_per_thread_step();
                    counters.scheme.merge(scheme.counters());

                    // Write the thread's accumulators into the block
                    // tile. Columns come in contiguous pairs (the
                    // fragment layout owns 2 adjacent columns per
                    // granule), so each pair is one slice copy.
                    for (ri, &r) in ctx.rows.iter().enumerate() {
                        let trow = (r - row0) * bn;
                        let acc_row = &acc[ri * nt..ri * nt + nt];
                        for (pair, chunk) in ctx.cols.chunks_exact(2).zip(acc_row.chunks_exact(2)) {
                            let c = pair[0] - col0;
                            tile[trow + c..trow + c + 2].copy_from_slice(chunk);
                        }
                    }
                }
            }
        }
    }

    /// The step-ordered K-walk for schemes that consume per-step
    /// fragments: gathers the raw FP16 and pre-decoded f32 chunks into
    /// the caller's reused buffers, runs the MMA math, invokes the
    /// scheme hook, and applies mid-kernel faults.
    #[allow(clippy::too_many_arguments)]
    fn walk_k_with_scheme<S: ThreadLocalScheme>(
        &self,
        panels: &Panels,
        ctx: &ThreadCtx,
        scheme: &mut S,
        fault_targets: &[(usize, u64, FaultKind)],
        a_chunk: &mut [F16],
        b_chunk: &mut [F16],
        af_chunk: &mut [f32],
        bf_chunk: &mut [f32],
        acc: &mut [f32],
    ) {
        let k = panels.k;
        let k_steps = self.tiling.k_steps(self.shape);
        let mt = ctx.rows.len();
        let nt = ctx.cols.len();
        let a16 = panels
            .a16
            .as_ref()
            .expect("F16 panels staged when a scheme consumes K-steps");
        let b16 = panels
            .b16
            .as_ref()
            .expect("F16 panels staged when a scheme consumes K-steps");

        acc.fill(0.0);
        for step in 0..k_steps {
            let k0 = (step * STEP_K) as usize;
            for (ri, &r) in ctx.rows.iter().enumerate() {
                let base = r * k + k0;
                a_chunk[ri * 2] = a16.data[base];
                a_chunk[ri * 2 + 1] = a16.data[base + 1];
                af_chunk[ri * 2] = panels.a_f32[base];
                af_chunk[ri * 2 + 1] = panels.a_f32[base + 1];
            }
            for (ci, &c) in ctx.cols.iter().enumerate() {
                b_chunk[ci] = b16.data[k0 * b16.cols + c];
                b_chunk[nt + ci] = b16.data[(k0 + 1) * b16.cols + c];
                let base = c * k + k0;
                bf_chunk[ci] = panels.b_f32_t[base];
                bf_chunk[nt + ci] = panels.b_f32_t[base + 1];
            }
            // The MMA math: FP16 products are exact in FP32; the two
            // k-lanes of the step are reduced first (dot-product unit),
            // then accumulated.
            for ri in 0..mt {
                let a0 = af_chunk[ri * 2];
                let a1 = af_chunk[ri * 2 + 1];
                for ci in 0..nt {
                    let partial = a0 * bf_chunk[ci] + a1 * bf_chunk[nt + ci];
                    acc[ri * nt + ci] += partial;
                }
            }
            scheme.on_k_step(&KStep {
                a: a_chunk,
                b: b_chunk,
                a_f32: af_chunk,
                b_f32: bf_chunk,
                mt,
                nt,
            });
            for &(idx, after, kind) in fault_targets {
                if after == step {
                    acc[idx] = kind.apply(acc[idx]);
                }
            }
        }
    }
}

/// Operand panels staged once per [`GemmEngine::run_multi`] call: the
/// pre-decoded f32 views (B transposed for linear K-walks) plus the raw
/// padded FP16 panels, staged only when a scheme consumes per-step
/// fragments.
struct Panels {
    a16: Option<Matrix>,
    b16: Option<Matrix>,
    /// Padded A decoded to f32, `cov_m × k` row-major.
    a_f32: Vec<f32>,
    /// Padded B decoded to f32 and transposed, `cov_n × k` row-major
    /// (one output column's K-walk is contiguous).
    b_f32_t: Vec<f32>,
    /// Shared inner dimension (the engine's padded K).
    k: usize,
}

/// Reference GEMM in FP64 (exact for FP16 inputs up to K ≈ 2^40 terms).
pub fn gemm_reference_f64(a: &Matrix, b: &Matrix) -> Vec<f64> {
    assert_eq!(a.cols, b.rows);
    let mut c = vec![0.0f64; a.rows * b.cols];
    for i in 0..a.rows {
        for kk in 0..a.cols {
            let av = a.get(i, kk).to_f64();
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols {
                c[i * b.cols + j] += av * b.get(kk, j).to_f64();
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_for(m: u64, n: u64, k: u64) -> GemmEngine {
        GemmEngine::new(
            GemmShape::new(m, n, k),
            TilingConfig {
                block_m: 32,
                block_n: 32,
                block_k: 16,
                warp_m: 16,
                warp_n: 16,
            },
        )
    }

    #[test]
    fn matches_f64_reference_within_fp32_accumulation_error() {
        let (m, n, k) = (48, 40, 64);
        let a = Matrix::random(m, k, 1);
        let b = Matrix::random(k, n, 2);
        let out = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
        let reference = gemm_reference_f64(&a, &b);
        for (i, (&got, &want)) in out.c.iter().zip(&reference).enumerate() {
            let err = (got as f64 - want).abs();
            // K=64 FP32 accumulations of exact products: error well under
            // K * eps32 * |terms|.
            assert!(err < 1e-3, "element {i}: {got} vs {want}");
        }
    }

    #[test]
    fn identity_multiplication_is_exact() {
        let n = 32;
        let ident = Matrix::from_fn(n, n, |r, c| if r == c { F16::ONE } else { F16::ZERO });
        let b = Matrix::random(n, n, 3);
        let out = engine_for(n as u64, n as u64, n as u64).run(&ident, &b, || NoScheme, None);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(out.get(r, c), b.get(r, c).to_f32());
            }
        }
    }

    #[test]
    fn unaligned_shapes_are_padded_and_cropped() {
        let (m, n, k) = (17, 9, 11);
        let a = Matrix::random(m, k, 4);
        let b = Matrix::random(k, n, 5);
        let out = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
        assert_eq!((out.m, out.n), (m, n));
        let reference = gemm_reference_f64(&a, &b);
        for (&got, &want) in out.c.iter().zip(&reference) {
            assert!((got as f64 - want).abs() < 1e-3);
        }
    }

    #[test]
    fn every_output_element_is_written_exactly_once() {
        // A product of all-ones matrices has every element equal to K —
        // if fragment ownership double-wrote or missed elements the
        // block-tile assembly would show it.
        let (m, n, k) = (64, 64, 32);
        let ones = Matrix::from_fn(m, k, |_, _| F16::ONE);
        let ones_b = Matrix::from_fn(k, n, |_, _| F16::ONE);
        let out = engine_for(m as u64, n as u64, k as u64).run(&ones, &ones_b, || NoScheme, None);
        assert!(out.c.iter().all(|&v| v == k as f32));
    }

    #[test]
    fn counters_match_tiling_formulas() {
        let eng = engine_for(64, 64, 64);
        let a = Matrix::random(64, 64, 6);
        let b = Matrix::random(64, 64, 7);
        let out = eng.run(&a, &b, || NoScheme, None);
        let t = eng.tiling();
        let threads = t.total_blocks(eng.shape()) * t.threads_per_block();
        assert_eq!(out.counters.threads, threads);
        assert_eq!(out.counters.k_steps, 32);
        assert_eq!(
            out.counters.baseline_mmas,
            threads * 32 * t.mmas_per_thread_step()
        );
    }

    #[test]
    fn injected_fault_corrupts_exactly_one_element() {
        let (m, n, k) = (32, 32, 32);
        let a = Matrix::random(m, k, 8);
        let b = Matrix::random(k, n, 9);
        let eng = engine_for(m as u64, n as u64, k as u64);
        let clean = eng.run(&a, &b, || NoScheme, None);
        let fault = FaultPlan {
            row: 5,
            col: 7,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(100.0),
        };
        let dirty = eng.run(&a, &b, || NoScheme, Some(fault));
        let mut diffs = 0;
        for i in 0..m * n {
            if clean.c[i] != dirty.c[i] {
                diffs += 1;
                assert_eq!(i, 5 * n + 7);
                assert!((dirty.c[i] - clean.c[i] - 100.0).abs() < 1e-3);
            }
        }
        assert_eq!(diffs, 1);
        // NoScheme never detects anything.
        assert!(!dirty.fault_detected());
    }

    #[test]
    fn mid_kernel_fault_still_lands() {
        let (m, n, k) = (16, 16, 64);
        let a = Matrix::random(m, k, 10);
        let b = Matrix::random(k, n, 11);
        let eng = engine_for(m as u64, n as u64, k as u64);
        let clean = eng.run(&a, &b, || NoScheme, None);
        let fault = FaultPlan {
            row: 0,
            col: 0,
            after_step: 3,
            kind: FaultKind::SetValue(1e4),
        };
        let dirty = eng.run(&a, &b, || NoScheme, Some(fault));
        // The corrupted accumulator keeps accumulating afterwards, so the
        // output differs from clean but is not exactly 1e4.
        assert_ne!(clean.get(0, 0), dirty.get(0, 0));
        assert!(dirty.get(0, 0) > 5e3);
    }

    #[test]
    fn bitflip_fault_kind_flips_the_requested_bit() {
        let v = 1.5f32;
        let flipped = FaultKind::BitFlip(30).apply(v);
        assert_eq!(flipped.to_bits(), v.to_bits() ^ (1 << 30));
        // Applying twice restores the value.
        assert_eq!(FaultKind::BitFlip(30).apply(flipped), v);
    }

    #[test]
    fn output_is_byte_identical_to_an_oracle_conversion_walk() {
        // Replays every accumulator's exact operation sequence — K-steps
        // in order, `a0·b0 + a1·b1` then accumulate — but converts the
        // FP16 operands through the pre-table arithmetic formulation
        // instead of the decode table / pre-decoded panels. Byte
        // equality proves panel pre-decoding changed no result bit.
        fn oracle_f32(h: F16) -> f32 {
            let bits = h.to_bits();
            let sign = if bits & 0x8000 != 0 { -1.0f64 } else { 1.0 };
            let exp = ((bits & 0x7c00) >> 10) as i32;
            let frac = (bits & 0x03ff) as f64;
            let wide = match exp {
                0 => sign * frac * 2.0_f64.powi(-24),
                31 => {
                    if frac == 0.0 {
                        sign * f64::INFINITY
                    } else {
                        f64::NAN
                    }
                }
                _ => sign * (1024.0 + frac) * 2.0_f64.powi(exp - 25),
            };
            wide as f32
        }
        for &(m, n, k, seed) in &[(17usize, 9usize, 11usize, 90u64), (48, 40, 64, 91)] {
            let a = Matrix::random(m, k, seed);
            let b = Matrix::random(k, n, seed + 1);
            let eng = engine_for(m as u64, n as u64, k as u64);
            let out = eng.run(&a, &b, || NoScheme, None);
            let kp = eng.shape().k as usize; // padded K (zeros beyond k)
            let at = |r: usize, c: usize| {
                if c < k {
                    oracle_f32(a.get(r, c))
                } else {
                    0.0
                }
            };
            let bt = |r: usize, c: usize| {
                if r < k {
                    oracle_f32(b.get(r, c))
                } else {
                    0.0
                }
            };
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for k0 in (0..kp).step_by(2) {
                        acc += at(i, k0) * bt(k0, j) + at(i, k0 + 1) * bt(k0 + 1, j);
                    }
                    assert_eq!(
                        out.get(i, j).to_bits(),
                        acc.to_bits(),
                        "element ({i},{j}) of {m}x{n}x{k}"
                    );
                }
            }
        }
    }

    #[test]
    fn hooked_schemes_see_matching_raw_and_decoded_fragments() {
        // A probe scheme that verifies the engine hands `on_k_step`
        // consistent views: decoded fragments must equal the raw FP16
        // fragments element for element, every step.
        #[derive(Default)]
        struct Probe {
            steps_seen: u64,
        }
        impl ThreadLocalScheme for Probe {
            fn begin(&mut self, _ctx: &ThreadCtx) {}
            fn on_k_step(&mut self, step: &KStep<'_>) {
                assert_eq!(step.a.len(), step.mt * 2);
                assert_eq!(step.b.len(), 2 * step.nt);
                for (raw, dec) in step.a.iter().zip(step.a_f32) {
                    assert_eq!(raw.to_f32().to_bits(), dec.to_bits());
                }
                for (raw, dec) in step.b.iter().zip(step.b_f32) {
                    assert_eq!(raw.to_f32().to_bits(), dec.to_bits());
                }
                self.steps_seen += 1;
            }
            fn finalize(
                &mut self,
                _ctx: &ThreadCtx,
                _acc: &[f32],
                _mt: usize,
                _nt: usize,
            ) -> ThreadVerdict {
                assert_eq!(self.steps_seen, 32, "one hook call per K-step");
                ThreadVerdict::clean()
            }
        }
        let a = Matrix::random(32, 64, 14);
        let b = Matrix::random(64, 32, 15);
        let eng = engine_for(32, 32, 64);
        let hooked = eng.run(&a, &b, Probe::default, None);
        let fast = eng.run(&a, &b, || NoScheme, None);
        // And the hooked walk must agree with the fast path bit for bit.
        assert_eq!(hooked.c, fast.c);
    }

    #[test]
    fn larger_tiling_produces_identical_results() {
        let (m, n, k) = (128, 128, 32);
        let a = Matrix::random(m, k, 12);
        let b = Matrix::random(k, n, 13);
        let small = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
        let big = GemmEngine::new(
            GemmShape::new(m as u64, n as u64, k as u64),
            TilingConfig {
                block_m: 128,
                block_n: 128,
                block_k: 32,
                warp_m: 64,
                warp_n: 64,
            },
        )
        .run(&a, &b, || NoScheme, None);
        // Same K-walk order per element => bit-identical FP32 outputs.
        assert_eq!(small.c, big.c);
    }
}
