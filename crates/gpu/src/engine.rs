//! The functional GEMM engine: a software model of a CUTLASS-style FP16
//! Tensor Core kernel.
//!
//! The engine executes `C = A · B` through the full hierarchy of Figure 2:
//! the grid is split into threadblock tiles, threadblocks into warp tiles,
//! and warp tiles into per-thread fragments following the `m16n8k8` PTX
//! layout (each lane owns 2 rows per 16-row MMA granule and 2 columns per
//! 8-column granule). Each simulated thread walks the K dimension in
//! steps of 2, loading an `Mt × 2` chunk of `At` and a `2 × Nt` chunk of
//! `Bt` exactly as Figure 3 describes, accumulating into FP32 registers.
//!
//! Redundancy schemes plug in through [`ThreadLocalScheme`]: the engine
//! calls the scheme with the very fragments the thread loaded (sharing
//! loads, never adding memory traffic — the §3.5 design principle) and
//! hands it the final accumulators for the thread-local check. This is
//! the seam where the paper modified CUTLASS's thread-level inner loops.
//!
//! Faults are injected into the accumulator datapath ([`FaultPlan`]),
//! modeling a soft error in processing logic per the fault model of §2.3:
//! operands are assumed correct (ECC-protected memory), control flow is
//! assumed correct, and a single output value of `C` is corrupted.

use crate::shape::GemmShape;
use crate::tiling::{TilingConfig, STEP_K};
use aiga_fp16::F16;
use aiga_util::rng::Rng64;

/// A row-major FP16 matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` elements.
    pub data: Vec<F16>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F16::ZERO; rows * cols],
        }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F16) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix with entries in `[-2, 2]`
    /// quantized to FP16 — the magnitude regime of normalized NN
    /// activations and weights.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        Self::from_fn(rows, cols, |_, _| F16::from_f32(rng.range_f32(-2.0, 2.0)))
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> F16 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F16) {
        self.data[r * self.cols + c] = v;
    }

    /// Copies into a larger zero-padded matrix.
    pub fn padded(&self, rows: usize, cols: usize) -> Matrix {
        assert!(rows >= self.rows && cols >= self.cols, "padding must grow");
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            out.data[r * cols..r * cols + self.cols].copy_from_slice(src);
        }
        out
    }
}

/// Identity of a simulated thread and the global rows/columns of `C` its
/// fragments own.
#[derive(Clone, Debug)]
pub struct ThreadCtx {
    /// Threadblock coordinates in the grid.
    pub block: (u64, u64),
    /// Warp index within the block.
    pub warp: u64,
    /// Lane within the warp, 0..32.
    pub lane: usize,
    /// Global row indices of the thread's `Mt` accumulator rows.
    pub rows: Vec<usize>,
    /// Global column indices of the thread's `Nt` accumulator columns.
    pub cols: Vec<usize>,
}

/// Result of one thread's local redundancy check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThreadVerdict {
    /// Whether the thread flagged a fault.
    pub fault_detected: bool,
    /// Largest check residual observed.
    pub residual: f64,
    /// Threshold the residual was compared against.
    pub threshold: f64,
}

impl ThreadVerdict {
    /// A clean (no-fault) verdict.
    pub fn clean() -> Self {
        ThreadVerdict {
            fault_detected: false,
            residual: 0.0,
            threshold: 0.0,
        }
    }
}

/// Per-thread cost counters a scheme self-reports, in the units of
/// Table 1 (per-K-step MMAs and checksum operations are accumulated over
/// all steps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeCounters {
    /// Redundant Tensor-Core MMA participations.
    pub extra_mmas: u64,
    /// Checksum-generation ALU operations (HADD2-class).
    pub checksum_ops: u64,
}

impl SchemeCounters {
    fn merge(&mut self, other: SchemeCounters) {
        self.extra_mmas += other.extra_mmas;
        self.checksum_ops += other.checksum_ops;
    }
}

/// A redundancy scheme living inside the thread-level inner loop.
///
/// One instance protects one simulated thread; the engine constructs an
/// instance per thread via the factory passed to [`GemmEngine::run`].
pub trait ThreadLocalScheme: Send {
    /// Called once before the K-walk with the thread's identity.
    fn begin(&mut self, ctx: &ThreadCtx);

    /// Called for every K-step with the fragments the thread just loaded:
    /// `a_chunk` is `Mt × 2` row-major (rows ordered as `ctx.rows`),
    /// `b_chunk` is `2 × Nt` row-major (columns ordered as `ctx.cols`).
    /// Sharing these loads is what keeps thread-level ABFT free of extra
    /// memory traffic (§5.1).
    fn on_k_step(&mut self, a_chunk: &[F16], b_chunk: &[F16], mt: usize, nt: usize);

    /// Called once after the K-walk with the thread's final `Mt × Nt`
    /// FP32 accumulators (row-major); performs the thread-local check.
    fn finalize(&mut self, ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict;

    /// Cost counters accumulated by this thread's instance.
    fn counters(&self) -> SchemeCounters {
        SchemeCounters::default()
    }
}

/// Boxed schemes forward to the inner implementation, so heterogeneous
/// scheme kernels (`aiga-core`'s `SchemeKernel` trait objects) can drive
/// the generic engine without monomorphizing per scheme.
impl ThreadLocalScheme for Box<dyn ThreadLocalScheme> {
    fn begin(&mut self, ctx: &ThreadCtx) {
        (**self).begin(ctx)
    }
    fn on_k_step(&mut self, a_chunk: &[F16], b_chunk: &[F16], mt: usize, nt: usize) {
        (**self).on_k_step(a_chunk, b_chunk, mt, nt)
    }
    fn finalize(&mut self, ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict {
        (**self).finalize(ctx, acc, mt, nt)
    }
    fn counters(&self) -> SchemeCounters {
        (**self).counters()
    }
}

/// The unprotected baseline: no redundant work, always-clean verdicts.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoScheme;

impl ThreadLocalScheme for NoScheme {
    fn begin(&mut self, _ctx: &ThreadCtx) {}
    fn on_k_step(&mut self, _a: &[F16], _b: &[F16], _mt: usize, _nt: usize) {}
    fn finalize(
        &mut self,
        _ctx: &ThreadCtx,
        _acc: &[f32],
        _mt: usize,
        _nt: usize,
    ) -> ThreadVerdict {
        ThreadVerdict::clean()
    }
}

/// How an injected soft error corrupts an accumulator register.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Flip one bit (0..32) of the FP32 accumulator.
    BitFlip(u8),
    /// Add a value to the accumulator (models a wrong partial product).
    AddValue(f32),
    /// Overwrite the accumulator entirely (models a mux/select error).
    SetValue(f32),
}

/// A single injected fault targeting output element `(row, col)` of `C`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Global row of the corrupted output element.
    pub row: usize,
    /// Global column of the corrupted output element.
    pub col: usize,
    /// K-step after which the corruption strikes; `u64::MAX` means after
    /// the final step (a fault in the epilogue datapath).
    pub after_step: u64,
    /// Corruption applied.
    pub kind: FaultKind,
}

impl FaultKind {
    /// Applies the corruption to an accumulator value.
    pub fn apply(self, v: f32) -> f32 {
        match self {
            FaultKind::BitFlip(bit) => f32::from_bits(v.to_bits() ^ (1 << (bit as u32 % 32))),
            FaultKind::AddValue(d) => v + d,
            FaultKind::SetValue(x) => x,
        }
    }
}

/// One thread's positive detection, with provenance.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Threadblock coordinates.
    pub block: (u64, u64),
    /// Warp index within the block.
    pub warp: u64,
    /// Lane within the warp.
    pub lane: usize,
    /// Check residual that tripped the detection.
    pub residual: f64,
    /// Threshold it exceeded.
    pub threshold: f64,
}

/// Aggregated execution statistics of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineCounters {
    /// Simulated threads executed.
    pub threads: u64,
    /// K-steps per thread.
    pub k_steps: u64,
    /// Baseline MMA participations (Table 1: `Mt·Nt/2` per thread-step).
    pub baseline_mmas: u64,
    /// Scheme-reported extras, summed over threads.
    pub scheme: SchemeCounters,
}

/// Output of one simulated GEMM kernel.
#[derive(Clone, Debug)]
pub struct GemmOutput {
    /// Row-major FP32 pre-activation output, `m × n` (unpadded).
    pub c: Vec<f32>,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Threads that flagged a fault.
    pub detections: Vec<Detection>,
    /// Execution statistics.
    pub counters: EngineCounters,
}

impl GemmOutput {
    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.c[r * self.n + c]
    }

    /// True if any thread flagged a fault.
    pub fn fault_detected(&self) -> bool {
        !self.detections.is_empty()
    }
}

/// The functional GEMM engine for one problem shape and tiling.
#[derive(Clone, Debug)]
pub struct GemmEngine {
    shape: GemmShape,
    tiling: TilingConfig,
}

impl GemmEngine {
    /// Creates an engine with an explicit tiling.
    pub fn new(shape: GemmShape, tiling: TilingConfig) -> Self {
        tiling.validate();
        GemmEngine {
            shape: shape.padded_to_mma(),
            tiling,
        }
    }

    /// Creates an engine with the default tiling for the shape on a T4.
    pub fn with_default_tiling(shape: GemmShape) -> Self {
        let tiling = TilingConfig::select(shape, &crate::device::DeviceSpec::t4());
        Self::new(shape, tiling)
    }

    /// The padded shape this engine executes.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// The tiling in use.
    pub fn tiling(&self) -> TilingConfig {
        self.tiling
    }

    /// Runs the kernel: multiplies `a` (`m × k`) by `b` (`k × n`),
    /// executing `make_scheme()` inside every simulated thread and
    /// applying `fault` if given. Returns the unpadded `m × n` output.
    pub fn run<S, F>(
        &self,
        a: &Matrix,
        b: &Matrix,
        make_scheme: F,
        fault: Option<FaultPlan>,
    ) -> GemmOutput
    where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        let faults: Vec<FaultPlan> = fault.into_iter().collect();
        self.run_multi(a, b, make_scheme, &faults)
    }

    /// Like [`Self::run`] but injecting any number of simultaneous faults
    /// — used to exercise the multi-checksum extension of §2.4 (single-
    /// checksum ABFT only guarantees detection of one fault).
    pub fn run_multi<S, F>(
        &self,
        a: &Matrix,
        b: &Matrix,
        make_scheme: F,
        faults: &[FaultPlan],
    ) -> GemmOutput
    where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        let out_m = a.rows;
        let out_n = b.cols;
        let (gm, gn) = self.tiling.grid(self.shape);
        let cov_m = (gm * self.tiling.block_m) as usize;
        let cov_n = (gn * self.tiling.block_n) as usize;
        let k = self.shape.k as usize;
        let ap = a.padded(cov_m, k);
        let bp = b.padded(k, cov_n);

        let blocks: Vec<(u64, u64)> = (0..gm)
            .flat_map(|br| (0..gn).map(move |bc| (br, bc)))
            .collect();

        struct BlockResult {
            br: u64,
            bc: u64,
            tile: Vec<f32>,
            detections: Vec<Detection>,
            counters: EngineCounters,
        }

        let results: Vec<BlockResult> = aiga_util::par_map(&blocks, |&(br, bc)| {
            let mut tile = vec![0.0f32; (self.tiling.block_m * self.tiling.block_n) as usize];
            let mut detections = Vec::new();
            let mut counters = EngineCounters::default();
            self.run_block(
                br,
                bc,
                &ap,
                &bp,
                &make_scheme,
                faults,
                &mut tile,
                &mut detections,
                &mut counters,
            );
            BlockResult {
                br,
                bc,
                tile,
                detections,
                counters,
            }
        });

        let mut c = vec![0.0f32; out_m * out_n];
        let mut detections = Vec::new();
        let mut counters = EngineCounters::default();
        for r in results {
            let row0 = (r.br * self.tiling.block_m) as usize;
            let col0 = (r.bc * self.tiling.block_n) as usize;
            for lr in 0..self.tiling.block_m as usize {
                let gr = row0 + lr;
                if gr >= out_m {
                    break;
                }
                for lc in 0..self.tiling.block_n as usize {
                    let gc = col0 + lc;
                    if gc >= out_n {
                        break;
                    }
                    c[gr * out_n + gc] = r.tile[lr * self.tiling.block_n as usize + lc];
                }
            }
            detections.extend(r.detections);
            counters.threads += r.counters.threads;
            counters.baseline_mmas += r.counters.baseline_mmas;
            counters.scheme.merge(r.counters.scheme);
            counters.k_steps = r.counters.k_steps;
        }

        GemmOutput {
            c,
            m: out_m,
            n: out_n,
            detections,
            counters,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_block<S, F>(
        &self,
        br: u64,
        bc: u64,
        ap: &Matrix,
        bp: &Matrix,
        make_scheme: &F,
        faults: &[FaultPlan],
        tile: &mut [f32],
        detections: &mut Vec<Detection>,
        counters: &mut EngineCounters,
    ) where
        S: ThreadLocalScheme,
        F: Fn() -> S + Sync,
    {
        let t = &self.tiling;
        let warps_m = t.block_m / t.warp_m;
        let warps_n = t.block_n / t.warp_n;
        let mt = t.thread_mt() as usize;
        let nt = t.thread_nt() as usize;
        let k_steps = t.k_steps(self.shape);
        counters.k_steps = k_steps;

        let mut a_chunk = vec![F16::ZERO; mt * 2];
        let mut b_chunk = vec![F16::ZERO; 2 * nt];
        let mut acc = vec![0.0f32; mt * nt];

        for wr in 0..warps_m {
            for wc in 0..warps_n {
                let warp = wr * warps_n + wc;
                for lane in 0..32usize {
                    let group = lane / 4;
                    let quad = lane % 4;
                    // Global rows/cols owned by this lane (PTX m16n8k8
                    // fragment layout tiled across the warp tile).
                    let mut rows = Vec::with_capacity(mt);
                    for gran in 0..(t.warp_m / 16) {
                        let base = (br * t.block_m + wr * t.warp_m + gran * 16) as usize + group;
                        rows.push(base);
                        rows.push(base + 8);
                    }
                    let mut cols = Vec::with_capacity(nt);
                    for gran in 0..(t.warp_n / 8) {
                        let base = (bc * t.block_n + wc * t.warp_n + gran * 8) as usize + 2 * quad;
                        cols.push(base);
                        cols.push(base + 1);
                    }
                    let ctx = ThreadCtx {
                        block: (br, bc),
                        warp,
                        lane,
                        rows,
                        cols,
                    };

                    // Which accumulators (if any) the fault plans target.
                    let fault_targets: Vec<(usize, u64, FaultKind)> = faults
                        .iter()
                        .filter_map(|f| {
                            let ri = ctx.rows.iter().position(|&r| r == f.row)?;
                            let ci = ctx.cols.iter().position(|&c| c == f.col)?;
                            Some((ri * nt + ci, f.after_step, f.kind))
                        })
                        .collect();

                    let mut scheme = make_scheme();
                    scheme.begin(&ctx);
                    acc.iter_mut().for_each(|v| *v = 0.0);

                    for step in 0..k_steps {
                        let k0 = (step * STEP_K) as usize;
                        for (ri, &r) in ctx.rows.iter().enumerate() {
                            a_chunk[ri * 2] = ap.get(r, k0);
                            a_chunk[ri * 2 + 1] = ap.get(r, k0 + 1);
                        }
                        for (ci, &c) in ctx.cols.iter().enumerate() {
                            b_chunk[ci] = bp.get(k0, c);
                            b_chunk[nt + ci] = bp.get(k0 + 1, c);
                        }
                        // The MMA math: FP16 products are exact in FP32;
                        // the two k-lanes of the step are reduced first
                        // (dot-product unit), then accumulated.
                        for ri in 0..mt {
                            let a0 = a_chunk[ri * 2].to_f32();
                            let a1 = a_chunk[ri * 2 + 1].to_f32();
                            for ci in 0..nt {
                                let partial =
                                    a0 * b_chunk[ci].to_f32() + a1 * b_chunk[nt + ci].to_f32();
                                acc[ri * nt + ci] += partial;
                            }
                        }
                        scheme.on_k_step(&a_chunk, &b_chunk, mt, nt);
                        for &(idx, after, kind) in &fault_targets {
                            if after == step {
                                acc[idx] = kind.apply(acc[idx]);
                            }
                        }
                    }
                    for &(idx, after, kind) in &fault_targets {
                        if after == u64::MAX {
                            acc[idx] = kind.apply(acc[idx]);
                        }
                    }

                    let verdict = scheme.finalize(&ctx, &acc, mt, nt);
                    if verdict.fault_detected {
                        detections.push(Detection {
                            block: (br, bc),
                            warp,
                            lane,
                            residual: verdict.residual,
                            threshold: verdict.threshold,
                        });
                    }
                    counters.threads += 1;
                    counters.baseline_mmas += k_steps * t.mmas_per_thread_step();
                    counters.scheme.merge(scheme.counters());

                    // Write the thread's accumulators into the block tile.
                    let row0 = (br * t.block_m) as usize;
                    let col0 = (bc * t.block_n) as usize;
                    for (ri, &r) in ctx.rows.iter().enumerate() {
                        for (ci, &c) in ctx.cols.iter().enumerate() {
                            tile[(r - row0) * t.block_n as usize + (c - col0)] = acc[ri * nt + ci];
                        }
                    }
                }
            }
        }
    }
}

/// Reference GEMM in FP64 (exact for FP16 inputs up to K ≈ 2^40 terms).
pub fn gemm_reference_f64(a: &Matrix, b: &Matrix) -> Vec<f64> {
    assert_eq!(a.cols, b.rows);
    let mut c = vec![0.0f64; a.rows * b.cols];
    for i in 0..a.rows {
        for kk in 0..a.cols {
            let av = a.get(i, kk).to_f64();
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols {
                c[i * b.cols + j] += av * b.get(kk, j).to_f64();
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_for(m: u64, n: u64, k: u64) -> GemmEngine {
        GemmEngine::new(
            GemmShape::new(m, n, k),
            TilingConfig {
                block_m: 32,
                block_n: 32,
                block_k: 16,
                warp_m: 16,
                warp_n: 16,
            },
        )
    }

    #[test]
    fn matches_f64_reference_within_fp32_accumulation_error() {
        let (m, n, k) = (48, 40, 64);
        let a = Matrix::random(m, k, 1);
        let b = Matrix::random(k, n, 2);
        let out = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
        let reference = gemm_reference_f64(&a, &b);
        for (i, (&got, &want)) in out.c.iter().zip(&reference).enumerate() {
            let err = (got as f64 - want).abs();
            // K=64 FP32 accumulations of exact products: error well under
            // K * eps32 * |terms|.
            assert!(err < 1e-3, "element {i}: {got} vs {want}");
        }
    }

    #[test]
    fn identity_multiplication_is_exact() {
        let n = 32;
        let ident = Matrix::from_fn(n, n, |r, c| if r == c { F16::ONE } else { F16::ZERO });
        let b = Matrix::random(n, n, 3);
        let out = engine_for(n as u64, n as u64, n as u64).run(&ident, &b, || NoScheme, None);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(out.get(r, c), b.get(r, c).to_f32());
            }
        }
    }

    #[test]
    fn unaligned_shapes_are_padded_and_cropped() {
        let (m, n, k) = (17, 9, 11);
        let a = Matrix::random(m, k, 4);
        let b = Matrix::random(k, n, 5);
        let out = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
        assert_eq!((out.m, out.n), (m, n));
        let reference = gemm_reference_f64(&a, &b);
        for (&got, &want) in out.c.iter().zip(&reference) {
            assert!((got as f64 - want).abs() < 1e-3);
        }
    }

    #[test]
    fn every_output_element_is_written_exactly_once() {
        // A product of all-ones matrices has every element equal to K —
        // if fragment ownership double-wrote or missed elements the
        // block-tile assembly would show it.
        let (m, n, k) = (64, 64, 32);
        let ones = Matrix::from_fn(m, k, |_, _| F16::ONE);
        let ones_b = Matrix::from_fn(k, n, |_, _| F16::ONE);
        let out = engine_for(m as u64, n as u64, k as u64).run(&ones, &ones_b, || NoScheme, None);
        assert!(out.c.iter().all(|&v| v == k as f32));
    }

    #[test]
    fn counters_match_tiling_formulas() {
        let eng = engine_for(64, 64, 64);
        let a = Matrix::random(64, 64, 6);
        let b = Matrix::random(64, 64, 7);
        let out = eng.run(&a, &b, || NoScheme, None);
        let t = eng.tiling();
        let threads = t.total_blocks(eng.shape()) * t.threads_per_block();
        assert_eq!(out.counters.threads, threads);
        assert_eq!(out.counters.k_steps, 32);
        assert_eq!(
            out.counters.baseline_mmas,
            threads * 32 * t.mmas_per_thread_step()
        );
    }

    #[test]
    fn injected_fault_corrupts_exactly_one_element() {
        let (m, n, k) = (32, 32, 32);
        let a = Matrix::random(m, k, 8);
        let b = Matrix::random(k, n, 9);
        let eng = engine_for(m as u64, n as u64, k as u64);
        let clean = eng.run(&a, &b, || NoScheme, None);
        let fault = FaultPlan {
            row: 5,
            col: 7,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(100.0),
        };
        let dirty = eng.run(&a, &b, || NoScheme, Some(fault));
        let mut diffs = 0;
        for i in 0..m * n {
            if clean.c[i] != dirty.c[i] {
                diffs += 1;
                assert_eq!(i, 5 * n + 7);
                assert!((dirty.c[i] - clean.c[i] - 100.0).abs() < 1e-3);
            }
        }
        assert_eq!(diffs, 1);
        // NoScheme never detects anything.
        assert!(!dirty.fault_detected());
    }

    #[test]
    fn mid_kernel_fault_still_lands() {
        let (m, n, k) = (16, 16, 64);
        let a = Matrix::random(m, k, 10);
        let b = Matrix::random(k, n, 11);
        let eng = engine_for(m as u64, n as u64, k as u64);
        let clean = eng.run(&a, &b, || NoScheme, None);
        let fault = FaultPlan {
            row: 0,
            col: 0,
            after_step: 3,
            kind: FaultKind::SetValue(1e4),
        };
        let dirty = eng.run(&a, &b, || NoScheme, Some(fault));
        // The corrupted accumulator keeps accumulating afterwards, so the
        // output differs from clean but is not exactly 1e4.
        assert_ne!(clean.get(0, 0), dirty.get(0, 0));
        assert!(dirty.get(0, 0) > 5e3);
    }

    #[test]
    fn bitflip_fault_kind_flips_the_requested_bit() {
        let v = 1.5f32;
        let flipped = FaultKind::BitFlip(30).apply(v);
        assert_eq!(flipped.to_bits(), v.to_bits() ^ (1 << 30));
        // Applying twice restores the value.
        assert_eq!(FaultKind::BitFlip(30).apply(flipped), v);
    }

    #[test]
    fn larger_tiling_produces_identical_results() {
        let (m, n, k) = (128, 128, 32);
        let a = Matrix::random(m, k, 12);
        let b = Matrix::random(k, n, 13);
        let small = engine_for(m as u64, n as u64, k as u64).run(&a, &b, || NoScheme, None);
        let big = GemmEngine::new(
            GemmShape::new(m as u64, n as u64, k as u64),
            TilingConfig {
                block_m: 128,
                block_n: 128,
                block_k: 32,
                warp_m: 64,
                warp_n: 64,
            },
        )
        .run(&a, &b, || NoScheme, None);
        // Same K-walk order per element => bit-identical FP32 outputs.
        assert_eq!(small.c, big.c);
    }
}
