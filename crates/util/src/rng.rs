//! Deterministic pseudo-random numbers (SplitMix64).
//!
//! SplitMix64 passes BigCrush, needs eight bytes of state, and — unlike
//! the cryptographic generator `rand::StdRng` wraps — is trivially
//! auditable. All randomness in the workspace (matrix data, fault sites,
//! property-test cases) flows through this type, keyed by explicit seeds,
//! so campaigns and tests are reproducible bit for bit.

/// A seedable deterministic generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds produce equal
    /// streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix the seed once so small consecutive seeds (0, 1, 2, …)
        // do not produce correlated first outputs.
        let mut rng = Rng64 { state: seed };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16-bit output.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_f64() * (hi - lo)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.range_f64(lo as f64, hi as f64) as f32
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Lemire's multiply-shift; the tiny modulo bias (< 2^-64 · span)
        // is irrelevant for simulation workloads.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo; // inclusive width minus one; may be u64::MAX
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + ((self.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge_immediately() {
        let a = Rng64::seed_from_u64(1).next_u64();
        let b = Rng64::seed_from_u64(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.range_u64(3, 17);
            assert!((3..17).contains(&v));
            let f = rng.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_handles_extremes() {
        let mut rng = Rng64::seed_from_u64(17);
        for _ in 0..1000 {
            let v = rng.range_u64_inclusive(5, u64::MAX);
            assert!(v >= 5);
            assert_eq!(rng.range_u64_inclusive(9, 9), 9);
            let w = rng.range_u64_inclusive(0, 1);
            assert!(w <= 1);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn f64_is_in_unit_interval_and_not_constant() {
        let mut rng = Rng64::seed_from_u64(11);
        let vals: Vec<f64> = (0..100).map(|_| rng.gen_f64()).collect();
        assert!(vals.iter().all(|&v| (0.0..1.0).contains(&v)));
        assert!(vals.iter().any(|&v| v != vals[0]));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}
