//! A fixed-bin log2 latency histogram.
//!
//! 64 power-of-two bins cover the full `u64` nanosecond range: bin `i`
//! counts samples in `[2^i, 2^(i+1))` (bin 0 also takes 0 ns). Recording
//! is one atomic increment — lock-free, wait-free, shareable across any
//! number of threads by reference — and the memory footprint is a flat
//! 512 bytes regardless of sample count. Quantiles interpolate linearly
//! *within* the bin holding the quantile sample (by its rank among the
//! bin's samples), so reported percentiles are meaningful numbers
//! rather than the raw power-of-two bin edges (a bare log2 histogram
//! can only ever answer 67.1 ms or 134.2 ms — useless for diffing
//! `BENCH_serving.json` runs). The estimate stays inside the sample's
//! bin, so it is never more than 2× the true latency and never below
//! the bin's lower edge — the right fidelity for serving dashboards at
//! zero steady-state cost (no allocation, ever).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BINS: usize = 64;

/// A concurrent log2 histogram of nanosecond latencies.
pub struct LatencyHistogram {
    bins: [AtomicU64; BINS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            bins: [const { AtomicU64::new(0) }; BINS],
        }
    }
}

/// The bin a sample falls in: `floor(log2(ns))`, with 0 mapped to bin 0.
#[inline]
fn bin_of(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros()) as usize
}

/// The exclusive upper boundary of a bin, saturating at `u64::MAX`.
#[inline]
fn bin_upper(bin: usize) -> u64 {
    if bin >= BINS - 1 {
        u64::MAX
    } else {
        1u64 << (bin + 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.bins[bin_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one latency sample from a [`Duration`] (saturating at
    /// `u64::MAX` nanoseconds — ~584 years).
    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_ns(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.bins.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Folds the counts of `other` into `self` (e.g. merging per-worker
    /// histograms into a fleet-wide one).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.bins.iter().zip(&other.bins) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, linearly
    /// interpolated within the bin holding the quantile sample: if the
    /// sample is the `r`-th of `c` samples in `[lo, hi)`, the estimate
    /// is `lo + (hi - lo) · r/c`. A lone sample in its bin reports the
    /// bin's upper bound (the pre-interpolation behavior), so the
    /// estimate is always in `(lo, hi]` — within 2× of the true
    /// latency, and no longer pinned to power-of-two edges. Returns 0
    /// for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let mut counts = [0u64; BINS];
        for (count, bin) in counts.iter_mut().zip(&self.bins) {
            *count = bin.load(Ordering::Relaxed);
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // The rank of the quantile sample, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bin, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if bin == 0 { 0 } else { 1u64 << bin };
                let hi = bin_upper(bin);
                let within = (rank - seen) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * within).round() as u64;
            }
            seen += c;
        }
        bin_upper(BINS - 1)
    }

    /// Median latency estimate, ns.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency estimate, ns.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency estimate, ns.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("p50_ns", &self.p50_ns())
            .field("p95_ns", &self.p95_ns())
            .field("p99_ns", &self.p99_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_the_u64_range() {
        assert_eq!(bin_of(0), 0);
        assert_eq!(bin_of(1), 0);
        assert_eq!(bin_of(2), 1);
        assert_eq!(bin_of(3), 1);
        assert_eq!(bin_of(4), 2);
        assert_eq!(bin_of(u64::MAX), 63);
        assert_eq!(bin_upper(0), 2);
        assert_eq!(bin_upper(62), 1 << 63);
        assert_eq!(bin_upper(63), u64::MAX);
    }

    #[test]
    fn quantiles_are_upper_bounds_within_2x() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50_ns(), 0); // empty
        for ns in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 10);
        for q in [0.5, 0.95, 0.99] {
            let est = h.quantile_ns(q);
            let rank = ((q * 10.0).ceil() as usize).clamp(1, 10);
            let exact = [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200][rank - 1];
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(est <= exact * 2, "q={q}: {est} > 2x exact {exact}");
        }
    }

    #[test]
    fn uniform_samples_give_sane_percentile_ordering() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 1000); // 1µs .. 1ms
        }
        let (p50, p95, p99) = (h.p50_ns(), h.p95_ns(), h.p99_ns());
        assert!(p50 <= p95 && p95 <= p99);
        assert!((500_000..=1_048_576).contains(&p50));
        assert!(p99 >= 990_000);
    }

    #[test]
    fn quantiles_interpolate_within_a_bin() {
        // 64 samples spread across one bin, [2^25, 2^26) ≈ 33.6–67.1 ms:
        // a pure log2 readout could only ever answer 67108864 exactly.
        let h = LatencyHistogram::new();
        let lo = 1u64 << 25;
        for i in 0..64u64 {
            h.record_ns(lo + i * (lo / 64));
        }
        let p50 = h.p50_ns();
        assert_ne!(p50, 1 << 26, "p50 must not sit on the bin edge");
        assert!(p50 > lo && p50 <= 1 << 26);
        // Rank 32 of 64 -> halfway through the bin.
        assert_eq!(p50, lo + lo / 2);
        // Higher quantiles move monotonically toward the upper edge.
        let p95 = h.p95_ns();
        let p99 = h.p99_ns();
        assert!(p50 < p95 && p95 < p99 && p99 <= 1 << 26);
        // The true p99 (sample 64 of 64 at ~lo + 63/64·lo) is within the
        // interpolated estimate's bin resolution.
        assert!((p99 as f64 - (lo + 63 * (lo / 64)) as f64).abs() < lo as f64 / 8.0);
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.p99_ns() >= 1_000_000 / 2);
        // The donor is untouched.
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
