//! Scoped-thread parallel map.
//!
//! Replaces the `items.par_iter().map(f).collect()` idiom with standard
//! library scoped threads. Work is split into one contiguous chunk per
//! worker — the workloads in this repo (simulated threadblocks, fault
//! trials) are uniform enough that static chunking balances well.

std::thread_local! {
    /// True while the current thread is a `par_map` worker; nested
    /// `par_map` calls then run sequentially instead of multiplying
    /// thread counts (e.g. a parallel fault campaign whose every trial
    /// runs the block-parallel GEMM engine).
    static INSIDE_PAR_MAP: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Cached `available_parallelism`: the stdlib call re-reads cgroup/proc
/// state (and allocates) on every invocation, which would put heap
/// traffic on zero-allocation hot paths that merely *ask* about
/// parallelism before staying sequential.
fn hardware_parallelism() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// How many workers a parallel region over `items` units of work would
/// fan out to *from the current thread*: the hardware parallelism capped
/// by the item count, or 1 when the caller is itself a parallel worker
/// (nested regions stay sequential). Callers that manage their own
/// scoped threads (e.g. the block-parallel GEMM engine) use this to make
/// the same sequential-fallback decision as [`par_map`].
pub fn effective_workers(items: usize) -> usize {
    if INSIDE_PAR_MAP.with(|flag| flag.get()) {
        return 1;
    }
    hardware_parallelism().min(items)
}

/// Runs `f` with the current thread marked as a parallel worker, so any
/// nested [`par_map`]/[`effective_workers`] call inside it stays
/// sequential. For callers that spawn their own scoped threads but want
/// them to obey the same no-nested-fan-out discipline.
pub fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    INSIDE_PAR_MAP.with(|flag| flag.set(true));
    let out = f();
    INSIDE_PAR_MAP.with(|flag| flag.set(false));
    out
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Falls back to a sequential map when the slice is small, only one
/// hardware thread is available, or the caller is itself a `par_map`
/// worker (no nested fan-out).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, || (), |(), item| f(item))
}

/// Like [`par_map`], but each worker first builds private mutable state
/// with `init` and threads it through every item of its chunk.
///
/// This is the workspace-reuse primitive: a fault campaign passes
/// `init = Workspace::new` and every worker serves all of its trials
/// from one warm workspace, so the per-trial hot path stops allocating.
/// On the sequential fallback a single state instance covers the whole
/// slice.
pub fn par_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = hardware_parallelism().min(items.len());
    if workers <= 1 || INSIDE_PAR_MAP.with(|flag| flag.get()) {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let (init, f) = (&init, &f);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    INSIDE_PAR_MAP.with(|flag| flag.set(true));
                    let mut state = init();
                    part.iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_with_reuses_state_within_a_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..256).collect();
        let out = par_map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new() // per-worker scratch
            },
            |scratch, &x| {
                scratch.push(x); // state persists across a worker's items
                x
            },
        );
        assert_eq!(out, items);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(items.len());
        // One state per worker (or exactly one on the sequential path) —
        // never one per item.
        assert!(inits.load(Ordering::Relaxed) <= workers);
        assert!(inits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn effective_workers_caps_by_items_and_nesting() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_workers(1), 1);
        assert_eq!(effective_workers(1024), cores.min(1024));
        // Inside a worker context the answer is always 1.
        let nested = as_worker(|| effective_workers(1024));
        assert_eq!(nested, 1);
        // The marker is scoped to the closure.
        assert_eq!(effective_workers(1024), cores.min(1024));
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn nested_calls_do_not_multiply_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spawned = AtomicUsize::new(0);
        let outer: Vec<u32> = (0..8).collect();
        let out = par_map(&outer, |&x| {
            // The inner call must take the sequential path.
            let inner: Vec<u32> = (0..64).collect();
            let inner_sum: u32 = par_map(&inner, |&y| {
                spawned.fetch_add(1, Ordering::Relaxed);
                y
            })
            .into_iter()
            .sum();
            x + inner_sum
        });
        assert_eq!(out.len(), 8);
        assert_eq!(spawned.load(Ordering::Relaxed), 8 * 64);
        // After returning to the root thread, parallelism is available
        // again (the flag only marks worker threads).
        assert!(!super::INSIDE_PAR_MAP.with(|f| f.get()));
    }

    #[test]
    fn actually_runs_concurrently_when_possible() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        par_map(&items, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        // On a multicore machine at least two workers overlap; on a
        // single-core runner the sequential path is exercised instead.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(peak.load(Ordering::SeqCst) > 1);
        }
    }
}
