//! Scoped-thread parallel map.
//!
//! Replaces the `items.par_iter().map(f).collect()` idiom with standard
//! library scoped threads. Work is split into one contiguous chunk per
//! worker — the workloads in this repo (simulated threadblocks, fault
//! trials) are uniform enough that static chunking balances well.

std::thread_local! {
    /// True while the current thread is a `par_map` worker; nested
    /// `par_map` calls then run sequentially instead of multiplying
    /// thread counts (e.g. a parallel fault campaign whose every trial
    /// runs the block-parallel GEMM engine).
    static INSIDE_PAR_MAP: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Falls back to a sequential map when the slice is small, only one
/// hardware thread is available, or the caller is itself a `par_map`
/// worker (no nested fan-out).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 || INSIDE_PAR_MAP.with(|flag| flag.get()) {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    INSIDE_PAR_MAP.with(|flag| flag.set(true));
                    part.iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn nested_calls_do_not_multiply_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spawned = AtomicUsize::new(0);
        let outer: Vec<u32> = (0..8).collect();
        let out = par_map(&outer, |&x| {
            // The inner call must take the sequential path.
            let inner: Vec<u32> = (0..64).collect();
            let inner_sum: u32 = par_map(&inner, |&y| {
                spawned.fetch_add(1, Ordering::Relaxed);
                y
            })
            .into_iter()
            .sum();
            x + inner_sum
        });
        assert_eq!(out.len(), 8);
        assert_eq!(spawned.load(Ordering::Relaxed), 8 * 64);
        // After returning to the root thread, parallelism is available
        // again (the flag only marks worker threads).
        assert!(!super::INSIDE_PAR_MAP.with(|f| f.get()));
    }

    #[test]
    fn actually_runs_concurrently_when_possible() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        par_map(&items, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        // On a multicore machine at least two workers overlap; on a
        // single-core runner the sequential path is exercised instead.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(peak.load(Ordering::SeqCst) > 1);
        }
    }
}
