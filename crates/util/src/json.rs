//! A minimal JSON value, parser, and writer.
//!
//! Exists so `aiga-core` can serialize deployment plans without external
//! crates. The writer emits floats through Rust's shortest round-trip
//! formatting, so `parse(render(v))` reproduces every finite `f64`
//! exactly. Non-finite numbers are rejected at construction.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (order is preserved).
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`] or typed accessors.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the failure (0 for accessor errors).
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
        offset,
    })
}

impl Json {
    /// Builds an object node from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string node.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number node; panics on NaN/infinity (not representable).
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON cannot represent {v}");
        Json::Num(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that reports the missing key.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            message: format!("missing field `{key}`"),
            offset: 0,
        })
    }

    /// The number value, if this node is a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(v) => Ok(*v),
            other => err(format!("expected number, found {}", other.kind()), 0),
        }
    }

    /// The number value as an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= (1u64 << 53) as f64 {
            Ok(v as u64)
        } else {
            err(format!("expected unsigned integer, found {v}"), 0)
        }
    }

    /// The string value, if this node is a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, found {}", other.kind()), 0),
        }
    }

    /// The array items, if this node is an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, found {}", other.kind()), 0),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Renders compact JSON. Finite floats round-trip exactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // Rust's float Display prints the shortest decimal that
                // round-trips, which is exactly what we need.
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must be a single value with only trailing
    /// whitespace after it).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err("trailing characters after value", p.pos);
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}`", b as char), self.pos)
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("expected `{word}`"), self.pos)
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => err(format!("unexpected character `{}`", c as char), self.pos),
            None => err("unexpected end of input", self.pos),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err("expected `,` or `]`", self.pos),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err("expected `,` or `}`", self.pos),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string", self.pos),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex =
                                self.bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or(JsonError {
                                        message: "truncated \\u escape".into(),
                                        offset: self.pos,
                                    })?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| JsonError {
                                    message: "non-ASCII \\u escape".into(),
                                    offset: self.pos,
                                })?,
                                16,
                            )
                            .map_err(|_| JsonError {
                                message: "invalid \\u escape".into(),
                                offset: self.pos,
                            })?;
                            // Surrogate pairs are not needed by the plan
                            // format; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return err("invalid escape", self.pos),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => err(format!("invalid number `{text}`"), start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("name", Json::str("dlrm \"bottom\"\n")),
            ("count", Json::num(3.0)),
            (
                "layers",
                Json::Arr(vec![
                    Json::obj([("t", Json::num(2.5e-6)), ("ok", Json::Bool(true))]),
                    Json::Null,
                ]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 2.5e-6, 6.5e13, f64::MIN_POSITIVE, -0.0] {
            let text = Json::num(v).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"x\\ty\" , null ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "x\ty"
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "[] []"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn typed_accessors_report_mismatches() {
        assert!(Json::str("x").as_f64().is_err());
        assert!(Json::num(1.5).as_u64().is_err());
        assert!(Json::num(-1.0).as_u64().is_err());
        assert_eq!(Json::num(7.0).as_u64().unwrap(), 7);
        assert!(Json::Null.field("k").is_err());
    }
}
