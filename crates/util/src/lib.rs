//! # aiga-util — dependency-free workspace utilities
//!
//! The build environment has no access to crates.io, so the handful of
//! external crates the reproduction would normally lean on are replaced
//! by small, self-contained implementations:
//!
//! - [`rng`]: a deterministic SplitMix64-based pseudo-random generator
//!   (replaces `rand`). Everything that draws random matrices, fault
//!   sites, or property-test cases seeds one of these, so every run is
//!   reproducible.
//! - [`par`]: a scoped-thread parallel map over slices (replaces
//!   `rayon`'s `par_iter().map().collect()` pattern).
//! - [`json`]: a minimal JSON value type with a recursive-descent parser
//!   and a round-trip-safe writer (replaces `serde`/`serde_json` for the
//!   plan-serialization API).
//! - [`sync`]: a bounded, closable MPMC queue (replaces
//!   `crossbeam-channel`/`flume`) — the admission queue of the
//!   `aiga::serve` front-end.
//! - [`hist`]: a fixed-bin log2 latency histogram with lock-free
//!   recording and p50/p95/p99 readout (replaces `hdrhistogram`).

pub mod hist;
pub mod json;
pub mod par;
pub mod rng;
pub mod sync;

pub use hist::LatencyHistogram;
pub use json::Json;
pub use par::{as_worker, effective_workers, par_map, par_map_with};
pub use rng::Rng64;
pub use sync::{PushError, SyncQueue};
