//! A bounded multi-producer multi-consumer queue (mutex + condvars).
//!
//! Replaces the channel crates the serving front-end would normally
//! lean on (`crossbeam-channel`, `flume`): a `SyncQueue<T>` is the
//! admission queue between request submitters and worker threads.
//! Three properties matter for serving and are guaranteed here:
//!
//! - **Bounded.** Capacity is fixed at construction; producers get
//!   explicit backpressure (`try_push` fails fast, `push` blocks,
//!   `push_timeout` bounds the wait) instead of unbounded buffering.
//! - **Closable.** `close()` starts a graceful drain: producers are
//!   turned away immediately, consumers keep popping until the queue
//!   is empty and then observe `None`.
//! - **Front-inspectable.** `try_pop_if`/`pop_timeout_if` pop the head
//!   only when a predicate accepts it, without ever reordering — the
//!   dynamic batcher uses this to coalesce *compatible* neighbors while
//!   preserving FIFO admission order.
//! - **Age-tracked.** Every entry is timestamped at push and
//!   [`SyncQueue::head_age`] reports how long the current head has been
//!   waiting. Because the queue is FIFO, the head is always the oldest
//!   entry, so `head_age` *is* the queue age — the load signal an
//!   SLO-aware admission layer needs to decide when to degrade or shed
//!   instead of letting latency run away.
//!
//! The storage is a `VecDeque` pre-allocated to capacity, so
//! steady-state push/pop handoff performs no heap allocation.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued item plus its admission timestamp.
struct Entry<T> {
    at: Instant,
    item: T,
}

/// Why a push did not enqueue. The rejected item is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity (and stayed so for the allowed wait).
    Full(T),
    /// The queue has been closed; no further items are accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the item that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct State<T> {
    items: VecDeque<Entry<T>>,
    closed: bool,
}

/// A bounded, closable MPMC queue. All methods take `&self`; share it
/// behind an `Arc` (or borrow it across scoped threads).
pub struct SyncQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> SyncQueue<T> {
    /// Creates a queue holding at most `capacity` items (>= 1). The
    /// backing storage is allocated up front.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        SyncQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// How long the current head (the oldest entry — the queue is FIFO)
    /// has been waiting, or `None` when the queue is empty. This is the
    /// queue-age signal for SLO-aware admission: it grows while
    /// consumers fall behind and collapses the moment they catch up.
    pub fn head_age(&self) -> Option<Duration> {
        let state = self.state.lock().unwrap();
        state.items.front().map(|e| e.at.elapsed())
    }

    /// Closes the queue: producers are rejected from now on; consumers
    /// drain the remaining items and then observe end-of-queue.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Enqueues, blocking while the queue is full. `Err` returns the
    /// item when the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(Entry {
                    at: Instant::now(),
                    item,
                });
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap();
        }
    }

    /// Enqueues only if there is room right now.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(Entry {
            at: Instant::now(),
            item,
        });
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking up to `timeout` for room. Expired deadlines
    /// report [`PushError::Full`].
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(Entry {
                    at: Instant::now(),
                    item,
                });
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Full(item));
            }
            let (next, _) = self.not_full.wait_timeout(state, deadline - now).unwrap();
            state = next;
        }
    }

    /// Dequeues, blocking while the queue is empty. `None` means the
    /// queue is closed *and* fully drained — the consumer's exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(entry) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(entry.item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Dequeues only if an item is ready right now.
    pub fn try_pop(&self) -> Option<T> {
        self.try_pop_if(|_| true)
    }

    /// Dequeues the head only if `accept` approves it; an unacceptable
    /// head is left in place (FIFO order is never violated).
    pub fn try_pop_if(&self, accept: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        if !accept(&state.items.front()?.item) {
            // This caller may have consumed the push's single
            // `not_empty` notification; hand it on so another consumer
            // blocked in `pop` takes the declined item instead of the
            // two of them stranding it (lost wakeup).
            self.not_empty.notify_one();
            return None;
        }
        let item = state.items.pop_front().map(|e| e.item);
        self.not_full.notify_one();
        item
    }

    /// Waits up to `timeout` for a head item that `accept` approves,
    /// popping it. Returns `None` on deadline expiry, on close-and-
    /// empty, or as soon as an *unacceptable* head arrives (so a
    /// selective consumer never stalls items it will not take).
    pub fn pop_timeout_if(&self, timeout: Duration, accept: impl Fn(&T) -> bool) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(front) = state.items.front() {
                if !accept(&front.item) {
                    // As in `try_pop_if`: this waiter consumed the
                    // push's notification; re-notify so a plain `pop`
                    // consumer picks the declined head up.
                    self.not_empty.notify_one();
                    return None;
                }
                let item = state.items.pop_front().map(|e| e.item);
                self.not_full.notify_one();
                return item;
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self.not_empty.wait_timeout(state, deadline - now).unwrap();
            state = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_is_preserved() {
        let q = SyncQueue::bounded(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_reports_full_and_closed() {
        let q = SyncQueue::bounded(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        q.close();
        let err = q.try_push(4).unwrap_err();
        assert!(matches!(err, PushError::Closed(4)));
        assert_eq!(err.into_inner(), 4);
    }

    #[test]
    fn close_drains_then_signals_end() {
        let q = SyncQueue::bounded(4);
        q.push(10).unwrap();
        q.push(20).unwrap();
        q.close();
        assert_eq!(q.push(30), Err(30));
        // Consumers still drain what was admitted before the close.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn push_blocks_until_a_pop_makes_room() {
        let q = Arc::new(SyncQueue::bounded(1));
        q.push(1).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push(2))
        };
        // Give the producer a moment to block on the full queue, then
        // make room; the blocked push must complete.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(SyncQueue::bounded(1));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(SyncQueue::<u32>::bounded(1));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn push_timeout_expires_on_a_full_queue() {
        let q = SyncQueue::bounded(1);
        q.push(1).unwrap();
        let t0 = Instant::now();
        match q.push_timeout(2, Duration::from_millis(30)) {
            Err(PushError::Full(2)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn conditional_pop_never_reorders() {
        let q = SyncQueue::bounded(4);
        q.push(3).unwrap();
        q.push(4).unwrap();
        // Head fails the predicate: nothing is popped, order intact.
        assert_eq!(q.try_pop_if(|&x| x % 2 == 0), None);
        assert_eq!(q.len(), 2);
        // Head passes: popped.
        assert_eq!(q.try_pop_if(|&x| x == 3), Some(3));
        assert_eq!(q.try_pop(), Some(4));
    }

    #[test]
    fn pop_timeout_if_returns_on_incompatible_head() {
        let q = SyncQueue::bounded(4);
        q.push(5).unwrap();
        let t0 = Instant::now();
        // The head exists but is rejected: return immediately, do not
        // burn the timeout.
        assert_eq!(q.pop_timeout_if(Duration::from_secs(5), |&x| x > 10), None);
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(q.len(), 1);
        // Empty queue: waits out the (short) deadline.
        q.try_pop().unwrap();
        assert_eq!(q.pop_timeout_if(Duration::from_millis(20), |_| true), None);
        // Item arriving during the wait is delivered.
        let q = Arc::new(SyncQueue::bounded(1));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_timeout_if(Duration::from_secs(5), |&x: &u32| x == 9))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(9u32).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(9));
    }

    #[test]
    fn head_age_tracks_the_oldest_entry() {
        let q = SyncQueue::bounded(4);
        assert_eq!(q.head_age(), None, "empty queue has no age");
        q.push(1).unwrap();
        std::thread::sleep(Duration::from_millis(15));
        q.push(2).unwrap();
        // The head is the first (oldest) push, so its age reflects the
        // full wait, not the most recent push.
        let age = q.head_age().expect("non-empty");
        assert!(age >= Duration::from_millis(15), "{age:?}");
        q.pop().unwrap();
        let age = q.head_age().expect("one entry left");
        assert!(age < Duration::from_millis(15), "{age:?}");
        q.pop().unwrap();
        assert_eq!(q.head_age(), None, "drained queue has no age");
    }

    #[test]
    fn mpmc_handoff_delivers_every_item_once() {
        let q = Arc::new(SyncQueue::bounded(4));
        let total: u64 = 4 * 200;
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                let mut n = 0u64;
                while let Some(v) = q.pop() {
                    sum += v;
                    n += 1;
                }
                (sum, n)
            }));
        }
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    q.push(p * 200 + i).unwrap();
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let (sum, n) = consumers
            .into_iter()
            .map(|c| c.join().unwrap())
            .fold((0, 0), |(s, c), (s2, c2)| (s + s2, c + c2));
        assert_eq!(n, total);
        assert_eq!(sum, (0..total).sum::<u64>());
    }
}
