//! Injection campaigns: grade a scheme's detection — and, in
//! correction mode, *repair* — coverage.

use crate::model::FaultModel;
use aiga_core::adapt::Observation;
use aiga_core::{ProtectedGemm, Scheme};
use aiga_gpu::engine::{Dtype, FaultPlan, Matrix, Workspace};
use aiga_gpu::GemmShape;

/// Classification of one injection trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Outcome {
    /// The scheme flagged the fault and the output was indeed corrupted.
    Detected,
    /// Correction mode only: the scheme localized the fault, recomputed
    /// the implicated slice, and the final output is *byte-equal* to
    /// the clean run — the end-to-end recovery oracle.
    Corrected,
    /// The output was corrupted but no flag was raised.
    SilentDataCorruption {
        /// Largest absolute output deviation from the clean run.
        max_abs_delta: f64,
    },
    /// The corruption was absorbed before the final output (e.g. a
    /// low-order mantissa flip rounded away); nothing to detect.
    Masked,
    /// A flag was raised although the output was unchanged.
    FalsePositive,
}

/// Aggregated campaign statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CampaignStats {
    /// Trials run.
    pub trials: usize,
    /// Trials classified [`Outcome::Detected`].
    pub detected: usize,
    /// Trials classified [`Outcome::Corrected`] — flagged, localized,
    /// and repaired to byte-equality (correction mode only).
    pub corrected: usize,
    /// Trials classified [`Outcome::SilentDataCorruption`].
    pub sdc: usize,
    /// Trials classified [`Outcome::Masked`].
    pub masked: usize,
    /// Trials classified [`Outcome::FalsePositive`].
    pub false_positives: usize,
    /// Largest silent corruption observed.
    pub worst_sdc: f64,
}

impl CampaignStats {
    /// Detection rate over *corrupting* trials (masked trials have
    /// nothing to detect). Corrected trials were corrupting and caught
    /// — they count on both sides.
    pub fn detection_rate(&self) -> f64 {
        let corrupting = self.detected + self.corrected + self.sdc;
        if corrupting == 0 {
            1.0
        } else {
            (self.detected + self.corrected) as f64 / corrupting as f64
        }
    }

    /// Correction rate over *caught* trials: of the faults the scheme
    /// flagged, the fraction it also repaired to byte-equality.
    pub fn correction_rate(&self) -> f64 {
        let caught = self.detected + self.corrected;
        if caught == 0 {
            0.0
        } else {
            self.corrected as f64 / caught as f64
        }
    }

    /// SDC rate over all trials.
    pub fn sdc_rate(&self) -> f64 {
        self.sdc as f64 / self.trials.max(1) as f64
    }

    fn absorb(&mut self, o: Outcome) {
        self.trials += 1;
        match o {
            Outcome::Detected => self.detected += 1,
            Outcome::Corrected => self.corrected += 1,
            Outcome::SilentDataCorruption { max_abs_delta } => {
                self.sdc += 1;
                self.worst_sdc = self.worst_sdc.max(max_abs_delta);
            }
            Outcome::Masked => self.masked += 1,
            Outcome::FalsePositive => self.false_positives += 1,
        }
    }
}

/// One trial's full record: the injected fault, the scheme's verdict
/// (as the [`Observation`] the adaptive controller consumes), and the
/// graded outcome. [`Campaign::run_faults_detailed`] returns these so
/// campaign data can drive [`aiga_core::adapt::AdaptiveController`]
/// replay directly.
#[derive(Clone, Copy, Debug)]
pub struct Trial {
    /// The injected fault.
    pub fault: FaultPlan,
    /// Scheme + verdict, in the controller's shared observation type.
    pub observation: Observation,
    /// The graded outcome.
    pub outcome: Outcome,
}

/// A fault-injection campaign against one scheme on one GEMM shape.
pub struct Campaign {
    shape: GemmShape,
    scheme: Scheme,
    dtype: Dtype,
    gemm: ProtectedGemm,
    clean: Vec<f32>,
    model: FaultModel,
    correction: bool,
}

impl Campaign {
    /// Prepares a campaign on a deterministic random problem stored in
    /// fp16 (equivalent to [`Self::new_dtype`] with [`Dtype::F16`]).
    pub fn new(shape: GemmShape, scheme: Scheme, seed: u64) -> Self {
        Self::new_dtype(shape, scheme, seed, Dtype::F16)
    }

    /// Prepares a campaign whose operands are quantized to `dtype` —
    /// the per-precision coverage sweep. The pseudo-random sample
    /// stream is shared across dtypes (and byte-identical to
    /// [`Self::new`] for [`Dtype::F16`]), so coverage differences
    /// between precisions reflect the format, not the problem.
    pub fn new_dtype(shape: GemmShape, scheme: Scheme, seed: u64, dtype: Dtype) -> Self {
        let a = Matrix::random_dtype(shape.m as usize, shape.k as usize, seed, dtype);
        let b = Matrix::random_dtype(shape.k as usize, shape.n as usize, seed + 1, dtype);
        let gemm = ProtectedGemm::new(a, b, scheme);
        let clean = gemm.run().output.c.clone();
        Campaign {
            shape,
            scheme,
            dtype,
            gemm,
            clean,
            model: FaultModel::new(shape),
            correction: false,
        }
    }

    /// Switches the campaign into *correction* mode: trials run through
    /// [`ProtectedGemm::run_corrected_into`], and a localized repair
    /// counts as [`Outcome::Corrected`] only when the repaired output is
    /// byte-equal to the clean run (anything less is graded as the SDC
    /// it would be in production).
    pub fn with_correction(mut self, on: bool) -> Self {
        self.correction = on;
        self
    }

    /// The scheme under test.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The GEMM shape under test.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// The storage dtype the operands are quantized to.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Classifies one injected fault (convenience over
    /// [`Self::classify_with`] with a throwaway workspace).
    pub fn classify(&self, fault: FaultPlan) -> Outcome {
        self.classify_with(fault, &mut Workspace::new())
    }

    /// Classifies one injected fault inside a caller-supplied workspace.
    /// A warm workspace makes each trial allocation-free — campaign
    /// loops give every [`aiga_util::par_map_with`] worker its own.
    pub fn classify_with(&self, fault: FaultPlan, ws: &mut Workspace) -> Outcome {
        self.classify_detailed_with(fault, ws).outcome
    }

    /// Like [`Self::classify_with`], but returning the full [`Trial`]
    /// record (fault + scheme verdict + outcome).
    pub fn classify_detailed_with(&self, fault: FaultPlan, ws: &mut Workspace) -> Trial {
        let verdict = if self.correction {
            self.gemm.run_corrected_into(&[fault], ws)
        } else {
            self.gemm.run_into(&[fault], ws)
        };
        let out = &ws.output().c;
        let max_abs_delta = out
            .iter()
            .zip(&self.clean)
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .fold(0.0f64, f64::max);
        let outcome = if verdict.is_corrected() {
            // The repair oracle is bitwise, not tolerance-based: a
            // "corrected" output that differs in any bit from the clean
            // run is corruption the caller would silently consume.
            let byte_equal = out.len() == self.clean.len()
                && out
                    .iter()
                    .zip(&self.clean)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
            if byte_equal {
                Outcome::Corrected
            } else {
                Outcome::SilentDataCorruption { max_abs_delta }
            }
        } else {
            let corrupted = max_abs_delta > 0.0;
            match (verdict.is_detected(), corrupted) {
                (true, true) => Outcome::Detected,
                (false, true) => Outcome::SilentDataCorruption { max_abs_delta },
                (false, false) => Outcome::Masked,
                (true, false) => Outcome::FalsePositive,
            }
        };
        Trial {
            fault,
            observation: Observation {
                scheme: self.scheme,
                verdict,
            },
            outcome,
        }
    }

    /// Runs `trials` uniformly random bit-flip injections in parallel.
    pub fn run_bit_flips(&self, trials: usize, seed: u64) -> CampaignStats {
        let faults: Vec<FaultPlan> = {
            let mut rng = FaultModel::rng(seed);
            (0..trials)
                .map(|_| self.model.random_bit_flip(&mut rng))
                .collect()
        };
        self.run_faults(&faults)
    }

    /// Runs a per-bit sweep: `trials_per_bit` injections at every FP32
    /// bit position, returning `(bit, stats)` pairs.
    pub fn bit_sweep(&self, trials_per_bit: usize, seed: u64) -> Vec<(u8, CampaignStats)> {
        (0..32u8)
            .map(|bit| {
                let faults: Vec<FaultPlan> = {
                    let mut rng = FaultModel::rng(seed ^ (bit as u64) << 32);
                    (0..trials_per_bit)
                        .map(|_| self.model.bit_flip_at(bit, &mut rng))
                        .collect()
                };
                (bit, self.run_faults(&faults))
            })
            .collect()
    }

    /// Runs an explicit fault list in parallel. Each worker thread
    /// serves all of its trials from one warm [`Workspace`], so after
    /// its first trial a worker's hot path performs zero heap
    /// allocations.
    pub fn run_faults(&self, faults: &[FaultPlan]) -> CampaignStats {
        aiga_util::par_map_with(faults, Workspace::new, |ws, &f| self.classify_with(f, ws))
            .into_iter()
            .fold(CampaignStats::default(), |mut s, o| {
                s.absorb(o);
                s
            })
    }

    /// Like [`Self::run_faults`], but keeping every trial's full record
    /// (fault, verdict observation, outcome) in input order.
    pub fn run_faults_detailed(&self, faults: &[FaultPlan]) -> Vec<Trial> {
        aiga_util::par_map_with(faults, Workspace::new, |ws, &f| {
            self.classify_detailed_with(f, ws)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> GemmShape {
        GemmShape::new(32, 32, 32)
    }

    #[test]
    fn high_exponent_flips_are_always_detected_by_one_sided_abft() {
        let c = Campaign::new(shape(), Scheme::ThreadLevelOneSided, 11);
        let stats = {
            let mut rng = FaultModel::rng(12);
            let m = FaultModel::new(shape());
            let faults: Vec<_> = (0..40).map(|_| m.bit_flip_at(30, &mut rng)).collect();
            c.run_faults(&faults)
        };
        assert_eq!(stats.sdc, 0, "{stats:?}");
        assert!(stats.detected > 0);
    }

    #[test]
    fn traditional_replication_has_zero_sdc() {
        // Exact comparison: every corrupting fault is caught.
        let c = Campaign::new(shape(), Scheme::ReplicationTraditional, 13);
        let stats = c.run_bit_flips(120, 14);
        assert_eq!(stats.sdc, 0, "{stats:?}");
        assert_eq!(stats.false_positives, 0);
        assert!(stats.detection_rate() == 1.0);
    }

    #[test]
    fn unprotected_detects_nothing() {
        let c = Campaign::new(shape(), Scheme::Unprotected, 15);
        let stats = c.run_bit_flips(60, 16);
        assert_eq!(stats.detected, 0);
        assert_eq!(stats.false_positives, 0);
        assert!(stats.sdc > 0, "some flips must corrupt: {stats:?}");
    }

    #[test]
    fn abft_sdc_is_bounded_by_the_tolerance_floor() {
        // Any SDC a tolerance-based checker misses must be smaller than
        // the detection threshold's scale — low-order mantissa noise.
        let c = Campaign::new(shape(), Scheme::GlobalAbft, 17);
        let stats = c.run_bit_flips(150, 18);
        assert!(stats.detected > 0);
        // The worst silent corruption is tiny relative to output scale
        // (outputs are O(10) for K=32 inputs in [-2,2]).
        assert!(stats.worst_sdc < 1.0, "{stats:?}");
    }

    #[test]
    fn mantissa_lsb_flips_are_mostly_masked_or_tiny() {
        let c = Campaign::new(shape(), Scheme::ThreadLevelOneSided, 19);
        let sweep = c.bit_sweep(10, 20);
        let (bit0, stats0) = sweep[0];
        assert_eq!(bit0, 0);
        assert_eq!(
            stats0.detected, 0,
            "LSB flips shouldn't trip ABFT: {stats0:?}"
        );
        assert!(stats0.worst_sdc < 1e-2);
        // High exponent bits, by contrast, are caught whenever they land.
        let (_, stats30) = sweep[30];
        assert_eq!(stats30.sdc, 0, "{stats30:?}");
    }

    #[test]
    fn strongest_schemes_have_zero_sdc_in_every_dtype() {
        // The per-precision acceptance sweep: under each scheme
        // family's strongest member, no injected fault may corrupt the
        // output silently — in fp16, bf16, or fp8. Replication compares
        // exactly, so it faces unrestricted random flips; the
        // tolerance-based ABFT families face additive faults well above
        // every dtype's detection floor (a miss would be a real SDC,
        // not sub-threshold rounding noise — bf16's coarser grid raises
        // its floor ~4x over fp16's, so a fixed large magnitude keeps
        // the oracle meaningful across precisions).
        let strongest = [
            Scheme::ReplicationTraditional, // replication family
            Scheme::ThreadLevelTwoSided,    // thread-level ABFT family
            Scheme::MultiChecksum(3),       // global ABFT family
        ];
        for dtype in [Dtype::F16, Dtype::Bf16, Dtype::Fp8E4M3] {
            for scheme in strongest {
                let c = Campaign::new_dtype(shape(), scheme, 31, dtype);
                assert_eq!(c.dtype(), dtype);
                let stats = if scheme == Scheme::ReplicationTraditional {
                    c.run_bit_flips(60, 32)
                } else {
                    let m = FaultModel::new(shape());
                    let mut rng = FaultModel::rng(33);
                    let faults: Vec<_> = (0..40).map(|_| m.additive(64.0, &mut rng)).collect();
                    c.run_faults(&faults)
                };
                assert_eq!(stats.sdc, 0, "{dtype} {scheme:?}: {stats:?}");
                assert_eq!(stats.false_positives, 0, "{dtype} {scheme:?}: {stats:?}");
                assert!(stats.detected > 0, "{dtype} {scheme:?}: {stats:?}");
            }
        }
    }

    #[test]
    fn fp16_dtype_campaign_matches_the_legacy_constructor() {
        // `new_dtype(.., F16)` must grade every trial exactly as `new`
        // does: same operand bytes, same verdicts, same outcomes.
        let a = Campaign::new(shape(), Scheme::ThreadLevelOneSided, 21);
        let b = Campaign::new_dtype(shape(), Scheme::ThreadLevelOneSided, 21, Dtype::F16);
        let m = FaultModel::new(shape());
        let mut rng = FaultModel::rng(22);
        for _ in 0..30 {
            let f = m.random_bit_flip(&mut rng);
            assert_eq!(a.classify(f), b.classify(f), "{f:?}");
        }
    }

    #[test]
    fn stats_rates_are_consistent() {
        let mut s = CampaignStats::default();
        s.absorb(Outcome::Detected);
        s.absorb(Outcome::SilentDataCorruption { max_abs_delta: 0.5 });
        s.absorb(Outcome::Masked);
        assert_eq!(s.trials, 3);
        assert!((s.detection_rate() - 0.5).abs() < 1e-12);
        assert!((s.sdc_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.worst_sdc, 0.5);
    }
}
