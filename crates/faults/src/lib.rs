//! # aiga-faults — soft-error injection and coverage measurement
//!
//! Implements the paper's fault model (§2.3): a single fault in the
//! processing logic of the GPU corrupts one output value of `C`; memory
//! is ECC-protected and control logic is assumed correct. Faults are
//! injected into the simulated datapath of `aiga-gpu`'s functional engine
//! and the ABFT schemes of `aiga-core` are graded on what they catch:
//!
//! - [`model`]: distributions over fault sites and corruption kinds
//!   (uniform bit flips in FP32 accumulators, additive errors of chosen
//!   magnitude, stuck values), targeting any output element at any
//!   K-step.
//! - [`campaign`]: parallel injection campaigns that classify every trial
//!   as **detected**, **silent data corruption** (output changed, no
//!   flag), **masked** (corruption rounded away before the output), or
//!   **false positive** (flag without output change), and aggregate
//!   coverage statistics per scheme.

pub mod campaign;
pub mod model;

pub use campaign::{Campaign, CampaignStats, Outcome, Trial};
pub use model::FaultModel;
