//! Fault-site and corruption distributions.

use aiga_gpu::engine::{FaultKind, FaultPlan};
use aiga_gpu::GemmShape;
use aiga_util::rng::Rng64;

/// A distribution over single faults for a GEMM of a given shape,
/// following the §2.3 fault model: one corrupted output value of `C`,
/// struck at a uniformly random point of the kernel's K-walk (or in the
/// epilogue).
#[derive(Clone, Debug)]
pub struct FaultModel {
    shape: GemmShape,
    k_steps: u64,
}

impl FaultModel {
    /// Builds a fault model for an (unpadded) output of `shape`.
    pub fn new(shape: GemmShape) -> Self {
        FaultModel {
            shape,
            k_steps: shape.padded_to_mma().k / 2,
        }
    }

    /// Uniformly random output coordinate.
    fn site(&self, rng: &mut Rng64) -> (usize, usize) {
        (
            rng.range_u64(0, self.shape.m) as usize,
            rng.range_u64(0, self.shape.n) as usize,
        )
    }

    /// Uniformly random strike time: any K-step, or the epilogue.
    fn strike(&self, rng: &mut Rng64) -> u64 {
        let s = rng.range_u64_inclusive(0, self.k_steps);
        if s == self.k_steps {
            u64::MAX
        } else {
            s
        }
    }

    /// A uniformly random single-bit flip in the FP32 accumulator — the
    /// canonical soft-error model used by fault-injection studies.
    pub fn random_bit_flip(&self, rng: &mut Rng64) -> FaultPlan {
        let (row, col) = self.site(rng);
        FaultPlan {
            row,
            col,
            after_step: self.strike(rng),
            kind: FaultKind::BitFlip(rng.range_u64(0, 32) as u8),
        }
    }

    /// A bit flip restricted to the given bit position (for per-bit
    /// vulnerability sweeps).
    pub fn bit_flip_at(&self, bit: u8, rng: &mut Rng64) -> FaultPlan {
        let (row, col) = self.site(rng);
        FaultPlan {
            row,
            col,
            after_step: self.strike(rng),
            kind: FaultKind::BitFlip(bit),
        }
    }

    /// An additive error of fixed magnitude with random sign (models a
    /// wrong partial product of known size).
    pub fn additive(&self, magnitude: f32, rng: &mut Rng64) -> FaultPlan {
        let (row, col) = self.site(rng);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        FaultPlan {
            row,
            col,
            after_step: self.strike(rng),
            kind: FaultKind::AddValue(sign * magnitude),
        }
    }

    /// A deterministic RNG for reproducible campaigns.
    pub fn rng(seed: u64) -> Rng64 {
        Rng64::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_stay_inside_the_unpadded_output() {
        let m = FaultModel::new(GemmShape::new(17, 9, 33));
        let mut rng = FaultModel::rng(1);
        for _ in 0..200 {
            let f = m.random_bit_flip(&mut rng);
            assert!(f.row < 17 && f.col < 9);
            assert!(f.after_step == u64::MAX || f.after_step < 20); // padded K = 40 => 20 steps
            if let FaultKind::BitFlip(b) = f.kind {
                assert!(b < 32);
            } else {
                panic!("wrong kind");
            }
        }
    }

    #[test]
    fn campaigns_are_reproducible() {
        let m = FaultModel::new(GemmShape::new(32, 32, 32));
        let a: Vec<FaultPlan> = {
            let mut rng = FaultModel::rng(7);
            (0..16).map(|_| m.random_bit_flip(&mut rng)).collect()
        };
        let b: Vec<FaultPlan> = {
            let mut rng = FaultModel::rng(7);
            (0..16).map(|_| m.random_bit_flip(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn additive_faults_have_requested_magnitude() {
        let m = FaultModel::new(GemmShape::new(8, 8, 8));
        let mut rng = FaultModel::rng(3);
        for _ in 0..20 {
            let f = m.additive(2.5, &mut rng);
            match f.kind {
                FaultKind::AddValue(v) => assert_eq!(v.abs(), 2.5),
                _ => panic!("wrong kind"),
            }
        }
    }

    #[test]
    fn strikes_cover_epilogue_and_loop() {
        let m = FaultModel::new(GemmShape::new(16, 16, 64));
        let mut rng = FaultModel::rng(5);
        let strikes: Vec<u64> = (0..300)
            .map(|_| m.random_bit_flip(&mut rng).after_step)
            .collect();
        assert!(strikes.contains(&u64::MAX));
        assert!(strikes.iter().any(|&s| s != u64::MAX));
    }
}
