//! Steady-state serving latency: `Session::serve` through the warm
//! workspace pool, against a fresh-allocation baseline that builds a
//! new `Workspace` for every request — plus the concurrent `Server`
//! front-end under 1/4/8 client threads.
//!
//! Results land in `BENCH_serving.json` (median/mean ns, iteration
//! counts, git rev) so the zero-allocation refactor's effect on serve
//! latency is tracked as data: the `pooled` rows must stay at or below
//! their `fresh_workspace` counterparts. The concurrent rows record,
//! per client count, one timed round (every client submits and awaits
//! a fixed quantum of requests), a derived throughput row (tagged
//! `value` + `unit: "req_per_s"`), and the server's own p99 end-to-end
//! latency (log2-histogram, interpolated within bins) — recorded rows with a
//! pseudo-iteration.

use aiga_bench::harness::Recorder;
use aiga_core::{Planner, ProtectedPipeline, Server, Session};
use aiga_gpu::engine::{Matrix, Workspace};
use aiga_gpu::DeviceSpec;
use aiga_nn::zoo;
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let mut rec = Recorder::new("serving");

    // --- Full serving front-end: bucket dispatch + pooled workspace.
    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8, 32])
    .seed(9)
    .build();
    let req8 = Matrix::random(8, 13, 1);
    let req32 = Matrix::random(32, 13, 2);
    let req80 = Matrix::random(80, 13, 3); // oversized: split into chunks
    session.serve(&req8).unwrap(); // plan + warm the pool
    session.serve(&req32).unwrap();
    rec.bench("serving/serve_b8_pooled", || {
        black_box(session.serve(&req8).unwrap());
    });
    rec.bench("serving/serve_b32_pooled", || {
        black_box(session.serve(&req32).unwrap());
    });
    rec.bench("serving/serve_b80_split", || {
        black_box(session.serve(&req80).unwrap());
    });

    // --- The same protected pipeline, pooled vs fresh-allocation
    // baseline: `infer_into` with a warm workspace against `infer`,
    // which builds (and drops) a cold workspace per request.
    let model = zoo::dlrm_mlp_bottom(32);
    let plan = Planner::new(DeviceSpec::t4()).plan(&model);
    let pipeline = ProtectedPipeline::new(&model, &plan.chosen_schemes(), 9);
    let mut ws = Workspace::new();
    pipeline.infer_into(&req32, None, &mut ws); // warm up
    rec.bench("serving/infer_b32_reused_workspace", || {
        black_box(pipeline.infer_into(&req32, None, &mut ws));
    });
    rec.bench("serving/infer_b32_fresh_workspace", || {
        black_box(pipeline.infer(&req32, None));
    });

    // --- Concurrent server throughput: C client threads, each
    // submitting and awaiting REQS_PER_CLIENT small requests per timed
    // round, against a 2-worker server with a short coalesce window.
    const REQS_PER_CLIENT: usize = 4;
    for clients in [1usize, 4, 8] {
        let session = Session::builder(
            Planner::new(DeviceSpec::t4()),
            "dlrm-mlp-bottom",
            zoo::dlrm_mlp_bottom,
        )
        .buckets([8, 32])
        .seed(9)
        .build();
        let server = Server::builder(session)
            .workers(2)
            .queue_capacity(64)
            .coalesce_window(Duration::from_micros(100))
            .build();
        let requests: Vec<Matrix> = (0..clients)
            .map(|c| Matrix::random(4, 13, 100 + c as u64))
            .collect();
        // Warm both buckets and the workspace pool.
        server
            .client()
            .submit(&Matrix::random(32, 13, 99))
            .unwrap()
            .wait()
            .unwrap();
        server
            .client()
            .submit(&requests[0])
            .unwrap()
            .wait()
            .unwrap();

        let result = rec.bench(&format!("serving/server_round_{clients}clients"), || {
            std::thread::scope(|scope| {
                for request in &requests {
                    let client = server.client();
                    scope.spawn(move || {
                        for _ in 0..REQS_PER_CLIENT {
                            black_box(client.submit(request).unwrap().wait().unwrap());
                        }
                    });
                }
            });
        });
        let req_per_s = (clients * REQS_PER_CLIENT) as f64 / (result.median_ns / 1e9);
        println!(
            "  -> {clients} client(s): {:.1} requests/s over the median round",
            req_per_s
        );
        rec.record_value(
            &format!("serving/server_req_per_s_{clients}clients"),
            req_per_s,
            "req_per_s",
        );
        let stats = server.shutdown();
        rec.record_ns(
            &format!("serving/server_p99_{clients}clients"),
            stats.p99_latency_ns as f64,
        );
    }

    rec.write().expect("write BENCH_serving.json");
}
