//! Steady-state serving latency: `Session::serve` through the warm
//! workspace pool, against a fresh-allocation baseline that builds a
//! new `Workspace` for every request.
//!
//! Results land in `BENCH_serving.json` (median/mean ns, iteration
//! counts, git rev) so the zero-allocation refactor's effect on serve
//! latency is tracked as data: the `pooled` rows must stay at or below
//! their `fresh_workspace` counterparts.

use aiga_bench::harness::Recorder;
use aiga_core::{Planner, ProtectedPipeline, Session};
use aiga_gpu::engine::{Matrix, Workspace};
use aiga_gpu::DeviceSpec;
use aiga_nn::zoo;
use std::hint::black_box;

fn main() {
    let mut rec = Recorder::new("serving");

    // --- Full serving front-end: bucket dispatch + pooled workspace.
    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8, 32])
    .seed(9)
    .build();
    let req8 = Matrix::random(8, 13, 1);
    let req32 = Matrix::random(32, 13, 2);
    let req80 = Matrix::random(80, 13, 3); // oversized: split into chunks
    session.serve(&req8).unwrap(); // plan + warm the pool
    session.serve(&req32).unwrap();
    rec.bench("serving/serve_b8_pooled", || {
        black_box(session.serve(&req8).unwrap());
    });
    rec.bench("serving/serve_b32_pooled", || {
        black_box(session.serve(&req32).unwrap());
    });
    rec.bench("serving/serve_b80_split", || {
        black_box(session.serve(&req80).unwrap());
    });

    // --- The same protected pipeline, pooled vs fresh-allocation
    // baseline: `infer_into` with a warm workspace against `infer`,
    // which builds (and drops) a cold workspace per request.
    let model = zoo::dlrm_mlp_bottom(32);
    let plan = Planner::new(DeviceSpec::t4()).plan(&model);
    let pipeline = ProtectedPipeline::new(&model, &plan.chosen_schemes(), 9);
    let mut ws = Workspace::new();
    pipeline.infer_into(&req32, None, &mut ws); // warm up
    rec.bench("serving/infer_b32_reused_workspace", || {
        black_box(pipeline.infer_into(&req32, None, &mut ws));
    });
    rec.bench("serving/infer_b32_fresh_workspace", || {
        black_box(pipeline.infer(&req32, None));
    });

    rec.write().expect("write BENCH_serving.json");
}
