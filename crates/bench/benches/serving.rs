//! Steady-state serving latency: `Session::serve` through the warm
//! workspace pool, against a fresh-allocation baseline that builds a
//! new `Workspace` for every request — plus the concurrent `Server`
//! front-end under 1/4/8 client threads.
//!
//! Results land in `BENCH_serving.json` (median/mean ns, iteration
//! counts, git rev) so the zero-allocation refactor's effect on serve
//! latency is tracked as data: the `pooled` rows must stay at or below
//! their `fresh_workspace` counterparts. The concurrent rows record,
//! per client count, one timed round (every client submits and awaits
//! a fixed quantum of requests), a derived throughput row (tagged
//! `value` + `unit: "req_per_s"`), and the server's own p99 end-to-end
//! latency (log2-histogram, interpolated within bins) — recorded rows with a
//! pseudo-iteration.
//!
//! The saturation sweep at the end steps offered load (client threads)
//! past the throughput knee against a shed-enabled server: achieved
//! req/s and p99 are recorded per step, plus the knee's throughput and
//! the p99 observed at the heaviest step — with `shed_after` armed the
//! latter stays bounded (overaged work resolves `Overloaded` instead
//! of stretching the tail).

use aiga_bench::harness::Recorder;
use aiga_core::{Planner, ProtectedPipeline, Server, Session};
use aiga_gpu::engine::{Matrix, Workspace};
use aiga_gpu::DeviceSpec;
use aiga_nn::zoo;
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let mut rec = Recorder::new("serving");

    // --- Full serving front-end: bucket dispatch + pooled workspace.
    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8, 32])
    .seed(9)
    .build();
    let req8 = Matrix::random(8, 13, 1);
    let req32 = Matrix::random(32, 13, 2);
    let req80 = Matrix::random(80, 13, 3); // oversized: split into chunks
    session.serve(&req8).unwrap(); // plan + warm the pool
    session.serve(&req32).unwrap();
    rec.bench("serving/serve_b8_pooled", || {
        black_box(session.serve(&req8).unwrap());
    });
    rec.bench("serving/serve_b32_pooled", || {
        black_box(session.serve(&req32).unwrap());
    });
    rec.bench("serving/serve_b80_split", || {
        black_box(session.serve(&req80).unwrap());
    });

    // --- The same protected pipeline, pooled vs fresh-allocation
    // baseline: `infer_into` with a warm workspace against `infer`,
    // which builds (and drops) a cold workspace per request.
    let model = zoo::dlrm_mlp_bottom(32);
    let plan = Planner::new(DeviceSpec::t4()).plan(&model);
    let pipeline = ProtectedPipeline::new(&model, &plan.chosen_schemes(), 9);
    let mut ws = Workspace::new();
    pipeline.infer_into(&req32, None, &mut ws); // warm up
    rec.bench("serving/infer_b32_reused_workspace", || {
        black_box(pipeline.infer_into(&req32, None, &mut ws));
    });
    rec.bench("serving/infer_b32_fresh_workspace", || {
        black_box(pipeline.infer(&req32, None));
    });

    // --- Concurrent server throughput: C client threads, each
    // submitting and awaiting REQS_PER_CLIENT small requests per timed
    // round. Workers are matched to the machine (each serves through
    // its own session shard — shared plan cache, private workspace
    // pool), and the coalesce window is wide enough to merge a
    // closed-loop wave of client resubmissions into one bucket pass.
    let hw_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    const REQS_PER_CLIENT: usize = 4;
    for clients in [1usize, 4, 8] {
        let session = Session::builder(
            Planner::new(DeviceSpec::t4()),
            "dlrm-mlp-bottom",
            zoo::dlrm_mlp_bottom,
        )
        .buckets([8, 32])
        .seed(9)
        .build();
        let server = Server::builder(session)
            .workers(hw_workers.min(clients))
            .queue_capacity(64)
            .coalesce_window(Duration::from_millis(1))
            .build();
        let requests: Vec<Matrix> = (0..clients)
            .map(|c| Matrix::random(4, 13, 100 + c as u64))
            .collect();
        // Warm both buckets and the workspace pool.
        server
            .client()
            .submit(&Matrix::random(32, 13, 99))
            .unwrap()
            .wait()
            .unwrap();
        server
            .client()
            .submit(&requests[0])
            .unwrap()
            .wait()
            .unwrap();

        let result = rec.bench(&format!("serving/server_round_{clients}clients"), || {
            std::thread::scope(|scope| {
                for request in &requests {
                    let client = server.client();
                    scope.spawn(move || {
                        for _ in 0..REQS_PER_CLIENT {
                            black_box(client.submit(request).unwrap().wait().unwrap());
                        }
                    });
                }
            });
        });
        let req_per_s = (clients * REQS_PER_CLIENT) as f64 / (result.median_ns / 1e9);
        println!(
            "  -> {clients} client(s): {:.1} requests/s over the median round",
            req_per_s
        );
        rec.record_value(
            &format!("serving/server_req_per_s_{clients}clients"),
            req_per_s,
            "req_per_s",
        );
        let stats = server.shutdown();
        rec.record_ns(
            &format!("serving/server_p99_{clients}clients"),
            stats.p99_latency_ns as f64,
        );
    }

    // --- Saturation sweep: step offered load past the knee against a
    // shed-enabled server. Each step runs closed-loop client threads
    // for a fixed wall-clock slice; achieved throughput rises to the
    // knee and flattens, while shedding keeps completed-request p99
    // bounded instead of letting queue latency run away.
    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8, 32])
    .seed(9)
    .build();
    let server = Server::builder(session)
        .workers(hw_workers)
        .queue_capacity(64)
        .coalesce_window(Duration::from_millis(1))
        .degrade_after(Duration::from_millis(40))
        .shed_after(Duration::from_millis(80))
        .build();
    server
        .client()
        .submit(&Matrix::random(32, 13, 99))
        .unwrap()
        .wait()
        .unwrap();
    let slice = Duration::from_millis(400);
    let mut knee_req_per_s: f64 = 0.0;
    let mut p99_heaviest_ns = 0u64;
    let mut before = server.stats();
    for clients in [1usize, 2, 4, 8, 16, 32, 64] {
        let completed: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let client = server.client();
                    scope.spawn(move || {
                        let request = Matrix::random(4, 13, 500 + c as u64);
                        let deadline = std::time::Instant::now() + slice;
                        let mut served = 0u64;
                        while std::time::Instant::now() < deadline {
                            match client.submit(&request) {
                                Ok(pending) => {
                                    if pending.wait().is_ok() {
                                        served += 1;
                                    }
                                }
                                // Shed at admission: back off a touch so
                                // the loop does not spin on rejections.
                                Err(_) => std::thread::sleep(Duration::from_millis(2)),
                            }
                        }
                        served
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let after = server.stats();
        let achieved = completed as f64 / slice.as_secs_f64();
        let shed = after.shed - before.shed;
        let degraded = after.degraded - before.degraded;
        before = after.clone();
        println!(
            "  -> saturation {clients:>2} client(s): {achieved:.1} req/s,              {shed} shed, {degraded} degraded, p99 {:.2} ms",
            after.p99_latency_ns as f64 / 1e6
        );
        rec.record_value(
            &format!("serving/saturation_{clients}clients_req_per_s"),
            achieved,
            "req_per_s",
        );
        rec.record_value(
            &format!("serving/saturation_{clients}clients_shed"),
            shed as f64,
            "requests",
        );
        knee_req_per_s = knee_req_per_s.max(achieved);
        p99_heaviest_ns = after.p99_latency_ns;
    }
    rec.record_value(
        "serving/saturation_knee_req_per_s",
        knee_req_per_s,
        "req_per_s",
    );
    rec.record_ns("serving/saturation_p99_past_knee", p99_heaviest_ns as f64);
    println!(
        "  -> knee {knee_req_per_s:.1} req/s; p99 past the knee {:.2} ms (bounded by shed_after)",
        p99_heaviest_ns as f64 / 1e6
    );
    server.shutdown();

    rec.write().expect("write BENCH_serving.json");
}
