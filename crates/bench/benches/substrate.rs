//! Microbenches of the simulated substrate itself: FP16
//! conversion/arithmetic, the functional GEMM engine (clean, faulted,
//! and under every protected scheme), and the timing model. These
//! quantify the simulator, not the paper's GPU numbers.
//!
//! Engine results are also written to `BENCH_engine.json` (median/mean
//! ns, iteration counts, git rev) so the perf trajectory of the hot
//! path is tracked as data, not just console text.

use aiga_bench::harness::{bench, Recorder};
use aiga_core::schemes::{
    OneSidedThreadAbft, ReplicationSingleAcc, ReplicationTraditional, TwoSidedThreadAbft,
};
use aiga_fp16::F16;
use aiga_gpu::engine::{FaultKind, FaultPlan, GemmEngine, Matrix, NoScheme};
use aiga_gpu::timing::{estimate, Calibration, KernelProfile};
use aiga_gpu::{DeviceSpec, GemmShape};
use std::hint::black_box;

fn main() {
    let values: Vec<f32> = (0..1024).map(|v| v as f32 * 0.37 - 200.0).collect();
    bench("fp16/from_f32_x1024", || {
        for &v in &values {
            black_box(F16::from_f32(v));
        }
    });
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    bench("fp16/to_f32_x1024", || {
        for &h in &halves {
            black_box(h.to_f32());
        }
    });
    bench("fp16/add_chain_x1024", || {
        let mut acc = F16::ZERO;
        for &h in &halves {
            acc = acc + h;
        }
        black_box(acc);
    });

    // The engine-throughput suite: the numbers that gate every figure
    // reproduction, fault campaign, and serving benchmark.
    let mut rec = Recorder::new("engine");

    // Dispatch visibility: record which microkernel path this runner
    // selected, and fail loudly if AVX2+FMA was detected but the
    // dispatcher still fell back — a silent fallback would make every
    // number below quietly 5-10× worse.
    {
        use aiga_gpu::engine::simd;
        let active = simd::active_path();
        println!(
            "engine/gemm_path                             {}",
            active.as_str()
        );
        if simd::detect_path().is_simd() && std::env::var_os("AIGA_FORCE_SCALAR").is_none() {
            assert!(
                active.is_simd(),
                "AVX2+FMA detected but the dispatcher selected the scalar path"
            );
        } else if !active.is_simd() {
            println!("engine/gemm_path: scalar fallback (no AVX2+FMA, or AIGA_FORCE_SCALAR set)");
        }
        rec.record_value(
            "engine/gemm_path_simd",
            if active.is_simd() { 1.0 } else { 0.0 },
            "bool",
        );
    }

    let gflops_of = |size: usize, median_ns: f64| 2.0 * (size as f64).powi(3) / median_ns;
    for size in [64usize, 128] {
        let shape = GemmShape::square(size as u64);
        let a = Matrix::random(size, size, 1);
        let b = Matrix::random(size, size, 2);
        let eng = GemmEngine::with_default_tiling(shape);
        let med = rec
            .bench(&format!("engine/functional_gemm_{size}"), || {
                black_box(eng.run(&a, &b, || NoScheme, None));
            })
            .median_ns;
        rec.record_value(
            &format!("engine/functional_gemm_{size}_gflops"),
            gflops_of(size, med),
            "gflop/s",
        );
    }
    // Larger shapes through the zero-alloc workspace entry — the
    // serving hot path — with derived arithmetic throughput. 256³ sits
    // exactly at the block-parallel threshold; 512³ is beyond it.
    for size in [256usize, 512] {
        use aiga_gpu::engine::Workspace;
        let shape = GemmShape::square(size as u64);
        let a = Matrix::random(size, size, 1);
        let b = Matrix::random(size, size, 2);
        let eng = GemmEngine::with_default_tiling(shape);
        let mut ws = Workspace::new();
        eng.run_multi_into(&a, &b, || NoScheme, &[], &mut ws); // warm
        let med = rec
            .bench(&format!("engine/functional_gemm_{size}"), || {
                black_box(eng.run_multi_into(&a, &b, || NoScheme, &[], &mut ws));
            })
            .median_ns;
        rec.record_value(
            &format!("engine/functional_gemm_{size}_gflops"),
            gflops_of(size, med),
            "gflop/s",
        );
    }
    {
        let size = 64usize;
        let shape = GemmShape::square(size as u64);
        let a = Matrix::random(size, size, 1);
        let b = Matrix::random(size, size, 2);
        let eng = GemmEngine::with_default_tiling(shape);
        let fault = FaultPlan {
            row: 17,
            col: 23,
            after_step: 5,
            kind: FaultKind::AddValue(100.0),
        };
        rec.bench("engine/functional_gemm_64_faulted", || {
            black_box(eng.run(&a, &b, || NoScheme, Some(fault)));
        });
        rec.bench("engine/gemm_64_one_sided", || {
            black_box(eng.run(&a, &b, OneSidedThreadAbft::new, None));
        });
        rec.bench("engine/gemm_64_two_sided", || {
            black_box(eng.run(&a, &b, TwoSidedThreadAbft::new, None));
        });
        rec.bench("engine/gemm_64_replication_single_acc", || {
            black_box(eng.run(&a, &b, ReplicationSingleAcc::new, None));
        });
        rec.bench("engine/gemm_64_replication_traditional", || {
            black_box(eng.run(&a, &b, ReplicationTraditional::new, None));
        });
        // Global ABFT runs the unmodified kernel plus its epilogue +
        // reduce-and-compare; bench it through its bound kernel.
        let global = aiga_core::registry::shared()
            .resolve(aiga_core::schemes::Scheme::GlobalAbft)
            .bind(&b);
        rec.bench("engine/gemm_64_global_abft", || {
            black_box(global.run(&eng, &a, &[]));
        });
    }

    // Correction-path overhead: a faulted run through the corrected
    // entry point (localize + targeted recompute + re-verify) against
    // the same scheme's detect-only faulted run. The delta prices the
    // repair itself — one implicated slice recomputed, never the full
    // kernel — across all three localizer families.
    {
        use aiga_core::protected::ProtectedGemm;
        use aiga_core::schemes::Scheme;
        use aiga_gpu::engine::Workspace;

        let shape = GemmShape::square(64);
        let fault = FaultPlan {
            row: 17,
            col: 23,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(300.0),
        };
        for (name, scheme) in [
            ("global_abft", Scheme::GlobalAbft),
            ("one_sided", Scheme::ThreadLevelOneSided),
            ("replication_traditional", Scheme::ReplicationTraditional),
            ("multi_checksum_2", Scheme::MultiChecksum(2)),
        ] {
            let gemm = ProtectedGemm::random(shape, scheme, 5);
            let mut ws = Workspace::new();
            gemm.run_into(&[fault], &mut ws); // warm the workspace
            rec.bench(&format!("engine/gemm_64_{name}_detect_faulted"), || {
                black_box(gemm.run_into(&[fault], &mut ws));
            });
            let verdict = gemm.run_corrected_into(&[fault], &mut ws);
            assert!(verdict.is_corrected(), "{scheme}: {verdict:?}");
            rec.bench(&format!("engine/gemm_64_{name}_corrected"), || {
                black_box(gemm.run_corrected_into(&[fault], &mut ws));
            });
        }
    }
    // The precision-substrate suite: clean GEMM throughput with
    // operands stored in each dtype (format decode rides in panel
    // staging, so these rows price it directly), then per-dtype fault
    // campaigns — detection coverage and protected-vs-clean overhead
    // under each family's strongest scheme, the cross-precision
    // comparison the paper never measured.
    {
        use aiga_core::schemes::Scheme;
        use aiga_faults::Campaign;
        use aiga_gpu::engine::{Dtype, Workspace};

        let size = 128usize;
        let shape = GemmShape::square(size as u64);
        for dtype in Dtype::ALL {
            let a = Matrix::random_dtype(size, size, 1, dtype);
            let b = Matrix::random_dtype(size, size, 2, dtype);
            let eng = GemmEngine::with_default_tiling(shape);
            let mut ws = Workspace::new();
            eng.run_multi_into(&a, &b, || NoScheme, &[], &mut ws); // warm
            let med = rec
                .bench(&format!("engine/gemm_{size}_clean_{dtype}"), || {
                    black_box(eng.run_multi_into(&a, &b, || NoScheme, &[], &mut ws));
                })
                .median_ns;
            rec.record_value(
                &format!("engine/gemm_{size}_clean_{dtype}_gflops"),
                gflops_of(size, med),
                "gflop/s",
            );
        }

        let campaign_shape = GemmShape::square(48);
        let trials = 200;
        for dtype in [Dtype::F16, Dtype::Bf16, Dtype::Fp8E4M3] {
            for (name, scheme) in [
                ("one_sided", Scheme::ThreadLevelOneSided),
                ("two_sided", Scheme::ThreadLevelTwoSided),
                ("replication_traditional", Scheme::ReplicationTraditional),
                ("global_abft", Scheme::GlobalAbft),
            ] {
                let c = Campaign::new_dtype(campaign_shape, scheme, 9, dtype);
                let stats = c.run_bit_flips(trials, 10);
                rec.record_value(
                    &format!("campaign/{dtype}_{name}_detection_rate"),
                    stats.detection_rate(),
                    "fraction",
                );
                rec.record_value(
                    &format!("campaign/{dtype}_{name}_sdc_rate"),
                    stats.sdc_rate(),
                    "fraction",
                );
                // Overhead: protected pass vs the unprotected engine on
                // the same operands (both through warm workspaces).
                let protected = aiga_core::protected::ProtectedGemm::new(
                    Matrix::random_dtype(48, 48, 9, dtype),
                    Matrix::random_dtype(48, 48, 10, dtype),
                    scheme,
                );
                let baseline = aiga_core::protected::ProtectedGemm::new(
                    Matrix::random_dtype(48, 48, 9, dtype),
                    Matrix::random_dtype(48, 48, 10, dtype),
                    Scheme::Unprotected,
                );
                let mut ws = Workspace::new();
                protected.run_into(&[], &mut ws); // warm
                let prot_ns = rec
                    .bench(&format!("campaign/{dtype}_{name}_protected_pass"), || {
                        black_box(protected.run_into(&[], &mut ws));
                    })
                    .median_ns;
                baseline.run_into(&[], &mut ws); // warm
                let base_ns = rec
                    .bench(&format!("campaign/{dtype}_{name}_unprotected_pass"), || {
                        black_box(baseline.run_into(&[], &mut ws));
                    })
                    .median_ns;
                rec.record_value(
                    &format!("campaign/{dtype}_{name}_overhead"),
                    prot_ns / base_ns,
                    "x",
                );
            }
        }
    }
    rec.write().expect("write BENCH_engine.json");

    let dev = DeviceSpec::t4();
    let calib = Calibration::default();
    let p = KernelProfile::baseline(GemmShape::square(2048), &dev, &calib);
    bench("timing/estimate_2048_cubed", || {
        black_box(estimate(&p, &dev, &calib));
    });
}
