//! Criterion microbenches of the simulated substrate itself: FP16
//! conversion/arithmetic, the functional GEMM engine, and the timing
//! model. These quantify the simulator, not the paper's GPU numbers.

use aiga_fp16::F16;
use aiga_gpu::engine::{GemmEngine, Matrix, NoScheme};
use aiga_gpu::timing::{estimate, Calibration, KernelProfile};
use aiga_gpu::{DeviceSpec, GemmShape};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn fp16_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("fp16");
    g.throughput(Throughput::Elements(1024));
    let values: Vec<f32> = (0..1024).map(|v| v as f32 * 0.37 - 200.0).collect();
    g.bench_function("from_f32_x1024", |b| {
        b.iter(|| {
            for &v in &values {
                black_box(F16::from_f32(v));
            }
        })
    });
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    g.bench_function("add_chain_x1024", |b| {
        b.iter(|| {
            let mut acc = F16::ZERO;
            for &h in &halves {
                acc = acc + h;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn engine_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for size in [64u64, 128] {
        let shape = GemmShape::square(size);
        let a = Matrix::random(size as usize, size as usize, 1);
        let b = Matrix::random(size as usize, size as usize, 2);
        let eng = GemmEngine::with_default_tiling(shape);
        g.throughput(Throughput::Elements(shape.flops()));
        g.bench_function(format!("functional_gemm_{size}"), |bch| {
            bch.iter(|| black_box(eng.run(&a, &b, || NoScheme, None)))
        });
    }
    g.finish();
}

fn timing_benches(c: &mut Criterion) {
    let dev = DeviceSpec::t4();
    let calib = Calibration::default();
    c.bench_function("timing/estimate_2048_cubed", |b| {
        let p = KernelProfile::baseline(GemmShape::square(2048), &dev, &calib);
        b.iter(|| black_box(estimate(&p, &dev, &calib)))
    });
}

criterion_group!(benches, fp16_benches, engine_benches, timing_benches);
criterion_main!(benches);
