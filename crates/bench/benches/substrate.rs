//! Microbenches of the simulated substrate itself: FP16
//! conversion/arithmetic, the functional GEMM engine, and the timing
//! model. These quantify the simulator, not the paper's GPU numbers.

use aiga_bench::harness::bench;
use aiga_fp16::F16;
use aiga_gpu::engine::{GemmEngine, Matrix, NoScheme};
use aiga_gpu::timing::{estimate, Calibration, KernelProfile};
use aiga_gpu::{DeviceSpec, GemmShape};
use std::hint::black_box;

fn main() {
    let values: Vec<f32> = (0..1024).map(|v| v as f32 * 0.37 - 200.0).collect();
    bench("fp16/from_f32_x1024", || {
        for &v in &values {
            black_box(F16::from_f32(v));
        }
    });
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    bench("fp16/add_chain_x1024", || {
        let mut acc = F16::ZERO;
        for &h in &halves {
            acc = acc + h;
        }
        black_box(acc);
    });

    for size in [64usize, 128] {
        let shape = GemmShape::square(size as u64);
        let a = Matrix::random(size, size, 1);
        let b = Matrix::random(size, size, 2);
        let eng = GemmEngine::with_default_tiling(shape);
        bench(&format!("engine/functional_gemm_{size}"), || {
            black_box(eng.run(&a, &b, || NoScheme, None));
        });
    }

    let dev = DeviceSpec::t4();
    let calib = Calibration::default();
    let p = KernelProfile::baseline(GemmShape::square(2048), &dev, &calib);
    bench("timing/estimate_2048_cubed", || {
        black_box(estimate(&p, &dev, &calib));
    });
}
