//! Bench regenerating Figure 12's square-GEMM scheme sweep. Measures the
//! cost of the full sweep pipeline (tiling selection, cost profiling,
//! timing estimation for four schemes × seven sizes).

use aiga_bench::fig12_square_sweep;
use aiga_bench::harness::bench;
use std::hint::black_box;

fn main() {
    bench("fig12/square_sweep_pipeline", || {
        black_box(fig12_square_sweep());
    });
}
