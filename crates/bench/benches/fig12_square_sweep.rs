//! Criterion bench regenerating Figure 12's square-GEMM scheme sweep.
//! Measures the cost of the full sweep pipeline (tiling selection, cost
//! profiling, timing estimation for four schemes × seven sizes).

use aiga_bench::fig12_square_sweep;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig12/square_sweep_pipeline", |b| {
        b.iter(|| {
            let rows = fig12_square_sweep();
            black_box(rows)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
