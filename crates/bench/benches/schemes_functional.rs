//! Benches of the functional ABFT schemes: the *simulator's* cost of
//! each redundancy scheme relative to the unprotected engine — an honest
//! measured analog of "extra work per scheme" (the redundant arithmetic
//! really executes here, on the CPU).

use aiga_bench::harness::bench;
use aiga_core::{ProtectedGemm, Scheme};
use aiga_gpu::GemmShape;
use std::hint::black_box;

fn main() {
    let shape = GemmShape::new(96, 96, 96);
    for scheme in [
        Scheme::Unprotected,
        Scheme::GlobalAbft,
        Scheme::ThreadLevelOneSided,
        Scheme::ThreadLevelTwoSided,
        Scheme::ReplicationSingleAcc,
        Scheme::ReplicationTraditional,
        Scheme::MultiChecksum(2),
    ] {
        let gemm = ProtectedGemm::random(shape, scheme, 5);
        bench(&format!("schemes_functional_96cubed/{scheme}"), || {
            black_box(gemm.run());
        });
    }
}
