//! Criterion benches of the functional ABFT schemes: the *simulator's*
//! cost of each redundancy scheme relative to the unprotected engine —
//! an honest measured analog of "extra work per scheme" (the redundant
//! arithmetic really executes here, on the CPU).

use aiga_core::{ProtectedGemm, Scheme};
use aiga_gpu::GemmShape;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let shape = GemmShape::new(96, 96, 96);
    let mut g = c.benchmark_group("schemes_functional_96cubed");
    for scheme in [
        Scheme::Unprotected,
        Scheme::GlobalAbft,
        Scheme::ThreadLevelOneSided,
        Scheme::ThreadLevelTwoSided,
        Scheme::ReplicationSingleAcc,
        Scheme::ReplicationTraditional,
    ] {
        let gemm = ProtectedGemm::random(shape, scheme, 5);
        g.bench_function(scheme.label(), |b| b.iter(|| black_box(gemm.run())));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
