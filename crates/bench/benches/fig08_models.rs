//! Bench regenerating the per-model overhead pipelines behind
//! Figures 8–11 (intensity-guided planning over whole models).

use aiga_bench::harness::bench;
use aiga_bench::{fig10_dlrm, fig11_specialized, model_overheads};
use aiga_nn::zoo;
use std::hint::black_box;

fn main() {
    let resnet = zoo::resnet50(1, zoo::HD.0, zoo::HD.1);
    bench("fig08/plan_resnet50_hd", || {
        black_box(model_overheads(&resnet));
    });
    let densenet = zoo::densenet161(1, zoo::HD.0, zoo::HD.1);
    bench("fig08/plan_densenet161_hd", || {
        black_box(model_overheads(&densenet));
    });
    bench("fig10/dlrm_both_batches", || {
        black_box(fig10_dlrm());
    });
    bench("fig11/specialized_cnns", || {
        black_box(fig11_specialized());
    });
}
