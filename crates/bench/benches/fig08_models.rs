//! Criterion bench regenerating the per-model overhead pipelines behind
//! Figures 8–11 (intensity-guided planning over whole models).

use aiga_bench::{fig10_dlrm, fig11_specialized, model_overheads};
use aiga_nn::zoo;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig08/plan_resnet50_hd", |b| {
        let model = zoo::resnet50(1, zoo::HD.0, zoo::HD.1);
        b.iter(|| black_box(model_overheads(&model)))
    });
    c.bench_function("fig08/plan_densenet161_hd", |b| {
        let model = zoo::densenet161(1, zoo::HD.0, zoo::HD.1);
        b.iter(|| black_box(model_overheads(&model)))
    });
    c.bench_function("fig10/dlrm_both_batches", |b| {
        b.iter(|| black_box(fig10_dlrm()))
    });
    c.bench_function("fig11/specialized_cnns", |b| {
        b.iter(|| black_box(fig11_specialized()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
