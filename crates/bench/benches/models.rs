//! Per-model end-to-end serving latency: compiled zoo networks (conv
//! layers lowered through workspace-threaded im2col onto the protected
//! engine) and the DLRM MLP families, each through a warm
//! `Session::serve`.
//!
//! Results land in `BENCH_models.json` (median/mean ns, iteration
//! counts, git rev) so the cost of whole-network protected inference —
//! not just isolated GEMMs — is tracked as data across PRs. Compiled
//! CNNs run at trimmed resolutions: the point is a stable end-to-end
//! workload per model, not paper-scale inputs.

use aiga_bench::harness::Recorder;
use aiga_core::{Planner, Session};
use aiga_gpu::engine::Matrix;
use aiga_gpu::DeviceSpec;
use aiga_nn::zoo;
use std::hint::black_box;

fn bench_session(rec: &mut Recorder, name: &str, session: &Session, request: &Matrix) {
    session.serve(request).unwrap(); // compile the bucket + warm the pool
    session.serve(request).unwrap();
    rec.bench(name, || {
        black_box(session.serve(request).unwrap());
    });
}

fn main() {
    let mut rec = Recorder::new("models");

    // --- Compiled CNNs: real FP16 weights, conv → im2col → protected
    // GEMM, pooling/concat/residual epilogues between stages.
    let squeezenet = Session::builder_network(Planner::new(DeviceSpec::t4()), "squeezenet", |b| {
        zoo::squeezenet_net(b, 32, 32, 7)
    })
    .buckets([4])
    .build();
    let sq_features = 3 * 32 * 32;
    bench_session(
        &mut rec,
        "models/squeezenet_32x32_b4",
        &squeezenet,
        &Matrix::random(4, sq_features, 1),
    );

    let block = Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
        zoo::resnet_block_net(b, 16, 16, 7)
    })
    .buckets([4])
    .build();
    bench_session(
        &mut rec,
        "models/resnet_block_16x16_b4",
        &block,
        &Matrix::random(4, 16 * 16 * 16, 2),
    );

    // --- MLP families (synthesized weights), for the serving baseline.
    let bottom = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([32])
    .seed(9)
    .build();
    bench_session(
        &mut rec,
        "models/dlrm_bottom_b32",
        &bottom,
        &Matrix::random(32, 13, 3),
    );

    let top = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-top",
        zoo::dlrm_mlp_top,
    )
    .buckets([32])
    .seed(9)
    .build();
    bench_session(
        &mut rec,
        "models/dlrm_top_b32",
        &top,
        &Matrix::random(32, 512, 4),
    );

    rec.write().expect("write BENCH_models.json");
}
