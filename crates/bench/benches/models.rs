//! Per-model end-to-end serving latency: compiled zoo networks (conv
//! layers lowered through workspace-threaded im2col onto the protected
//! engine) and the DLRM MLP families, each through a warm
//! `Session::serve`.
//!
//! Results land in `BENCH_models.json` (median/mean ns, iteration
//! counts, git rev) so the cost of whole-network protected inference —
//! not just isolated GEMMs — is tracked as data across PRs. Each timed
//! row is paired with a derived `<name>_gflops` effective-throughput
//! row (GEMM FLOPs / median latency), mirroring `BENCH_engine.json`.
//! Most compiled CNNs run at trimmed resolutions for stable end-to-end
//! workloads; SqueezeNet v1.1 additionally runs at the paper's 224×224
//! to exercise the fused im2col path at real scale.

use aiga_bench::harness::Recorder;
use aiga_core::{Planner, Session};
use aiga_gpu::engine::Matrix;
use aiga_gpu::DeviceSpec;
use aiga_nn::zoo;
use aiga_nn::Model;
use std::hint::black_box;

/// Total GEMM work in the model, for effective-throughput rows.
fn model_flops(model: &Model) -> u64 {
    model.layers.iter().map(|l| l.shape.flops()).sum()
}

/// Times warm `Session::serve` and records the latency row plus a
/// derived `<name>_gflops` effective-throughput row (GEMM FLOPs over
/// median wall time — epilogues ride along for free), matching the
/// `BENCH_engine.json` convention.
fn bench_session(rec: &mut Recorder, name: &str, session: &Session, request: &Matrix, flops: u64) {
    session.serve(request).unwrap(); // compile the bucket + warm the pool
    session.serve(request).unwrap();
    let median_ns = rec
        .bench(name, || {
            black_box(session.serve(request).unwrap());
        })
        .median_ns;
    rec.record_value(
        &format!("{name}_gflops"),
        flops as f64 / median_ns,
        "gflop/s",
    );
}

fn main() {
    let mut rec = Recorder::new("models");

    // --- Compiled CNNs: real FP16 weights, conv → im2col → protected
    // GEMM, pooling/concat/residual epilogues between stages.
    let squeezenet = Session::builder_network(Planner::new(DeviceSpec::t4()), "squeezenet", |b| {
        zoo::squeezenet_net(b, 32, 32, 7)
    })
    .buckets([4])
    .build();
    let sq_features = 3 * 32 * 32;
    bench_session(
        &mut rec,
        "models/squeezenet_32x32_b4",
        &squeezenet,
        &Matrix::random(4, sq_features, 1),
        model_flops(&zoo::squeezenet_net(4, 32, 32, 7).to_model()),
    );

    // SqueezeNet v1.1 at the paper's ImageNet resolution (batch 1):
    // the fused conv path's marquee workload — the 224×224 stem and the
    // 55²/27² fire stages never materialize their lowered matrices.
    let squeezenet224 =
        Session::builder_network(Planner::new(DeviceSpec::t4()), "squeezenet-v11", |b| {
            zoo::squeezenet_v11_net(b, 224, 224, 7)
        })
        .buckets([1])
        .build();
    bench_session(
        &mut rec,
        "models/squeezenet_224_b1",
        &squeezenet224,
        &Matrix::random(1, 3 * 224 * 224, 5),
        model_flops(&zoo::squeezenet_v11_net(1, 224, 224, 7).to_model()),
    );

    let block = Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
        zoo::resnet_block_net(b, 16, 16, 7)
    })
    .buckets([4])
    .build();
    bench_session(
        &mut rec,
        "models/resnet_block_16x16_b4",
        &block,
        &Matrix::random(4, 16 * 16 * 16, 2),
        model_flops(&zoo::resnet_block_net(4, 16, 16, 7).to_model()),
    );

    // --- MLP families (synthesized weights), for the serving baseline.
    let bottom = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([32])
    .seed(9)
    .build();
    bench_session(
        &mut rec,
        "models/dlrm_bottom_b32",
        &bottom,
        &Matrix::random(32, 13, 3),
        model_flops(&zoo::dlrm_mlp_bottom(32)),
    );

    let top = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-top",
        zoo::dlrm_mlp_top,
    )
    .buckets([32])
    .seed(9)
    .build();
    bench_session(
        &mut rec,
        "models/dlrm_top_b32",
        &top,
        &Matrix::random(32, 512, 4),
        model_flops(&zoo::dlrm_mlp_top(32)),
    );

    rec.write().expect("write BENCH_models.json");
}
