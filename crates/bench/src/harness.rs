//! A tiny wall-clock bench harness for the `harness = false` bench
//! targets (the build environment has no Criterion; this preserves
//! `cargo bench` with zero dependencies).

use std::time::{Duration, Instant};

/// Runs `f` repeatedly and prints median/mean per-iteration time.
///
/// Auto-calibrates the iteration count to target ~0.5 s of measurement
/// (bounded to [5, 10_000] iterations) after one warm-up call.
pub fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up + calibration.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(500).as_nanos() / once.as_nanos()).clamp(5, 10_000) as usize;

    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<44} {:>12} iters   median {:>12}   mean {:>12}",
        iters,
        format_time(median),
        format_time(mean)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}
