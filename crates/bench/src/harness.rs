//! A tiny wall-clock bench harness for the `harness = false` bench
//! targets (the build environment has no Criterion; this preserves
//! `cargo bench` with zero dependencies).
//!
//! Besides the human-readable stdout table, a [`Recorder`] collects
//! results and writes them as machine-readable JSON (`BENCH_<suite>.json`
//! at the workspace root), seeding the repo's performance trajectory:
//! each run records
//! per-bench median/mean nanoseconds, iteration counts, and the git
//! revision, so before/after comparisons are a `diff` away.
//!
//! The `AIGA_BENCH_MAX_ITERS` environment variable caps the calibrated
//! iteration count — CI's smoke run sets it low so every bench target
//! executes end to end (catching panics) without burning minutes.

use std::time::{Duration, Instant};

use aiga_util::json::Json;

/// One bench's measurements, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Bench name as printed.
    pub name: String,
    /// Measured iterations (after one warm-up call).
    pub iters: usize,
    /// Median per-iteration time, ns.
    pub median_ns: f64,
    /// Mean per-iteration time, ns.
    pub mean_ns: f64,
    /// Unit of the recorded numbers. Timed rows are `"ns"` and
    /// serialize as `median_ns`/`mean_ns`; externally-recorded rows in
    /// any other unit serialize as a tagged `value` instead, so JSON
    /// consumers never mistake a throughput for a latency.
    pub unit: String,
}

/// Runs `f` repeatedly and prints median/mean per-iteration time.
///
/// Auto-calibrates the iteration count to target ~0.5 s of measurement
/// (bounded to [5, 10_000] iterations, further capped by
/// `AIGA_BENCH_MAX_ITERS`) after one warm-up call.
pub fn bench(name: &str, mut f: impl FnMut()) -> BenchResult {
    // Warm-up + calibration.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let mut iters =
        (Duration::from_millis(500).as_nanos() / once.as_nanos()).clamp(5, 10_000) as usize;
    if let Some(cap) = max_iters_from_env() {
        iters = iters.min(cap);
    }

    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<44} {:>12} iters   median {:>12}   mean {:>12}",
        iters,
        format_time(median),
        format_time(mean)
    );
    BenchResult {
        name: name.to_string(),
        iters,
        median_ns: median * 1e9,
        mean_ns: mean * 1e9,
        unit: "ns".to_string(),
    }
}

fn max_iters_from_env() -> Option<usize> {
    std::env::var("AIGA_BENCH_MAX_ITERS")
        .ok()?
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// Collects [`bench`] results for one suite and writes them as
/// `BENCH_<suite>.json`.
pub struct Recorder {
    suite: String,
    results: Vec<BenchResult>,
}

impl Recorder {
    /// Creates a recorder for a named suite (e.g. `"engine"`).
    pub fn new(suite: &str) -> Self {
        Recorder {
            suite: suite.to_string(),
            results: Vec::new(),
        }
    }

    /// Runs and records one bench, returning the measurement (e.g. to
    /// derive throughput from the median).
    pub fn bench(&mut self, name: &str, f: impl FnMut()) -> &BenchResult {
        self.results.push(bench(name, f));
        self.results.last().expect("just pushed")
    }

    /// Records an externally-measured nanosecond value (e.g. a latency
    /// percentile read off server statistics) as a row with a single
    /// pseudo-iteration, so it lands in `BENCH_<suite>.json` alongside
    /// the timed rows.
    pub fn record_ns(&mut self, name: &str, ns: f64) {
        self.record_value(name, ns, "ns");
    }

    /// Records an externally-measured value in an arbitrary unit (e.g.
    /// `"req_per_s"` throughput). Non-`"ns"` rows serialize with an
    /// explicit `value` + `unit` pair instead of `median_ns`, keeping
    /// the JSON schema honest for latency-diffing tools.
    pub fn record_value(&mut self, name: &str, value: f64, unit: &str) {
        println!("{name:<44}     recorded  {value:>14.1} {unit}");
        self.results.push(BenchResult {
            name: name.to_string(),
            iters: 1,
            median_ns: value,
            mean_ns: value,
            unit: unit.to_string(),
        });
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The JSON document [`Self::write`] persists.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("suite", Json::str(self.suite.clone())),
            ("git_rev", Json::str(git_rev())),
            (
                "results",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            if r.unit == "ns" {
                                Json::obj([
                                    ("name", Json::str(r.name.clone())),
                                    ("iters", Json::num(r.iters as f64)),
                                    ("median_ns", Json::num(r.median_ns)),
                                    ("mean_ns", Json::num(r.mean_ns)),
                                ])
                            } else {
                                Json::obj([
                                    ("name", Json::str(r.name.clone())),
                                    ("iters", Json::num(r.iters as f64)),
                                    ("value", Json::num(r.median_ns)),
                                    ("unit", Json::str(r.unit.clone())),
                                ])
                            }
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `BENCH_<suite>.json` to the workspace root (falling back
    /// to the working directory outside cargo) and returns its path.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = output_dir().join(format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.to_json().render())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

/// Under `cargo bench` the process cwd is the *package* directory;
/// results belong at the workspace root: the innermost ancestor of
/// `CARGO_MANIFEST_DIR` whose `Cargo.toml` declares a `[workspace]`
/// (never walking past it into unrelated outer projects).
fn output_dir() -> std::path::PathBuf {
    let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") else {
        return std::path::PathBuf::from(".");
    };
    for dir in std::path::Path::new(&manifest).ancestors() {
        let toml = dir.join("Cargo.toml");
        if std::fs::read_to_string(&toml)
            .map(|t| t.contains("[workspace]"))
            .unwrap_or(false)
        {
            return dir.to_path_buf();
        }
    }
    std::path::PathBuf::from(manifest)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let r = bench("harness/self_test", || {
            std::hint::black_box(1 + 1);
        });
        // >= 1, not >= 5: AIGA_BENCH_MAX_ITERS (the CI smoke cap) may be
        // set in the environment running this test.
        assert!(r.iters >= 1);
        assert!(r.median_ns >= 0.0 && r.mean_ns >= 0.0);
    }

    #[test]
    fn recorder_renders_parseable_json() {
        let mut rec = Recorder::new("selftest");
        rec.bench("a", || {
            std::hint::black_box(2 * 2);
        });
        rec.record_value("b", 123.5, "req_per_s");
        let text = rec.to_json().render();
        let parsed = Json::parse(&text).expect("round-trips");
        assert_eq!(parsed.field("suite").unwrap().as_str().unwrap(), "selftest");
        let results = parsed.field("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].field("name").unwrap().as_str().unwrap(), "a");
        assert!(results[0].field("median_ns").unwrap().as_f64().unwrap() >= 0.0);
        // Non-ns rows carry a tagged value instead of median_ns, so
        // latency-diffing tools never misread a throughput.
        assert!(results[1].field("median_ns").is_err());
        assert_eq!(results[1].field("value").unwrap().as_f64().unwrap(), 123.5);
        assert_eq!(
            results[1].field("unit").unwrap().as_str().unwrap(),
            "req_per_s"
        );
    }
}
