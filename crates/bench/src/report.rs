//! Minimal text-table rendering for the figure binaries.

/// A plain-text table with aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["model", "overhead"]);
        t.row(["ResNet-50", "4.2%"]).row(["VGG", "1.1%"]);
        let s = t.render();
        assert!(s.contains("ResNet-50"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only one"]);
    }
}
