//! Data generators for every table and figure in the paper's evaluation.
//!
//! Paper reference values appear in each item's docs; `EXPERIMENTS.md`
//! tabulates paper-vs-reproduction side by side.

use aiga_core::cost::evaluate_layer;
use aiga_core::{Planner, Scheme};
use aiga_faults::Campaign;
use aiga_gpu::occupancy::Occupancy;
use aiga_gpu::timing::Calibration;
use aiga_gpu::{DeviceSpec, GemmShape, TilingConfig};
use aiga_nn::{zoo, Model};

/// The evaluation device (§6.2): an NVIDIA T4 with default calibration.
pub fn evaluation_setup() -> (DeviceSpec, Calibration) {
    (DeviceSpec::t4(), Calibration::default())
}

// ---------------------------------------------------------------------
// Figure 4 / Figure 5 / §3.2 sweeps: arithmetic intensity
// ---------------------------------------------------------------------

/// Figure 4: FP16 aggregate arithmetic intensity of the eight
/// general-purpose CNNs at 1080×1920, batch 1 (paper: 71–220).
pub fn fig04_aggregate_intensity() -> Vec<(String, f64)> {
    zoo::general_cnns(1, zoo::HD.0, zoo::HD.1)
        .into_iter()
        .map(|m| (m.name.clone(), m.aggregate_intensity()))
        .collect()
}

/// Figure 5: per-layer FP16 arithmetic intensity of ResNet-50 on HD
/// images at batch 1 (paper: range 1–511).
pub fn fig05_resnet50_layer_intensities() -> Vec<(String, f64)> {
    let m = zoo::resnet50(1, zoo::HD.0, zoo::HD.1);
    m.layers
        .iter()
        .map(|l| (l.name.clone(), l.arithmetic_intensity()))
        .collect()
}

/// DLRM sweep rows: `(batch, bottom AI, top AI)`.
pub type DlrmSweep = Vec<(u64, f64, f64)>;
/// Resolution sweep rows: `((h, w), aggregate AI)`.
pub type ResolutionSweep = Vec<((u64, u64), f64)>;

/// §3.2 sweeps: DLRM aggregate intensity versus batch size and
/// ResNet-50 aggregate intensity versus input resolution.
pub fn intensity_sweeps() -> (DlrmSweep, ResolutionSweep) {
    let dlrm = [1u64, 64, 256, 1024, 2048]
        .into_iter()
        .map(|b| {
            (
                b,
                zoo::dlrm_mlp_bottom(b).aggregate_intensity(),
                zoo::dlrm_mlp_top(b).aggregate_intensity(),
            )
        })
        .collect();
    let resnet = [(224u64, 224u64), (720, 1280), (1080, 1920)]
        .into_iter()
        .map(|(h, w)| ((h, w), zoo::resnet50(1, h, w).aggregate_intensity()))
        .collect();
    (dlrm, resnet)
}

/// §3.3: CMR of every modeled device (paper: P4 58, T4 203, V100 139,
/// A100 ~201, Xavier 235).
pub fn device_cmrs() -> Vec<(String, f64)> {
    DeviceSpec::all()
        .into_iter()
        .map(|d| (d.name.to_string(), d.cmr()))
        .collect()
}

// ---------------------------------------------------------------------
// Table 1: per-step scheme costs
// ---------------------------------------------------------------------

/// One row of Table 1 for a given tiling.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Scheme.
    pub scheme: Scheme,
    /// Extra Tensor-Core MMAs per thread per K-step.
    pub extra_mmas: u64,
    /// Checksum operations per thread per K-step.
    pub checksum_ops: u64,
    /// Extra registers per thread.
    pub extra_regs: u64,
}

/// Table 1 instantiated for the large CUTLASS-style tiling
/// (`Mt = 8, Nt = 16`): replication `MtNt/2 = 64` MMAs, two-sided `1` MMA
/// + `O(Mt+Nt)` ops, one-sided `Mt/2 = 4` MMAs + `O(Nt)` ops.
pub fn table1() -> (TilingConfig, Vec<Table1Row>) {
    let tiling = TilingConfig::candidates()[0];
    let rows = [
        Scheme::ReplicationSingleAcc,
        Scheme::ThreadLevelTwoSided,
        Scheme::ThreadLevelOneSided,
    ]
    .into_iter()
    .map(|s| Table1Row {
        scheme: s,
        extra_mmas: s.extra_mmas_per_step(&tiling),
        checksum_ops: s.checksum_ops_per_step(&tiling),
        extra_regs: s.extra_regs(&tiling),
    })
    .collect();
    (tiling, rows)
}

// ---------------------------------------------------------------------
// Figures 8–11: execution-time overheads on NNs
// ---------------------------------------------------------------------

/// One model's overheads under the three reported configurations.
#[derive(Clone, Debug)]
pub struct ModelOverheads {
    /// Model name.
    pub model: String,
    /// Aggregate FP16 arithmetic intensity.
    pub intensity: f64,
    /// Thread-level (one-sided) ABFT on every layer, percent.
    pub thread_level_pct: f64,
    /// Global ABFT on every layer, percent.
    pub global_pct: f64,
    /// Intensity-guided per-layer selection, percent.
    pub intensity_guided_pct: f64,
    /// Layers where intensity-guided chose thread-level ABFT.
    pub thread_layers: usize,
    /// Total layers.
    pub layers: usize,
}

/// Evaluates one model under thread-level / global / intensity-guided
/// ABFT on the evaluation device.
pub fn model_overheads(model: &Model) -> ModelOverheads {
    let (dev, calib) = evaluation_setup();
    let plan = Planner::new(dev).calibration(calib).plan(model);
    ModelOverheads {
        model: model.name.clone(),
        intensity: model.aggregate_intensity(),
        thread_level_pct: plan.fixed_scheme_overhead_pct(Scheme::ThreadLevelOneSided),
        global_pct: plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft),
        intensity_guided_pct: plan.intensity_guided_overhead_pct(),
        thread_layers: plan.thread_level_layer_count(),
        layers: plan.layers.len(),
    }
}

/// Figure 8: global vs intensity-guided overhead on all fourteen NNs, in
/// the paper's order (paper: reductions of 1.09–5.3×).
pub fn fig08_all_models() -> Vec<ModelOverheads> {
    zoo::figure8_models().iter().map(model_overheads).collect()
}

/// Figure 9: the eight general-purpose CNNs at a given resolution
/// (paper: HD reductions 1.09–2.75×; 224×224 reductions 1.3–3.3×).
pub fn fig09_general_cnns(h: u64, w: u64) -> Vec<ModelOverheads> {
    zoo::general_cnns(1, h, w)
        .iter()
        .map(model_overheads)
        .collect()
}

/// Figure 10: the DLRM MLPs at batch 1 and batch 2048 (paper: batch-1
/// reductions 4.55× / 3.24×).
pub fn fig10_dlrm() -> Vec<ModelOverheads> {
    [
        zoo::dlrm_mlp_bottom(1),
        zoo::dlrm_mlp_top(1),
        zoo::dlrm_mlp_bottom(2048),
        zoo::dlrm_mlp_top(2048),
    ]
    .iter()
    .map(|m| {
        let mut o = model_overheads(m);
        o.model = format!("{} Batch {}", m.name, m.layers[0].shape.m);
        o
    })
    .collect()
}

/// Figure 11: the four specialized CNNs at batch 64 (paper: reductions
/// 1.6–5.3×).
pub fn fig11_specialized() -> Vec<ModelOverheads> {
    zoo::specialized_cnns(64)
        .iter()
        .map(model_overheads)
        .collect()
}

// ---------------------------------------------------------------------
// Figure 12: square-GEMM sweep of all schemes
// ---------------------------------------------------------------------

/// One size of the Figure 12 sweep.
#[derive(Clone, Debug)]
pub struct SquareSweepRow {
    /// `M = N = K`.
    pub size: u64,
    /// FP16 arithmetic intensity.
    pub intensity: f64,
    /// Overheads per scheme, in percent.
    pub one_sided_pct: f64,
    /// Two-sided thread-level ABFT overhead.
    pub two_sided_pct: f64,
    /// Single-accumulation replication overhead.
    pub replication_pct: f64,
    /// Global ABFT overhead.
    pub global_pct: f64,
}

/// Figure 12: overheads of one-/two-sided thread-level ABFT, thread-level
/// replication, and global ABFT on square GEMMs from 32 to 2048 (paper:
/// thread-level up to 6.5× cheaper left of the CMR; global up to 14×
/// cheaper right of it; replication above 70% at the largest sizes).
pub fn fig12_square_sweep() -> Vec<SquareSweepRow> {
    let (dev, calib) = evaluation_setup();
    [32u64, 64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .map(|size| {
            let shape = GemmShape::square(size);
            let schemes = [
                Scheme::ThreadLevelOneSided,
                Scheme::ThreadLevelTwoSided,
                Scheme::ReplicationSingleAcc,
                Scheme::GlobalAbft,
            ];
            let (_, ts) = evaluate_layer(shape, &schemes, &dev, &calib);
            let get = |s: Scheme| ts.iter().find(|t| t.scheme == s).unwrap().overhead_pct;
            SquareSweepRow {
                size,
                intensity: shape.arithmetic_intensity_fp16(),
                one_sided_pct: get(Scheme::ThreadLevelOneSided),
                two_sided_pct: get(Scheme::ThreadLevelTwoSided),
                replication_pct: get(Scheme::ReplicationSingleAcc),
                global_pct: get(Scheme::GlobalAbft),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// §4 ablation: traditional vs single-accumulation replication
// ---------------------------------------------------------------------

/// One row of the replication-occupancy ablation.
#[derive(Clone, Debug)]
pub struct ReplicationAblationRow {
    /// `M = N = K`.
    pub size: u64,
    /// Single-accumulation replication overhead, percent.
    pub single_acc_pct: f64,
    /// Traditional replication overhead, percent.
    pub traditional_pct: f64,
    /// Occupancy (blocks/SM) under traditional replication.
    pub traditional_occupancy: Occupancy,
    /// Occupancy (blocks/SM) of the baseline kernel.
    pub baseline_occupancy: Occupancy,
}

/// The §4 finding: traditional replication's doubled accumulator
/// registers cut occupancy (or spill), making it slower than
/// single-accumulation replication.
pub fn replication_ablation() -> Vec<ReplicationAblationRow> {
    let (dev, calib) = evaluation_setup();
    [128u64, 256, 512, 1024, 2048]
        .into_iter()
        .map(|size| {
            let shape = GemmShape::square(size);
            let schemes = [Scheme::ReplicationSingleAcc, Scheme::ReplicationTraditional];
            let (_, ts) = evaluate_layer(shape, &schemes, &dev, &calib);
            let tiling = TilingConfig::select(shape, &dev);
            ReplicationAblationRow {
                size,
                single_acc_pct: ts[0].overhead_pct,
                traditional_pct: ts[1].overhead_pct,
                traditional_occupancy: Occupancy::compute(
                    &dev,
                    &tiling,
                    Scheme::ReplicationTraditional.extra_regs(&tiling),
                ),
                baseline_occupancy: Occupancy::compute(&dev, &tiling, 0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fault coverage (§2.3 fault model, functional validation)
// ---------------------------------------------------------------------

/// Coverage of one scheme under random bit-flip injection.
#[derive(Clone, Debug)]
pub struct CoverageRow {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Campaign statistics.
    pub stats: aiga_faults::CampaignStats,
}

/// Runs a bit-flip campaign against every scheme on a 64³ GEMM.
pub fn fault_coverage(trials: usize) -> Vec<CoverageRow> {
    let shape = GemmShape::new(64, 64, 64);
    Scheme::all_protected()
        .into_iter()
        .map(|scheme| {
            let c = Campaign::new(shape, scheme, 1000 + scheme.ordinal());
            CoverageRow {
                scheme,
                stats: c.run_bit_flips(trials, 77),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_reproduces_the_intensity_ordering() {
        let data = fig04_aggregate_intensity();
        assert_eq!(data.len(), 8);
        // SqueezeNet lowest, ResNeXt/Wide-ResNet highest (Fig. 4).
        assert_eq!(data[0].0, "SqueezeNet");
        assert!(data[0].1 < data[7].1);
        assert!(data[0].1 > 60.0 && data[7].1 < 240.0);
    }

    #[test]
    fn fig08_intensity_guided_reduces_overhead_within_paper_band() {
        // Paper: reductions of 1.09–5.3× across the fourteen NNs.
        for o in fig08_all_models() {
            let reduction = o.global_pct / o.intensity_guided_pct.max(1e-9);
            assert!(
                reduction >= 1.0,
                "{}: global {:.2}% < intensity-guided {:.2}%",
                o.model,
                o.global_pct,
                o.intensity_guided_pct
            );
            assert!(
                reduction < 40.0,
                "{}: implausible reduction {reduction:.1}x",
                o.model
            );
        }
    }

    #[test]
    fn fig10_dlrm_batch_sweep_matches_the_papers_asymmetry() {
        let rows = fig10_dlrm();
        let top1 = &rows[1]; // MLP-Top batch 1 (AI 7.7)
        let top2048 = &rows[3]; // MLP-Top batch 2048 (AI 175.8)
                                // §6.4.2: MLP-Top's intensity rises from 7.7 to 175.8, so "the
                                // difference between global and thread-level ABFT decreases" —
                                // the reduction shrinks with batch.
        let red1 = top1.global_pct / top1.intensity_guided_pct.max(1e-9);
        let red2048 = top2048.global_pct / top2048.intensity_guided_pct.max(1e-9);
        assert!(
            red1 > red2048,
            "batch 1 should benefit more: {red1} vs {red2048}"
        );
        assert!(red1 > 2.0, "batch-1 reduction {red1}");
        // MLP-Bottom only reaches AI 92 (< CMR), so "thread-level ABFT
        // continu[es] to have lower overhead" even at batch 2048.
        let bot2048 = &rows[2];
        assert!(bot2048.thread_level_pct < bot2048.global_pct);
        // "In both cases, intensity-guided ABFT achieves the lowest
        // overhead."
        for r in &rows {
            assert!(
                r.intensity_guided_pct <= r.thread_level_pct.min(r.global_pct) + 1e-12,
                "{}",
                r.model
            );
        }
    }

    #[test]
    fn fig12_crossover_matches_the_cmr_line() {
        let rows = fig12_square_sweep();
        for r in &rows {
            if r.intensity < 203.0 {
                assert!(r.one_sided_pct <= r.global_pct, "size {}: {r:?}", r.size);
            } else {
                assert!(r.global_pct <= r.one_sided_pct, "size {}: {r:?}", r.size);
            }
        }
        // Replication above 70% at the two largest sizes (Fig. 12).
        assert!(rows[5].replication_pct > 70.0);
        assert!(rows[6].replication_pct > 70.0);
    }

    #[test]
    fn replication_ablation_shows_the_occupancy_cost() {
        for r in replication_ablation() {
            assert!(
                r.traditional_pct >= r.single_acc_pct - 1e-9,
                "size {}: {:.1} vs {:.1}",
                r.size,
                r.traditional_pct,
                r.single_acc_pct
            );
            // Small problems select small thread tiles whose doubled
            // accumulators still fit comfortably; the register cost shows
            // up once the larger tiles are selected (≥ 512 here).
            if r.size >= 512 {
                let t = &r.traditional_occupancy;
                let b = &r.baseline_occupancy;
                assert!(
                    t.blocks_per_sm < b.blocks_per_sm || t.spilled_regs_per_thread > 0,
                    "size {}: traditional replication should pay registers",
                    r.size
                );
            }
        }
    }

    #[test]
    fn table1_matches_the_paper() {
        let (_, rows) = table1();
        assert_eq!(rows[0].extra_mmas, 64); // replication MtNt/2
        assert_eq!(rows[1].extra_mmas, 1); // two-sided
        assert_eq!(rows[2].extra_mmas, 4); // one-sided Mt/2
        assert_eq!(rows[0].checksum_ops, 0);
        assert!(rows[1].checksum_ops > rows[2].checksum_ops);
    }
}
