//! # aiga-bench — regenerating the paper's evaluation
//!
//! Each function in [`figures`] computes the data behind one table or
//! figure of the paper on the simulated T4; the `src/bin` binaries print
//! them as text tables, and `benches/` wraps the same pipelines in
//! Criterion harnesses. `EXPERIMENTS.md` records paper-vs-reproduction
//! values for every experiment.

pub mod figures;
pub mod harness;
pub mod report;

pub use figures::*;
pub use report::Table;
