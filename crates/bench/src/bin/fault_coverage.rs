//! Fault-injection coverage: random FP32 bit flips against every scheme
//! on the functional engine (§2.3 fault model). Validates that the
//! schemes *detect* what the timing experiments price.

use aiga_bench::{fault_coverage, Table};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    println!("Fault coverage: {trials} random bit flips per scheme, 64x64x64 GEMM\n");
    let mut t = Table::new([
        "scheme",
        "detected",
        "SDC",
        "masked",
        "false+",
        "detection rate",
        "worst SDC",
    ]);
    for row in fault_coverage(trials) {
        let s = row.stats;
        t.row([
            row.scheme.label().to_string(),
            s.detected.to_string(),
            s.sdc.to_string(),
            s.masked.to_string(),
            s.false_positives.to_string(),
            format!("{:.1}%", s.detection_rate() * 100.0),
            format!("{:.2e}", s.worst_sdc),
        ]);
    }
    println!("{t}");
    println!("note: SDC under tolerance-based ABFT is bounded by the detection threshold;");
    println!("      traditional replication compares exactly and has zero SDC.");
}
