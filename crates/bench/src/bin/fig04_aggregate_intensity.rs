//! Figure 4: FP16 aggregate arithmetic intensity of eight CNNs on
//! 1080×1920 images at batch size one.

use aiga_bench::{fig04_aggregate_intensity, Table};

fn main() {
    println!("Figure 4: aggregate FP16 arithmetic intensity, HD input, batch 1\n");
    let mut t = Table::new(["model", "aggregate AI", "paper"]);
    let paper = [
        ("SqueezeNet", 71.1),
        ("ShuffleNet", 76.6),
        ("DenseNet-161", 79.0),
        ("ResNet-50", 122.0),
        ("AlexNet", 125.5),
        ("VGG-16", 155.5),
        ("ResNext-50", 220.8),
        ("Wide-ResNet-50", 220.8),
    ];
    for (name, ai) in fig04_aggregate_intensity() {
        let reference = paper
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| format!("{v:.1}"))
            .unwrap_or_default();
        t.row([name, format!("{ai:.1}"), reference]);
    }
    println!("{t}");
}
