//! Figure 11: specialized (NoScope-style) CNNs at batch 64 (paper:
//! reductions 1.6–5.3×).

use aiga_bench::{fig11_specialized, Table};

fn main() {
    println!("Figure 11: specialized CNNs, batch 64 (simulated T4)\n");
    let mut t = Table::new([
        "model",
        "AI",
        "thread-level %",
        "global %",
        "intensity-guided %",
        "reduction",
    ]);
    for o in fig11_specialized() {
        t.row([
            o.model.clone(),
            format!("{:.1}", o.intensity),
            format!("{:.2}", o.thread_level_pct),
            format!("{:.2}", o.global_pct),
            format!("{:.2}", o.intensity_guided_pct),
            format!("{:.2}x", o.global_pct / o.intensity_guided_pct.max(1e-9)),
        ]);
    }
    println!("{t}");
}
