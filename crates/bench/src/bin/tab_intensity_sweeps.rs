//! §3.2 sweeps: DLRM aggregate AI versus batch size, ResNet-50 aggregate
//! AI versus input resolution, and §3.3 device CMRs.

use aiga_bench::{device_cmrs, intensity_sweeps, Table};

fn main() {
    let (dlrm, resnet) = intensity_sweeps();

    println!(
        "S3.2: DLRM aggregate AI vs batch size (paper: 7.4/7.7 @1, 70/109 @256, 92/175.8 @2048)\n"
    );
    let mut t = Table::new(["batch", "MLP-Bottom", "MLP-Top"]);
    for (b, bot, top) in dlrm {
        t.row([b.to_string(), format!("{bot:.1}"), format!("{top:.1}")]);
    }
    println!("{t}");

    println!("S3.2: ResNet-50 aggregate AI vs resolution (paper: 72 @224x224, 122 @1080x1920)\n");
    let mut t = Table::new(["resolution", "aggregate AI"]);
    for ((h, w), ai) in resnet {
        t.row([format!("{h}x{w}"), format!("{ai:.1}")]);
    }
    println!("{t}");

    println!("S3.3: device CMRs (paper: P4 58, T4 203, V100 139, A100 201, Xavier 235)\n");
    let mut t = Table::new(["device", "CMR (FLOPs/byte)"]);
    for (name, cmr) in device_cmrs() {
        t.row([name, format!("{cmr:.1}")]);
    }
    println!("{t}");
}
