//! Figure 10: DLRM MLPs at batch 1 and 2048 (paper: batch-1 reductions
//! 4.55× for MLP-Bottom and 3.24× for MLP-Top; at batch 2048 MLP-Bottom
//! still favors thread-level ABFT while MLP-Top approaches parity).

use aiga_bench::{fig10_dlrm, Table};

fn main() {
    println!("Figure 10: DLRM MLPs (simulated T4)\n");
    let mut t = Table::new([
        "model",
        "AI",
        "thread-level %",
        "global %",
        "intensity-guided %",
        "reduction",
    ]);
    for o in fig10_dlrm() {
        t.row([
            o.model.clone(),
            format!("{:.1}", o.intensity),
            format!("{:.2}", o.thread_level_pct),
            format!("{:.2}", o.global_pct),
            format!("{:.2}", o.intensity_guided_pct),
            format!("{:.2}x", o.global_pct / o.intensity_guided_pct.max(1e-9)),
        ]);
    }
    println!("{t}");
}
