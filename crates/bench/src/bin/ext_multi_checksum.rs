//! §2.4 extension: multi-checksum ABFT for higher fault rates.
//!
//! Demonstrates that a single checksum misses cancelling fault *pairs*
//! while independent weighted checksum rounds catch them, and measures
//! the detection rate of 1/2/3-round global ABFT under double faults.

use aiga_bench::Table;
use aiga_core::schemes::MultiChecksumAbft;
use aiga_gpu::engine::{FaultKind, FaultPlan, GemmEngine, Matrix, NoScheme};
use aiga_gpu::GemmShape;
use aiga_util::rng::Rng64;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let (m, n, k) = (48usize, 40usize, 64usize);
    let a = Matrix::random(m, k, 1);
    let b = Matrix::random(k, n, 2);
    let eng = GemmEngine::with_default_tiling(GemmShape::new(m as u64, n as u64, k as u64));
    let mut rng = Rng64::seed_from_u64(99);

    println!(
        "S2.4 extension: double-fault detection, {trials} trials of cancelling \
         fault pairs (+d at one site, -d at another)\n"
    );
    let mut t = Table::new(["checksum rounds", "detected", "missed", "detection rate"]);
    for rounds in 1..=3usize {
        let abft = MultiChecksumAbft::prepare(&b, rounds);
        let mut detected = 0usize;
        for _ in 0..trials {
            let delta: f32 = rng.range_f32(50.0, 500.0);
            let r1 = rng.range_usize(0, m);
            let mut r2 = rng.range_usize(0, m);
            while r2 == r1 {
                r2 = rng.range_usize(0, m);
            }
            let faults = [
                FaultPlan {
                    row: r1,
                    col: rng.range_usize(0, n),
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(delta),
                },
                FaultPlan {
                    row: r2,
                    col: rng.range_usize(0, n),
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(-delta),
                },
            ];
            let out = eng.run_multi(&a, &b, || NoScheme, &faults);
            if abft.verify(&a, &out).fault_detected() {
                detected += 1;
            }
        }
        t.row([
            rounds.to_string(),
            detected.to_string(),
            (trials - detected).to_string(),
            format!("{:.1}%", detected as f64 / trials as f64 * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "reading: exactly-cancelling pairs are invisible to the plain (1-round)\n\
         checksum; a second Vandermonde-weighted round restores detection, as\n\
         S2.4 describes ('multiple checksum columns and rows based on\n\
         independent linear combinations')."
    );
}
