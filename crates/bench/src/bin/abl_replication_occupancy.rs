//! §4 ablation: why traditional thread-level replication loses to the
//! single-accumulation variant — doubled accumulator registers cut
//! occupancy or spill to local memory.

use aiga_bench::{replication_ablation, Table};

fn main() {
    println!("S4 ablation: replication variants (simulated T4)\n");
    let mut t = Table::new([
        "M=N=K",
        "single-acc %",
        "traditional %",
        "base blocks/SM",
        "trad blocks/SM",
        "trad spilled regs",
    ]);
    for r in replication_ablation() {
        t.row([
            r.size.to_string(),
            format!("{:.2}", r.single_acc_pct),
            format!("{:.2}", r.traditional_pct),
            r.baseline_occupancy.blocks_per_sm.to_string(),
            r.traditional_occupancy.blocks_per_sm.to_string(),
            r.traditional_occupancy.spilled_regs_per_thread.to_string(),
        ]);
    }
    println!("{t}");
}
