//! Figure 12: execution-time overhead of every redundant-execution
//! scheme on square GEMMs (M = N = K from 32 to 2048). Sizes left of the
//! CMR line (AI < 203) are bandwidth bound.

use aiga_bench::{fig12_square_sweep, Table};

fn main() {
    println!("Figure 12: square matrix multiplications (simulated T4, FP16 CMR 203)\n");
    let mut t = Table::new([
        "M=N=K",
        "AI",
        "one-sided %",
        "two-sided %",
        "replication %",
        "global %",
        "bound",
    ]);
    for r in fig12_square_sweep() {
        t.row([
            r.size.to_string(),
            format!("{:.1}", r.intensity),
            format!("{:.2}", r.one_sided_pct),
            format!("{:.2}", r.two_sided_pct),
            format!("{:.2}", r.replication_pct),
            format!("{:.2}", r.global_pct),
            if r.intensity < 203.0 {
                "memory"
            } else {
                "compute"
            }
            .to_string(),
        ]);
    }
    println!("{t}");
    println!("paper: one-sided up to 6.5x cheaper than global left of the line,");
    println!("       global up to 14x cheaper right of it; replication >70% at 1024/2048");
}
