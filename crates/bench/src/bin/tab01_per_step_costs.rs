//! Table 1: additional Tensor Core MMAs and checksum operations per
//! thread per K-step for each thread-level scheme.

use aiga_bench::{table1, Table};

fn main() {
    let (tiling, rows) = table1();
    println!(
        "Table 1 (instantiated for Mt={}, Nt={}): per-thread per-K-step costs\n",
        tiling.thread_mt(),
        tiling.thread_nt()
    );
    let mut t = Table::new(["scheme", "extra MMAs", "checksum ops", "extra regs"]);
    for r in rows {
        t.row([
            r.scheme.label().to_string(),
            r.extra_mmas.to_string(),
            r.checksum_ops.to_string(),
            r.extra_regs.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "paper formulas: replication MtNt/2 | two-sided 1 + O(Mt+Nt) | one-sided Mt/2 + O(Nt)"
    );
}
