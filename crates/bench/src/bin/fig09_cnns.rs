//! Figure 9: thread-level vs global vs intensity-guided ABFT on the
//! eight general-purpose CNNs. Pass `--resolution 224` for the §6.4.1
//! ImageNet-resolution variant (default is HD 1080×1920).

use aiga_bench::{fig09_general_cnns, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (h, w) = match args.iter().position(|a| a == "--resolution") {
        Some(i) => {
            let r: u64 = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--resolution takes a number (e.g. 224)");
            (r, r)
        }
        None => (1080, 1920),
    };
    println!("Figure 9: general-purpose CNNs @{h}x{w}, batch 1 (simulated T4)\n");
    let mut t = Table::new([
        "model",
        "AI",
        "thread-level %",
        "global %",
        "intensity-guided %",
        "reduction vs global",
    ]);
    for o in fig09_general_cnns(h, w) {
        t.row([
            o.model.clone(),
            format!("{:.1}", o.intensity),
            format!("{:.2}", o.thread_level_pct),
            format!("{:.2}", o.global_pct),
            format!("{:.2}", o.intensity_guided_pct),
            format!("{:.2}x", o.global_pct / o.intensity_guided_pct.max(1e-9)),
        ]);
    }
    println!("{t}");
    println!("paper: HD reductions 1.09-2.75x; 224x224 reductions 1.3-3.3x");
}
