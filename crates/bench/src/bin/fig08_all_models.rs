//! Figure 8: execution-time overhead of global vs intensity-guided ABFT
//! on all fourteen evaluated NNs (paper: reductions of 1.09–5.3×).

use aiga_bench::{fig08_all_models, Table};

fn main() {
    println!("Figure 8: execution-time overhead, all NNs (simulated T4)\n");
    let mut t = Table::new([
        "model",
        "AI",
        "global ABFT %",
        "intensity-guided %",
        "reduction",
        "thread-level layers",
    ]);
    for o in fig08_all_models() {
        t.row([
            o.model.clone(),
            format!("{:.1}", o.intensity),
            format!("{:.2}", o.global_pct),
            format!("{:.2}", o.intensity_guided_pct),
            format!("{:.2}x", o.global_pct / o.intensity_guided_pct.max(1e-9)),
            format!("{}/{}", o.thread_layers, o.layers),
        ]);
    }
    println!("{t}");
    println!("paper reductions: 4.6x, 3.2x, 3.7x, 5.3x, 2.0x, 1.6x, 2.4x, 2.8x (annotated models)");
}
