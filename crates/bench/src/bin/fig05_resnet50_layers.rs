//! Figure 5: per-layer FP16 arithmetic intensity of ResNet-50 on HD
//! images (paper: range 1–511, wide variance across one NN).

use aiga_bench::{fig05_resnet50_layer_intensities, Table};

fn main() {
    println!("Figure 5: ResNet-50 @1080x1920 per-layer arithmetic intensity\n");
    let data = fig05_resnet50_layer_intensities();
    let mut t = Table::new(["idx", "layer", "AI"]);
    for (i, (name, ai)) in data.iter().enumerate() {
        t.row([i.to_string(), name.clone(), format!("{ai:.1}")]);
    }
    println!("{t}");
    let (lo, hi) = data.iter().fold((f64::MAX, f64::MIN), |(lo, hi), (_, ai)| {
        (lo.min(*ai), hi.max(*ai))
    });
    println!("range: {lo:.1} – {hi:.1}   (paper: ~1 – 511)");
}
