//! Intensity-guided ABFT plans (§5.3): the per-layer and whole-model
//! outcome of selection between global and thread-level ABFT.
//!
//! Planning itself lives in [`crate::planner::Planner`] — a builder that
//! replaces the old `ModelPlan::build`/`build_with` pair. This module
//! holds the plan data structures, their aggregation metrics (the §6.2
//! whole-model overheads), and the §7.3 multi-input-size
//! [`DeploymentPlan`].

use crate::cost::SchemeTiming;
use crate::schemes::Scheme;
use aiga_gpu::{DeviceSpec, GemmShape};

/// How the selector chooses a scheme for a layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionMode {
    /// Empirical profiling: pick the scheme with the lowest measured
    /// (here: modeled) execution time — the paper's deployed mode.
    Profiled,
    /// Analytical: thread-level ABFT when the layer's arithmetic
    /// intensity is below the device CMR, global ABFT otherwise (§7.2).
    Analytical,
}

/// Error returned when a plan is asked about a scheme that was never
/// profiled as a candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemeNotProfiled {
    /// The scheme asked about.
    pub scheme: Scheme,
    /// The layer the question was about.
    pub layer: String,
    /// The schemes that *were* profiled for that layer.
    pub profiled: Vec<Scheme>,
}

impl std::fmt::Display for SchemeNotProfiled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheme `{}` was not profiled for layer `{}` (profiled candidates: {}); \
             add it to Planner::candidates before planning",
            self.scheme,
            self.layer,
            self.profiled
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for SchemeNotProfiled {}

/// The per-layer outcome of intensity-guided selection.
#[derive(Clone, Debug)]
pub struct LayerPlan {
    /// Layer name.
    pub name: String,
    /// Padded GEMM shape.
    pub shape: GemmShape,
    /// FP16 arithmetic intensity of the layer.
    pub intensity: f64,
    /// The scheme intensity-guided ABFT chose.
    pub chosen: Scheme,
    /// Unprotected execution time (seconds).
    pub baseline_s: f64,
    /// Candidate timings (same order as the candidate list).
    pub candidates: Vec<SchemeTiming>,
}

impl LayerPlan {
    /// Time under the chosen scheme.
    pub fn chosen_s(&self) -> f64 {
        self.time_under(self.chosen)
    }

    /// Time under a specific scheme, if it was among the candidates.
    pub fn try_time_under(&self, scheme: Scheme) -> Option<f64> {
        self.candidates
            .iter()
            .find(|t| t.scheme == scheme)
            .map(|t| t.estimate.total_s)
    }

    /// Time under a specific scheme; panics with the full candidate list
    /// if the scheme was not profiled (use [`Self::try_time_under`] for a
    /// non-panicking variant).
    pub fn time_under(&self, scheme: Scheme) -> f64 {
        self.try_time_under(scheme)
            .unwrap_or_else(|| panic!("{}", self.not_profiled(scheme)))
    }

    fn not_profiled(&self, scheme: Scheme) -> SchemeNotProfiled {
        SchemeNotProfiled {
            scheme,
            layer: self.name.clone(),
            profiled: self.candidates.iter().map(|t| t.scheme).collect(),
        }
    }
}

/// The whole-model plan produced by intensity-guided ABFT.
#[derive(Clone, Debug)]
pub struct ModelPlan {
    /// Model name.
    pub model: String,
    /// Device it was planned for.
    pub device: DeviceSpec,
    /// Per-layer plans in execution order.
    pub layers: Vec<LayerPlan>,
}

impl ModelPlan {
    /// Total unprotected time (sum of per-layer times, the §6.2
    /// aggregation: layers execute sequentially).
    pub fn baseline_s(&self) -> f64 {
        self.layers.iter().map(|l| l.baseline_s).sum()
    }

    /// Total time with one fixed scheme on every layer, or an error
    /// naming the first layer where that scheme was never profiled.
    pub fn try_fixed_scheme_s(&self, scheme: Scheme) -> Result<f64, SchemeNotProfiled> {
        self.layers
            .iter()
            .map(|l| {
                l.try_time_under(scheme)
                    .ok_or_else(|| l.not_profiled(scheme))
            })
            .sum()
    }

    /// Total time with one fixed scheme on every layer; panics with the
    /// candidate list if the scheme was not profiled (use
    /// [`Self::try_fixed_scheme_s`] for a non-panicking variant).
    pub fn fixed_scheme_s(&self, scheme: Scheme) -> f64 {
        self.try_fixed_scheme_s(scheme)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Total time under intensity-guided selection.
    pub fn intensity_guided_s(&self) -> f64 {
        self.layers.iter().map(|l| l.chosen_s()).sum()
    }

    /// Whole-model percentage overhead of a fixed scheme.
    pub fn fixed_scheme_overhead_pct(&self, scheme: Scheme) -> f64 {
        (self.fixed_scheme_s(scheme) - self.baseline_s()) / self.baseline_s() * 100.0
    }

    /// Whole-model percentage overhead of intensity-guided ABFT.
    pub fn intensity_guided_overhead_pct(&self) -> f64 {
        (self.intensity_guided_s() - self.baseline_s()) / self.baseline_s() * 100.0
    }

    /// How many layers chose a thread-level scheme.
    pub fn thread_level_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.chosen.is_thread_level())
            .count()
    }

    /// Per-layer chosen schemes, in execution order.
    pub fn chosen_schemes(&self) -> Vec<Scheme> {
        self.layers.iter().map(|l| l.chosen).collect()
    }
}

/// §7.3: input-size-dependent deployment.
///
/// Arithmetic intensity — and therefore the per-layer ABFT selection —
/// depends on the input size (batch, resolution). Deployments that
/// expect several input sizes build one [`ModelPlan`] per size ahead of
/// time (via [`crate::planner::Planner::deployment`]) and dispatch among
/// them at inference time; this is cheap because planning is a
/// pre-deployment step. [`crate::Session`] wraps this with caching and
/// per-request dispatch.
#[derive(Clone, Debug)]
pub struct DeploymentPlan {
    /// `(input-size key, plan)` pairs, e.g. keyed by batch size.
    variants: Vec<(u64, ModelPlan)>,
}

impl DeploymentPlan {
    /// Assembles a deployment from pre-built `(key, plan)` variants.
    pub fn from_variants(variants: Vec<(u64, ModelPlan)>) -> Self {
        assert!(!variants.is_empty(), "at least one input size required");
        DeploymentPlan { variants }
    }

    /// Number of pre-planned input sizes.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// True if no variants exist (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// The pre-planned `(key, plan)` variants.
    pub fn variants(&self) -> &[(u64, ModelPlan)] {
        &self.variants
    }

    /// The plan for the smallest pre-planned key that can hold the
    /// observed input size — inputs are padded *up* to a planned size,
    /// as serving systems do with batch buckets (the same dispatch rule
    /// [`crate::Session`] uses). Oversized inputs fall back to the
    /// largest plan (a server would split such a request).
    pub fn plan_for(&self, observed: u64) -> &ModelPlan {
        self.variants
            .iter()
            .filter(|(k, _)| *k >= observed)
            .min_by_key(|(k, _)| *k)
            .or_else(|| self.variants.iter().max_by_key(|(k, _)| *k))
            .map(|(_, p)| p)
            .expect("at least one variant by construction")
    }

    /// The exact-key plan, if one was built.
    pub fn plan_exact(&self, key: u64) -> Option<&ModelPlan> {
        self.variants
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use crate::planner::Planner;
    use crate::schemes::Scheme;
    use aiga_gpu::DeviceSpec;
    use aiga_nn::zoo;

    #[test]
    fn try_time_under_reports_unprofiled_schemes_as_none() {
        let plan = Planner::new(DeviceSpec::t4()).plan(&zoo::dlrm_mlp_bottom(1));
        let layer = &plan.layers[0];
        assert!(layer.try_time_under(Scheme::GlobalAbft).is_some());
        assert!(layer
            .try_time_under(Scheme::ReplicationTraditional)
            .is_none());
        let err = plan
            .try_fixed_scheme_s(Scheme::ReplicationTraditional)
            .unwrap_err();
        assert_eq!(err.scheme, Scheme::ReplicationTraditional);
        assert!(err.profiled.contains(&Scheme::GlobalAbft));
        let msg = err.to_string();
        assert!(msg.contains("replication-traditional"), "{msg}");
        assert!(msg.contains("Planner::candidates"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "was not profiled")]
    fn time_under_panics_with_a_clear_message() {
        let plan = Planner::new(DeviceSpec::t4()).plan(&zoo::dlrm_mlp_bottom(1));
        plan.layers[0].time_under(Scheme::ThreadLevelTwoSided);
    }
}
