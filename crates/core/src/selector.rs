//! Intensity-guided ABFT (§5.3): per-layer selection between global and
//! thread-level ABFT.
//!
//! Before deployment, every linear layer is profiled under each candidate
//! scheme and the cheapest is chosen — exactly how the paper integrates
//! with pre-deployment optimizers like the CUTLASS profiler. The §7.2
//! analytical alternative skips profiling and picks by comparing the
//! layer's arithmetic intensity against the device's CMR; both modes are
//! implemented and their agreement is itself an experiment.

use crate::cost::{evaluate_layer, SchemeTiming};
use crate::schemes::Scheme;
use aiga_gpu::timing::Calibration;
use aiga_gpu::{Bound, DeviceSpec, GemmShape, Roofline};
use aiga_nn::Model;

/// How the selector chooses a scheme for a layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionMode {
    /// Empirical profiling: pick the scheme with the lowest measured
    /// (here: modeled) execution time — the paper's deployed mode.
    Profiled,
    /// Analytical: thread-level ABFT when the layer's arithmetic
    /// intensity is below the device CMR, global ABFT otherwise (§7.2).
    Analytical,
}

/// The per-layer outcome of intensity-guided selection.
#[derive(Clone, Debug)]
pub struct LayerPlan {
    /// Layer name.
    pub name: String,
    /// Padded GEMM shape.
    pub shape: GemmShape,
    /// FP16 arithmetic intensity of the layer.
    pub intensity: f64,
    /// The scheme intensity-guided ABFT chose.
    pub chosen: Scheme,
    /// Unprotected execution time (seconds).
    pub baseline_s: f64,
    /// Candidate timings (same order as the candidate list).
    pub candidates: Vec<SchemeTiming>,
}

impl LayerPlan {
    /// Time under the chosen scheme.
    pub fn chosen_s(&self) -> f64 {
        self.time_under(self.chosen)
    }

    /// Time under a specific scheme (must be among the candidates).
    pub fn time_under(&self, scheme: Scheme) -> f64 {
        self.candidates
            .iter()
            .find(|t| t.scheme == scheme)
            .map(|t| t.estimate.total_s)
            .unwrap_or_else(|| panic!("{scheme} was not profiled for {}", self.name))
    }
}

/// The whole-model plan produced by intensity-guided ABFT.
#[derive(Clone, Debug)]
pub struct ModelPlan {
    /// Model name.
    pub model: String,
    /// Device it was planned for.
    pub device: DeviceSpec,
    /// Per-layer plans in execution order.
    pub layers: Vec<LayerPlan>,
}

impl ModelPlan {
    /// Plans a model with the paper's default candidates (global +
    /// one-sided thread-level ABFT) in profiled mode.
    pub fn build(model: &Model, device: &DeviceSpec, calib: &Calibration) -> Self {
        Self::build_with(
            model,
            device,
            calib,
            &Scheme::intensity_guided_candidates(),
            SelectionMode::Profiled,
        )
    }

    /// Plans a model with explicit candidates and selection mode.
    pub fn build_with(
        model: &Model,
        device: &DeviceSpec,
        calib: &Calibration,
        candidates: &[Scheme],
        mode: SelectionMode,
    ) -> Self {
        let roofline = Roofline::new(device.clone());
        let layers = model
            .layers
            .iter()
            .map(|layer| {
                let shape = layer.shape.padded_to_mma();
                let (baseline, timings) = evaluate_layer(shape, candidates, device, calib);
                let intensity = layer.arithmetic_intensity();
                let chosen = match mode {
                    SelectionMode::Profiled => {
                        timings
                            .iter()
                            .min_by(|a, b| {
                                a.estimate.total_s.total_cmp(&b.estimate.total_s)
                            })
                            .expect("at least one candidate")
                            .scheme
                    }
                    SelectionMode::Analytical => {
                        match roofline.classify_intensity(intensity) {
                            Bound::MemoryBandwidth => *candidates
                                .iter()
                                .find(|s| s.is_thread_level())
                                .unwrap_or(&candidates[0]),
                            Bound::Compute => *candidates
                                .iter()
                                .find(|s| !s.is_thread_level())
                                .unwrap_or(&candidates[0]),
                        }
                    }
                };
                LayerPlan {
                    name: layer.name.clone(),
                    shape,
                    intensity,
                    chosen,
                    baseline_s: baseline.total_s,
                    candidates: timings,
                }
            })
            .collect();
        ModelPlan {
            model: model.name.clone(),
            device: device.clone(),
            layers,
        }
    }

    /// Total unprotected time (sum of per-layer times, the §6.2
    /// aggregation: layers execute sequentially).
    pub fn baseline_s(&self) -> f64 {
        self.layers.iter().map(|l| l.baseline_s).sum()
    }

    /// Total time with one fixed scheme on every layer.
    pub fn fixed_scheme_s(&self, scheme: Scheme) -> f64 {
        self.layers.iter().map(|l| l.time_under(scheme)).sum()
    }

    /// Total time under intensity-guided selection.
    pub fn intensity_guided_s(&self) -> f64 {
        self.layers.iter().map(|l| l.chosen_s()).sum()
    }

    /// Whole-model percentage overhead of a fixed scheme.
    pub fn fixed_scheme_overhead_pct(&self, scheme: Scheme) -> f64 {
        (self.fixed_scheme_s(scheme) - self.baseline_s()) / self.baseline_s() * 100.0
    }

    /// Whole-model percentage overhead of intensity-guided ABFT.
    pub fn intensity_guided_overhead_pct(&self) -> f64 {
        (self.intensity_guided_s() - self.baseline_s()) / self.baseline_s() * 100.0
    }

    /// How many layers chose a thread-level scheme.
    pub fn thread_level_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.chosen.is_thread_level()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_nn::zoo;

    fn plan(model: &Model) -> ModelPlan {
        ModelPlan::build(model, &DeviceSpec::t4(), &Calibration::default())
    }

    #[test]
    fn intensity_guided_never_loses_to_either_fixed_scheme() {
        // By construction (§6.2): "intensity-guided ABFT, by design,
        // always performs at least as well as global ABFT".
        for model in [
            zoo::resnet50(1, 224, 224),
            zoo::dlrm_mlp_bottom(1),
            zoo::coral(64),
        ] {
            let p = plan(&model);
            let ig = p.intensity_guided_s();
            assert!(ig <= p.fixed_scheme_s(Scheme::GlobalAbft) + 1e-15, "{}", model.name);
            assert!(
                ig <= p.fixed_scheme_s(Scheme::ThreadLevelOneSided) + 1e-15,
                "{}",
                model.name
            );
        }
    }

    #[test]
    fn low_intensity_models_choose_thread_level_everywhere() {
        let p = plan(&zoo::dlrm_mlp_bottom(1));
        assert_eq!(p.thread_level_layer_count(), p.layers.len());
    }

    #[test]
    fn mixed_models_split_their_choices() {
        // ResNet-50 contains both bandwidth- and compute-bound layers
        // (§3.2/Fig. 5), so intensity-guided ABFT should mix schemes.
        let p = plan(&zoo::resnet50(1, zoo::HD.0, zoo::HD.1));
        let thread = p.thread_level_layer_count();
        assert!(thread > 0, "no thread-level layers chosen");
        assert!(thread < p.layers.len(), "no global layers chosen");
    }

    #[test]
    fn profiled_and_analytical_modes_mostly_agree() {
        // §7.2: intensity relative to CMR predicts the winner; the two
        // modes should coincide on a large majority of layers.
        let model = zoo::resnet50(1, zoo::HD.0, zoo::HD.1);
        let dev = DeviceSpec::t4();
        let calib = Calibration::default();
        let profiled = ModelPlan::build(&model, &dev, &calib);
        let analytical = ModelPlan::build_with(
            &model,
            &dev,
            &calib,
            &Scheme::intensity_guided_candidates(),
            SelectionMode::Analytical,
        );
        let agree = profiled
            .layers
            .iter()
            .zip(&analytical.layers)
            .filter(|(a, b)| a.chosen == b.chosen)
            .count();
        let frac = agree as f64 / profiled.layers.len() as f64;
        // Launch-overhead effects make small layers profile differently
        // than the pure roofline prediction, so agreement is high but not
        // total — the same reason the paper prefers empirical profiling.
        assert!(frac >= 0.6, "agreement only {frac:.2}");
    }

    #[test]
    fn overhead_percentages_are_consistent() {
        let p = plan(&zoo::dlrm_mlp_top(1));
        let ig = p.intensity_guided_overhead_pct();
        let glob = p.fixed_scheme_overhead_pct(Scheme::GlobalAbft);
        assert!(ig >= 0.0 && glob >= ig, "ig {ig}%, global {glob}%");
    }
}

/// §7.3: input-size-dependent deployment.
///
/// Arithmetic intensity — and therefore the per-layer ABFT selection —
/// depends on the input size (batch, resolution). Deployments that
/// expect several input sizes build one [`ModelPlan`] per size ahead of
/// time and dispatch among them at inference time; this is cheap because
/// planning is a pre-deployment step.
#[derive(Clone, Debug)]
pub struct DeploymentPlan {
    /// `(input-size key, plan)` pairs, e.g. keyed by batch size.
    variants: Vec<(u64, ModelPlan)>,
}

impl DeploymentPlan {
    /// Builds one plan per input-size key using `instantiate` to produce
    /// the model for that key (e.g. `|b| zoo::dlrm_mlp_bottom(b)`).
    pub fn build(
        keys: &[u64],
        instantiate: impl Fn(u64) -> aiga_nn::Model,
        device: &DeviceSpec,
        calib: &Calibration,
    ) -> Self {
        assert!(!keys.is_empty(), "at least one input size required");
        let variants = keys
            .iter()
            .map(|&k| (k, ModelPlan::build(&instantiate(k), device, calib)))
            .collect();
        DeploymentPlan { variants }
    }

    /// Number of pre-planned input sizes.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// True if no variants exist (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// The plan for the largest pre-planned key that does not exceed the
    /// observed input size (inputs are padded up to a planned size, as
    /// serving systems do with batch buckets); falls back to the smallest
    /// plan for undersized inputs.
    pub fn plan_for(&self, observed: u64) -> &ModelPlan {
        self.variants
            .iter()
            .filter(|(k, _)| *k <= observed)
            .max_by_key(|(k, _)| *k)
            .map(|(_, p)| p)
            .unwrap_or(&self.variants[0].1)
    }

    /// The exact-key plan, if one was built.
    pub fn plan_exact(&self, key: u64) -> Option<&ModelPlan> {
        self.variants.iter().find(|(k, _)| *k == key).map(|(_, p)| p)
    }
}

#[cfg(test)]
mod deployment_tests {
    use super::*;
    use aiga_nn::zoo;

    fn plans() -> DeploymentPlan {
        DeploymentPlan::build(
            &[1, 256, 2048],
            zoo::dlrm_mlp_top,
            &DeviceSpec::t4(),
            &Calibration::default(),
        )
    }

    #[test]
    fn selection_changes_with_input_size() {
        // §7.3 / §6.4.2: MLP-Top flips from all-thread-level at batch 1
        // to (partly) global at batch 2048 as intensity rises past the
        // crossover.
        let d = plans();
        let small = d.plan_exact(1).unwrap();
        let large = d.plan_exact(2048).unwrap();
        assert_eq!(small.thread_level_layer_count(), small.layers.len());
        assert!(
            large.thread_level_layer_count() < large.layers.len(),
            "batch 2048 should move some layers to global ABFT"
        );
    }

    #[test]
    fn dispatch_picks_the_bucket_below_the_observed_size() {
        let d = plans();
        // Observed batch 300 uses the 256 bucket; 100000 uses 2048;
        // undersized inputs fall back to the smallest plan.
        assert_eq!(
            d.plan_for(300).layers[0].shape.m,
            d.plan_exact(256).unwrap().layers[0].shape.m
        );
        assert_eq!(
            d.plan_for(100_000).layers[0].shape.m,
            d.plan_exact(2048).unwrap().layers[0].shape.m
        );
        assert_eq!(
            d.plan_for(0).layers[0].shape.m,
            d.plan_exact(1).unwrap().layers[0].shape.m
        );
    }

    #[test]
    fn every_variant_remains_optimal_per_layer() {
        let d = plans();
        for (_, plan) in &d.variants {
            assert!(plan.intensity_guided_s() <= plan.fixed_scheme_s(Scheme::GlobalAbft) + 1e-15);
        }
    }
}
