//! Floating-point-aware checksum comparison.
//!
//! ABFT checks compare two differently-rounded computations of the same
//! exact quantity (a checksum dot product versus an output summation).
//! In FP16/FP32 they will almost never be bit-equal, so every check needs
//! a threshold. Too tight → false positives on rounding noise; too loose
//! → small faults slip through (silent data corruption).
//!
//! We provide a running *analytical* bound: schemes accumulate the sum of
//! absolute products `Σ |a|·|b|` alongside their checksums, and the
//! threshold is a first-order forward-error bound scaled by that
//! magnitude. Faults below the bound are undetectable *by construction*
//! for any threshold-based checker — the fault-coverage experiment
//! reports them separately.

/// Unit roundoff of binary16 (half of machine epsilon `2^-10`).
pub const U16: f64 = 4.8828125e-4; // 2^-11
/// Unit roundoff of binary32.
pub const U32: f64 = 5.960464477539063e-8; // 2^-24

/// Absolute noise floor added to every threshold, covering subnormal
/// flushes and the engine's pairwise-step accumulation.
pub const ABS_FLOOR: f64 = 1e-6;

/// How a checksum comparison decides "faulty".
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Tolerance {
    /// First-order analytical bound: `threshold = (n16·u16 + n32·u32) ·
    /// magnitude + floor`, where `n16`/`n32` count FP16/FP32 rounding
    /// steps and `magnitude` is the running `Σ|a|·|b|`.
    #[default]
    Analytical,
    /// Fixed relative threshold against the magnitude (what a production
    /// kernel without magnitude tracking would use; Hari et al. use an
    /// empirically-chosen constant).
    Relative(f64),
    /// Exact comparison (only sound when both sides compute bit-identical
    /// sequences, e.g. traditional replication).
    Exact,
}

impl Tolerance {
    /// Threshold for a comparison whose two sides involve `rounds16`
    /// FP16-rounded operations and `rounds32` FP32-rounded operations
    /// over data of total absolute magnitude `magnitude`.
    pub fn threshold(self, rounds16: f64, rounds32: f64, magnitude: f64) -> f64 {
        self.threshold_lp(rounds16, U16, rounds32, magnitude)
    }

    /// Generalized threshold: `rounds_lp` low-precision rounding steps at
    /// unit roundoff `u_lp` (the checksum chain's format — see
    /// `aiga_dtype::Dtype::chain_unit`) plus `rounds32` FP32 steps over
    /// magnitude `magnitude`. [`Self::threshold`] is the `u_lp = `[`U16`]
    /// case; an exact chain passes `u_lp = 0`.
    pub fn threshold_lp(self, rounds_lp: f64, u_lp: f64, rounds32: f64, magnitude: f64) -> f64 {
        match self {
            Tolerance::Analytical => (rounds_lp * u_lp + rounds32 * U32) * magnitude + ABS_FLOOR,
            Tolerance::Relative(rel) => rel * magnitude + ABS_FLOOR,
            Tolerance::Exact => 0.0,
        }
    }

    /// Compares a residual against the bound; `true` means "fault".
    pub fn flags(self, residual: f64, rounds16: f64, rounds32: f64, magnitude: f64) -> bool {
        residual > self.threshold(rounds16, rounds32, magnitude)
    }

    /// [`Self::flags`] at an explicit low-precision unit roundoff.
    pub fn flags_lp(
        self,
        residual: f64,
        rounds_lp: f64,
        u_lp: f64,
        rounds32: f64,
        magnitude: f64,
    ) -> bool {
        residual > self.threshold_lp(rounds_lp, u_lp, rounds32, magnitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_threshold_scales_with_magnitude_and_rounds() {
        let t = Tolerance::Analytical;
        let a = t.threshold(4.0, 64.0, 100.0);
        assert!(t.threshold(8.0, 64.0, 100.0) > a);
        assert!(t.threshold(4.0, 64.0, 200.0) > a);
        assert!(a > ABS_FLOOR);
    }

    #[test]
    fn exact_tolerance_flags_any_difference() {
        assert!(Tolerance::Exact.flags(f64::MIN_POSITIVE, 0.0, 0.0, 1e9));
        assert!(!Tolerance::Exact.flags(0.0, 0.0, 0.0, 1e9));
    }

    #[test]
    fn relative_tolerance_ignores_round_counts() {
        let t = Tolerance::Relative(1e-3);
        assert_eq!(t.threshold(1.0, 1.0, 50.0), t.threshold(999.0, 999.0, 50.0));
        assert!((t.threshold(0.0, 0.0, 50.0) - (0.05 + ABS_FLOOR)).abs() < 1e-15);
    }

    #[test]
    fn unit_roundoffs_are_the_ieee_values() {
        assert_eq!(U16, 2.0_f64.powi(-11));
        assert_eq!(U32, 2.0_f64.powi(-24));
    }
}
