//! Plan serialization: `ModelPlan` ⇄ JSON.
//!
//! Plans are pre-deployment artifacts (§5.3: profiling happens once,
//! offline), so production flows want to persist them and ship them to
//! serving hosts. This module gives [`ModelPlan`] a stable JSON encoding
//! built on `aiga-util`'s round-trip-safe writer: every float is restored
//! bit-exactly, schemes are encoded as their stable kebab-case ids
//! (`Scheme`'s `Display`/`FromStr` pair), and devices by name (resolved
//! against the known device table on load).

use crate::cost::SchemeTiming;
use crate::schemes::Scheme;
use crate::selector::{LayerPlan, ModelPlan};
use aiga_gpu::occupancy::Occupancy;
use aiga_gpu::timing::TimeEstimate;
use aiga_gpu::{Bound, DeviceSpec, GemmShape};
use aiga_util::json::{Json, JsonError};

/// Error loading a serialized plan.
#[derive(Clone, Debug)]
pub struct PlanIoError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PlanIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan load failed: {}", self.message)
    }
}

impl std::error::Error for PlanIoError {}

impl From<JsonError> for PlanIoError {
    fn from(e: JsonError) -> Self {
        PlanIoError {
            message: e.to_string(),
        }
    }
}

fn bad(message: impl Into<String>) -> PlanIoError {
    PlanIoError {
        message: message.into(),
    }
}

impl ModelPlan {
    /// Serializes the plan to compact JSON.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("version", Json::num(1.0)),
            ("model", Json::str(&self.model)),
            ("device", Json::str(self.device.name)),
            (
                "layers",
                Json::Arr(self.layers.iter().map(layer_to_json).collect()),
            ),
        ])
        .render()
    }

    /// Loads a plan serialized by [`Self::to_json`]. The device is
    /// resolved by name against [`DeviceSpec::all`]; plans for unknown
    /// devices are rejected.
    pub fn from_json(text: &str) -> Result<ModelPlan, PlanIoError> {
        let doc = Json::parse(text)?;
        let version = doc.field("version")?.as_u64()?;
        if version != 1 {
            return Err(bad(format!("unsupported plan version {version}")));
        }
        let device_name = doc.field("device")?.as_str()?;
        let device = DeviceSpec::all()
            .into_iter()
            .find(|d| d.name == device_name)
            .ok_or_else(|| bad(format!("unknown device `{device_name}`")))?;
        let layers = doc
            .field("layers")?
            .as_arr()?
            .iter()
            .map(layer_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ModelPlan {
            model: doc.field("model")?.as_str()?.to_string(),
            device,
            layers,
        })
    }
}

fn layer_to_json(l: &LayerPlan) -> Json {
    Json::obj([
        ("name", Json::str(&l.name)),
        ("shape", shape_to_json(l.shape)),
        ("intensity", Json::num(l.intensity)),
        ("chosen", Json::str(l.chosen.to_string())),
        ("baseline_s", Json::num(l.baseline_s)),
        (
            "candidates",
            Json::Arr(l.candidates.iter().map(timing_to_json).collect()),
        ),
    ])
}

fn layer_from_json(j: &Json) -> Result<LayerPlan, PlanIoError> {
    Ok(LayerPlan {
        name: j.field("name")?.as_str()?.to_string(),
        shape: shape_from_json(j.field("shape")?)?,
        intensity: j.field("intensity")?.as_f64()?,
        chosen: scheme_from_json(j.field("chosen")?)?,
        baseline_s: j.field("baseline_s")?.as_f64()?,
        candidates: j
            .field("candidates")?
            .as_arr()?
            .iter()
            .map(timing_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn scheme_from_json(j: &Json) -> Result<Scheme, PlanIoError> {
    j.as_str()?
        .parse::<Scheme>()
        .map_err(|e| bad(e.to_string()))
}

fn shape_to_json(s: GemmShape) -> Json {
    Json::obj([
        ("m", Json::num(s.m as f64)),
        ("n", Json::num(s.n as f64)),
        ("k", Json::num(s.k as f64)),
    ])
}

fn shape_from_json(j: &Json) -> Result<GemmShape, PlanIoError> {
    Ok(GemmShape::new(
        j.field("m")?.as_u64()?,
        j.field("n")?.as_u64()?,
        j.field("k")?.as_u64()?,
    ))
}

fn timing_to_json(t: &SchemeTiming) -> Json {
    Json::obj([
        ("scheme", Json::str(t.scheme.to_string())),
        ("estimate", estimate_to_json(&t.estimate)),
        ("overhead_pct", Json::num(t.overhead_pct)),
    ])
}

fn timing_from_json(j: &Json) -> Result<SchemeTiming, PlanIoError> {
    Ok(SchemeTiming {
        scheme: scheme_from_json(j.field("scheme")?)?,
        estimate: estimate_from_json(j.field("estimate")?)?,
        overhead_pct: j.field("overhead_pct")?.as_f64()?,
    })
}

fn estimate_to_json(e: &TimeEstimate) -> Json {
    Json::obj([
        ("total_s", Json::num(e.total_s)),
        ("t_mem_s", Json::num(e.t_mem_s)),
        ("t_tc_s", Json::num(e.t_tc_s)),
        ("t_alu_s", Json::num(e.t_alu_s)),
        ("t_aux_s", Json::num(e.t_aux_s)),
        (
            "bound",
            Json::str(match e.bound {
                Bound::Compute => "compute",
                Bound::MemoryBandwidth => "memory",
            }),
        ),
        ("occupancy", occupancy_to_json(&e.occupancy)),
    ])
}

fn estimate_from_json(j: &Json) -> Result<TimeEstimate, PlanIoError> {
    Ok(TimeEstimate {
        total_s: j.field("total_s")?.as_f64()?,
        t_mem_s: j.field("t_mem_s")?.as_f64()?,
        t_tc_s: j.field("t_tc_s")?.as_f64()?,
        t_alu_s: j.field("t_alu_s")?.as_f64()?,
        t_aux_s: j.field("t_aux_s")?.as_f64()?,
        bound: match j.field("bound")?.as_str()? {
            "compute" => Bound::Compute,
            "memory" => Bound::MemoryBandwidth,
            other => return Err(bad(format!("unknown bound `{other}`"))),
        },
        occupancy: occupancy_from_json(j.field("occupancy")?)?,
    })
}

fn occupancy_to_json(o: &Occupancy) -> Json {
    Json::obj([
        ("blocks_per_sm", Json::num(o.blocks_per_sm as f64)),
        ("warps_per_sm", Json::num(o.warps_per_sm as f64)),
        ("fraction", Json::num(o.fraction)),
        ("regs_per_thread", Json::num(o.regs_per_thread as f64)),
        (
            "spilled_regs_per_thread",
            Json::num(o.spilled_regs_per_thread as f64),
        ),
    ])
}

fn occupancy_from_json(j: &Json) -> Result<Occupancy, PlanIoError> {
    Ok(Occupancy {
        blocks_per_sm: j.field("blocks_per_sm")?.as_u64()?,
        warps_per_sm: j.field("warps_per_sm")?.as_u64()?,
        fraction: j.field("fraction")?.as_f64()?,
        regs_per_thread: j.field("regs_per_thread")?.as_u64()?,
        spilled_regs_per_thread: j.field("spilled_regs_per_thread")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use aiga_nn::zoo;

    #[test]
    fn plans_round_trip_bit_exactly() {
        let plan = Planner::new(DeviceSpec::t4()).plan(&zoo::dlrm_mlp_top(256));
        let text = plan.to_json();
        let back = ModelPlan::from_json(&text).expect("reload");
        assert_eq!(back.model, plan.model);
        assert_eq!(back.device, plan.device);
        assert_eq!(back.layers.len(), plan.layers.len());
        for (a, b) in plan.layers.iter().zip(&back.layers) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.shape, b.shape);
            assert_eq!(a.chosen, b.chosen);
            assert_eq!(a.baseline_s.to_bits(), b.baseline_s.to_bits());
            assert_eq!(a.intensity.to_bits(), b.intensity.to_bits());
            for (x, y) in a.candidates.iter().zip(&b.candidates) {
                assert_eq!(x.scheme, y.scheme);
                assert_eq!(x.estimate, y.estimate);
                assert_eq!(x.overhead_pct.to_bits(), y.overhead_pct.to_bits());
            }
        }
        // Aggregations survive unchanged.
        assert_eq!(
            plan.intensity_guided_s().to_bits(),
            back.intensity_guided_s().to_bits()
        );
    }

    #[test]
    fn extension_scheme_ids_survive_the_round_trip() {
        let plan = Planner::new(DeviceSpec::t4())
            .candidates([Scheme::GlobalAbft, Scheme::MultiChecksum(3)])
            .plan(&zoo::dlrm_mlp_bottom(2048));
        let back = ModelPlan::from_json(&plan.to_json()).unwrap();
        assert!(back
            .layers
            .iter()
            .all(|l| l.try_time_under(Scheme::MultiChecksum(3)).is_some()));
    }

    #[test]
    fn unknown_devices_and_versions_are_rejected() {
        let plan = Planner::new(DeviceSpec::t4()).plan(&zoo::dlrm_mlp_bottom(1));
        let text = plan.to_json().replace("NVIDIA T4", "TPU v9");
        assert!(ModelPlan::from_json(&text).is_err());
        let text = plan.to_json().replace("\"version\":1", "\"version\":99");
        assert!(ModelPlan::from_json(&text).is_err());
    }

    #[test]
    fn garbage_fails_gracefully() {
        assert!(ModelPlan::from_json("not json").is_err());
        assert!(ModelPlan::from_json("{}").is_err());
    }
}
