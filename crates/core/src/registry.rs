//! The scheme registry: the single place where [`Scheme`] ids meet their
//! [`SchemeKernel`] implementations.
//!
//! Everything downstream — cost evaluation, the [`crate::Planner`], the
//! protected pipeline, the serving [`crate::Session`] — resolves schemes
//! through a registry instead of matching on the enum, so adding a scheme
//! is: implement [`SchemeKernel`], register it, list it as a candidate.
//! The built-in registry carries the paper's five schemes, the
//! unprotected baseline, and 2- and 3-round multi-checksum extensions.

use crate::kernel::{builtin_kernels, MultiChecksumKernel, SchemeKernel};
use crate::schemes::Scheme;
use std::sync::{Arc, OnceLock};

/// A set of scheme kernels keyed by [`Scheme`] id.
#[derive(Clone, Default)]
pub struct SchemeRegistry {
    kernels: Vec<Arc<dyn SchemeKernel>>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        SchemeRegistry::default()
    }

    /// The built-in registry: unprotected baseline, the paper's five
    /// schemes, and the §2.4 multi-checksum extension at 2 and 3 rounds.
    pub fn builtin() -> Self {
        let mut registry = SchemeRegistry::empty();
        for kernel in builtin_kernels() {
            registry.register(kernel);
        }
        registry.register(Arc::new(MultiChecksumKernel::new(2)));
        registry.register(Arc::new(MultiChecksumKernel::new(3)));
        registry
    }

    /// Registers a kernel, replacing any existing kernel with the same
    /// scheme id. Returns `&mut self` for chaining.
    pub fn register(&mut self, kernel: Arc<dyn SchemeKernel>) -> &mut Self {
        let scheme = kernel.scheme();
        self.kernels.retain(|k| k.scheme() != scheme);
        self.kernels.push(kernel);
        self
    }

    /// Builder-style registration for constructing custom registries.
    pub fn with(mut self, kernel: Arc<dyn SchemeKernel>) -> Self {
        self.register(kernel);
        self
    }

    /// Looks up the kernel for a scheme.
    pub fn get(&self, scheme: Scheme) -> Option<&Arc<dyn SchemeKernel>> {
        self.kernels.iter().find(|k| k.scheme() == scheme)
    }

    /// Looks up the kernel for a scheme, panicking with a clear message
    /// if none is registered.
    pub fn resolve(&self, scheme: Scheme) -> &Arc<dyn SchemeKernel> {
        self.get(scheme).unwrap_or_else(|| {
            panic!(
                "no kernel registered for scheme `{scheme}` (registered: {}); \
                 add one with SchemeRegistry::register",
                self.scheme_list()
            )
        })
    }

    /// All registered scheme ids, in registration order.
    pub fn schemes(&self) -> Vec<Scheme> {
        self.kernels.iter().map(|k| k.scheme()).collect()
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    fn scheme_list(&self) -> String {
        self.schemes()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The process-wide shared built-in registry used by default API entry
/// points (`ProtectedGemm::new`, `ProtectedPipeline::new`, `Planner`).
pub fn shared() -> &'static Arc<SchemeRegistry> {
    static SHARED: OnceLock<Arc<SchemeRegistry>> = OnceLock::new();
    SHARED.get_or_init(|| Arc::new(SchemeRegistry::builtin()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::Matrix;

    #[test]
    fn builtin_covers_baseline_and_all_protected_schemes() {
        let r = SchemeRegistry::builtin();
        assert!(r.get(Scheme::Unprotected).is_some());
        for scheme in Scheme::all_protected() {
            assert!(r.get(scheme).is_some(), "{scheme}");
        }
        assert!(r.get(Scheme::MultiChecksum(2)).is_some());
        assert!(r.get(Scheme::MultiChecksum(7)).is_none());
    }

    #[test]
    fn registering_replaces_by_scheme_id() {
        let mut r = SchemeRegistry::builtin();
        let before = r.len();
        r.register(Arc::new(MultiChecksumKernel::new(2)));
        assert_eq!(r.len(), before, "same id must replace, not append");
        r.register(Arc::new(MultiChecksumKernel::new(4)));
        assert_eq!(r.len(), before + 1);
        assert!(r.get(Scheme::MultiChecksum(4)).is_some());
    }

    #[test]
    fn custom_kernel_plugs_in_without_touching_builtins() {
        let registry = SchemeRegistry::builtin().with(Arc::new(MultiChecksumKernel::new(5)));
        let kernel = registry.resolve(Scheme::MultiChecksum(5));
        let bound = kernel.bind(&Matrix::random(8, 8, 3));
        assert_eq!(bound.scheme(), Scheme::MultiChecksum(5));
    }

    #[test]
    #[should_panic(expected = "no kernel registered")]
    fn resolving_an_unregistered_scheme_panics_clearly() {
        SchemeRegistry::empty().resolve(Scheme::GlobalAbft);
    }

    #[test]
    fn shared_registry_is_stable() {
        let a = shared();
        let b = shared();
        assert!(Arc::ptr_eq(a, b));
        assert!(!a.is_empty());
    }
}
