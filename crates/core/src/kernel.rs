//! The `SchemeKernel` trait: one object per redundancy scheme that owns
//! *both* things a scheme must provide.
//!
//! Every scheme the paper evaluates has two faces:
//!
//! 1. an **analytical cost profile** — how Table 1's per-thread work
//!    (redundant MMAs, checksum ops, registers) or §2.5's fused epilogue
//!    and reduce-and-compare kernel land on a [`KernelProfile`] for the
//!    timing model, and
//! 2. a **functional protected execution** — how the scheme actually runs
//!    a GEMM on the simulated engine and reaches a fault [`Verdict`].
//!
//! The seed code dispatched both faces through per-scheme `match` blocks
//! duplicated across `cost.rs`, `protected.rs`, and `pipeline.rs`. Here
//! they are unified: a [`SchemeKernel`] supplies the cost side directly
//! and [`SchemeKernel::bind`]s the layer's weights once (the offline step
//! — global ABFT's weight checksums are computed here and reused for
//! every request) to produce a [`BoundKernel`] that serves requests.
//! New schemes implement this trait and register with
//! [`crate::registry::SchemeRegistry`]; the selector, pipeline, and
//! serving session never enumerate schemes again.

use crate::schemes::{
    GlobalAbft, MultiChecksumAbft, OneSidedThreadAbft, ReplicationSingleAcc,
    ReplicationTraditional, Scheme, TwoSidedThreadAbft,
};
use aiga_gpu::engine::{
    FaultPlan, GemmEngine, GemmOutput, Matrix, NoScheme, ThreadLocalScheme, Workspace,
};
use aiga_gpu::timing::{AuxKernel, Calibration, KernelProfile};

/// Tensor-Core FLOPs represented by one per-thread MMA participation.
pub const FLOPS_PER_MMA_PARTICIPATION: u64 = 8;
/// ALU FLOP-equivalents charged per checksum (HADD2-class) operation.
/// One packed HADD2 is a single issue slot and partially dual-issues into
/// the gaps of the Tensor-Core pipeline, so it is charged one
/// flop-equivalent of the packed-math peak rather than two (calibrated —
/// see EXPERIMENTS.md §Fig. 12).
pub const FLOPS_PER_CHECKSUM_OP: u64 = 1;

/// Where a localizing scheme pinned a detected fault.
///
/// Each checksum scheme localizes at the granularity its redundancy
/// affords: a thread-level detection names the lane whose `Mt × Nt`
/// fragment is implicated; global ABFT's per-column residual comparison
/// names one output column; the multi-checksum round-residual ratio
/// names one output row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSite {
    /// A simulated lane flagged; every cell of its fragment is suspect.
    Lane {
        /// Threadblock coordinates.
        block: (u64, u64),
        /// Warp index within the block.
        warp: u64,
        /// Lane within the warp.
        lane: usize,
    },
    /// One output column implicated by the kernel-level checksum.
    Column {
        /// Global output column index.
        col: usize,
    },
    /// One output row implicated by the weighted-checksum ratio.
    Row {
        /// Global output row index.
        row: usize,
    },
}

/// Outcome of a protected GEMM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// No fault flagged.
    Clean,
    /// A fault was flagged with the given residual and threshold.
    Detected {
        /// Check residual.
        residual: f64,
        /// Threshold it exceeded.
        threshold: f64,
    },
    /// A fault was flagged, localized, and repaired in place — the
    /// output in the workspace is byte-equal to a clean run.
    Corrected {
        /// Residual of the original detection.
        residual: f64,
        /// Threshold it exceeded.
        threshold: f64,
        /// Where the fault was localized.
        site: FaultSite,
        /// True when the repair came from a replication majority vote
        /// rather than a checksum-guided recompute.
        vote: bool,
    },
}

impl Verdict {
    /// True if no fault was flagged.
    pub fn is_clean(self) -> bool {
        matches!(self, Verdict::Clean)
    }

    /// True if a fault was flagged and **not** repaired.
    pub fn is_detected(self) -> bool {
        matches!(self, Verdict::Detected { .. })
    }

    /// True if a fault was flagged and repaired in place.
    pub fn is_corrected(self) -> bool {
        matches!(self, Verdict::Corrected { .. })
    }

    /// True if a fault was flagged at all (detected or corrected).
    pub fn fault_flagged(self) -> bool {
        !self.is_clean()
    }
}

/// Report of one protected GEMM run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The detection verdict.
    pub verdict: Verdict,
    /// The (possibly corrupted) FP32 output. Thread-level schemes also
    /// leave their per-thread detections in `output.detections`.
    pub output: GemmOutput,
}

/// One redundancy scheme, unifying its analytical cost profile and its
/// functional protected execution.
pub trait SchemeKernel: Send + Sync {
    /// The scheme id this kernel implements.
    fn scheme(&self) -> Scheme;

    /// Adds the scheme's costs to a baseline kernel profile (Table 1
    /// scaled by the tiling, or §2.5's epilogue + auxiliary kernel).
    fn apply_cost(&self, profile: &mut KernelProfile, calib: &Calibration);

    /// Performs the scheme's offline preparation against a layer's
    /// weights (`B` of `C = A·B`) — e.g. global ABFT's weight checksums —
    /// and returns an executor bound to those weights.
    fn bind(&self, weights: &Matrix) -> Box<dyn BoundKernel>;
}

/// A scheme bound to one layer's weights, ready to serve requests.
///
/// The execution contract is workspace-threaded: [`Self::run_into`] is
/// the required hot-path entry — the caller supplies a [`Workspace`],
/// the kernel executes into it (output readable via
/// [`Workspace::output`]) and returns only the verdict, allocating
/// nothing once the workspace is warm. [`Self::run`] is the allocating
/// convenience that wraps a throwaway workspace and returns an owned
/// [`RunReport`].
pub trait BoundKernel: Send + Sync {
    /// The scheme id.
    fn scheme(&self) -> Scheme;

    /// The weights this kernel was bound to.
    fn weights(&self) -> &Matrix;

    /// Runs `activations · weights` on `engine` under this scheme,
    /// injecting `faults`, entirely inside `ws`. The (possibly
    /// corrupted) output — including per-thread detections for
    /// thread-level schemes — is left in `ws` for the caller to read;
    /// the returned [`Verdict`] is the scheme's overall judgement.
    fn run_into(
        &self,
        engine: &GemmEngine,
        activations: &Matrix,
        faults: &[FaultPlan],
        ws: &mut Workspace,
    ) -> Verdict;

    /// Allocating convenience over [`Self::run_into`]: runs in a fresh
    /// workspace and returns an owned report. The built-in kernels
    /// override this with the engine's block-parallel path
    /// (byte-identical output); the default serves custom kernels that
    /// only implement `run_into`.
    fn run(&self, engine: &GemmEngine, activations: &Matrix, faults: &[FaultPlan]) -> RunReport {
        let mut ws = Workspace::new();
        let verdict = self.run_into(engine, activations, faults, &mut ws);
        RunReport {
            verdict,
            output: ws.take_output(),
        }
    }

    /// Attempts to localize and repair the fault behind a `Detected`
    /// verdict, recomputing only the implicated cells of the output
    /// still sitting in `ws` (the operand panels from the run are still
    /// staged there). On success returns [`Verdict::Corrected`] and the
    /// workspace output is byte-equal to a clean run; schemes that
    /// cannot localize — and repairs that fail re-verification — return
    /// the verdict unchanged. Allocation-free once the workspace is
    /// warm.
    ///
    /// Must be called directly after [`Self::run_into`] on the same
    /// workspace, with the same `activations`.
    fn correct_into(
        &self,
        _engine: &GemmEngine,
        _activations: &Matrix,
        _ws: &mut Workspace,
        verdict: Verdict,
    ) -> Verdict {
        verdict
    }

    /// [`Self::run_into`] followed by [`Self::correct_into`] when the
    /// run flags a fault — the one-call recovery entry point.
    fn run_corrected_into(
        &self,
        engine: &GemmEngine,
        activations: &Matrix,
        faults: &[FaultPlan],
        ws: &mut Workspace,
    ) -> Verdict {
        let verdict = self.run_into(engine, activations, faults, ws);
        if verdict.is_detected() {
            self.correct_into(engine, activations, ws, verdict)
        } else {
            verdict
        }
    }
}

/// Table-1 cost application shared by every thread-level scheme.
fn apply_thread_level_cost(scheme: Scheme, p: &mut KernelProfile, calib: &Calibration) {
    let tiling = p.tiling;
    let steps = p.total_thread_steps();
    p.tc_flops +=
        steps * (scheme.extra_mmas_per_step(&tiling) * FLOPS_PER_MMA_PARTICIPATION) as f64;
    p.alu_ops += steps * (scheme.checksum_ops_per_step(&tiling) * FLOPS_PER_CHECKSUM_OP) as f64;
    p.extra_regs_per_thread = scheme.extra_regs(&tiling);
    // The thread-local final comparison lengthens the kernel tail.
    p.tail_s = calib.thread_check_tail_s;
}

/// §2.5 epilogue + reduce-and-compare cost shared by global ABFT and its
/// multi-checksum extension (`rounds` independent checksum rounds; plain
/// global ABFT is `rounds = 1`).
fn apply_global_cost(rounds: u64, p: &mut KernelProfile) {
    let (m, n, k) = (p.shape.m as f64, p.shape.n as f64, p.shape.k as f64);
    let blocks = p.tiling.total_blocks(p.shape) as f64;
    let r = rounds as f64;
    // Fused epilogues (§2.5 steps 2 and 4): the output summation (one add
    // per output element, M·N) and the activation checksum over this
    // layer's lowered input (M·K adds — for convolutions the im2col
    // multiplicity makes this the larger term; in the NN flow it is
    // produced by the previous layer's epilogue, which is
    // aggregate-equivalent per layer). Each extra checksum round repeats
    // both with different row weights.
    p.alu_ops += r * (m * n + m * k);
    // Stores of the per-block partial sums and the checksum row(s).
    p.dram_bytes += r * 4.0 * (n + blocks);
    // The separate reduce-and-compare kernel (step 5): dot the K-length
    // checksums and reduce the per-block partials, once per round (the
    // rounds share one launch, as a production kernel would batch them).
    p.aux_kernels.push(AuxKernel {
        name: if rounds == 1 {
            "global-abft reduce+compare"
        } else {
            "multi-checksum reduce+compare"
        },
        alu_flops: r * (2.0 * k + blocks),
        dram_bytes: r * 4.0 * (2.0 * k + blocks),
    });
}

fn verdict_from_detections(output: &GemmOutput) -> Verdict {
    match output.detections.first() {
        Some(d) => Verdict::Detected {
            residual: d.residual,
            threshold: d.threshold,
        },
        None => Verdict::Clean,
    }
}

// ---------------------------------------------------------------------
// Unprotected baseline
// ---------------------------------------------------------------------

/// The `To` baseline of §6.2: no redundancy, always-clean verdicts.
pub struct UnprotectedKernel;

impl SchemeKernel for UnprotectedKernel {
    fn scheme(&self) -> Scheme {
        Scheme::Unprotected
    }

    fn apply_cost(&self, _profile: &mut KernelProfile, _calib: &Calibration) {}

    fn bind(&self, weights: &Matrix) -> Box<dyn BoundKernel> {
        Box::new(UnprotectedBound {
            weights: weights.clone(),
        })
    }
}

struct UnprotectedBound {
    weights: Matrix,
}

impl BoundKernel for UnprotectedBound {
    fn scheme(&self) -> Scheme {
        Scheme::Unprotected
    }

    fn weights(&self) -> &Matrix {
        &self.weights
    }

    fn run_into(
        &self,
        engine: &GemmEngine,
        activations: &Matrix,
        faults: &[FaultPlan],
        ws: &mut Workspace,
    ) -> Verdict {
        engine.run_multi_into(activations, &self.weights, || NoScheme, faults, ws);
        Verdict::Clean
    }

    fn run(&self, engine: &GemmEngine, activations: &Matrix, faults: &[FaultPlan]) -> RunReport {
        let output = engine.run_multi(activations, &self.weights, || NoScheme, faults);
        RunReport {
            verdict: Verdict::Clean,
            output,
        }
    }
}

// ---------------------------------------------------------------------
// Global (kernel-level) ABFT
// ---------------------------------------------------------------------

/// Kernel-level ABFT per Hari et al. (§2.5).
pub struct GlobalKernel;

impl SchemeKernel for GlobalKernel {
    fn scheme(&self) -> Scheme {
        Scheme::GlobalAbft
    }

    fn apply_cost(&self, profile: &mut KernelProfile, _calib: &Calibration) {
        apply_global_cost(1, profile);
    }

    fn bind(&self, weights: &Matrix) -> Box<dyn BoundKernel> {
        Box::new(GlobalBound {
            abft: GlobalAbft::prepare(weights),
            weights: weights.clone(),
        })
    }
}

struct GlobalBound {
    abft: GlobalAbft,
    weights: Matrix,
}

impl BoundKernel for GlobalBound {
    fn scheme(&self) -> Scheme {
        Scheme::GlobalAbft
    }

    fn weights(&self) -> &Matrix {
        &self.weights
    }

    fn run_into(
        &self,
        engine: &GemmEngine,
        activations: &Matrix,
        faults: &[FaultPlan],
        ws: &mut Workspace,
    ) -> Verdict {
        engine.run_multi_into(activations, &self.weights, || NoScheme, faults, ws);
        // The deferred reduce-and-compare (§2.5 step 5) runs off the
        // workspace's checksum scratch — no per-request allocation.
        let (output, check) = ws.output_and_check();
        let v = self.abft.verify_with(activations, output, check);
        verdict_from_global(v)
    }

    fn run(&self, engine: &GemmEngine, activations: &Matrix, faults: &[FaultPlan]) -> RunReport {
        let output = engine.run_multi(activations, &self.weights, || NoScheme, faults);
        let verdict = verdict_from_global(self.abft.verify(activations, &output));
        RunReport { verdict, output }
    }

    /// Column localization: the weight checksum gives the *expected*
    /// column sum `Σ_k chk(A)[k]·B[k][j]` for every output column; the
    /// column whose observed sum deviates most is the faulted one (a
    /// single corrupted cell perturbs exactly one column sum by δ).
    /// Recompute that column, then re-verify the whole layer — a
    /// mislocalized repair rewrites identical bits and fails the
    /// re-check, so the original verdict survives.
    fn correct_into(
        &self,
        _engine: &GemmEngine,
        activations: &Matrix,
        ws: &mut Workspace,
        verdict: Verdict,
    ) -> Verdict {
        let Verdict::Detected {
            residual,
            threshold,
        } = verdict
        else {
            return verdict;
        };
        let col = {
            let (output, check) = ws.output_and_check();
            GlobalAbft::activation_checksum_into(activations, check);
            let mut best = 0usize;
            let mut best_diff = f64::NEG_INFINITY;
            for j in 0..output.n {
                let mut expected = 0.0f64;
                for (k, &chk) in check.chk.iter().enumerate() {
                    expected += chk as f64 * self.weights.get_f64(k, j);
                }
                let mut observed = 0.0f64;
                for i in 0..output.m {
                    observed += output.get(i, j) as f64;
                }
                let diff = (expected - observed).abs();
                if diff > best_diff {
                    best_diff = diff;
                    best = j;
                }
            }
            best
        };
        ws.recompute_col(col);
        let (output, check) = ws.output_and_check();
        if self
            .abft
            .verify_with(activations, output, check)
            .fault_detected
        {
            verdict
        } else {
            Verdict::Corrected {
                residual,
                threshold,
                site: FaultSite::Column { col },
                vote: false,
            }
        }
    }
}

fn verdict_from_global(v: crate::schemes::GlobalVerdict) -> Verdict {
    if v.fault_detected {
        Verdict::Detected {
            residual: v.residual,
            threshold: v.threshold,
        }
    } else {
        Verdict::Clean
    }
}

// ---------------------------------------------------------------------
// Thread-level schemes (one generic kernel over `ThreadLocalScheme`)
// ---------------------------------------------------------------------

/// Adapter turning any [`ThreadLocalScheme`] factory into a
/// [`SchemeKernel`]: the engine runs the scheme inside every simulated
/// thread and the verdict comes from the threads' own final checks.
pub struct ThreadKernel<S: ThreadLocalScheme + 'static> {
    scheme: Scheme,
    make: fn() -> S,
}

impl<S: ThreadLocalScheme + 'static> ThreadKernel<S> {
    /// Wraps a thread-local scheme constructor under a scheme id.
    pub fn new(scheme: Scheme, make: fn() -> S) -> Self {
        ThreadKernel { scheme, make }
    }
}

impl<S: ThreadLocalScheme + 'static> SchemeKernel for ThreadKernel<S> {
    fn scheme(&self) -> Scheme {
        self.scheme
    }

    fn apply_cost(&self, profile: &mut KernelProfile, calib: &Calibration) {
        apply_thread_level_cost(self.scheme, profile, calib);
    }

    fn bind(&self, weights: &Matrix) -> Box<dyn BoundKernel> {
        Box::new(ThreadBound {
            scheme: self.scheme,
            make: self.make,
            weights: weights.clone(),
        })
    }
}

struct ThreadBound<S: ThreadLocalScheme + 'static> {
    scheme: Scheme,
    make: fn() -> S,
    weights: Matrix,
}

impl<S: ThreadLocalScheme + 'static> BoundKernel for ThreadBound<S> {
    fn scheme(&self) -> Scheme {
        self.scheme
    }

    fn weights(&self) -> &Matrix {
        &self.weights
    }

    fn run_into(
        &self,
        engine: &GemmEngine,
        activations: &Matrix,
        faults: &[FaultPlan],
        ws: &mut Workspace,
    ) -> Verdict {
        let output = engine.run_multi_into(activations, &self.weights, self.make, faults, ws);
        verdict_from_detections(output)
    }

    fn run(&self, engine: &GemmEngine, activations: &Matrix, faults: &[FaultPlan]) -> RunReport {
        let output = engine.run_multi(activations, &self.weights, self.make, faults);
        RunReport {
            verdict: verdict_from_detections(&output),
            output,
        }
    }

    /// Lane localization: every per-thread detection names the
    /// `(block, warp, lane)` whose fragment is implicated, so repair
    /// recomputes exactly those `Mt × Nt` cells from the staged panels.
    /// For the replication schemes this is the majority-vote resolution
    /// — the disagreeing accumulator is simply overwritten with the
    /// recomputed (clean) value instead of merely flagged.
    fn correct_into(
        &self,
        engine: &GemmEngine,
        _activations: &Matrix,
        ws: &mut Workspace,
        verdict: Verdict,
    ) -> Verdict {
        let Verdict::Detected {
            residual,
            threshold,
        } = verdict
        else {
            return verdict;
        };
        if ws.output().detections.is_empty() {
            return verdict;
        }
        let site = {
            let d = &ws.output().detections[0];
            FaultSite::Lane {
                block: d.block,
                warp: d.warp,
                lane: d.lane,
            }
        };
        // Detections live inside the output we are about to repair:
        // copy each lane's coordinates out before mutating cells.
        for i in 0..ws.output().detections.len() {
            let (block, warp, lane) = {
                let d = &ws.output().detections[i];
                (d.block, d.warp, d.lane)
            };
            engine.recompute_lane_into(block, warp, lane, ws);
        }
        ws.output_mut().detections.clear();
        Verdict::Corrected {
            residual,
            threshold,
            site,
            vote: matches!(
                self.scheme,
                Scheme::ReplicationSingleAcc | Scheme::ReplicationTraditional
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Multi-checksum extension (§2.4)
// ---------------------------------------------------------------------

/// The §2.4 multi-checksum extension as a pluggable kernel: `rounds`
/// independent Vandermonde-weighted checksum rounds, detecting up to
/// `rounds` faults in distinct rows. Registering this kernel is all it
/// takes to make `Scheme::MultiChecksum(rounds)` selectable — the
/// planner, pipeline, and session need no changes.
pub struct MultiChecksumKernel {
    rounds: u8,
}

impl MultiChecksumKernel {
    /// Creates a kernel with `rounds ≥ 1` checksum rounds.
    pub fn new(rounds: u8) -> Self {
        assert!(rounds >= 1, "at least one checksum round required");
        MultiChecksumKernel { rounds }
    }
}

impl SchemeKernel for MultiChecksumKernel {
    fn scheme(&self) -> Scheme {
        Scheme::MultiChecksum(self.rounds)
    }

    fn apply_cost(&self, profile: &mut KernelProfile, _calib: &Calibration) {
        apply_global_cost(self.rounds as u64, profile);
    }

    fn bind(&self, weights: &Matrix) -> Box<dyn BoundKernel> {
        Box::new(MultiChecksumBound {
            rounds: self.rounds,
            abft: MultiChecksumAbft::prepare(weights, self.rounds as usize),
            weights: weights.clone(),
        })
    }
}

struct MultiChecksumBound {
    rounds: u8,
    abft: MultiChecksumAbft,
    weights: Matrix,
}

impl BoundKernel for MultiChecksumBound {
    fn scheme(&self) -> Scheme {
        Scheme::MultiChecksum(self.rounds)
    }

    fn weights(&self) -> &Matrix {
        &self.weights
    }

    fn run_into(
        &self,
        engine: &GemmEngine,
        activations: &Matrix,
        faults: &[FaultPlan],
        ws: &mut Workspace,
    ) -> Verdict {
        let output = engine.run_multi_into(activations, &self.weights, || NoScheme, faults, ws);
        // Walk the rounds directly (no collected MultiVerdict) so the
        // hot path honors run_into's zero-allocation contract.
        for r in 0..self.rounds as usize {
            let v = self.abft.verify_round(activations, output, r);
            if v.fault_detected {
                return Verdict::Detected {
                    residual: v.residual,
                    threshold: v.threshold,
                };
            }
        }
        Verdict::Clean
    }

    fn run(&self, engine: &GemmEngine, activations: &Matrix, faults: &[FaultPlan]) -> RunReport {
        let output = engine.run_multi(activations, &self.weights, || NoScheme, faults);
        let v = self.abft.verify(activations, &output);
        let verdict = match v.first_failing_round() {
            Some(round) => Verdict::Detected {
                residual: v.rounds[round].residual,
                threshold: v.rounds[round].threshold,
            },
            None => Verdict::Clean,
        };
        RunReport { verdict, output }
    }

    /// Row localization via the Vandermonde weights: a single fault `δ`
    /// in row `ρ` leaves signed residual `w_r(ρ)·δ = (ρ+1)^r·δ` in
    /// every round, so round 1 over round 0 recovers `ρ+1` exactly.
    /// Needs two rounds; a non-integral ratio (several faulted rows, or
    /// a round-0 cancellation) leaves the verdict unrepaired. Repaired
    /// rows re-verify through every round before the verdict upgrades.
    fn correct_into(
        &self,
        _engine: &GemmEngine,
        activations: &Matrix,
        ws: &mut Workspace,
        verdict: Verdict,
    ) -> Verdict {
        let Verdict::Detected {
            residual,
            threshold,
        } = verdict
        else {
            return verdict;
        };
        if self.rounds < 2 {
            return verdict;
        }
        let row = {
            let output = ws.output();
            let res0 = self.abft.round_residual_signed(activations, output, 0);
            let res1 = self.abft.round_residual_signed(activations, output, 1);
            let ratio = res1 / res0;
            if !ratio.is_finite() || !(0.5..output.m as f64 + 0.5).contains(&ratio) {
                return verdict;
            }
            let row = ratio.round();
            if (ratio - row).abs() > 0.25 {
                return verdict;
            }
            row as usize - 1
        };
        ws.recompute_row(row);
        let output = ws.output();
        for r in 0..self.rounds as usize {
            if self
                .abft
                .verify_round(activations, output, r)
                .fault_detected
            {
                return verdict;
            }
        }
        Verdict::Corrected {
            residual,
            threshold,
            site: FaultSite::Row { row },
            vote: false,
        }
    }
}

/// The standard kernels for the paper's five schemes plus the baseline,
/// in registry order.
pub fn builtin_kernels() -> Vec<std::sync::Arc<dyn SchemeKernel>> {
    vec![
        std::sync::Arc::new(UnprotectedKernel),
        std::sync::Arc::new(GlobalKernel),
        std::sync::Arc::new(ThreadKernel::new(
            Scheme::ThreadLevelOneSided,
            OneSidedThreadAbft::new,
        )),
        std::sync::Arc::new(ThreadKernel::new(
            Scheme::ThreadLevelTwoSided,
            TwoSidedThreadAbft::new,
        )),
        std::sync::Arc::new(ThreadKernel::new(
            Scheme::ReplicationSingleAcc,
            ReplicationSingleAcc::new,
        )),
        std::sync::Arc::new(ThreadKernel::new(
            Scheme::ReplicationTraditional,
            ReplicationTraditional::new,
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::FaultKind;
    use aiga_gpu::GemmShape;

    fn run_scheme(kernel: &dyn SchemeKernel, fault: Option<FaultPlan>) -> RunReport {
        let shape = GemmShape::new(48, 40, 56);
        let a = Matrix::random(48, 56, 11);
        let b = Matrix::random(56, 40, 12);
        let engine = GemmEngine::with_default_tiling(shape);
        let bound = kernel.bind(&b);
        let faults: Vec<FaultPlan> = fault.into_iter().collect();
        bound.run(&engine, &a, &faults)
    }

    #[test]
    fn every_builtin_kernel_reports_its_scheme() {
        for kernel in builtin_kernels() {
            let bound = kernel.bind(&Matrix::random(16, 16, 1));
            assert_eq!(bound.scheme(), kernel.scheme());
            assert_eq!(bound.weights().rows, 16);
        }
    }

    #[test]
    fn builtin_kernels_are_clean_without_faults_and_detect_large_ones() {
        let fault = FaultPlan {
            row: 3,
            col: 5,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(1e3),
        };
        for kernel in builtin_kernels() {
            let clean = run_scheme(kernel.as_ref(), None);
            assert!(clean.verdict.is_clean(), "{}", kernel.scheme());
            let dirty = run_scheme(kernel.as_ref(), Some(fault));
            if kernel.scheme() == Scheme::Unprotected {
                assert!(dirty.verdict.is_clean());
            } else {
                assert!(dirty.verdict.is_detected(), "{}", kernel.scheme());
            }
        }
    }

    #[test]
    fn multi_checksum_kernel_detects_cancelling_pairs() {
        let kernel = MultiChecksumKernel::new(2);
        let shape = GemmShape::new(48, 40, 64);
        let a = Matrix::random(48, 64, 21);
        let b = Matrix::random(64, 40, 22);
        let engine = GemmEngine::with_default_tiling(shape);
        let bound = kernel.bind(&b);
        let pair = [
            FaultPlan {
                row: 3,
                col: 5,
                after_step: u64::MAX,
                kind: FaultKind::AddValue(250.0),
            },
            FaultPlan {
                row: 20,
                col: 9,
                after_step: u64::MAX,
                kind: FaultKind::AddValue(-250.0),
            },
        ];
        assert!(bound.run(&engine, &a, &pair).verdict.is_detected());
        // Plain global ABFT is blind to the same pair.
        let global = GlobalKernel.bind(&b);
        assert!(global.run(&engine, &a, &pair).verdict.is_clean());
    }

    #[test]
    fn multi_checksum_cost_scales_with_rounds() {
        let calib = Calibration::default();
        let dev = aiga_gpu::DeviceSpec::t4();
        let base = KernelProfile::baseline(GemmShape::square(256), &dev, &calib);
        let cost_of = |kernel: &dyn SchemeKernel| {
            let mut p = base.clone();
            kernel.apply_cost(&mut p, &calib);
            aiga_gpu::timing::estimate(&p, &dev, &calib).total_s
        };
        let one = cost_of(&GlobalKernel);
        let three = cost_of(&MultiChecksumKernel::new(3));
        assert!(three > one, "more rounds must cost more: {three} vs {one}");
    }

    #[test]
    #[should_panic(expected = "at least one checksum round")]
    fn zero_round_kernel_is_rejected() {
        MultiChecksumKernel::new(0);
    }
}
