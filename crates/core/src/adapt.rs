//! Online adaptive protection control.
//!
//! The static intensity-guided plan picks each layer's scheme for a
//! *assumed* fault environment. Under real traffic the observed fault
//! rate drifts — a hotter part, a marginal voltage rail — and a fixed
//! plan either over-pays (strong schemes, no faults) or under-protects
//! (weak schemes, rising silent-corruption risk). The
//! [`AdaptiveController`] closes that loop: it watches each layer's
//! fault rate over a sliding window of served requests and walks the
//! layer up or down the [`ladder`] of scheme strength **relative to the
//! static plan** — escalation has no ceiling short of full replication,
//! relaxation floors at the plan's baseline choice.
//!
//! Flapping is prevented twice over: escalation and relaxation use
//! *different* thresholds (`escalate_threshold > relax_threshold`), and
//! every switch clears the window and starts a dwell period
//! (`min_dwell` observations) during which the controller holds still.
//!
//! The controller is pure bookkeeping — no clocks, no threads — so the
//! fault campaign, the serving [`crate::session::Session`] (builder
//! knob `adaptive`), and unit tests all drive it with the same
//! [`Observation`] type.

use crate::kernel::Verdict;
use crate::schemes::Scheme;

/// One per-trial observation: what a scheme concluded about one run.
/// Shared by the fault campaign's detailed records and the controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// Scheme that judged the run.
    pub scheme: Scheme,
    /// Its verdict (carries localization on `Corrected`).
    pub verdict: Verdict,
}

impl Observation {
    /// True if the run flagged a fault at all (detected *or* corrected)
    /// — the event the controller's fault-rate window counts.
    pub fn fault_flagged(&self) -> bool {
        self.verdict.fault_flagged()
    }
}

/// Tuning knobs of the [`AdaptiveController`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptConfig {
    /// Sliding-window length, in observations per layer. The controller
    /// never acts before a layer's window has filled.
    pub window: usize,
    /// Fault rate at or above which a layer escalates one ladder step.
    pub escalate_threshold: f64,
    /// Fault rate at or below which a layer relaxes one step back
    /// toward its baseline. Must be strictly below
    /// `escalate_threshold` (that gap is the hysteresis band).
    pub relax_threshold: f64,
    /// Observations a layer must dwell after any switch before it may
    /// switch again.
    pub min_dwell: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            window: 64,
            escalate_threshold: 0.05,
            relax_threshold: 0.005,
            min_dwell: 64,
        }
    }
}

/// The canonical scheme-strength ladder, weakest first. Escalation
/// climbs it one rung at a time; relaxation descends, flooring at the
/// static plan's baseline. `MultiChecksum` occupies one rung regardless
/// of its round count (relaxing *to* it restores the baseline's exact
/// rounds).
pub const fn ladder() -> [Scheme; 7] {
    [
        Scheme::Unprotected,
        Scheme::GlobalAbft,
        Scheme::MultiChecksum(2),
        Scheme::ThreadLevelOneSided,
        Scheme::ThreadLevelTwoSided,
        Scheme::ReplicationSingleAcc,
        Scheme::ReplicationTraditional,
    ]
}

/// A scheme's rung on the [`ladder`].
fn rank(s: Scheme) -> usize {
    match s {
        Scheme::Unprotected => 0,
        Scheme::GlobalAbft => 1,
        Scheme::MultiChecksum(_) => 2,
        Scheme::ThreadLevelOneSided => 3,
        Scheme::ThreadLevelTwoSided => 4,
        Scheme::ReplicationSingleAcc => 5,
        Scheme::ReplicationTraditional => 6,
    }
}

/// The next-stronger scheme, if any rung remains above.
fn stronger(s: Scheme) -> Option<Scheme> {
    let l = ladder();
    l.get(rank(s) + 1).copied()
}

/// The next-weaker scheme on the [`ladder`], or `None` at the bottom
/// rung (`Unprotected` has nothing cheaper below it). This is the
/// *overload* direction: where the [`AdaptiveController`] escalates
/// toward stronger protection as faults rise, an overloaded server
/// walks the same ladder the other way, trading protection strength
/// for execution time. Scheme choice never changes the GEMM output
/// bytes — checksums ride in separate accumulators — so degrading is
/// always output-transparent.
pub fn weaker(s: Scheme) -> Option<Scheme> {
    let r = rank(s);
    (r > 0).then(|| ladder()[r - 1])
}

/// One degradation step over a whole per-layer scheme assignment: every
/// layer steps one rung down the [`ladder`] (layers already at the
/// bottom stay `Unprotected`). Returns `None` when nothing can step
/// down — the assignment is already fully unprotected, so a degraded
/// recompile would change nothing.
pub fn degrade_step(schemes: &[Scheme]) -> Option<Vec<Scheme>> {
    if schemes.iter().all(|&s| weaker(s).is_none()) {
        return None;
    }
    Some(schemes.iter().map(|&s| weaker(s).unwrap_or(s)).collect())
}

/// One relaxation step toward `baseline` (never past it — stepping at
/// or below the baseline's rung restores the baseline scheme itself,
/// round count included).
fn relax_step(s: Scheme, baseline: Scheme) -> Scheme {
    let r = rank(s);
    debug_assert!(r > rank(baseline), "relaxing at or below the floor");
    let down = ladder()[r - 1];
    if rank(down) <= rank(baseline) {
        baseline
    } else {
        down
    }
}

/// One scheme switch decided by the controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Adjustment {
    /// GEMM layer index the switch applies to.
    pub layer: usize,
    /// Scheme the layer ran before the switch.
    pub from: Scheme,
    /// Scheme the layer runs from now on.
    pub to: Scheme,
    /// True for an escalation, false for a relaxation.
    pub escalated: bool,
}

/// Per-layer sliding-window fault-rate controller (see module docs).
#[derive(Clone, Debug)]
pub struct AdaptiveController {
    config: AdaptConfig,
    baseline: Vec<Scheme>,
    current: Vec<Scheme>,
    /// Per-layer observation rings, each `config.window` long.
    ring: Vec<Vec<bool>>,
    cursor: Vec<usize>,
    filled: Vec<usize>,
    faults: Vec<usize>,
    dwell: Vec<usize>,
}

impl AdaptiveController {
    /// A controller over one static plan: `baseline[i]` is the plan's
    /// chosen scheme for GEMM layer `i` (both the starting point and
    /// the relaxation floor).
    pub fn new(config: AdaptConfig, baseline: Vec<Scheme>) -> Self {
        assert!(config.window >= 1, "window must be at least 1");
        assert!(
            config.escalate_threshold > config.relax_threshold,
            "escalate_threshold must exceed relax_threshold (hysteresis band)"
        );
        let n = baseline.len();
        AdaptiveController {
            current: baseline.clone(),
            baseline,
            ring: vec![vec![false; config.window]; n],
            cursor: vec![0; n],
            filled: vec![0; n],
            faults: vec![0; n],
            dwell: vec![0; n],
            config,
        }
    }

    /// Number of layers under control.
    pub fn layers(&self) -> usize {
        self.baseline.len()
    }

    /// The static plan's per-layer schemes (the relaxation floor).
    pub fn baseline(&self) -> &[Scheme] {
        &self.baseline
    }

    /// The per-layer schemes currently in force.
    pub fn current(&self) -> &[Scheme] {
        &self.current
    }

    /// A layer's fault rate over its (possibly still-filling) window.
    pub fn fault_rate(&self, layer: usize) -> f64 {
        if self.filled[layer] == 0 {
            0.0
        } else {
            self.faults[layer] as f64 / self.filled[layer] as f64
        }
    }

    /// Feeds one observation for `layer` (`faulty` = the request
    /// flagged a fault there, detected or corrected) and returns the
    /// scheme switch it triggered, if any. Allocation-free.
    pub fn observe(&mut self, layer: usize, faulty: bool) -> Option<Adjustment> {
        let w = self.config.window;
        let c = self.cursor[layer];
        if self.filled[layer] == w {
            if self.ring[layer][c] {
                self.faults[layer] -= 1;
            }
        } else {
            self.filled[layer] += 1;
        }
        self.ring[layer][c] = faulty;
        if faulty {
            self.faults[layer] += 1;
        }
        self.cursor[layer] = (c + 1) % w;
        self.dwell[layer] += 1;

        if self.filled[layer] < w || self.dwell[layer] < self.config.min_dwell {
            return None;
        }
        let rate = self.faults[layer] as f64 / w as f64;
        let cur = self.current[layer];
        if rate >= self.config.escalate_threshold {
            stronger(cur).and_then(|to| self.switch(layer, to, true))
        } else if rate <= self.config.relax_threshold && rank(cur) > rank(self.baseline[layer]) {
            let to = relax_step(cur, self.baseline[layer]);
            self.switch(layer, to, false)
        } else {
            None
        }
    }

    /// [`Self::observe`] from a shared [`Observation`] record.
    pub fn observe_trial(&mut self, layer: usize, obs: &Observation) -> Option<Adjustment> {
        self.observe(layer, obs.fault_flagged())
    }

    /// Commits a switch: reset the layer's window and dwell so the new
    /// scheme is judged on fresh evidence.
    fn switch(&mut self, layer: usize, to: Scheme, escalated: bool) -> Option<Adjustment> {
        let from = self.current[layer];
        if from == to {
            return None;
        }
        self.current[layer] = to;
        self.ring[layer].iter_mut().for_each(|b| *b = false);
        self.cursor[layer] = 0;
        self.filled[layer] = 0;
        self.faults[layer] = 0;
        self.dwell[layer] = 0;
        Some(Adjustment {
            layer,
            from,
            to,
            escalated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize, min_dwell: usize) -> AdaptConfig {
        AdaptConfig {
            window,
            escalate_threshold: 0.25,
            relax_threshold: 0.01,
            min_dwell,
        }
    }

    #[test]
    fn escalates_when_the_fault_rate_crosses_the_threshold() {
        let mut ctrl = AdaptiveController::new(cfg(4, 1), vec![Scheme::GlobalAbft]);
        assert_eq!(ctrl.observe(0, false), None);
        assert_eq!(ctrl.observe(0, false), None);
        assert_eq!(ctrl.observe(0, false), None);
        // Fourth observation fills the window at rate 1/4 = 0.25.
        let adj = ctrl.observe(0, true).expect("escalation");
        assert_eq!(adj.from, Scheme::GlobalAbft);
        assert_eq!(adj.to, Scheme::MultiChecksum(2), "{adj:?}");
        assert!(adj.escalated);
        assert_eq!(ctrl.current()[0], Scheme::MultiChecksum(2));
    }

    #[test]
    fn relaxes_back_to_baseline_and_never_below_it() {
        let mut ctrl = AdaptiveController::new(cfg(2, 1), vec![Scheme::GlobalAbft]);
        ctrl.observe(0, true);
        let up = ctrl.observe(0, true).expect("escalate");
        assert_eq!(up.to, Scheme::MultiChecksum(2));
        // Two clean observations: rate 0 ≤ relax threshold.
        ctrl.observe(0, false);
        let down = ctrl.observe(0, false).expect("relax");
        assert_eq!(down.to, Scheme::GlobalAbft);
        assert!(!down.escalated);
        // Clean traffic at the baseline does nothing further.
        for _ in 0..8 {
            assert_eq!(ctrl.observe(0, false), None, "must not drop below floor");
        }
        assert_eq!(ctrl.current()[0], Scheme::GlobalAbft);
    }

    #[test]
    fn dwell_holds_the_controller_after_a_switch() {
        let mut ctrl = AdaptiveController::new(cfg(2, 6), vec![Scheme::GlobalAbft]);
        // Warm up past the initial dwell, then force an escalation.
        for _ in 0..4 {
            ctrl.observe(0, false);
        }
        ctrl.observe(0, true);
        let up = ctrl.observe(0, true).expect("escalate");
        assert!(up.escalated);
        // Clean traffic immediately after: the dwell (6) outlasts the
        // window (2), so no relaxation until it expires.
        for i in 0..5 {
            assert_eq!(ctrl.observe(0, false), None, "dwell violated at {i}");
        }
        let down = ctrl.observe(0, false).expect("relax after dwell");
        assert!(!down.escalated);
    }

    #[test]
    fn escalation_tops_out_at_the_strongest_rung() {
        let mut ctrl = AdaptiveController::new(cfg(1, 1), vec![Scheme::ReplicationTraditional]);
        for _ in 0..4 {
            assert_eq!(ctrl.observe(0, true), None, "nothing above the top");
        }
    }

    #[test]
    fn relaxing_to_the_multi_checksum_rung_restores_baseline_rounds() {
        let mut ctrl = AdaptiveController::new(cfg(1, 1), vec![Scheme::MultiChecksum(3)]);
        let up = ctrl.observe(0, true).expect("escalate");
        assert_eq!(up.to, Scheme::ThreadLevelOneSided);
        let down = ctrl.observe(0, false).expect("relax");
        assert_eq!(down.to, Scheme::MultiChecksum(3), "rounds must survive");
    }

    #[test]
    fn layers_adapt_independently() {
        let mut ctrl =
            AdaptiveController::new(cfg(2, 1), vec![Scheme::GlobalAbft, Scheme::Unprotected]);
        ctrl.observe(0, true);
        let adj = ctrl.observe(0, true).expect("layer 0 escalates");
        assert_eq!(adj.layer, 0);
        assert_eq!(
            ctrl.current(),
            &[Scheme::MultiChecksum(2), Scheme::Unprotected]
        );
        assert_eq!(ctrl.fault_rate(1), 0.0);
    }

    #[test]
    fn weaker_descends_the_ladder_and_stops_at_the_bottom() {
        assert_eq!(
            weaker(Scheme::ReplicationTraditional),
            Some(Scheme::ReplicationSingleAcc)
        );
        assert_eq!(
            weaker(Scheme::ThreadLevelOneSided),
            Some(Scheme::MultiChecksum(2))
        );
        assert_eq!(weaker(Scheme::GlobalAbft), Some(Scheme::Unprotected));
        assert_eq!(weaker(Scheme::Unprotected), None);
    }

    #[test]
    fn degrade_step_steps_every_layer_once() {
        let schemes = [
            Scheme::ThreadLevelOneSided,
            Scheme::GlobalAbft,
            Scheme::Unprotected,
        ];
        assert_eq!(
            degrade_step(&schemes).unwrap(),
            vec![
                Scheme::MultiChecksum(2),
                Scheme::Unprotected,
                Scheme::Unprotected,
            ]
        );
        // A fully-unprotected assignment has nowhere to go.
        assert_eq!(degrade_step(&[Scheme::Unprotected; 3]), None);
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_thresholds_are_rejected() {
        AdaptiveController::new(
            AdaptConfig {
                window: 4,
                escalate_threshold: 0.01,
                relax_threshold: 0.5,
                min_dwell: 1,
            },
            vec![Scheme::GlobalAbft],
        );
    }
}
