//! # aiga-core — arithmetic-intensity-guided ABFT
//!
//! The paper's contribution, rebuilt on the `aiga-gpu` substrate:
//!
//! - [`schemes`]: every redundant-execution scheme the paper designs or
//!   compares against —
//!   [`schemes::GlobalAbft`] (the state-of-the-art kernel-level baseline
//!   of Hari et al., §2.5, with offline weight checksums, fused output
//!   summation, fused next-layer activation checksums, and a separate
//!   reduce-and-compare kernel);
//!   [`schemes::OneSidedThreadAbft`] and [`schemes::TwoSidedThreadAbft`]
//!   (§5.1–5.2, running inside each simulated thread's inner loop and
//!   sharing the thread's own operand loads);
//!   [`schemes::ReplicationSingleAcc`] and
//!   [`schemes::ReplicationTraditional`] (§4's two thread-level
//!   replication variants).
//! - [`tolerance`]: floating-point-aware checksum comparison with a
//!   running analytical error bound, so fault detection never false-
//!   positives on rounding noise.
//! - [`cost`]: per-scheme kernel cost profiles (Table 1 scaled by the
//!   tiling's `Mt × Nt`) feeding the `aiga-gpu` timing model.
//! - [`selector`]: intensity-guided ABFT itself (§5.3) — per-layer
//!   selection between global and thread-level ABFT by profiled
//!   execution-time overhead, plus the §7.2 analytical variant that
//!   compares arithmetic intensity against the device CMR.
//! - [`pipeline`]: the §2.5 protected-inference flow across consecutive
//!   layers (activation checksums fused into the producing layer).
//! - [`protected`]: a small convenience API for protecting a single GEMM.

pub mod cost;
pub mod pipeline;
pub mod protected;
pub mod schemes;
pub mod selector;
pub mod tolerance;

pub use protected::{ProtectedConv, ProtectedGemm, RunReport, Verdict};
pub use schemes::Scheme;
pub use selector::{LayerPlan, ModelPlan, SelectionMode};
