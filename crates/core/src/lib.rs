//! # aiga-core — arithmetic-intensity-guided ABFT
//!
//! The paper's contribution, rebuilt on the `aiga-gpu` substrate and
//! organized around three layers:
//!
//! **Scheme kernels** — every redundancy scheme implements
//! [`kernel::SchemeKernel`], which unifies the two things a scheme must
//! provide: its analytical cost profile (Table 1 per-thread work or the
//! §2.5 epilogue + reduce-and-compare kernel, feeding the timing model)
//! and its functional protected execution (run + verdict on the
//! simulated engine). Kernels live in a [`registry::SchemeRegistry`];
//! new schemes plug in by registering — the selector, pipeline, and
//! session never enumerate schemes.
//!
//! - [`schemes`]: the scheme *mechanisms* — [`schemes::GlobalAbft`]
//!   (kernel-level baseline of Hari et al., §2.5),
//!   [`schemes::OneSidedThreadAbft`] / [`schemes::TwoSidedThreadAbft`]
//!   (§5.1–5.2), [`schemes::ReplicationSingleAcc`] /
//!   [`schemes::ReplicationTraditional`] (§4), and the §2.4
//!   [`schemes::MultiChecksumAbft`] extension.
//! - [`tolerance`]: floating-point-aware checksum comparison with a
//!   running analytical error bound, so fault detection never false-
//!   positives on rounding noise.
//! - [`cost`]: the evaluation loop that turns registry kernels plus the
//!   `aiga-gpu` timing model into per-scheme [`cost::SchemeTiming`]s.
//!
//! **Planning** — [`Planner`] is the builder-style front-end for
//! intensity-guided ABFT (§5.3): configure device, calibration,
//! candidates, and mode; call [`Planner::plan`] for a [`ModelPlan`] or
//! [`Planner::deployment`] for the §7.3 multi-input-size
//! [`DeploymentPlan`].
//!
//! **Compilation** — [`compiled::CompiledModel`] is the typed path
//! `Model → ModelPlan → CompiledModel`: an executable `aiga_nn::Network`
//! (real FP16 weights, conv + pooling/ReLU/concat/residual nodes) is
//! planned on its real zoo shapes and bound layer by layer into a
//! [`pipeline::ProtectedPipeline`] stage graph, where conv stages lower
//! through workspace-threaded im2col before their protected GEMM.
//!
//! **Serving** — [`Session`] turns a planner plus a model family —
//! analytic MLPs or executable networks ([`Session::builder_network`])
//! — into a request-serving front-end: per-request batch-bucket
//! dispatch, lazy compilation cached per bucket, and aggregated
//! detection statistics. [`protected::ProtectedGemm`] and
//! [`pipeline::ProtectedPipeline`] are the single-GEMM and single-model
//! execution layers underneath. `Session` is the single-caller core;
//! [`serve::Server`] is the concurrent front door on top of it — a
//! bounded admission queue, worker threads, and a dynamic batcher that
//! coalesces concurrent requests into the planner's batch buckets
//! (byte-identically to solo serving) behind [`serve::Client`] /
//! [`serve::Pending`] request handles.

pub mod adapt;
pub mod compiled;
pub mod cost;
pub mod kernel;
pub mod pipeline;
pub mod plan_io;
pub mod planner;
pub mod protected;
pub mod registry;
pub mod schemes;
pub mod selector;
pub mod serve;
pub mod session;
pub mod tolerance;

pub use adapt::{degrade_step, weaker, AdaptConfig, AdaptiveController, Adjustment, Observation};
pub use compiled::CompiledModel;
pub use kernel::{BoundKernel, FaultSite, RunReport, SchemeKernel, Verdict};
pub use pipeline::{InferenceReport, LayerCorrection, PipelineFault, ProtectedPipeline};
pub use planner::Planner;
pub use protected::{ProtectedConv, ProtectedGemm};
pub use registry::SchemeRegistry;
pub use schemes::Scheme;
pub use selector::{DeploymentPlan, LayerPlan, ModelPlan, SelectionMode};
pub use serve::{Client, Pending, Priority, ServeError, Server, ServerBuilder, ServerStats, Slo};
pub use session::{PlanCache, ServeReport, Session, SessionBuilder, SessionError, SessionStats};
