//! The protected inference pipeline (§2.5 flow), generalized from MLP
//! chains to compiled network graphs.
//!
//! A [`ProtectedPipeline`] executes a sequence of *stages* inside one
//! [`Workspace`]. A stage is either
//!
//! - a **protected GEMM** — a fully-connected layer, or a convolution
//!   executed as an implicit GEMM (§2.1: convolutions are protected *as*
//!   matrix multiplications): the engine's panel staging gathers the
//!   im2col lowering directly from the NCHW activations through a
//!   zero-copy [`aiga_gpu::MatrixLayout`] view, then runs the layer's
//!   [`crate::kernel::BoundKernel`], with an optional fused ReLU on the
//!   write-back; or
//! - **epilogue glue** between the GEMMs — max/avg pooling, global
//!   average pooling, channel concatenation, residual addition — the
//!   non-GEMM nodes of an executable [`Network`].
//!
//! Stages read and write FP16 value slots owned by the workspace
//! (branch-and-merge topologies like SqueezeNet's Fire modules and
//! ResNet's residual blocks execute directly), so a warm workspace
//! serves every request with **zero steady-state heap allocations** on
//! the engine path.
//!
//! Compilation levelizes the stage list by data dependency: stages in
//! one level are mutually independent, and levels that are all-GEMM
//! and heavy enough (≥ [`BRANCH_PAR_MIN_FLOPS`] combined) execute
//! their branches **concurrently** on scoped worker threads, one
//! private child workspace per branch — SqueezeNet's 1×1/3×3 expand
//! pair and ResNet's residual/shortcut convs overlap instead of
//! serializing. The join merges verdicts, detections, and slot
//! write-backs in stage order, so a parallel pass is byte- and
//! report-identical to the sequential schedule; `AIGA_BRANCH_WORKERS`
//! (read at construction) or
//! [`ProtectedPipeline::with_branch_workers`] caps or disables the
//! fan-out.
//!
//! Two construction paths exist:
//!
//! - [`ProtectedPipeline::new`]/[`ProtectedPipeline::uniform`] build the
//!   classic chained-MLP pipeline from an analytic [`Model`] with
//!   synthesized weights (layer `i+1`'s `K` must equal layer `i`'s `N`,
//!   as in DLRM's MLPs);
//! - [`ProtectedPipeline::compile`] builds an executable graph from an
//!   [`aiga_nn::Network`] whose conv/fc nodes carry real FP16 weights —
//!   the execution half of the `Model → ModelPlan → CompiledModel`
//!   path (see [`crate::compiled::CompiledModel`]).
//!
//! Every GEMM stage executes through its scheme's
//! [`crate::kernel::BoundKernel`] (weights bound once at construction —
//! global ABFT's offline checksums included), so the pipeline contains
//! no per-scheme dispatch and serves extension schemes like
//! `Scheme::MultiChecksum` unchanged.

use crate::kernel::{BoundKernel, FaultSite, Verdict};
use crate::registry::{self, SchemeRegistry};
use crate::schemes::Scheme;
use aiga_dtype::Dtype;
use aiga_fp16::F16;
use aiga_gpu::engine::{Detection, FaultPlan, GemmEngine, GemmOutput, Matrix, Workspace};
use aiga_gpu::GemmShape;
use aiga_nn::conv::filters_to_matrix;
use aiga_nn::graph::{embedding_index, Network, NodeOp, NodeRef, PoolKind, PoolParams};
use aiga_nn::{ConvParams, Model};

/// Widest stage level the branch-parallel executor fans out (wider
/// levels run sequentially; no real network in the zoo branches wider).
const MAX_BRANCH: usize = 8;

/// Minimum combined GEMM work (FLOPs) before a branch level fans out to
/// scoped threads: below this, thread-spawn latency dwarfs the overlap
/// win and the level runs sequentially on the calling thread. 2 MFLOP
/// of protected GEMM is several hundred microseconds of work — an
/// order of magnitude past per-thread spawn cost.
const BRANCH_PAR_MIN_FLOPS: u128 = 2 * 1024 * 1024;

/// A fault targeted at one GEMM layer of the pipeline.
///
/// `layer` indexes the conv/fc layers in execution order (the same
/// order as the analytic model and the plan). For convolutions the
/// fault's `row`/`col` address the *lowered* GEMM output: row
/// `(n·Ho + oy)·Wo + ox`, column `c_out`.
#[derive(Clone, Copy, Debug)]
pub struct PipelineFault {
    /// Index of the GEMM layer to corrupt.
    pub layer: usize,
    /// The fault to inject there.
    pub fault: FaultPlan,
}

/// One detection event during protected inference.
#[derive(Clone, Debug)]
pub struct LayerDetection {
    /// Index of the GEMM layer that flagged the fault.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Scheme that made the detection.
    pub scheme: Scheme,
    /// Residual of the failed check.
    pub residual: f64,
}

/// One in-place repair event during protected inference (recovery mode):
/// the layer's scheme localized the fault and recomputed only the
/// implicated cells, so the pass continued with a clean stage output.
#[derive(Clone, Debug)]
pub struct LayerCorrection {
    /// Index of the GEMM layer that was repaired.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Scheme that localized and repaired the fault.
    pub scheme: Scheme,
    /// Where the fault was localized.
    pub site: FaultSite,
    /// True when the repair was a replication majority-vote resolution.
    pub vote: bool,
    /// Residual of the original detection.
    pub residual: f64,
}

/// Result of one protected inference pass.
#[derive(Clone, Debug)]
pub struct InferenceReport {
    /// FP32 output of the final stage, flattened per image (for GEMM
    /// finals: pre-activation unless the layer fuses a ReLU; for
    /// pooling finals: the pooled activations).
    pub output: Vec<f32>,
    /// All detections raised along the way (faults that were *not*
    /// repaired — in recovery mode a corrected layer records a
    /// [`LayerCorrection`] instead).
    pub detections: Vec<LayerDetection>,
    /// All in-place repairs made along the way (recovery mode only).
    pub corrections: Vec<LayerCorrection>,
}

impl InferenceReport {
    /// True if any layer flagged a fault that was **not** repaired.
    pub fn fault_detected(&self) -> bool {
        !self.detections.is_empty()
    }

    /// True if any layer localized and repaired a fault in place.
    pub fn fault_corrected(&self) -> bool {
        !self.corrections.is_empty()
    }
}

/// Where a stage reads a value from.
#[derive(Clone, Copy, Debug)]
enum Src {
    /// The (padded) request staged in the workspace's activation buffer.
    Input,
    /// The output slot of an earlier stage.
    Stage(usize),
}

/// Conv-lowering metadata of a GEMM stage.
#[derive(Clone, Copy, Debug)]
struct ConvLowering {
    params: ConvParams,
    /// Input tensor dims `(c, h, w)`.
    in_dims: (usize, usize, usize),
    /// Output spatial dims `(ho, wo)`.
    out_hw: (usize, usize),
    /// 1×1 stride-1 unpadded conv: skip im2col and run the GEMM on a
    /// zero-copy [`aiga_gpu::MatrixLayout::NchwLowered`] view of the
    /// activation buffer (decided once at compile time).
    pointwise: bool,
}

enum StageOp {
    /// A protected GEMM: fc directly, or conv via im2col.
    Gemm {
        bound: Box<dyn BoundKernel>,
        engine: GemmEngine,
        lowering: Option<ConvLowering>,
        relu: bool,
    },
    /// Spatial pooling.
    Pool {
        params: PoolParams,
        in_dims: (usize, usize, usize),
        out_hw: (usize, usize),
    },
    /// Global average pooling to `1 × 1`.
    GlobalAvgPool { in_dims: (usize, usize, usize) },
    /// Channel concatenation; `part_features` holds each input's
    /// flattened per-image width.
    Concat { part_features: Vec<usize> },
    /// Element-wise residual addition.
    Add { relu: bool },
    /// Feature-range slice (codes copied verbatim).
    Slice { offset: usize },
    /// Embedding-bag gathers: feature `t` of the source indexes
    /// `tables[t]`; table values live on the network dtype's grid (the
    /// graph snapped them) so re-encoding to slot codes is lossless.
    EmbeddingBag { tables: Vec<Matrix> },
    /// DLRM pairwise-interaction epilogue; `dim` is the shared vector
    /// width and `part_features` each input's flattened per-image width.
    Interact {
        dim: usize,
        part_features: Vec<usize>,
    },
}

struct Stage {
    name: String,
    op: StageOp,
    srcs: Vec<Src>,
    /// Flattened per-image output width.
    out_features: usize,
    /// Physical workspace slot this stage writes (assigned by
    /// [`assign_slots`]; slots are reused once every consumer has run).
    out_slot: usize,
    /// For GEMM stages: index among the conv/fc layers in execution
    /// order (the fault-targeting and detection-report numbering).
    gemm_idx: Option<usize>,
}

/// Dependency level of every stage: `Input` is level 0's ancestor, and
/// a stage sits one level past its deepest source. Stages sharing a
/// level have no data dependencies among themselves (a dependency
/// would push the consumer's level strictly higher), so a level's
/// members may execute in any order — or concurrently. Computed on the
/// *logical* `Src::Stage(stage index)` references, before
/// [`assign_slots`] rewrites them to physical slots.
fn compute_levels(stages: &[Stage]) -> Vec<usize> {
    let mut levels = vec![0usize; stages.len()];
    for (si, stage) in stages.iter().enumerate() {
        levels[si] = stage
            .srcs
            .iter()
            .map(|src| match src {
                Src::Input => 0,
                Src::Stage(j) => levels[*j] + 1,
            })
            .max()
            .unwrap_or(0);
    }
    levels
}

/// Liveness-based slot assignment: stages are built with *logical*
/// `Src::Stage(stage index)` references; this pass maps each stage's
/// output to a physical workspace slot that is recycled as soon as the
/// last consumer has executed, and rewrites the references. A plain
/// chain degenerates to two ping-pong buffers (the pre-graph memory
/// footprint) instead of one resident activation per stage; branchy
/// graphs keep exactly the values that are still live. A stage's
/// output slot is always allocated *before* its sources are freed, so
/// a stage never reads and writes the same slot. Returns the number of
/// physical slots needed.
///
/// Frees are deferred to *level boundaries*: a slot whose last
/// consumer sits in the current level must not be handed to a sibling
/// of that level, because siblings may execute concurrently while the
/// consumer is still reading it. For chains (every stage its own
/// level) the deferral is a no-op and the assignment is identical to
/// the level-oblivious one.
fn assign_slots(stages: &mut [Stage], levels: &[usize]) -> usize {
    // Last stage that reads each stage's output (0 = never read:
    // consumers are strictly later than their producers).
    let mut last_use = vec![0usize; stages.len()];
    for (si, stage) in stages.iter().enumerate() {
        for src in &stage.srcs {
            if let Src::Stage(j) = src {
                last_use[*j] = si;
            }
        }
    }
    let mut phys_of = vec![usize::MAX; stages.len()];
    let mut free: Vec<usize> = Vec::new();
    let mut pending: Vec<usize> = Vec::new();
    let mut count = 0usize;
    for si in 0..stages.len() {
        if si > 0 && levels[si] != levels[si - 1] {
            free.append(&mut pending);
        }
        for src in &mut stages[si].srcs {
            if let Src::Stage(j) = src {
                *src = Src::Stage(phys_of[*j]);
            }
        }
        let slot = free.pop().unwrap_or_else(|| {
            count += 1;
            count - 1
        });
        phys_of[si] = slot;
        stages[si].out_slot = slot;
        // Queue every value whose last consumer was this stage; the
        // slots become reusable once the level completes.
        for j in 0..si {
            if last_use[j] == si && phys_of[j] != usize::MAX {
                pending.push(phys_of[j]);
                phys_of[j] = usize::MAX;
            }
        }
    }
    count
}

/// One dependency level of the stage list: stages `start..end` are
/// mutually independent. `parallel` marks levels the executor may fan
/// out to scoped worker threads, decided once at compile time: at
/// least two members, all of them GEMMs, not the final stage, no wider
/// than [`MAX_BRANCH`], and combined GEMM work of at least
/// [`BRANCH_PAR_MIN_FLOPS`].
#[derive(Clone, Copy, Debug)]
struct LevelGroup {
    start: usize,
    end: usize,
    parallel: bool,
}

/// Splits the stage list into contiguous equal-level runs and decides
/// which runs are worth branch-parallel execution.
fn build_schedule(stages: &[Stage], levels: &[usize]) -> Vec<LevelGroup> {
    let mut schedule = Vec::new();
    let mut start = 0usize;
    while start < stages.len() {
        let mut end = start + 1;
        while end < stages.len() && levels[end] == levels[start] {
            end += 1;
        }
        let n = end - start;
        let flops: Option<u128> = stages[start..end]
            .iter()
            .map(|s| match &s.op {
                StageOp::Gemm { engine, .. } => {
                    let sh = engine.shape();
                    Some(2 * sh.m as u128 * sh.n as u128 * sh.k as u128)
                }
                _ => None,
            })
            .sum();
        let parallel = (2..=MAX_BRANCH).contains(&n)
            && end < stages.len()
            && flops.is_some_and(|f| f >= BRANCH_PAR_MIN_FLOPS);
        schedule.push(LevelGroup {
            start,
            end,
            parallel,
        });
        start = end;
    }
    schedule
}

/// Construction-time read of the branch-parallelism override: the hot
/// path never touches the environment. `AIGA_BRANCH_WORKERS=1` forces
/// every level sequential; higher values cap the fan-out.
fn env_branch_workers() -> Option<usize> {
    std::env::var("AIGA_BRANCH_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|w| w.max(1))
}

/// A protected inference pipeline over GEMM and epilogue stages.
pub struct ProtectedPipeline {
    batch: usize,
    input_features: usize,
    output_features: usize,
    stages: Vec<Stage>,
    /// Dependency-levelized execution schedule over `stages` (see
    /// [`build_schedule`]): Fire-module squeeze/expand pairs and
    /// residual branches land in shared levels that can fan out.
    schedule: Vec<LevelGroup>,
    gemm_count: usize,
    slot_count: usize,
    /// Worker-thread cap for branch-parallel levels. `None` defers to
    /// [`aiga_util::effective_workers`] at run time; `Some(1)` forces
    /// sequential execution. Resolved at construction from
    /// `AIGA_BRANCH_WORKERS` or [`Self::with_branch_workers`].
    branch_workers: Option<usize>,
    /// Storage dtype of activations and weights: slot write-backs
    /// encode into this format's codes and epilogue stages decode
    /// through it. Set from the compiled [`Network::dtype`]; MLP-chain
    /// pipelines are fp16.
    dtype: Dtype,
    /// When set, a detected fault triggers localization + targeted
    /// recompute *at the flagging stage* (the pass never re-runs), and
    /// resolved faults surface as [`LayerCorrection`]s. Off by default:
    /// detect-only is the paper's behavior.
    recovery: bool,
}

impl ProtectedPipeline {
    /// Builds a chained-MLP pipeline from a model and a per-layer scheme
    /// assignment (one scheme per layer), resolving schemes through the
    /// shared built-in registry. Weights are deterministic
    /// pseudo-random, scaled like normalized NN weights. Panics if the
    /// model's layers do not chain (`K[i+1] != N[i]`) or
    /// `schemes.len() != layers`.
    pub fn new(model: &Model, schemes: &[Scheme], seed: u64) -> Self {
        Self::with_registry(registry::shared(), model, schemes, seed)
    }

    /// [`Self::new`] with an explicit scheme registry.
    pub fn with_registry(
        registry: &SchemeRegistry,
        model: &Model,
        schemes: &[Scheme],
        seed: u64,
    ) -> Self {
        assert_eq!(
            schemes.len(),
            model.layers.len(),
            "one scheme per layer required"
        );
        for pair in model.layers.windows(2) {
            assert_eq!(
                pair[1].shape.k, pair[0].shape.n,
                "layers {} -> {} do not chain",
                pair[0].name, pair[1].name
            );
        }
        let batch = model.layers[0].shape.m as usize;
        let depth = model.layers.len();
        let mut stages: Vec<Stage> = model
            .layers
            .iter()
            .zip(schemes)
            .enumerate()
            .map(|(i, (l, &scheme))| {
                let k = l.shape.k as usize;
                let n = l.shape.n as usize;
                // Weight scale ~ 1/sqrt(K) keeps activations O(1) through
                // depth, like trained networks.
                let raw = Matrix::random(k, n, seed.wrapping_add(i as u64 * 7919));
                let scale = F16::from_f64(1.0 / (k as f64).sqrt());
                let weights = Matrix::from_fn(k, n, |r, c| raw.get(r, c) * scale);
                let engine = GemmEngine::with_default_tiling(GemmShape::new(
                    l.shape.m, l.shape.n, l.shape.k,
                ));
                Stage {
                    name: l.name.clone(),
                    op: StageOp::Gemm {
                        bound: registry.resolve(scheme).bind(&weights),
                        engine,
                        lowering: None,
                        relu: i + 1 < depth,
                    },
                    srcs: vec![if i == 0 {
                        Src::Input
                    } else {
                        Src::Stage(i - 1)
                    }],
                    out_features: n,
                    out_slot: 0,
                    gemm_idx: Some(i),
                }
            })
            .collect();
        let levels = compute_levels(&stages);
        let slot_count = assign_slots(&mut stages, &levels);
        let schedule = build_schedule(&stages, &levels);
        ProtectedPipeline {
            batch,
            input_features: model.layers[0].shape.k as usize,
            output_features: model.layers[depth - 1].shape.n as usize,
            stages,
            schedule,
            gemm_count: depth,
            slot_count,
            branch_workers: env_branch_workers(),
            dtype: Dtype::F16,
            recovery: false,
        }
    }

    /// Builds a pipeline protecting every layer with one fixed scheme.
    pub fn uniform(model: &Model, scheme: Scheme, seed: u64) -> Self {
        Self::new(model, &vec![scheme; model.layers.len()], seed)
    }

    /// Compiles an executable [`Network`] — real FP16 weights, conv and
    /// epilogue nodes — against a per-GEMM-layer scheme assignment
    /// (`schemes[i]` protects the `i`-th conv/fc node in execution
    /// order, matching [`Network::to_model`]'s layer order). Resolves
    /// through the shared built-in registry.
    pub fn compile(net: &Network, schemes: &[Scheme]) -> Self {
        Self::compile_with_registry(registry::shared(), net, schemes)
    }

    /// [`Self::compile`] with an explicit scheme registry.
    pub fn compile_with_registry(
        registry: &SchemeRegistry,
        net: &Network,
        schemes: &[Scheme],
    ) -> Self {
        assert_eq!(
            schemes.len(),
            net.gemm_count(),
            "one scheme per conv/fc layer required"
        );
        let batch = net.batch;
        let dtype = net.dtype;
        // Weight values sit on the dtype's grid already (Network::
        // with_dtype snapped them), so re-encoding into raw dtype codes
        // is lossless; fp16 networks keep their matrices untouched.
        let encode_weights = |m: Matrix| -> Matrix {
            if dtype == Dtype::F16 {
                return m;
            }
            let coded = Matrix::from_fn(m.rows, m.cols, |r, c| {
                F16::from_bits(dtype.encode(m.get(r, c).to_f32()))
            });
            coded.with_dtype(dtype)
        };
        let mut node_src: Vec<Src> = Vec::with_capacity(net.nodes.len());
        let mut stages: Vec<Stage> = Vec::new();
        let mut next_scheme = schemes.iter().copied();
        let mut next_gemm = 0usize;
        for node in &net.nodes {
            let srcs: Vec<Src> = node
                .inputs
                .iter()
                .map(|&r| match r {
                    NodeRef::Input => Src::Input,
                    NodeRef::Node(j) => node_src[j],
                })
                .collect();
            let out_features = node.out_dims.0 * node.out_dims.1 * node.out_dims.2;
            let op = match &node.op {
                // Flatten is zero-copy: the NCHW slot layout is already
                // flat per image, so the node aliases its input.
                NodeOp::Flatten => {
                    node_src.push(srcs[0]);
                    continue;
                }
                NodeOp::Conv {
                    params,
                    weights,
                    relu,
                } => {
                    let in_dims = net.dims_of(node.inputs[0]);
                    let (ho, wo) = params.out_dims(in_dims.1, in_dims.2);
                    let wmat = encode_weights(filters_to_matrix(weights));
                    let shape = GemmShape::new(
                        (batch * ho * wo) as u64,
                        params.c_out as u64,
                        wmat.rows as u64,
                    );
                    StageOp::Gemm {
                        bound: registry
                            .resolve(next_scheme.next().expect("scheme per layer"))
                            .bind(&wmat),
                        engine: GemmEngine::with_default_tiling(shape),
                        lowering: Some(ConvLowering {
                            params: *params,
                            in_dims,
                            out_hw: (ho, wo),
                            pointwise: params.is_pointwise(),
                        }),
                        relu: *relu,
                    }
                }
                NodeOp::Fc { weights, relu } => {
                    let shape =
                        GemmShape::new(batch as u64, weights.cols as u64, weights.rows as u64);
                    let wmat = encode_weights(weights.clone());
                    StageOp::Gemm {
                        bound: registry
                            .resolve(next_scheme.next().expect("scheme per layer"))
                            .bind(&wmat),
                        engine: GemmEngine::with_default_tiling(shape),
                        lowering: None,
                        relu: *relu,
                    }
                }
                NodeOp::Pool(p) => StageOp::Pool {
                    params: *p,
                    in_dims: net.dims_of(node.inputs[0]),
                    out_hw: (node.out_dims.1, node.out_dims.2),
                },
                NodeOp::GlobalAvgPool => StageOp::GlobalAvgPool {
                    in_dims: net.dims_of(node.inputs[0]),
                },
                NodeOp::Concat => StageOp::Concat {
                    part_features: node
                        .inputs
                        .iter()
                        .map(|&r| {
                            let d = net.dims_of(r);
                            d.0 * d.1 * d.2
                        })
                        .collect(),
                },
                NodeOp::Add { relu } => StageOp::Add { relu: *relu },
                NodeOp::Slice { offset } => StageOp::Slice { offset: *offset },
                NodeOp::EmbeddingBag { tables } => StageOp::EmbeddingBag {
                    tables: tables.clone(),
                },
                NodeOp::Interact => {
                    let part_features: Vec<usize> = node
                        .inputs
                        .iter()
                        .map(|&r| {
                            let d = net.dims_of(r);
                            d.0 * d.1 * d.2
                        })
                        .collect();
                    StageOp::Interact {
                        dim: part_features[0],
                        part_features,
                    }
                }
            };
            let gemm_idx = matches!(op, StageOp::Gemm { .. }).then(|| {
                next_gemm += 1;
                next_gemm - 1
            });
            stages.push(Stage {
                name: node.name.clone(),
                op,
                srcs,
                out_features,
                out_slot: 0,
                gemm_idx,
            });
            node_src.push(Src::Stage(stages.len() - 1));
        }
        let levels = compute_levels(&stages);
        let slot_count = assign_slots(&mut stages, &levels);
        let schedule = build_schedule(&stages, &levels);
        ProtectedPipeline {
            batch,
            input_features: net.input_features(),
            output_features: net.output_features(),
            stages,
            schedule,
            gemm_count: net.gemm_count(),
            slot_count,
            branch_workers: env_branch_workers(),
            dtype,
            recovery: false,
        }
    }

    /// Enables (or disables) recovery mode: a detected fault is
    /// localized and repaired at the flagging stage by targeted
    /// recompute — one stage's implicated cells, never the whole pass —
    /// and surfaces as a [`LayerCorrection`] instead of a detection.
    pub fn with_recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// Whether recovery mode is enabled.
    pub fn recovery(&self) -> bool {
        self.recovery
    }

    /// Caps how many worker threads a branch-parallel level may fan out
    /// to (`1` forces sequential execution; values are clamped to at
    /// least 1). Levels below the FLOPs gate run sequentially
    /// regardless. Overrides the `AIGA_BRANCH_WORKERS` environment
    /// variable read at construction.
    pub fn with_branch_workers(mut self, workers: usize) -> Self {
        self.branch_workers = Some(workers.max(1));
        self
    }

    /// Number of compiled stage levels eligible for branch-parallel
    /// execution (Fire-module expand pairs, residual branches, …).
    pub fn parallel_level_count(&self) -> usize {
        self.schedule.iter().filter(|g| g.parallel).count()
    }

    /// The storage dtype this pipeline executes in.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Number of GEMM (conv/fc) layers.
    pub fn depth(&self) -> usize {
        self.gemm_count
    }

    /// Batch size (rows of the input this pipeline expects).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Input feature width (flattened `C·H·W`, or `K` of the first
    /// layer for MLP chains).
    pub fn input_features(&self) -> usize {
        self.input_features
    }

    /// Output feature width of the final stage.
    pub fn output_features(&self) -> usize {
        self.output_features
    }

    /// Per-GEMM-layer scheme assignment, in execution order.
    pub fn schemes(&self) -> Vec<Scheme> {
        self.stages
            .iter()
            .filter_map(|s| match &s.op {
                StageOp::Gemm { bound, .. } => Some(bound.scheme()),
                _ => None,
            })
            .collect()
    }

    /// Runs protected inference on `input` (rows ≤ batch, flattened
    /// input features), optionally injecting one fault. Convenience
    /// over [`Self::infer_into`] with a throwaway workspace.
    pub fn infer(&self, input: &Matrix, fault: Option<PipelineFault>) -> InferenceReport {
        self.infer_into(input, fault, &mut Workspace::new())
    }

    /// Runs protected inference entirely inside `ws` — the serving hot
    /// path. One workspace is reused across all stages of this request:
    /// GEMM scratch, conv `im2col` lowering, and the per-stage FP16
    /// value slots all live in `ws`, so callers that hold it across
    /// requests (the `Session` checkout pool) reach a steady state
    /// where the only per-request allocation is the returned report's
    /// output vector.
    ///
    /// Requests with fewer rows than the pipeline batch are padded up
    /// with zero rows (batching serving systems dispatch to fixed
    /// bucket sizes) and the report's output is cropped back to
    /// `input.rows × output_features`.
    pub fn infer_into(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
        ws: &mut Workspace,
    ) -> InferenceReport {
        assert!(
            input.rows <= self.batch,
            "request batch {} exceeds pipeline batch {}",
            input.rows,
            self.batch
        );
        assert_eq!(
            input.cols, self.input_features,
            "input feature width mismatch"
        );
        assert_eq!(
            input.dtype, self.dtype,
            "request dtype must match the pipeline's storage dtype"
        );
        let rows = input.rows;
        let batch = self.batch;
        // Stage the (padded) input into the workspace's activation
        // buffer. The buffer is moved out around each engine call so it
        // can be the engine's input while the engine mutably borrows
        // the same workspace; the moves shuffle pointers, not data.
        let mut act = std::mem::take(ws.activations_mut());
        input.copy_padded_into(batch, input.cols, &mut act);
        ws.ensure_slots(self.slot_count);
        let mut detections = Vec::new();
        let mut corrections = Vec::new();
        let mut final_output = Vec::new();
        for group in &self.schedule {
            let n = group.end - group.start;
            // Fan-out decision: compile time marked the level safe and
            // worth the spawn cost; run time asks how many workers to
            // use — the construction-time override, else the machine's
            // effective parallelism (1 on saturated or single-core
            // hosts, which collapses the level to sequential).
            let workers = if group.parallel {
                self.branch_workers
                    .unwrap_or_else(|| aiga_util::effective_workers(n))
                    .min(n)
            } else {
                1
            };
            if workers >= 2 {
                self.run_group_parallel(
                    group.start,
                    group.end,
                    fault,
                    ws,
                    &act,
                    &mut detections,
                    &mut corrections,
                );
            } else {
                for si in group.start..group.end {
                    self.run_stage_sequential(
                        si,
                        fault,
                        ws,
                        &mut act,
                        &mut detections,
                        &mut corrections,
                        &mut final_output,
                        rows,
                    );
                }
            }
        }

        *ws.activations_mut() = act;
        InferenceReport {
            output: final_output,
            detections,
            corrections,
        }
    }

    /// Executes one stage on the calling thread — the sequential
    /// regime. A GEMM stage moves its source value out of the
    /// workspace around the engine call (exclusive workspace access
    /// makes that safe here, unlike inside a parallel level).
    #[allow(clippy::too_many_arguments)]
    fn run_stage_sequential(
        &self,
        si: usize,
        fault: Option<PipelineFault>,
        ws: &mut Workspace,
        act: &mut Matrix,
        detections: &mut Vec<LayerDetection>,
        corrections: &mut Vec<LayerCorrection>,
        final_output: &mut Vec<f32>,
        rows: usize,
    ) {
        let stage = &self.stages[si];
        let is_last = si + 1 == self.stages.len();
        let dt = self.dtype;
        let batch = self.batch;
        match &stage.op {
            StageOp::Gemm {
                bound,
                engine,
                lowering,
                relu,
            } => {
                let gemm_idx = stage.gemm_idx.expect("GEMM stages carry a layer index");
                // Borrow the (at most one) fault aimed at this GEMM
                // layer as a slice; no per-layer allocation.
                let layer_fault: Option<FaultPlan> =
                    fault.and_then(|f| (f.layer == gemm_idx).then_some(f.fault));
                // Move the source value out of the workspace so the
                // engine can mutably borrow `ws` while reading it.
                let (src_slot, mut src) = match stage.srcs[0] {
                    Src::Input => (None, std::mem::take(act)),
                    Src::Stage(j) => (Some(j), ws.take_slot(j)),
                };
                let verdict = match lowering {
                    None => {
                        let mut v = bound.run_into(engine, &src, layer_fault.as_slice(), ws);
                        if self.recovery && v.is_detected() {
                            v = bound.correct_into(engine, &src, ws, v);
                        }
                        v
                    }
                    Some(low) if low.pointwise => {
                        // 1×1 stride-1 unpadded conv: the lowered
                        // activation matrix is a pure relabeling of
                        // the NCHW buffer, so run the protected GEMM
                        // on a zero-copy view of it — no im2col.
                        let (c, h, w) = low.in_dims;
                        debug_assert_eq!(src.data.len(), batch * c * h * w);
                        let a =
                            Matrix::nchw_lowered(batch, c, h * w, std::mem::take(&mut src.data))
                                .with_dtype(dt);
                        let mut v = bound.run_into(engine, &a, layer_fault.as_slice(), ws);
                        if self.recovery && v.is_detected() {
                            v = bound.correct_into(engine, &a, ws, v);
                        }
                        src.data = a.data;
                        v
                    }
                    Some(low) => {
                        // Implicit GEMM: the engine's panel staging
                        // gathers straight from the NCHW buffer
                        // through a zero-copy im2col view, so the
                        // lowered matrix never exists. The view
                        // reads raw storage codes (padding taps are
                        // the zero code in every dtype), so it
                        // carries the tag over.
                        let (c, h, w) = low.in_dims;
                        debug_assert_eq!(src.data.len(), batch * c * h * w);
                        let a = Matrix::im2col_lowered(
                            batch,
                            low.params.im2col_view(c, h, w),
                            std::mem::take(&mut src.data),
                        )
                        .with_dtype(dt);
                        let mut v = bound.run_into(engine, &a, layer_fault.as_slice(), ws);
                        if self.recovery && v.is_detected() {
                            v = bound.correct_into(engine, &a, ws, v);
                        }
                        src.data = a.data;
                        v
                    }
                };
                match src_slot {
                    None => *act = src,
                    Some(j) => ws.put_slot(j, src),
                }

                record_gemm_outcome(
                    gemm_idx,
                    &stage.name,
                    bound.scheme(),
                    &ws.output().detections,
                    verdict,
                    detections,
                    corrections,
                );

                if is_last {
                    let out = ws.output();
                    match lowering {
                        None => {
                            // Crop to the request rows; final fc
                            // output stays raw f32 (ReLU only if the
                            // layer fuses one).
                            final_output.reserve_exact(rows * out.n);
                            for &v in &out.c[..rows * out.n] {
                                final_output.push(if *relu { v.max(0.0) } else { v });
                            }
                        }
                        Some(low) => {
                            final_output.reserve_exact(rows * out.n * low.out_hw.0 * low.out_hw.1);
                            conv_output_nchw(out.c.as_slice(), rows, out.n, low, *relu, |v| {
                                final_output.push(v)
                            });
                        }
                    }
                } else {
                    // Write back to this stage's FP16 value slot,
                    // fusing the ReLU epilogue into the
                    // down-conversion (full batch: padded images
                    // stay zero through every op).
                    let mut dst = ws.take_slot(stage.out_slot);
                    encode_gemm_output(
                        ws.output(),
                        lowering.as_ref(),
                        *relu,
                        batch,
                        stage.out_features,
                        dt,
                        &mut dst,
                    );
                    ws.put_slot(stage.out_slot, dst);
                }
            }

            // Epilogue stages: pure FP16 slot-to-slot computation.
            _ => {
                let mut dst = ws.take_slot(stage.out_slot);
                dst.rows = batch;
                dst.cols = stage.out_features;
                dst.dtype = dt;
                dst.data.clear();
                {
                    let get = |r: Src| -> &Matrix {
                        match r {
                            Src::Input => &*act,
                            Src::Stage(j) => ws.slot(j),
                        }
                    };
                    match &stage.op {
                        StageOp::Pool {
                            params,
                            in_dims,
                            out_hw,
                        } => pool_stage(
                            get(stage.srcs[0]),
                            batch,
                            *in_dims,
                            params,
                            *out_hw,
                            dt,
                            &mut dst,
                        ),
                        StageOp::GlobalAvgPool { in_dims } => {
                            global_avg_stage(get(stage.srcs[0]), batch, *in_dims, dt, &mut dst)
                        }
                        StageOp::Concat { part_features } => {
                            for n in 0..batch {
                                for (&r, &f) in stage.srcs.iter().zip(part_features) {
                                    let src = get(r);
                                    dst.data.extend_from_slice(&src.data[n * f..(n + 1) * f]);
                                }
                            }
                        }
                        StageOp::Add { relu } => {
                            let a = get(stage.srcs[0]);
                            let b = get(stage.srcs[1]);
                            dst.data.extend(a.data.iter().zip(&b.data).map(|(x, y)| {
                                let v = dt.decode(x.to_bits()) + dt.decode(y.to_bits());
                                F16::from_bits(dt.encode(if *relu { v.max(0.0) } else { v }))
                            }));
                        }
                        StageOp::Slice { offset } => {
                            let src = get(stage.srcs[0]);
                            let f = src.cols;
                            for n in 0..batch {
                                dst.data.extend_from_slice(
                                    &src.data[n * f + offset..n * f + offset + stage.out_features],
                                );
                            }
                        }
                        StageOp::EmbeddingBag { tables } => {
                            let src = get(stage.srcs[0]);
                            let t_count = tables.len();
                            for n in 0..batch {
                                for (t, table) in tables.iter().enumerate() {
                                    let idx = embedding_index(
                                        dt.decode(src.data[n * t_count + t].to_bits()),
                                        table.rows,
                                    );
                                    dst.data.extend(
                                        table.data[idx * table.cols..(idx + 1) * table.cols]
                                            .iter()
                                            .map(|w| F16::from_bits(dt.encode(w.to_f32()))),
                                    );
                                }
                            }
                        }
                        StageOp::Interact { dim, part_features } => {
                            let total: usize = part_features.iter().sum();
                            let m = total / dim;
                            for n in 0..batch {
                                // Value `f` of the virtual concatenation
                                // of the inputs for image `n`.
                                let feat = |f: usize| -> f32 {
                                    let mut rem = f;
                                    for (&r, &pf) in stage.srcs.iter().zip(part_features) {
                                        if rem < pf {
                                            return dt.decode(get(r).data[n * pf + rem].to_bits());
                                        }
                                        rem -= pf;
                                    }
                                    unreachable!("interact feature index in range")
                                };
                                // First vector's codes pass through
                                // verbatim (they are already on-grid).
                                let first = get(stage.srcs[0]);
                                let pf0 = part_features[0];
                                dst.data
                                    .extend_from_slice(&first.data[n * pf0..n * pf0 + dim]);
                                for vi in 0..m {
                                    for vj in vi + 1..m {
                                        let mut dot = 0.0f32;
                                        for x in 0..*dim {
                                            dot += feat(vi * dim + x) * feat(vj * dim + x);
                                        }
                                        dst.data.push(F16::from_bits(dt.encode(dot)));
                                    }
                                }
                            }
                        }
                        StageOp::Gemm { .. } => unreachable!("handled above"),
                    }
                }
                if is_last {
                    final_output.reserve_exact(rows * stage.out_features);
                    final_output.extend(
                        dst.data[..rows * stage.out_features]
                            .iter()
                            .map(|v| dt.decode(v.to_bits())),
                    );
                }
                ws.put_slot(stage.out_slot, dst);
            }
        }
    }

    /// Executes one independence level's GEMM branches concurrently —
    /// one scoped worker thread per branch, each on a private child
    /// workspace from the pool, all reading the level's input slots
    /// (and the staged request) immutably. The join merges verdicts,
    /// detections, and slot write-backs in stage order, so reports and
    /// slot bytes are identical to sequential execution.
    #[allow(clippy::too_many_arguments)]
    fn run_group_parallel(
        &self,
        start: usize,
        end: usize,
        fault: Option<PipelineFault>,
        ws: &mut Workspace,
        act: &Matrix,
        detections: &mut Vec<LayerDetection>,
        corrections: &mut Vec<LayerCorrection>,
    ) {
        let n = end - start;
        let batch = self.batch;
        let dt = self.dtype;
        let recovery = self.recovery;
        // Take each branch's destination slot out of the workspace
        // before splitting the borrow: the slot table then holds
        // exactly the level's inputs, which the branches share
        // read-only (assign_slots defers intra-level frees, so no
        // branch's destination aliases a sibling's source).
        let mut dsts: [Matrix; MAX_BRANCH] = std::array::from_fn(|_| Matrix::default());
        for (dst, si) in dsts.iter_mut().zip(start..end) {
            *dst = ws.take_slot(self.stages[si].out_slot);
        }
        let mut verdicts: [Option<Verdict>; MAX_BRANCH] = [None; MAX_BRANCH];
        {
            let (slots, pool) = ws.branch_split(n);
            std::thread::scope(|scope| {
                for (((si, dst), verdict), bws) in (start..end)
                    .zip(dsts[..n].iter_mut())
                    .zip(verdicts[..n].iter_mut())
                    .zip(pool.iter_mut())
                {
                    let stage = &self.stages[si];
                    let gemm_idx = stage
                        .gemm_idx
                        .expect("parallel levels contain only GEMM stages");
                    let layer_fault: Option<FaultPlan> =
                        fault.and_then(|f| (f.layer == gemm_idx).then_some(f.fault));
                    let src: &Matrix = match stage.srcs[0] {
                        Src::Input => act,
                        Src::Stage(j) => &slots[j],
                    };
                    scope.spawn(move || {
                        // Branch bodies run as workers so the engine's
                        // own stripe parallelism collapses to
                        // sequential inside them — one thread per
                        // branch, no nested fan-out.
                        aiga_util::as_worker(|| {
                            *verdict = Some(run_branch_gemm(
                                stage,
                                src,
                                layer_fault,
                                recovery,
                                batch,
                                dt,
                                bws,
                                dst,
                            ));
                        });
                    });
                }
            });
        }
        // Join in stage order: identical report and slot state to the
        // sequential schedule, independent of thread timing.
        for (gi, si) in (start..end).enumerate() {
            let stage = &self.stages[si];
            let StageOp::Gemm { bound, .. } = &stage.op else {
                unreachable!("parallel levels contain only GEMM stages");
            };
            let verdict = verdicts[gi].expect("every branch ran to completion");
            {
                let (_, pool) = ws.branch_split(n);
                record_gemm_outcome(
                    stage.gemm_idx.expect("GEMM stages carry a layer index"),
                    &stage.name,
                    bound.scheme(),
                    &pool[gi].output().detections,
                    verdict,
                    detections,
                    corrections,
                );
            }
            ws.put_slot(stage.out_slot, std::mem::take(&mut dsts[gi]));
        }
    }
}

/// The body one branch worker runs inside a parallel level: the
/// protected GEMM (with optional recovery) on a private child
/// workspace, then the FP16 slot encode into `dst`. Returns the
/// kernel's verdict for the stage-order merge.
#[allow(clippy::too_many_arguments)]
fn run_branch_gemm(
    stage: &Stage,
    src: &Matrix,
    layer_fault: Option<FaultPlan>,
    recovery: bool,
    batch: usize,
    dt: Dtype,
    bws: &mut Workspace,
    dst: &mut Matrix,
) -> Verdict {
    let StageOp::Gemm {
        bound,
        engine,
        lowering,
        relu,
    } = &stage.op
    else {
        unreachable!("parallel levels contain only GEMM stages");
    };
    let verdict = match lowering {
        None => {
            let mut v = bound.run_into(engine, src, layer_fault.as_slice(), bws);
            if recovery && v.is_detected() {
                v = bound.correct_into(engine, src, bws, v);
            }
            v
        }
        Some(low) => {
            // Sequential execution moves the shared slot's buffer into
            // the lowered view; a parallel branch cannot, because its
            // siblings read the same slot concurrently. It stages a
            // byte-identical copy into its private lowering scratch
            // instead (the buffer ratchets, so the steady state
            // allocates nothing) and wraps the same zero-copy view
            // around the copy.
            let (c, h, w) = low.in_dims;
            debug_assert_eq!(src.data.len(), batch * c * h * w);
            let mut scratch = bws.take_lowering();
            scratch.data.clear();
            scratch.data.extend_from_slice(&src.data);
            let a = if low.pointwise {
                Matrix::nchw_lowered(batch, c, h * w, std::mem::take(&mut scratch.data))
            } else {
                Matrix::im2col_lowered(
                    batch,
                    low.params.im2col_view(c, h, w),
                    std::mem::take(&mut scratch.data),
                )
            }
            .with_dtype(dt);
            let mut v = bound.run_into(engine, &a, layer_fault.as_slice(), bws);
            if recovery && v.is_detected() {
                v = bound.correct_into(engine, &a, bws, v);
            }
            scratch.data = a.data;
            bws.put_lowering(scratch);
            v
        }
    };
    encode_gemm_output(
        bws.output(),
        lowering.as_ref(),
        *relu,
        batch,
        stage.out_features,
        dt,
        dst,
    );
    verdict
}

/// Records one GEMM stage's outcome into the report vectors — shared
/// verbatim by the sequential and branch-parallel regimes so the two
/// schedules produce identical reports.
fn record_gemm_outcome(
    gemm_idx: usize,
    name: &str,
    scheme: Scheme,
    kernel_detections: &[Detection],
    verdict: Verdict,
    detections: &mut Vec<LayerDetection>,
    corrections: &mut Vec<LayerCorrection>,
) {
    // Thread-level detections come out of the kernel itself, with
    // per-thread provenance.
    for d in kernel_detections {
        detections.push(LayerDetection {
            layer: gemm_idx,
            name: name.to_string(),
            scheme,
            residual: d.residual,
        });
    }
    // Kernel-level verdicts (global ABFT's deferred reduce-and-compare,
    // §2.5 step 5) have no thread provenance; record them once.
    if kernel_detections.is_empty() {
        if let Verdict::Detected { residual, .. } = verdict {
            detections.push(LayerDetection {
                layer: gemm_idx,
                name: name.to_string(),
                scheme,
                residual,
            });
        }
    }
    // A repaired layer records the correction (its per-thread
    // detections, if any, were cleared by the repair, so none were
    // pushed above).
    if let Verdict::Corrected {
        residual,
        site,
        vote,
        ..
    } = verdict
    {
        corrections.push(LayerCorrection {
            layer: gemm_idx,
            name: name.to_string(),
            scheme,
            site,
            vote,
            residual,
        });
    }
}

/// Encodes a GEMM output into a stage's FP16 value slot, fusing the
/// ReLU epilogue into the down-conversion (full batch: padded images
/// stay zero through every op). Shared by the sequential and
/// branch-parallel write-back paths.
fn encode_gemm_output(
    out: &GemmOutput,
    lowering: Option<&ConvLowering>,
    relu: bool,
    batch: usize,
    out_features: usize,
    dt: Dtype,
    dst: &mut Matrix,
) {
    dst.rows = batch;
    dst.cols = out_features;
    dst.dtype = dt;
    dst.data.clear();
    match lowering {
        None => {
            dst.data.extend(out.c.iter().map(|&v| {
                let v = if relu { v.max(0.0) } else { v };
                F16::from_bits(dt.encode(v))
            }));
        }
        Some(low) => {
            conv_output_nchw(out.c.as_slice(), batch, out.n, low, relu, |v| {
                dst.data.push(F16::from_bits(dt.encode(v)))
            });
        }
    }
}

/// Walks a lowered-conv GEMM output (rows `(n, oy, ox)`-major, columns
/// `c_out`) in flattened-NCHW emission order for `images` images,
/// applying the fused ReLU, and hands each value to `emit` — the one
/// place the GEMM→NCHW transpose lives, shared by the final-output and
/// slot write-back paths.
fn conv_output_nchw(
    c: &[f32],
    images: usize,
    out_n: usize,
    low: &ConvLowering,
    relu: bool,
    mut emit: impl FnMut(f32),
) {
    let spatial = low.out_hw.0 * low.out_hw.1;
    for n in 0..images {
        for co in 0..out_n {
            for s in 0..spatial {
                let v = c[(n * spatial + s) * out_n + co];
                emit(if relu { v.max(0.0) } else { v });
            }
        }
    }
}

/// One pooling stage over a flat NCHW FP16 value (max skips
/// out-of-bounds cells; avg divides by the in-bounds cell count —
/// mirrored exactly by `Network::reference_f64`).
fn pool_stage(
    src: &Matrix,
    batch: usize,
    in_dims: (usize, usize, usize),
    p: &PoolParams,
    out_hw: (usize, usize),
    dt: Dtype,
    dst: &mut Matrix,
) {
    let (c, h, w) = in_dims;
    let (ho, wo) = out_hw;
    let in_features = c * h * w;
    for n in 0..batch {
        let img = &src.data[n * in_features..(n + 1) * in_features];
        for ch in 0..c {
            let plane = &img[ch * h * w..(ch + 1) * h * w];
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut acc = 0.0f32;
                    let mut cells = 0u32;
                    for ky in 0..p.kernel {
                        for kx in 0..p.kernel {
                            let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                            let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                            if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                continue;
                            }
                            let v = dt.decode(plane[iy as usize * w + ix as usize].to_bits());
                            best = best.max(v);
                            acc += v;
                            cells += 1;
                        }
                    }
                    let v = match p.kind {
                        PoolKind::Max => {
                            if cells == 0 {
                                0.0
                            } else {
                                best
                            }
                        }
                        PoolKind::Avg => {
                            if cells == 0 {
                                0.0
                            } else {
                                acc / cells as f32
                            }
                        }
                    };
                    dst.data.push(F16::from_bits(dt.encode(v)));
                }
            }
        }
    }
}

/// Global average pooling to `1 × 1` per channel.
fn global_avg_stage(
    src: &Matrix,
    batch: usize,
    in_dims: (usize, usize, usize),
    dt: Dtype,
    dst: &mut Matrix,
) {
    let (c, h, w) = in_dims;
    let in_features = c * h * w;
    for n in 0..batch {
        let img = &src.data[n * in_features..(n + 1) * in_features];
        for ch in 0..c {
            let plane = &img[ch * h * w..(ch + 1) * h * w];
            let acc: f32 = plane.iter().map(|v| dt.decode(v.to_bits())).sum();
            dst.data
                .push(F16::from_bits(dt.encode(acc / (h * w) as f32)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::FaultKind;
    use aiga_nn::zoo;

    fn input(batch: usize, features: usize) -> Matrix {
        Matrix::random(batch, features, 4242)
    }

    #[test]
    fn clean_dlrm_bottom_inference_raises_nothing() {
        let model = zoo::dlrm_mlp_bottom(16);
        for scheme in [Scheme::GlobalAbft, Scheme::ThreadLevelOneSided] {
            let p = ProtectedPipeline::uniform(&model, scheme, 1);
            let r = p.infer(&input(16, 13), None);
            assert!(!r.fault_detected(), "{scheme}: {:?}", r.detections.first());
            assert_eq!(r.output.len(), 16 * 64);
        }
    }

    #[test]
    fn fault_in_a_middle_layer_is_caught_at_that_layer() {
        let model = zoo::dlrm_mlp_bottom(16);
        let p = ProtectedPipeline::uniform(&model, Scheme::ThreadLevelOneSided, 2);
        let fault = PipelineFault {
            layer: 1,
            fault: FaultPlan {
                row: 3,
                col: 100,
                after_step: 2,
                kind: FaultKind::AddValue(40.0),
            },
        };
        let r = p.infer(&input(16, 13), Some(fault));
        assert!(r.fault_detected());
        assert_eq!(r.detections[0].layer, 1);
        assert_eq!(r.detections[0].scheme, Scheme::ThreadLevelOneSided);
    }

    #[test]
    fn mixed_assignment_follows_the_plan() {
        let model = zoo::dlrm_mlp_bottom(16);
        let schemes = [
            Scheme::GlobalAbft,
            Scheme::ThreadLevelOneSided,
            Scheme::GlobalAbft,
        ];
        let p = ProtectedPipeline::new(&model, &schemes, 3);
        assert_eq!(p.schemes(), schemes);
        // Fault in layer 0 must be detected by global ABFT.
        let fault = PipelineFault {
            layer: 0,
            fault: FaultPlan {
                row: 1,
                col: 1,
                after_step: u64::MAX,
                kind: FaultKind::AddValue(30.0),
            },
        };
        let r = p.infer(&input(16, 13), Some(fault));
        assert!(r.fault_detected());
        assert_eq!(r.detections[0].scheme, Scheme::GlobalAbft);
    }

    #[test]
    fn unprotected_pipeline_silently_corrupts() {
        let model = zoo::dlrm_mlp_bottom(8);
        let p = ProtectedPipeline::uniform(&model, Scheme::Unprotected, 4);
        let clean = p.infer(&input(8, 13), None);
        let fault = PipelineFault {
            layer: 0,
            fault: FaultPlan {
                row: 0,
                col: 0,
                after_step: 0,
                kind: FaultKind::SetValue(100.0),
            },
        };
        let dirty = p.infer(&input(8, 13), Some(fault));
        assert!(!dirty.fault_detected());
        // The corruption propagates through ReLU into downstream layers.
        assert_ne!(clean.output, dirty.output);
    }

    #[test]
    fn multi_checksum_extension_serves_through_the_pipeline() {
        let model = zoo::dlrm_mlp_bottom(8);
        let p = ProtectedPipeline::uniform(&model, Scheme::MultiChecksum(2), 6);
        let clean = p.infer(&input(8, 13), None);
        assert!(!clean.fault_detected());
        let fault = PipelineFault {
            layer: 1,
            fault: FaultPlan {
                row: 2,
                col: 7,
                after_step: u64::MAX,
                kind: FaultKind::AddValue(60.0),
            },
        };
        let dirty = p.infer(&input(8, 13), Some(fault));
        assert!(dirty.fault_detected());
        assert_eq!(dirty.detections[0].scheme, Scheme::MultiChecksum(2));
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn non_chaining_models_are_rejected() {
        let model = aiga_nn::Model::new(
            "broken",
            vec![
                aiga_nn::LinearLayer::fc("a", 8, 16, 32),
                aiga_nn::LinearLayer::fc("b", 8, 64, 32), // K != previous N
            ],
        );
        ProtectedPipeline::uniform(&model, Scheme::GlobalAbft, 0);
    }

    mod compiled {
        use super::*;
        use aiga_nn::graph::NetworkBuilder;

        fn conv_net(batch: usize) -> aiga_nn::Network {
            let mut b = NetworkBuilder::new("conv-net", batch, 2, 8, 8, 11);
            b.conv("c1", 4, 3, 1, 1, true);
            b.max_pool("p1", 2, 2, 0);
            b.conv("c2", 6, 3, 2, 1, true);
            b.global_avg_pool("gap");
            b.fc("fc", 5, false);
            b.build()
        }

        #[test]
        fn compiled_conv_net_matches_its_f64_reference() {
            let net = conv_net(3);
            let p = ProtectedPipeline::compile(&net, &[Scheme::GlobalAbft; 3]);
            assert_eq!(p.depth(), 3);
            assert_eq!(p.input_features(), 2 * 8 * 8);
            assert_eq!(p.output_features(), 5);
            let input = Matrix::random(3, 2 * 8 * 8, 21);
            let r = p.infer(&input, None);
            assert!(!r.fault_detected());
            let want = net.reference_f64(&input);
            assert_eq!(r.output.len(), want.len());
            for (i, (&got, &w)) in r.output.iter().zip(&want).enumerate() {
                assert!((got as f64 - w).abs() < 2e-2, "elem {i}: {got} vs {w}");
            }
        }

        #[test]
        fn compiled_faults_are_detected_at_the_conv_layer() {
            let net = conv_net(2);
            let p = ProtectedPipeline::compile(&net, &[Scheme::ThreadLevelOneSided; 3]);
            let fault = PipelineFault {
                layer: 1, // the strided conv
                fault: FaultPlan {
                    row: 2,
                    col: 3,
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(200.0),
                },
            };
            let r = p.infer(&Matrix::random(2, 2 * 8 * 8, 22), Some(fault));
            assert!(r.fault_detected());
            assert_eq!(r.detections[0].layer, 1);
            assert_eq!(r.detections[0].name, "c2");
        }

        #[test]
        fn slot_assignment_recycles_dead_values() {
            // A chain ping-pongs two physical slots no matter its depth
            // (the pre-graph memory footprint).
            let chain = ProtectedPipeline::uniform(&zoo::dlrm_mlp_bottom(8), Scheme::GlobalAbft, 1);
            assert_eq!(chain.slot_count, 2);
            // Branchy graphs keep only the values that are still live:
            // SqueezeNet's 34 stages need a handful of slots, not 34.
            let net = zoo::squeezenet_net(1, 32, 32, 3);
            let p = ProtectedPipeline::compile(&net, &vec![Scheme::GlobalAbft; net.gemm_count()]);
            assert!(
                p.slot_count <= 6,
                "fire modules should recycle dead slots (got {})",
                p.slot_count
            );
            assert!(p.slot_count < p.stages.len());
            // A stage never reads the physical slot it writes.
            for s in &p.stages {
                for src in &s.srcs {
                    if let Src::Stage(j) = src {
                        assert_ne!(*j, s.out_slot, "{}", s.name);
                    }
                }
            }
        }

        #[test]
        fn every_dtype_serves_the_conv_net_within_reference_tolerance() {
            // The same graph compiled at each storage dtype must track
            // its dtype-aware f64 reference: the executor and reference
            // share every quantization point, differing only in f32 vs
            // f64 GEMM accumulation.
            for dtype in Dtype::ALL {
                let net = conv_net(3).with_dtype(dtype);
                let p = ProtectedPipeline::compile(&net, &[Scheme::GlobalAbft; 3]);
                assert_eq!(p.dtype(), dtype);
                let input = Matrix::random_dtype(3, 2 * 8 * 8, 21, dtype);
                let r = p.infer(&input, None);
                assert!(!r.fault_detected(), "{dtype}: {:?}", r.detections.first());
                let want = net.reference_f64(&input);
                assert_eq!(r.output.len(), want.len());
                // fp8 carries ~2^-4 relative steps through three layers;
                // activations are O(1), so an absolute envelope works
                // for every format.
                let tol = match dtype {
                    Dtype::F16 | Dtype::Bf16 => 2e-2,
                    Dtype::Fp8E4M3 | Dtype::Int8 => 2e-1,
                };
                for (i, (&got, &w)) in r.output.iter().zip(&want).enumerate() {
                    assert!(
                        (got as f64 - w).abs() < tol,
                        "{dtype} elem {i}: {got} vs {w}"
                    );
                }
            }
        }

        #[test]
        fn bf16_inference_is_byte_deterministic() {
            let net = conv_net(2).with_dtype(Dtype::Bf16);
            let p = ProtectedPipeline::compile(&net, &[Scheme::ThreadLevelOneSided; 3]);
            let input = Matrix::random_dtype(2, 2 * 8 * 8, 31, Dtype::Bf16);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            let first = p.infer(&input, None);
            for _ in 0..2 {
                let again = p.infer(&input, None);
                assert_eq!(bits(&first.output), bits(&again.output));
            }
        }

        #[test]
        fn dtype_mismatched_requests_are_rejected() {
            let net = conv_net(2).with_dtype(Dtype::Bf16);
            let p = ProtectedPipeline::compile(&net, &[Scheme::GlobalAbft; 3]);
            let fp16_input = Matrix::random(2, 2 * 8 * 8, 31);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.infer(&fp16_input, None)
            }));
            assert!(r.is_err(), "fp16 request into a bf16 pipeline must panic");
        }

        #[test]
        fn faults_in_a_bf16_conv_are_still_detected() {
            let net = conv_net(2).with_dtype(Dtype::Bf16);
            let p = ProtectedPipeline::compile(&net, &[Scheme::ThreadLevelOneSided; 3]);
            let fault = PipelineFault {
                layer: 1,
                fault: FaultPlan {
                    row: 2,
                    col: 3,
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(200.0),
                },
            };
            let input = Matrix::random_dtype(2, 2 * 8 * 8, 22, Dtype::Bf16);
            let r = p.infer(&input, Some(fault));
            assert!(r.fault_detected());
            assert_eq!(r.detections[0].layer, 1);
        }

        #[test]
        fn padded_requests_crop_to_the_request_rows() {
            let net = conv_net(4);
            let p = ProtectedPipeline::compile(&net, &[Scheme::GlobalAbft; 3]);
            let full = Matrix::random(4, 2 * 8 * 8, 23);
            let rf = p.infer(&full, None);
            let shared = Matrix::from_fn(2, 2 * 8 * 8, |r, c| full.get(r, c));
            let rs = p.infer(&shared, None);
            assert_eq!(rs.output.len(), 2 * 5);
            // Per-image outputs are padding-independent.
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&rs.output), bits(&rf.output[..2 * 5]));
        }
    }

    mod branch_parallel {
        use super::*;

        fn bits(v: &[f32]) -> Vec<u32> {
            v.iter().map(|x| x.to_bits()).collect()
        }

        #[test]
        fn squeezenet_compiles_parallel_fire_expand_levels() {
            let net = zoo::squeezenet_net(1, 32, 32, 3);
            let p = ProtectedPipeline::compile(&net, &vec![Scheme::GlobalAbft; net.gemm_count()]);
            // Fire modules deep enough to clear the FLOPs gate form
            // parallel 1×1/3×3 expand levels; the early tiny ones and
            // every chain stage stay sequential.
            assert!(
                p.parallel_level_count() >= 2,
                "{}",
                p.parallel_level_count()
            );
            assert!(p.parallel_level_count() < p.schedule.len());
            // Parallel levels only ever contain GEMM stages.
            for g in p.schedule.iter().filter(|g| g.parallel) {
                for s in &p.stages[g.start..g.end] {
                    assert!(matches!(s.op, StageOp::Gemm { .. }), "{}", s.name);
                    assert!(s.gemm_idx.is_some(), "{}", s.name);
                }
            }
            // The final stage never joins a parallel level (it owns the
            // report's output).
            let last = p.schedule.last().unwrap();
            assert!(!last.parallel);
        }

        #[test]
        fn parallel_branches_are_byte_identical_to_sequential() {
            let net = zoo::squeezenet_net(2, 32, 32, 3);
            let schemes = vec![Scheme::ThreadLevelOneSided; net.gemm_count()];
            let seq = ProtectedPipeline::compile(&net, &schemes).with_branch_workers(1);
            let par = ProtectedPipeline::compile(&net, &schemes).with_branch_workers(2);
            assert!(par.parallel_level_count() >= 2);
            let input = Matrix::random(2, 3 * 32 * 32, 77);
            let a = seq.infer(&input, None);
            let b = par.infer(&input, None);
            assert!(!a.fault_detected() && !b.fault_detected());
            assert_eq!(bits(&a.output), bits(&b.output));
        }

        #[test]
        fn faults_inside_a_parallel_level_report_identically() {
            let net = zoo::squeezenet_net(2, 32, 32, 3);
            let schemes = vec![Scheme::ThreadLevelOneSided; net.gemm_count()];
            let seq = ProtectedPipeline::compile(&net, &schemes).with_branch_workers(1);
            let par = ProtectedPipeline::compile(&net, &schemes).with_branch_workers(2);
            // Pick a GEMM layer that actually sits in a parallel level.
            let target = par
                .schedule
                .iter()
                .filter(|g| g.parallel)
                .flat_map(|g| par.stages[g.start..g.end].iter())
                .map(|s| s.gemm_idx.unwrap())
                .next_back()
                .expect("a parallel level exists");
            let fault = PipelineFault {
                layer: target,
                fault: FaultPlan {
                    row: 1,
                    col: 2,
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(300.0),
                },
            };
            let input = Matrix::random(2, 3 * 32 * 32, 78);
            let a = seq.infer(&input, Some(fault));
            let b = par.infer(&input, Some(fault));
            assert!(a.fault_detected() && b.fault_detected());
            assert_eq!(a.detections.len(), b.detections.len());
            assert_eq!(a.detections[0].layer, target);
            assert_eq!(b.detections[0].layer, target);
            assert_eq!(a.detections[0].name, b.detections[0].name);
            assert_eq!(bits(&a.output), bits(&b.output));
        }

        #[test]
        fn recovery_inside_a_parallel_level_repairs_in_place() {
            let net = zoo::squeezenet_net(2, 32, 32, 3);
            let schemes = vec![Scheme::ThreadLevelOneSided; net.gemm_count()];
            let par = ProtectedPipeline::compile(&net, &schemes)
                .with_branch_workers(2)
                .with_recovery(true);
            let target = par
                .schedule
                .iter()
                .filter(|g| g.parallel)
                .flat_map(|g| par.stages[g.start..g.end].iter())
                .map(|s| s.gemm_idx.unwrap())
                .next()
                .expect("a parallel level exists");
            let input = Matrix::random(2, 3 * 32 * 32, 79);
            let clean = par.infer(&input, None);
            let fault = PipelineFault {
                layer: target,
                fault: FaultPlan {
                    row: 0,
                    col: 1,
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(300.0),
                },
            };
            let repaired = par.infer(&input, Some(fault));
            assert!(repaired.fault_corrected(), "{:?}", repaired.detections);
            assert!(!repaired.fault_detected());
            assert_eq!(repaired.corrections[0].layer, target);
            assert_eq!(bits(&clean.output), bits(&repaired.output));
        }

        #[test]
        fn chains_never_form_parallel_levels() {
            let p = ProtectedPipeline::uniform(&zoo::dlrm_mlp_bottom(16), Scheme::GlobalAbft, 1);
            assert_eq!(p.parallel_level_count(), 0);
        }
    }
}
