//! The protected inference pipeline (§2.5 flow).
//!
//! Runs a chain of fully-connected layers end to end on the functional
//! engine with a per-layer scheme assignment (from an intensity-guided
//! plan or fixed). Between layers the §2.5 sequence is followed: matrix
//! multiply → fused output summation → activation function (ReLU) →
//! fused next-layer activation checksum → deferred reduce-and-compare.
//! Thread-level schemes check inside the kernel instead and need none of
//! the fused epilogues.
//!
//! Every layer executes through its scheme's [`crate::kernel::BoundKernel`]
//! (weights bound once at construction — global ABFT's offline checksums
//! included), so the pipeline contains no per-scheme dispatch and serves
//! extension schemes like `Scheme::MultiChecksum` unchanged.
//!
//! The functional pipeline requires chainable layers (layer `i+1`'s `K`
//! equals layer `i`'s `N`, as in DLRM's MLPs); convolutional models are
//! exercised per-layer by the fault-injection campaigns instead, since
//! im2col data movement is outside the GEMM kernel being protected.

use crate::kernel::{BoundKernel, Verdict};
use crate::registry::{self, SchemeRegistry};
use crate::schemes::Scheme;
use aiga_fp16::F16;
use aiga_gpu::engine::{FaultPlan, GemmEngine, Matrix, Workspace};
use aiga_gpu::GemmShape;
use aiga_nn::Model;

/// A fault targeted at one layer of the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct PipelineFault {
    /// Index of the layer to corrupt.
    pub layer: usize,
    /// The fault to inject there.
    pub fault: FaultPlan,
}

/// One detection event during protected inference.
#[derive(Clone, Debug)]
pub struct LayerDetection {
    /// Index of the layer that flagged the fault.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Scheme that made the detection.
    pub scheme: Scheme,
    /// Residual of the failed check.
    pub residual: f64,
}

/// Result of one protected inference pass.
#[derive(Clone, Debug)]
pub struct InferenceReport {
    /// FP32 output of the final layer (post-activation of earlier layers
    /// applied, final layer pre-activation).
    pub output: Vec<f32>,
    /// All detections raised along the way.
    pub detections: Vec<LayerDetection>,
}

impl InferenceReport {
    /// True if any layer flagged a fault.
    pub fn fault_detected(&self) -> bool {
        !self.detections.is_empty()
    }
}

struct PipelineLayer {
    name: String,
    bound: Box<dyn BoundKernel>,
    engine: GemmEngine,
}

/// A protected feed-forward (MLP-style) inference pipeline.
pub struct ProtectedPipeline {
    batch: usize,
    layers: Vec<PipelineLayer>,
}

impl ProtectedPipeline {
    /// Builds a pipeline from a model and a per-layer scheme assignment
    /// (one scheme per layer), resolving schemes through the shared
    /// built-in registry. Weights are deterministic pseudo-random, scaled
    /// like normalized NN weights. Panics if the model's layers do not
    /// chain (`K[i+1] != N[i]`) or `schemes.len() != layers`.
    pub fn new(model: &Model, schemes: &[Scheme], seed: u64) -> Self {
        Self::with_registry(registry::shared(), model, schemes, seed)
    }

    /// [`Self::new`] with an explicit scheme registry.
    pub fn with_registry(
        registry: &SchemeRegistry,
        model: &Model,
        schemes: &[Scheme],
        seed: u64,
    ) -> Self {
        assert_eq!(
            schemes.len(),
            model.layers.len(),
            "one scheme per layer required"
        );
        for pair in model.layers.windows(2) {
            assert_eq!(
                pair[1].shape.k, pair[0].shape.n,
                "layers {} -> {} do not chain",
                pair[0].name, pair[1].name
            );
        }
        let batch = model.layers[0].shape.m as usize;
        let layers = model
            .layers
            .iter()
            .zip(schemes)
            .enumerate()
            .map(|(i, (l, &scheme))| {
                let k = l.shape.k as usize;
                let n = l.shape.n as usize;
                // Weight scale ~ 1/sqrt(K) keeps activations O(1) through
                // depth, like trained networks.
                let raw = Matrix::random(k, n, seed.wrapping_add(i as u64 * 7919));
                let scale = F16::from_f64(1.0 / (k as f64).sqrt());
                let weights = Matrix::from_fn(k, n, |r, c| raw.get(r, c) * scale);
                let engine = GemmEngine::with_default_tiling(GemmShape::new(
                    l.shape.m, l.shape.n, l.shape.k,
                ));
                PipelineLayer {
                    name: l.name.clone(),
                    bound: registry.resolve(scheme).bind(&weights),
                    engine,
                }
            })
            .collect();
        ProtectedPipeline { batch, layers }
    }

    /// Builds a pipeline protecting every layer with one fixed scheme.
    pub fn uniform(model: &Model, scheme: Scheme, seed: u64) -> Self {
        Self::new(model, &vec![scheme; model.layers.len()], seed)
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Batch size (rows of the input this pipeline expects).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Input feature width (`K` of the first layer).
    pub fn input_features(&self) -> usize {
        self.layers[0].bound.weights().rows
    }

    /// Output feature width (`N` of the final layer).
    pub fn output_features(&self) -> usize {
        self.layers[self.layers.len() - 1].bound.weights().cols
    }

    /// Per-layer scheme assignment, in execution order.
    pub fn schemes(&self) -> Vec<Scheme> {
        self.layers.iter().map(|l| l.bound.scheme()).collect()
    }

    /// Runs protected inference on `input` (rows ≤ batch, K₀ features),
    /// optionally injecting one fault. Convenience over
    /// [`Self::infer_into`] with a throwaway workspace.
    pub fn infer(&self, input: &Matrix, fault: Option<PipelineFault>) -> InferenceReport {
        self.infer_into(input, fault, &mut Workspace::new())
    }

    /// Runs protected inference entirely inside `ws` — the serving hot
    /// path. One workspace is reused across all layers of this request,
    /// and callers that hold it across requests (the `Session` checkout
    /// pool) reach a steady state where the only per-request allocation
    /// is the returned report's output vector.
    ///
    /// Requests with fewer rows than the pipeline batch are padded up
    /// with zero rows (batching serving systems dispatch to fixed
    /// bucket sizes) and the report's output is cropped back to
    /// `input.rows × output_features`.
    pub fn infer_into(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
        ws: &mut Workspace,
    ) -> InferenceReport {
        assert!(
            input.rows <= self.batch,
            "request batch {} exceeds pipeline batch {}",
            input.rows,
            self.batch
        );
        assert_eq!(
            input.cols,
            self.input_features(),
            "input feature width mismatch"
        );
        let rows = input.rows;
        // Stage the (padded) input into the workspace's activation
        // buffer. The buffer is moved out around each engine call so it
        // can be the engine's input while the engine mutably borrows
        // the same workspace; the moves shuffle pointers, not data.
        let mut act = std::mem::take(ws.activations_mut());
        input.copy_padded_into(self.batch, input.cols, &mut act);
        let mut detections = Vec::new();
        let mut final_output = Vec::new();

        for (idx, layer) in self.layers.iter().enumerate() {
            // Borrow the (at most one) fault aimed at this layer as a
            // slice; no per-layer allocation.
            let layer_fault: Option<FaultPlan> =
                fault.and_then(|f| (f.layer == idx).then_some(f.fault));
            let verdict = layer
                .bound
                .run_into(&layer.engine, &act, layer_fault.as_slice(), ws);
            let scheme = layer.bound.scheme();
            let out = ws.output();

            // Thread-level detections come out of the kernel itself, with
            // per-thread provenance.
            for d in &out.detections {
                detections.push(LayerDetection {
                    layer: idx,
                    name: layer.name.clone(),
                    scheme,
                    residual: d.residual,
                });
            }
            // Kernel-level verdicts (global ABFT's deferred
            // reduce-and-compare, §2.5 step 5) have no thread provenance;
            // record them once.
            if out.detections.is_empty() {
                if let Verdict::Detected { residual, .. } = verdict {
                    detections.push(LayerDetection {
                        layer: idx,
                        name: layer.name.clone(),
                        scheme,
                        residual,
                    });
                }
            }

            if idx + 1 == self.layers.len() {
                final_output = out.c[..rows * out.n].to_vec();
            } else {
                // ReLU, then down-convert for the next layer's FP16 GEMM,
                // written back into the reused activation buffer.
                act.rows = out.m;
                act.cols = out.n;
                act.data.clear();
                act.data
                    .extend(out.c.iter().map(|&v| F16::from_f32(v.max(0.0))));
            }
        }

        *ws.activations_mut() = act;
        InferenceReport {
            output: final_output,
            detections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::FaultKind;
    use aiga_nn::zoo;

    fn input(batch: usize, features: usize) -> Matrix {
        Matrix::random(batch, features, 4242)
    }

    #[test]
    fn clean_dlrm_bottom_inference_raises_nothing() {
        let model = zoo::dlrm_mlp_bottom(16);
        for scheme in [Scheme::GlobalAbft, Scheme::ThreadLevelOneSided] {
            let p = ProtectedPipeline::uniform(&model, scheme, 1);
            let r = p.infer(&input(16, 13), None);
            assert!(!r.fault_detected(), "{scheme}: {:?}", r.detections.first());
            assert_eq!(r.output.len(), 16 * 64);
        }
    }

    #[test]
    fn fault_in_a_middle_layer_is_caught_at_that_layer() {
        let model = zoo::dlrm_mlp_bottom(16);
        let p = ProtectedPipeline::uniform(&model, Scheme::ThreadLevelOneSided, 2);
        let fault = PipelineFault {
            layer: 1,
            fault: FaultPlan {
                row: 3,
                col: 100,
                after_step: 2,
                kind: FaultKind::AddValue(40.0),
            },
        };
        let r = p.infer(&input(16, 13), Some(fault));
        assert!(r.fault_detected());
        assert_eq!(r.detections[0].layer, 1);
        assert_eq!(r.detections[0].scheme, Scheme::ThreadLevelOneSided);
    }

    #[test]
    fn mixed_assignment_follows_the_plan() {
        let model = zoo::dlrm_mlp_bottom(16);
        let schemes = [
            Scheme::GlobalAbft,
            Scheme::ThreadLevelOneSided,
            Scheme::GlobalAbft,
        ];
        let p = ProtectedPipeline::new(&model, &schemes, 3);
        assert_eq!(p.schemes(), schemes);
        // Fault in layer 0 must be detected by global ABFT.
        let fault = PipelineFault {
            layer: 0,
            fault: FaultPlan {
                row: 1,
                col: 1,
                after_step: u64::MAX,
                kind: FaultKind::AddValue(30.0),
            },
        };
        let r = p.infer(&input(16, 13), Some(fault));
        assert!(r.fault_detected());
        assert_eq!(r.detections[0].scheme, Scheme::GlobalAbft);
    }

    #[test]
    fn unprotected_pipeline_silently_corrupts() {
        let model = zoo::dlrm_mlp_bottom(8);
        let p = ProtectedPipeline::uniform(&model, Scheme::Unprotected, 4);
        let clean = p.infer(&input(8, 13), None);
        let fault = PipelineFault {
            layer: 0,
            fault: FaultPlan {
                row: 0,
                col: 0,
                after_step: 0,
                kind: FaultKind::SetValue(100.0),
            },
        };
        let dirty = p.infer(&input(8, 13), Some(fault));
        assert!(!dirty.fault_detected());
        // The corruption propagates through ReLU into downstream layers.
        assert_ne!(clean.output, dirty.output);
    }

    #[test]
    fn multi_checksum_extension_serves_through_the_pipeline() {
        let model = zoo::dlrm_mlp_bottom(8);
        let p = ProtectedPipeline::uniform(&model, Scheme::MultiChecksum(2), 6);
        let clean = p.infer(&input(8, 13), None);
        assert!(!clean.fault_detected());
        let fault = PipelineFault {
            layer: 1,
            fault: FaultPlan {
                row: 2,
                col: 7,
                after_step: u64::MAX,
                kind: FaultKind::AddValue(60.0),
            },
        };
        let dirty = p.infer(&input(8, 13), Some(fault));
        assert!(dirty.fault_detected());
        assert_eq!(dirty.detections[0].scheme, Scheme::MultiChecksum(2));
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn non_chaining_models_are_rejected() {
        let model = aiga_nn::Model::new(
            "broken",
            vec![
                aiga_nn::LinearLayer::fc("a", 8, 16, 32),
                aiga_nn::LinearLayer::fc("b", 8, 64, 32), // K != previous N
            ],
        );
        ProtectedPipeline::uniform(&model, Scheme::GlobalAbft, 0);
    }
}
