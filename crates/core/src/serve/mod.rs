//! `aiga::serve` — the concurrent serving front-end.
//!
//! [`Session`] is the single-caller core: one thread calls
//! [`Session::serve`], one protected pipeline pass runs. This module is
//! the front door for *many* callers: a [`Server`] owns a session, a
//! bounded admission queue, and N worker threads, and turns concurrent
//! single/small requests into the batch-bucketed pipeline passes the
//! planner priced (§7.3) via a dynamic batcher:
//!
//! ```text
//! Client::submit ──► SyncQueue (bounded, FIFO) ──► worker: coalesce
//!      │                                              │  compatible
//!      ▼                                              ▼  neighbors
//!   Pending  ◄── scatter per-request reports ◄── one Session::serve
//! ```
//!
//! Coalescing is *transparent*: a batch of stacked requests runs the
//! same padded bucket pipeline each member would have run alone, and
//! per-row outputs are bit-identical across paddings (the engine's
//! accumulators are row-independent), so a coalesced reply is
//! byte-identical to a direct `Session::serve` of the same request —
//! `tests/serve_concurrent.rs` asserts this under multi-client stress.
//!
//! Backpressure is explicit: the queue is bounded, and the submit
//! family maps the three admission policies onto it —
//! [`Client::submit`] blocks for room, [`Client::try_submit`] fails
//! fast with [`ServeError::QueueFull`], [`Client::submit_timeout`]
//! bounds the wait with a deadline. [`Server::shutdown`] closes
//! admission, lets the workers drain every queued request, joins them,
//! and returns the final [`ServerStats`] (throughput counters,
//! coalescing high-water marks, and p50/p95/p99 end-to-end latency from
//! a lock-free log2 histogram).
//!
//! After each bucket's warmup the worker hot path inherits the
//! session's allocation discipline: pooled workspaces, pre-allocated
//! queue storage, a reused per-worker stacking buffer — the only
//! steady-state allocations are the per-request handoff constants
//! (handle, input copy, output vector), pinned by
//! `tests/alloc_server.rs`.

mod batch;
mod stats;

pub use stats::ServerStats;

use crate::pipeline::PipelineFault;
use crate::session::{ServeReport, Session, SessionError};
use aiga_gpu::engine::Matrix;
use aiga_util::sync::{PushError, SyncQueue};
use aiga_util::LatencyHistogram;
use batch::Request;
use stats::AtomicServerStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often the supervisor thread scans for dead workers.
const SUPERVISOR_POLL: Duration = Duration::from_millis(2);

/// Why a request was not served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The session rejected the request (e.g. feature-width mismatch).
    Session(SessionError),
    /// The bounded admission queue was full (fail-fast `try_submit`).
    QueueFull,
    /// The admission queue stayed full past the submit deadline.
    SubmitTimeout,
    /// The server has been shut down; no new requests are accepted.
    Shutdown,
    /// The request was admitted but the server stopped serving it —
    /// its worker panicked mid-pass, or every worker died before the
    /// queue drained. The handle resolves instead of hanging.
    Aborted,
    /// Shed under overload: the queue had aged past the server's
    /// `shed_after` threshold (or past this request's own SLO
    /// deadline), so the server turned the request away explicitly
    /// instead of letting tail latency run away. `queue_age` is how old
    /// the unserved head (admission-time shed) or this request
    /// (in-queue shed) was at the decision.
    Overloaded {
        /// Queue age observed at the shed decision.
        queue_age: Duration,
    },
    /// The caller cancelled via [`Pending::cancel`] before a worker
    /// started the request; its batch slot was reclaimed.
    Cancelled,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Session(e) => write!(f, "session error: {e}"),
            ServeError::QueueFull => write!(f, "admission queue is full"),
            ServeError::SubmitTimeout => write!(f, "admission queue stayed full past the deadline"),
            ServeError::Shutdown => write!(f, "server has been shut down"),
            ServeError::Aborted => write!(f, "server stopped before serving this request"),
            ServeError::Overloaded { queue_age } => {
                write!(f, "shed under overload (queue age {queue_age:?})")
            }
            ServeError::Cancelled => write!(f, "request was cancelled by the caller"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// Request priority under overload. Priorities do not reorder the FIFO
/// queue — they decide who absorbs the overload response: `High`
/// requests are never age-shed and never degraded, `Low` requests are
/// the first to go.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Exempt from age-based shedding and degradation (a request's own
    /// [`Slo::deadline`] still applies).
    High,
    /// Standard treatment.
    #[default]
    Normal,
    /// Shed as soon as the queue ages past `degrade_after` (not just
    /// `shed_after`) — load shed from `Low` is headroom for the rest.
    Low,
}

/// Per-request service-level objective, attached at submission via
/// [`Client::submit_with_slo`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Slo {
    /// Give up on this request once it has waited this long in the
    /// queue — a worker that finds it expired resolves the handle with
    /// [`ServeError::Overloaded`] instead of serving stale work.
    pub deadline: Option<Duration>,
    /// Who absorbs the overload response; see [`Priority`].
    pub priority: Priority,
}

/// Bounded-retry configuration (see
/// [`ServerBuilder::retry_policy`]): up to `max_attempts` re-runs with
/// exponential backoff from `base_delay`, jittered ±50%.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RetryPolicy {
    pub max_attempts: u32,
    pub base_delay: Duration,
}

/// The slot a worker fulfills and a [`Pending`] waits on.
#[derive(Default)]
pub(crate) struct PendingShared {
    slot: Mutex<Option<Result<ServeReport, ServeError>>>,
    ready: Condvar,
    /// Set by [`Pending::cancel`]; a worker that sees it resolves the
    /// request with [`ServeError::Cancelled`] instead of serving it.
    cancelled: AtomicBool,
}

impl PendingShared {
    /// First writer wins: the worker's real result normally, or the
    /// [`ServeError::Aborted`] safety net from [`batch::Request`]'s
    /// drop guard when a worker dies mid-pass. Later calls are no-ops,
    /// so a waiter never sees two results and never hangs.
    pub(crate) fn fulfill(&self, result: Result<ServeReport, ServeError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// A typed handle to one in-flight request. Obtained from the
/// [`Client`] submit family; redeemed with [`Pending::wait`] (blocking)
/// or [`Pending::wait_timeout`].
pub struct Pending {
    shared: Arc<PendingShared>,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl Pending {
    /// True once the result is available ([`Pending::wait`] would
    /// return without blocking).
    pub fn is_ready(&self) -> bool {
        self.shared.slot.lock().unwrap().is_some()
    }

    /// Cancels the request so a timed-out caller stops wasting a batch
    /// slot: a worker that reaches it in the queue resolves the handle
    /// with [`ServeError::Cancelled`] without running a pass, and the
    /// batcher refuses to coalesce it. Cancellation is best-effort —
    /// if a worker had already started (or finished) the pass, the
    /// handle resolves with that result instead. Returns `true` when
    /// the cancel was registered before any result was available.
    pub fn cancel(&self) -> bool {
        self.shared.cancelled.store(true, Ordering::Relaxed);
        !self.is_ready()
    }

    /// Blocks until the request completes and returns its report.
    pub fn wait(self) -> Result<ServeReport, ServeError> {
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.shared.ready.wait(slot).unwrap();
        }
    }

    /// Blocks up to `timeout` for the result. On expiry the handle is
    /// returned so the caller can keep waiting (or drop it — the
    /// request still executes; its result is simply discarded).
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<ServeReport, ServeError>, Pending> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return Ok(result);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            let (next, _) = self
                .shared
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap();
            slot = next;
        }
    }
}

/// State shared by the server handle, every client, and every worker.
pub(crate) struct Shared {
    pub session: Session,
    pub queue: SyncQueue<Request>,
    pub stats: AtomicServerStats,
    pub latency: LatencyHistogram,
    /// Latency of retry re-executions alone (end-to-end latency of a
    /// retried request still lands in `latency`).
    pub retry_latency: LatencyHistogram,
    /// Largest declared bucket — the coalescing row budget.
    pub largest_bucket: usize,
    /// How long a worker holding a partially-filled bucket waits for
    /// more compatible requests before executing.
    pub coalesce_window: Duration,
    /// Transparently re-run a request whose pass resolved with an
    /// unrepaired fault verdict — up to `max_attempts` times with
    /// jittered exponential backoff. `None` disables retry.
    pub retry: Option<RetryPolicy>,
    /// Retry attempts per declared bucket, aligned with
    /// `session.buckets()`.
    pub retry_by_bucket: Box<[AtomicU64]>,
    /// Queue age past which pending work is served *degraded* (one
    /// scheme rung cheaper; see [`crate::session::Session::serve_degraded`]).
    pub degrade_after: Option<Duration>,
    /// Queue age past which non-`High` requests are shed with
    /// [`ServeError::Overloaded`].
    pub shed_after: Option<Duration>,
    /// The worker-pool roster, owned by the supervisor (workers are
    /// reaped and respawned through this).
    pub workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Monotonic worker id source: names threads and seeds each
    /// worker's jitter RNG.
    pub worker_seq: AtomicU64,
    /// Target worker-pool size.
    pub worker_target: usize,
}

/// A cloneable submission handle to a [`Server`]. Clients stay valid
/// after the server shuts down (submissions then fail with
/// [`ServeError::Shutdown`]).
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

enum Admission {
    Block,
    Try,
    Deadline(Duration),
}

impl Client {
    /// Submits one request, blocking while the admission queue is full.
    /// The returned [`Pending`] resolves once a worker has served it.
    pub fn submit(&self, input: &Matrix) -> Result<Pending, ServeError> {
        self.enqueue(input, None, Slo::default(), Admission::Block)
    }

    /// Submits without blocking; a full queue is reported as
    /// [`ServeError::QueueFull`] (the request is *not* admitted).
    pub fn try_submit(&self, input: &Matrix) -> Result<Pending, ServeError> {
        self.enqueue(input, None, Slo::default(), Admission::Try)
    }

    /// Submits, blocking up to `timeout` for queue room; expiry is
    /// reported as [`ServeError::SubmitTimeout`].
    pub fn submit_timeout(&self, input: &Matrix, timeout: Duration) -> Result<Pending, ServeError> {
        self.enqueue(input, None, Slo::default(), Admission::Deadline(timeout))
    }

    /// Submits one request with an explicit service-level objective:
    /// an optional per-request queue deadline and an overload
    /// [`Priority`]. Blocking admission. On a server configured with
    /// [`ServerBuilder::shed_after`], an already-overaged queue sheds
    /// at submission with [`ServeError::Overloaded`] — immediately,
    /// before the request ever occupies a slot.
    pub fn submit_with_slo(&self, input: &Matrix, slo: Slo) -> Result<Pending, ServeError> {
        self.enqueue(input, None, slo, Admission::Block)
    }

    /// Chaos hook: enqueues a poison request whose worker *panics*
    /// instead of serving it — exercising the supervisor's self-healing
    /// path (the panicked worker's in-flight handles resolve to
    /// [`ServeError::Aborted`]; the supervisor respawns it and bumps
    /// [`ServerStats::worker_restarts`]). The returned handle resolves
    /// to `Aborted`.
    pub fn inject_worker_panic(&self) -> Result<Pending, ServeError> {
        let shared = &*self.shared;
        let state = Arc::new(PendingShared::default());
        let request = Request {
            input: Matrix::zeros(1, 1),
            fault: None,
            slo: Slo::default(),
            poison: true,
            enqueued: Instant::now(),
            state: Some(state.clone()),
        };
        match shared.queue.push(request) {
            Ok(()) => {
                AtomicServerStats::bump(&shared.stats.submitted);
                Ok(Pending { shared: state })
            }
            Err(_) => Err(ServeError::Shutdown),
        }
    }

    /// Submits a request with an injected fault (the §2.3 single-fault
    /// model, aimed at one layer of this request). Faulted requests are
    /// never coalesced — the fault plan's coordinates address one
    /// bucket-shaped kernel launch, so the request runs a pass of its
    /// own. Blocking admission.
    pub fn submit_with_fault(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
    ) -> Result<Pending, ServeError> {
        self.enqueue(input, fault, Slo::default(), Admission::Block)
    }

    fn enqueue(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
        slo: Slo,
        admission: Admission,
    ) -> Result<Pending, ServeError> {
        let shared = &*self.shared;
        // Admission-time shedding: when the head of the queue has
        // already aged past the shed threshold, adding more load only
        // deepens the overload — turn the request away *now* (an
        // explicit, promptly-resolved `Overloaded`) rather than after
        // it too has gone stale. `High` priority is exempt.
        if let Some(shed_after) = shared.shed_after {
            if slo.priority != Priority::High {
                if let Some(age) = shared.queue.head_age() {
                    if age >= shed_after {
                        AtomicServerStats::bump(&shared.stats.shed);
                        return Err(ServeError::Overloaded { queue_age: age });
                    }
                }
            }
        }
        let state = Arc::new(PendingShared::default());
        let request = Request {
            input: input.clone(),
            fault,
            slo,
            poison: false,
            enqueued: Instant::now(),
            state: Some(state.clone()),
        };
        let outcome =
            match admission {
                Admission::Block => shared.queue.push(request).map_err(|_| ServeError::Shutdown),
                Admission::Try => shared.queue.try_push(request).map_err(|e| match e {
                    PushError::Full(_) => ServeError::QueueFull,
                    PushError::Closed(_) => ServeError::Shutdown,
                }),
                Admission::Deadline(timeout) => shared
                    .queue
                    .push_timeout(request, timeout)
                    .map_err(|e| match e {
                        PushError::Full(_) => ServeError::SubmitTimeout,
                        PushError::Closed(_) => ServeError::Shutdown,
                    }),
            };
        match outcome {
            Ok(()) => {
                AtomicServerStats::bump(&shared.stats.submitted);
                AtomicServerStats::ratchet(
                    &shared.stats.max_queue_depth,
                    shared.queue.len() as u64,
                );
                Ok(Pending { shared: state })
            }
            Err(e) => {
                AtomicServerStats::bump(&shared.stats.rejected);
                Err(e)
            }
        }
    }
}

/// Builder for [`Server`]s.
pub struct ServerBuilder {
    session: Session,
    workers: usize,
    queue_capacity: usize,
    coalesce_window: Duration,
    retry: Option<RetryPolicy>,
    degrade_after: Option<Duration>,
    shed_after: Option<Duration>,
}

impl ServerBuilder {
    /// Number of worker threads executing pipeline passes (default 2;
    /// must be >= 1).
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "a server needs at least one worker");
        self.workers = workers;
        self
    }

    /// Admission queue capacity — the backpressure bound (default 64;
    /// must be >= 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        self.queue_capacity = capacity;
        self
    }

    /// How long a worker holding a partially-filled batch bucket waits
    /// for more compatible requests before executing (default 0: batch
    /// only what is already queued, adding zero latency).
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.coalesce_window = window;
        self
    }

    /// Enables transparent retry-on-verdict: a request whose pass
    /// resolves with an *unrepaired* fault verdict (detected, and not
    /// corrected in place) is re-executed solo on a fresh pass before
    /// its handle resolves — under the §2.3 transient single-fault
    /// model the re-execution is clean. Retries are counted in
    /// [`ServerStats::retries`] with their own latency percentiles.
    /// Off by default. Shorthand for `retry_policy(1, Duration::ZERO)`.
    pub fn retry_on_verdict(mut self, on: bool) -> Self {
        self.retry = on.then_some(RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
        });
        self
    }

    /// Bounded retry-on-verdict: up to `max_attempts` re-executions,
    /// backing off exponentially from `base_delay` (delay before
    /// attempt *k* is `base_delay · 2^(k-1)`, jittered ±50% from the
    /// worker's [`aiga_util::Rng64`] so synchronized retry storms
    /// decorrelate). `Duration::ZERO` retries immediately. Attempts are
    /// counted in [`ServerStats::retries`] and per bucket in
    /// [`ServerStats::retry_attempts_by_bucket`].
    pub fn retry_policy(mut self, max_attempts: u32, base_delay: Duration) -> Self {
        assert!(max_attempts >= 1, "retry_policy needs at least one attempt");
        self.retry = Some(RetryPolicy {
            max_attempts,
            base_delay,
        });
        self
    }

    /// Queue age past which pending work is served *degraded*: every
    /// layer one rung down the [`crate::adapt::ladder`] from the static
    /// plan (see [`Session::serve_degraded`]). Output bytes are
    /// unchanged — schemes compute checksums beside the GEMM, never in
    /// it — so degradation trades detection coverage, not answer
    /// quality, for execution time. `High`-priority and fault-injected
    /// requests are never degraded. Off by default.
    pub fn degrade_after(mut self, age: Duration) -> Self {
        self.degrade_after = Some(age);
        self
    }

    /// Queue age past which load is *shed*: submissions are turned
    /// away and queued non-`High` requests resolve with
    /// [`ServeError::Overloaded`] instead of aging without bound.
    /// Typically set above [`ServerBuilder::degrade_after`] so the
    /// server degrades first and sheds only when that is not enough.
    /// Off by default.
    pub fn shed_after(mut self, age: Duration) -> Self {
        self.shed_after = Some(age);
        self
    }

    /// Spawns the workers (and their supervisor) and opens the doors.
    pub fn build(self) -> Server {
        let largest_bucket = *self
            .session
            .buckets()
            .last()
            .expect("sessions declare at least one bucket") as usize;
        let retry_by_bucket = self
            .session
            .buckets()
            .iter()
            .map(|_| AtomicU64::new(0))
            .collect();
        let shared = Arc::new(Shared {
            session: self.session,
            queue: SyncQueue::bounded(self.queue_capacity),
            stats: AtomicServerStats::default(),
            latency: LatencyHistogram::new(),
            retry_latency: LatencyHistogram::new(),
            largest_bucket,
            coalesce_window: self.coalesce_window,
            retry: self.retry,
            retry_by_bucket,
            degrade_after: self.degrade_after,
            shed_after: self.shed_after,
            workers: Mutex::new(Vec::with_capacity(self.workers)),
            worker_seq: AtomicU64::new(0),
            worker_target: self.workers,
        });
        {
            let mut workers = shared.workers.lock().unwrap();
            for _ in 0..self.workers {
                workers.push(spawn_worker(&shared));
            }
        }
        let supervisor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("aiga-serve-supervisor".into())
                .spawn(move || supervise(&shared))
                .expect("spawn server supervisor")
        };
        Server {
            shared,
            supervisor: Some(supervisor),
        }
    }
}

/// Spawns one worker thread over its own [`Session::shard`] (shared
/// plan cache, private workspace pool).
fn spawn_worker(shared: &Arc<Shared>) -> std::thread::JoinHandle<()> {
    let id = shared.worker_seq.fetch_add(1, Ordering::Relaxed);
    let shared = shared.clone();
    std::thread::Builder::new()
        .name(format!("aiga-serve-{id}"))
        .spawn(move || batch::worker_loop(&shared, id))
        .expect("spawn server worker")
}

/// The supervisor loop: reap finished workers, respawn the ones that
/// *panicked* (a worker that returns cleanly is draining a closed
/// queue), and exit once the queue is closed and every worker is
/// joined. Self-healing is bookkept in
/// [`ServerStats::worker_restarts`].
fn supervise(shared: &Arc<Shared>) {
    loop {
        {
            let mut workers = shared.workers.lock().unwrap();
            let mut i = 0;
            while i < workers.len() {
                if workers[i].is_finished() {
                    let worker = workers.swap_remove(i);
                    if worker.join().is_err() {
                        // Panicked mid-pass: its in-flight handles have
                        // already resolved to `Aborted` via the request
                        // drop guard. Replace it with a fresh worker on
                        // a fresh session shard.
                        AtomicServerStats::bump(&shared.stats.worker_restarts);
                        workers.push(spawn_worker(shared));
                    }
                } else {
                    i += 1;
                }
            }
            if shared.queue.is_closed() && workers.is_empty() {
                return;
            }
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

/// A concurrent serving front-end over one [`Session`]: bounded
/// admission, dynamic batching into the planner's buckets, N worker
/// threads, graceful drain on shutdown. See the [module docs](self).
pub struct Server {
    shared: Arc<Shared>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts building a server around a session.
    pub fn builder(session: Session) -> ServerBuilder {
        ServerBuilder {
            session,
            workers: 2,
            queue_capacity: 64,
            coalesce_window: Duration::ZERO,
            retry: None,
            degrade_after: None,
            shed_after: None,
        }
    }

    /// A session with default server settings (2 workers, queue of 64,
    /// no coalesce window).
    pub fn wrap(session: Session) -> Server {
        Self::builder(session).build()
    }

    /// A new submission handle. Clients are cheap to clone and safe to
    /// move to other threads.
    pub fn client(&self) -> Client {
        Client {
            shared: self.shared.clone(),
        }
    }

    /// The wrapped session (e.g. for plan inspection via
    /// [`Session::plan_for_bucket`]).
    pub fn session(&self) -> &Session {
        &self.shared.session
    }

    /// Target number of worker threads (the supervisor keeps the live
    /// pool at this size, respawning panicked workers).
    pub fn workers(&self) -> usize {
        self.shared.worker_target
    }

    /// A statistics snapshot: server counters, live queue depth,
    /// latency percentiles, and the wrapped session's counters.
    pub fn stats(&self) -> ServerStats {
        Self::stats_of(&self.shared)
    }

    fn stats_of(shared: &Shared) -> ServerStats {
        let mut stats = shared.stats.snapshot();
        stats.queue_depth = shared.queue.len() as u64;
        stats.p50_latency_ns = shared.latency.p50_ns();
        stats.p95_latency_ns = shared.latency.p95_ns();
        stats.p99_latency_ns = shared.latency.p99_ns();
        stats.retry_p50_latency_ns = shared.retry_latency.p50_ns();
        stats.retry_p95_latency_ns = shared.retry_latency.p95_ns();
        stats.retry_p99_latency_ns = shared.retry_latency.p99_ns();
        stats.retry_attempts_by_bucket = shared
            .retry_by_bucket
            .iter()
            .zip(shared.session.buckets())
            .filter_map(|(attempts, &bucket)| {
                let n = attempts.load(Ordering::Relaxed);
                (n > 0).then_some((bucket, n))
            })
            .collect();
        stats.session = shared.session.stats();
        stats
    }

    /// Graceful shutdown: closes admission (further submissions fail
    /// with [`ServeError::Shutdown`]), lets the workers drain every
    /// already-admitted request, joins them, and returns the final
    /// statistics. Every outstanding [`Pending`] resolves.
    pub fn shutdown(mut self) -> ServerStats {
        self.halt();
        Self::stats_of(&self.shared)
    }

    fn halt(&mut self) {
        self.shared.queue.close();
        // The supervisor owns the worker roster: it respawns panicked
        // workers (even mid-drain, so closed-queue leftovers still get
        // served), joins the rest as they drain out, and exits once the
        // pool is empty. Worker panics are a *handled* fault — counted
        // in `worker_restarts`, never propagated.
        let supervisor_panic = self
            .supervisor
            .take()
            .map(|s| s.join().is_err())
            .unwrap_or(false);
        // Belt and suspenders: any request still queued (e.g. pushed in
        // the close race) resolves its handle to `Aborted` on drop.
        while self.shared.queue.try_pop().is_some() {}
        if supervisor_panic && !std::thread::panicking() {
            panic!("server supervisor panicked");
        }
    }
}

impl Drop for Server {
    /// Dropping the server without an explicit [`Server::shutdown`]
    /// still drains and joins — no detached threads, no lost requests.
    fn drop(&mut self) {
        self.halt();
    }
}
