//! `aiga::serve` — the concurrent serving front-end.
//!
//! [`Session`] is the single-caller core: one thread calls
//! [`Session::serve`], one protected pipeline pass runs. This module is
//! the front door for *many* callers: a [`Server`] owns a session, a
//! bounded admission queue, and N worker threads, and turns concurrent
//! single/small requests into the batch-bucketed pipeline passes the
//! planner priced (§7.3) via a dynamic batcher:
//!
//! ```text
//! Client::submit ──► SyncQueue (bounded, FIFO) ──► worker: coalesce
//!      │                                              │  compatible
//!      ▼                                              ▼  neighbors
//!   Pending  ◄── scatter per-request reports ◄── one Session::serve
//! ```
//!
//! Coalescing is *transparent*: a batch of stacked requests runs the
//! same padded bucket pipeline each member would have run alone, and
//! per-row outputs are bit-identical across paddings (the engine's
//! accumulators are row-independent), so a coalesced reply is
//! byte-identical to a direct `Session::serve` of the same request —
//! `tests/serve_concurrent.rs` asserts this under multi-client stress.
//!
//! Backpressure is explicit: the queue is bounded, and the submit
//! family maps the three admission policies onto it —
//! [`Client::submit`] blocks for room, [`Client::try_submit`] fails
//! fast with [`ServeError::QueueFull`], [`Client::submit_timeout`]
//! bounds the wait with a deadline. [`Server::shutdown`] closes
//! admission, lets the workers drain every queued request, joins them,
//! and returns the final [`ServerStats`] (throughput counters,
//! coalescing high-water marks, and p50/p95/p99 end-to-end latency from
//! a lock-free log2 histogram).
//!
//! After each bucket's warmup the worker hot path inherits the
//! session's allocation discipline: pooled workspaces, pre-allocated
//! queue storage, a reused per-worker stacking buffer — the only
//! steady-state allocations are the per-request handoff constants
//! (handle, input copy, output vector), pinned by
//! `tests/alloc_server.rs`.

mod batch;
mod stats;

pub use stats::ServerStats;

use crate::pipeline::PipelineFault;
use crate::session::{ServeReport, Session, SessionError};
use aiga_gpu::engine::Matrix;
use aiga_util::sync::{PushError, SyncQueue};
use aiga_util::LatencyHistogram;
use batch::Request;
use stats::AtomicServerStats;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a request was not served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The session rejected the request (e.g. feature-width mismatch).
    Session(SessionError),
    /// The bounded admission queue was full (fail-fast `try_submit`).
    QueueFull,
    /// The admission queue stayed full past the submit deadline.
    SubmitTimeout,
    /// The server has been shut down; no new requests are accepted.
    Shutdown,
    /// The request was admitted but the server stopped serving it —
    /// its worker panicked mid-pass, or every worker died before the
    /// queue drained. The handle resolves instead of hanging.
    Aborted,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Session(e) => write!(f, "session error: {e}"),
            ServeError::QueueFull => write!(f, "admission queue is full"),
            ServeError::SubmitTimeout => write!(f, "admission queue stayed full past the deadline"),
            ServeError::Shutdown => write!(f, "server has been shut down"),
            ServeError::Aborted => write!(f, "server stopped before serving this request"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// The slot a worker fulfills and a [`Pending`] waits on.
#[derive(Default)]
pub(crate) struct PendingShared {
    slot: Mutex<Option<Result<ServeReport, ServeError>>>,
    ready: Condvar,
}

impl PendingShared {
    /// First writer wins: the worker's real result normally, or the
    /// [`ServeError::Aborted`] safety net from [`batch::Request`]'s
    /// drop guard when a worker dies mid-pass. Later calls are no-ops,
    /// so a waiter never sees two results and never hangs.
    pub(crate) fn fulfill(&self, result: Result<ServeReport, ServeError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }
}

/// A typed handle to one in-flight request. Obtained from the
/// [`Client`] submit family; redeemed with [`Pending::wait`] (blocking)
/// or [`Pending::wait_timeout`].
pub struct Pending {
    shared: Arc<PendingShared>,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl Pending {
    /// True once the result is available ([`Pending::wait`] would
    /// return without blocking).
    pub fn is_ready(&self) -> bool {
        self.shared.slot.lock().unwrap().is_some()
    }

    /// Blocks until the request completes and returns its report.
    pub fn wait(self) -> Result<ServeReport, ServeError> {
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.shared.ready.wait(slot).unwrap();
        }
    }

    /// Blocks up to `timeout` for the result. On expiry the handle is
    /// returned so the caller can keep waiting (or drop it — the
    /// request still executes; its result is simply discarded).
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<ServeReport, ServeError>, Pending> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return Ok(result);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            let (next, _) = self
                .shared
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap();
            slot = next;
        }
    }
}

/// State shared by the server handle, every client, and every worker.
pub(crate) struct Shared {
    pub session: Session,
    pub queue: SyncQueue<Request>,
    pub stats: AtomicServerStats,
    pub latency: LatencyHistogram,
    /// Latency of retry re-executions alone (end-to-end latency of a
    /// retried request still lands in `latency`).
    pub retry_latency: LatencyHistogram,
    /// Largest declared bucket — the coalescing row budget.
    pub largest_bucket: usize,
    /// How long a worker holding a partially-filled bucket waits for
    /// more compatible requests before executing.
    pub coalesce_window: Duration,
    /// Transparently re-run a request whose pass resolved with an
    /// unrepaired fault verdict before fulfilling its handle.
    pub retry_on_verdict: bool,
}

/// A cloneable submission handle to a [`Server`]. Clients stay valid
/// after the server shuts down (submissions then fail with
/// [`ServeError::Shutdown`]).
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

enum Admission {
    Block,
    Try,
    Deadline(Duration),
}

impl Client {
    /// Submits one request, blocking while the admission queue is full.
    /// The returned [`Pending`] resolves once a worker has served it.
    pub fn submit(&self, input: &Matrix) -> Result<Pending, ServeError> {
        self.enqueue(input, None, Admission::Block)
    }

    /// Submits without blocking; a full queue is reported as
    /// [`ServeError::QueueFull`] (the request is *not* admitted).
    pub fn try_submit(&self, input: &Matrix) -> Result<Pending, ServeError> {
        self.enqueue(input, None, Admission::Try)
    }

    /// Submits, blocking up to `timeout` for queue room; expiry is
    /// reported as [`ServeError::SubmitTimeout`].
    pub fn submit_timeout(&self, input: &Matrix, timeout: Duration) -> Result<Pending, ServeError> {
        self.enqueue(input, None, Admission::Deadline(timeout))
    }

    /// Submits a request with an injected fault (the §2.3 single-fault
    /// model, aimed at one layer of this request). Faulted requests are
    /// never coalesced — the fault plan's coordinates address one
    /// bucket-shaped kernel launch, so the request runs a pass of its
    /// own. Blocking admission.
    pub fn submit_with_fault(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
    ) -> Result<Pending, ServeError> {
        self.enqueue(input, fault, Admission::Block)
    }

    fn enqueue(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
        admission: Admission,
    ) -> Result<Pending, ServeError> {
        let shared = &*self.shared;
        let state = Arc::new(PendingShared::default());
        let request = Request {
            input: input.clone(),
            fault,
            enqueued: Instant::now(),
            state: Some(state.clone()),
        };
        let outcome =
            match admission {
                Admission::Block => shared.queue.push(request).map_err(|_| ServeError::Shutdown),
                Admission::Try => shared.queue.try_push(request).map_err(|e| match e {
                    PushError::Full(_) => ServeError::QueueFull,
                    PushError::Closed(_) => ServeError::Shutdown,
                }),
                Admission::Deadline(timeout) => shared
                    .queue
                    .push_timeout(request, timeout)
                    .map_err(|e| match e {
                        PushError::Full(_) => ServeError::SubmitTimeout,
                        PushError::Closed(_) => ServeError::Shutdown,
                    }),
            };
        match outcome {
            Ok(()) => {
                AtomicServerStats::bump(&shared.stats.submitted);
                AtomicServerStats::ratchet(
                    &shared.stats.max_queue_depth,
                    shared.queue.len() as u64,
                );
                Ok(Pending { shared: state })
            }
            Err(e) => {
                AtomicServerStats::bump(&shared.stats.rejected);
                Err(e)
            }
        }
    }
}

/// Builder for [`Server`]s.
pub struct ServerBuilder {
    session: Session,
    workers: usize,
    queue_capacity: usize,
    coalesce_window: Duration,
    retry_on_verdict: bool,
}

impl ServerBuilder {
    /// Number of worker threads executing pipeline passes (default 2;
    /// must be >= 1).
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "a server needs at least one worker");
        self.workers = workers;
        self
    }

    /// Admission queue capacity — the backpressure bound (default 64;
    /// must be >= 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        self.queue_capacity = capacity;
        self
    }

    /// How long a worker holding a partially-filled batch bucket waits
    /// for more compatible requests before executing (default 0: batch
    /// only what is already queued, adding zero latency).
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.coalesce_window = window;
        self
    }

    /// Enables transparent retry-on-verdict: a request whose pass
    /// resolves with an *unrepaired* fault verdict (detected, and not
    /// corrected in place) is re-executed solo on a fresh pass before
    /// its handle resolves — under the §2.3 transient single-fault
    /// model the re-execution is clean. Retries are counted in
    /// [`ServerStats::retries`] with their own latency percentiles.
    /// Off by default.
    pub fn retry_on_verdict(mut self, on: bool) -> Self {
        self.retry_on_verdict = on;
        self
    }

    /// Spawns the workers and opens the doors.
    pub fn build(self) -> Server {
        let largest_bucket = *self
            .session
            .buckets()
            .last()
            .expect("sessions declare at least one bucket") as usize;
        let shared = Arc::new(Shared {
            session: self.session,
            queue: SyncQueue::bounded(self.queue_capacity),
            stats: AtomicServerStats::default(),
            latency: LatencyHistogram::new(),
            retry_latency: LatencyHistogram::new(),
            largest_bucket,
            coalesce_window: self.coalesce_window,
            retry_on_verdict: self.retry_on_verdict,
        });
        let workers = (0..self.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("aiga-serve-{i}"))
                    .spawn(move || batch::worker_loop(&shared))
                    .expect("spawn server worker")
            })
            .collect();
        Server { shared, workers }
    }
}

/// A concurrent serving front-end over one [`Session`]: bounded
/// admission, dynamic batching into the planner's buckets, N worker
/// threads, graceful drain on shutdown. See the [module docs](self).
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts building a server around a session.
    pub fn builder(session: Session) -> ServerBuilder {
        ServerBuilder {
            session,
            workers: 2,
            queue_capacity: 64,
            coalesce_window: Duration::ZERO,
            retry_on_verdict: false,
        }
    }

    /// A session with default server settings (2 workers, queue of 64,
    /// no coalesce window).
    pub fn wrap(session: Session) -> Server {
        Self::builder(session).build()
    }

    /// A new submission handle. Clients are cheap to clone and safe to
    /// move to other threads.
    pub fn client(&self) -> Client {
        Client {
            shared: self.shared.clone(),
        }
    }

    /// The wrapped session (e.g. for plan inspection via
    /// [`Session::plan_for_bucket`]).
    pub fn session(&self) -> &Session {
        &self.shared.session
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// A statistics snapshot: server counters, live queue depth,
    /// latency percentiles, and the wrapped session's counters.
    pub fn stats(&self) -> ServerStats {
        Self::stats_of(&self.shared)
    }

    fn stats_of(shared: &Shared) -> ServerStats {
        let mut stats = shared.stats.snapshot();
        stats.queue_depth = shared.queue.len() as u64;
        stats.p50_latency_ns = shared.latency.p50_ns();
        stats.p95_latency_ns = shared.latency.p95_ns();
        stats.p99_latency_ns = shared.latency.p99_ns();
        stats.retry_p50_latency_ns = shared.retry_latency.p50_ns();
        stats.retry_p95_latency_ns = shared.retry_latency.p95_ns();
        stats.retry_p99_latency_ns = shared.retry_latency.p99_ns();
        stats.session = shared.session.stats();
        stats
    }

    /// Graceful shutdown: closes admission (further submissions fail
    /// with [`ServeError::Shutdown`]), lets the workers drain every
    /// already-admitted request, joins them, and returns the final
    /// statistics. Every outstanding [`Pending`] resolves.
    pub fn shutdown(mut self) -> ServerStats {
        self.halt();
        Self::stats_of(&self.shared)
    }

    fn halt(&mut self) {
        self.shared.queue.close();
        let mut worker_panic = None;
        for worker in self.workers.drain(..) {
            if let Err(payload) = worker.join() {
                worker_panic = Some(payload);
            }
        }
        // If every worker died, the queue may still hold admitted
        // requests; dropping them resolves their handles to `Aborted`
        // (no waiter is left hanging).
        while self.shared.queue.try_pop().is_some() {}
        // Surface a worker panic to the shutdown caller — but never
        // panic inside a Drop that is itself part of an unwind (that
        // would abort the process).
        if let Some(payload) = worker_panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for Server {
    /// Dropping the server without an explicit [`Server::shutdown`]
    /// still drains and joins — no detached threads, no lost requests.
    fn drop(&mut self) {
        self.halt();
    }
}
