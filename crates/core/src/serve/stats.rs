//! Server-level statistics: lock-free counters plus the latency
//! histogram, snapshotted into a plain [`ServerStats`] on demand.

use crate::session::SessionStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate statistics over a server's lifetime. All latencies come
/// from the log2 histogram, so the reported percentiles are upper
/// bounds within 2× of the true end-to-end (enqueue → scatter) latency.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests completed successfully (result delivered to the handle).
    pub completed: u64,
    /// Requests that failed at the session layer (e.g. feature
    /// mismatch); their handles resolve to `Err`.
    pub failed: u64,
    /// Submissions turned away at admission (`QueueFull`, submit
    /// deadline expiry, or submission after shutdown).
    pub rejected: u64,
    /// Serve passes dispatched to the session — one per coalesced
    /// batch. An oversized request the session internally splits into
    /// bucket-sized chunks still counts as one dispatch here; the
    /// per-chunk pipeline passes show up in `session.requests`.
    pub batches: u64,
    /// Requests that were served *coalesced* — sharing a pipeline pass
    /// with at least one other request.
    pub coalesced_requests: u64,
    /// Largest number of requests coalesced into one dispatch.
    pub max_batch_requests: u64,
    /// Largest total row count handed to one dispatch (an oversized
    /// solo request counts its full row span, even though the session
    /// executes it as several bucket-sized chunks).
    pub max_batch_rows: u64,
    /// Queue depth at the moment of this snapshot.
    pub queue_depth: u64,
    /// High-water mark of the admission queue depth.
    pub max_queue_depth: u64,
    /// Median end-to-end request latency, ns (0 until a request
    /// completes).
    pub p50_latency_ns: u64,
    /// 95th-percentile end-to-end request latency, ns.
    pub p95_latency_ns: u64,
    /// 99th-percentile end-to-end request latency, ns.
    pub p99_latency_ns: u64,
    /// Requests transparently re-executed because their first pass
    /// resolved with an unrepaired fault verdict
    /// ([`crate::serve::ServerBuilder::retry_on_verdict`]).
    pub retries: u64,
    /// Median latency of the retry re-execution alone, ns (0 until a
    /// retry happens).
    pub retry_p50_latency_ns: u64,
    /// 95th-percentile retry re-execution latency, ns.
    pub retry_p95_latency_ns: u64,
    /// 99th-percentile retry re-execution latency, ns.
    pub retry_p99_latency_ns: u64,
    /// Retry attempts per declared bucket, as `(bucket, attempts)`
    /// pairs aligned with the session's buckets (only buckets that
    /// retried appear). The sum over all buckets equals `retries`.
    pub retry_attempts_by_bucket: Vec<(u64, u64)>,
    /// Requests served under a *degraded* (one-rung-cheaper) scheme
    /// assignment because queue age crossed the server's
    /// `degrade_after` threshold. Output bytes are unaffected — only
    /// protection coverage is traded for execution time.
    pub degraded: u64,
    /// Requests shed under overload with
    /// [`crate::serve::ServeError::Overloaded`]: turned away at
    /// admission or expired in the queue past `shed_after` (or their
    /// own SLO deadline).
    pub shed: u64,
    /// Requests resolved with [`crate::serve::ServeError::Cancelled`]
    /// after [`crate::serve::Pending::cancel`] — their batch slot was
    /// reclaimed without running a pass.
    pub cancelled: u64,
    /// Worker threads the supervisor respawned after a panic.
    pub worker_restarts: u64,
    /// The wrapped session's own counters (note: the session counts
    /// coalesced passes, not server requests — `session.requests` is
    /// the number of pipeline-facing serves).
    pub session: SessionStats,
}

/// The live counters behind [`ServerStats`]. Plain relaxed atomics:
/// bookkeeping never contends with request execution.
#[derive(Default)]
pub(crate) struct AtomicServerStats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub batches: AtomicU64,
    pub coalesced_requests: AtomicU64,
    pub max_batch_requests: AtomicU64,
    pub max_batch_rows: AtomicU64,
    pub max_queue_depth: AtomicU64,
    pub retries: AtomicU64,
    pub degraded: AtomicU64,
    pub shed: AtomicU64,
    pub cancelled: AtomicU64,
    pub worker_restarts: AtomicU64,
}

impl AtomicServerStats {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn ratchet(counter: &AtomicU64, observed: u64) {
        counter.fetch_max(observed, Ordering::Relaxed);
    }

    /// Snapshot of the counters alone; the caller fills in queue depth,
    /// latency percentiles, and the session snapshot.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
            max_batch_requests: self.max_batch_requests.load(Ordering::Relaxed),
            max_batch_rows: self.max_batch_rows.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            ..ServerStats::default()
        }
    }
}
