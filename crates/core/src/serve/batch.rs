//! The dynamic batcher: worker loop, coalescing policy, and the
//! scatter of per-request reports.
//!
//! A worker pops the queue head, then *coalesces*: it keeps taking
//! compatible neighbors (same feature width, no injected fault, total
//! rows within the largest declared bucket) from the queue front until
//! the bucket is full, the queue runs dry (plus an optional wait
//! window), or an incompatible head is reached — FIFO order is never
//! violated. The stacked rows run ONE `Session::serve` pass, and each
//! member gets its row slice back as a private [`ServeReport`].
//!
//! Correctness leans on an engine invariant the session's split path
//! already depends on: per-row outputs are bit-identical across batch
//! paddings and tilings (accumulators are row-independent), so a
//! coalesced member's bytes equal a direct solo serve of it.

use super::{AtomicServerStats, PendingShared, ServeError, Shared};
use crate::pipeline::{InferenceReport, PipelineFault};
use crate::session::ServeReport;
use aiga_gpu::engine::Matrix;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One queued request: the caller's input copy, the optional injected
/// fault, the admission timestamp (end-to-end latency starts here), and
/// the handle slot to fulfill. The slot is `Option`al so [`finish`] can
/// take it for the real result; a request dropped with the slot still
/// in place (worker panic mid-pass, or queue leftovers after every
/// worker died) resolves its handle to [`ServeError::Aborted`] instead
/// of leaving the waiter hanging.
pub(crate) struct Request {
    pub input: Matrix,
    pub fault: Option<PipelineFault>,
    pub enqueued: Instant,
    pub state: Option<Arc<PendingShared>>,
}

impl Drop for Request {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            state.fulfill(Err(ServeError::Aborted));
        }
    }
}

/// A worker thread's life: pop, coalesce, execute, scatter — until the
/// queue closes and drains.
pub(crate) fn worker_loop(shared: &Shared) {
    // Per-worker reusable buffers: the member list and the stacked
    // input. Both ratchet to their high-water mark, so the steady state
    // stacks without heap traffic.
    let mut members: Vec<Request> = Vec::new();
    let mut stacked = Matrix::default();
    while let Some(first) = shared.queue.pop() {
        collect_batch(shared, first, &mut members);
        execute_batch(shared, &mut members, &mut stacked);
    }
}

/// True when `candidate` may share a pass with a batch of `cols`-wide
/// requests currently holding `rows` rows.
fn compatible(candidate: &Request, cols: usize, rows: usize, largest: usize) -> bool {
    candidate.fault.is_none()
        && candidate.input.cols == cols
        && rows + candidate.input.rows <= largest
}

/// Starting from the popped `first` request, drains compatible
/// neighbors into `members` (clearing it first).
fn collect_batch(shared: &Shared, first: Request, members: &mut Vec<Request>) {
    members.clear();
    let largest = shared.largest_bucket;
    let cols = first.input.cols;
    let mut rows = first.input.rows;
    // Faulted requests run solo (fault coordinates address one launch);
    // bucket-filling or oversized requests have no room to share.
    let solo = first.fault.is_some() || rows >= largest;
    members.push(first);
    if solo {
        return;
    }
    let deadline =
        (shared.coalesce_window > Duration::ZERO).then(|| Instant::now() + shared.coalesce_window);
    loop {
        if let Some(next) = shared
            .queue
            .try_pop_if(|r| compatible(r, cols, rows, largest))
        {
            rows += next.input.rows;
            members.push(next);
            if rows >= largest {
                return;
            }
            continue;
        }
        // Nothing compatible is queued right now. Optionally wait for
        // late arrivals — but only while the *current* bucket still has
        // spare padding rows to fill (growing past it is free: the pass
        // would pad to that bucket anyway).
        let Some(deadline) = deadline else { return };
        if rows >= shared.session.bucket_for(rows) as usize {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        match shared
            .queue
            .pop_timeout_if(deadline - now, |r| compatible(r, cols, rows, largest))
        {
            Some(next) => {
                rows += next.input.rows;
                members.push(next);
                if rows >= largest {
                    return;
                }
            }
            // Timeout, close, or an incompatible head arrived.
            None => return,
        }
    }
}

/// Runs one pipeline pass over the collected members and scatters the
/// per-request reports. `members` is drained; `stacked` is the reused
/// row-stacking buffer.
fn execute_batch(shared: &Shared, members: &mut Vec<Request>, stacked: &mut Matrix) {
    let stats = &shared.stats;
    AtomicServerStats::bump(&stats.batches);
    AtomicServerStats::ratchet(&stats.max_batch_requests, members.len() as u64);

    if members.len() == 1 {
        let request = members.pop().expect("one member");
        AtomicServerStats::ratchet(&stats.max_batch_rows, request.input.rows as u64);
        let result = shared
            .session
            .serve_with_fault(&request.input, request.fault)
            .map_err(ServeError::Session);
        finish(shared, request, result);
        return;
    }

    // Stack member rows into one contiguous request. The buffer is
    // reused across batches; its capacity ratchets to the largest
    // bucket's footprint and then stacking is allocation-free.
    let total_rows: usize = members.iter().map(|r| r.input.rows).sum();
    stacked.rows = total_rows;
    stacked.cols = members[0].input.cols;
    stacked.data.clear();
    for member in members.iter() {
        stacked.data.extend_from_slice(&member.input.data);
    }
    AtomicServerStats::ratchet(&stats.max_batch_rows, total_rows as u64);
    AtomicServerStats::add(&stats.coalesced_requests, members.len() as u64);

    match shared.session.serve(stacked) {
        Ok(batch_report) => {
            let features_out = batch_report.report.output.len() / total_rows;
            let mut row = 0;
            for member in members.drain(..) {
                let rows = member.input.rows;
                let output = batch_report.report.output
                    [row * features_out..(row + rows) * features_out]
                    .to_vec();
                row += rows;
                // Detections and corrections are batch-scoped (a
                // detected fault taints the whole pass), so every
                // member is flagged.
                let report = ServeReport {
                    bucket: batch_report.bucket,
                    rows,
                    schemes: batch_report.schemes.clone(),
                    report: InferenceReport {
                        output,
                        detections: batch_report.report.detections.clone(),
                        corrections: batch_report.report.corrections.clone(),
                    },
                };
                finish(shared, member, Ok(report));
            }
        }
        Err(e) => {
            // All members share the feature width, so a session error
            // for the stack is the same error each would get alone.
            for member in members.drain(..) {
                finish(shared, member, Err(ServeError::Session(e.clone())));
            }
        }
    }
}

/// Books one finished request and fulfills its handle — after the
/// transparent retry, when enabled: a pass that resolved with an
/// *unrepaired* fault verdict (detected but not corrected in place)
/// re-executes the request solo on a fresh pass, and the handle gets
/// the re-execution's result. Under the §2.3 transient single-fault
/// model the retry is clean (injected faults address the original
/// launch only), so the caller never observes the tainted output.
fn finish(shared: &Shared, mut request: Request, result: Result<ServeReport, ServeError>) {
    let result = match result {
        Ok(report) if shared.retry_on_verdict && report.report.fault_detected() => {
            AtomicServerStats::bump(&shared.stats.retries);
            let started = Instant::now();
            let retried = shared
                .session
                .serve(&request.input)
                .map_err(ServeError::Session);
            shared.retry_latency.record(started.elapsed());
            retried
        }
        other => other,
    };
    shared.latency.record(request.enqueued.elapsed());
    AtomicServerStats::bump(if result.is_ok() {
        &shared.stats.completed
    } else {
        &shared.stats.failed
    });
    let state = request.state.take().expect("a request is finished once");
    state.fulfill(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use crate::serve::Server;
    use crate::session::Session;
    use aiga_gpu::DeviceSpec;
    use aiga_nn::zoo;

    fn session() -> Session {
        Session::builder(
            Planner::new(DeviceSpec::t4()),
            "dlrm-mlp-bottom",
            zoo::dlrm_mlp_bottom,
        )
        .buckets([8, 32])
        .seed(7)
        .build()
    }

    #[test]
    fn compatibility_respects_cols_rows_and_faults() {
        let req = |rows: usize, cols: usize| Request {
            input: Matrix::zeros(rows, cols),
            fault: None,
            enqueued: Instant::now(),
            state: Some(Arc::new(PendingShared::default())),
        };
        assert!(compatible(&req(4, 13), 13, 8, 32));
        assert!(!compatible(&req(4, 9), 13, 8, 32), "feature width differs");
        assert!(!compatible(&req(25, 13), 13, 8, 32), "overflows the bucket");
        assert!(compatible(&req(24, 13), 13, 8, 32), "exactly fills");
        let mut faulted = req(4, 13);
        faulted.fault = Some(PipelineFault {
            layer: 0,
            fault: aiga_gpu::engine::FaultPlan {
                row: 0,
                col: 0,
                after_step: 0,
                kind: aiga_gpu::engine::FaultKind::AddValue(1.0),
            },
        });
        assert!(
            !compatible(&faulted, 13, 8, 32),
            "faulted requests run solo"
        );
    }

    #[test]
    fn single_request_round_trip_through_the_server() {
        let server = Server::builder(session()).workers(1).build();
        let client = server.client();
        let reply = client
            .submit(&Matrix::random(3, 13, 5))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.rows, 3);
        assert_eq!(reply.bucket, 8);
        assert_eq!(reply.report.output.len(), 3 * 64);
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.coalesced_requests, 0);
        assert_eq!(stats.max_batch_rows, 3);
        assert!(stats.p50_latency_ns > 0);
    }

    #[test]
    fn feature_mismatch_surfaces_through_the_handle() {
        let server = Server::builder(session()).workers(1).build();
        let err = server
            .client()
            .submit(&Matrix::random(3, 9, 5))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Session(crate::session::SessionError::FeatureMismatch {
                observed: 9,
                expected: 13
            })
        ));
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let server = Server::wrap(session());
        let client = server.client();
        server.shutdown();
        let err = client.submit(&Matrix::random(3, 13, 5)).unwrap_err();
        assert_eq!(err, ServeError::Shutdown);
        let err = client.try_submit(&Matrix::random(3, 13, 5)).unwrap_err();
        assert_eq!(err, ServeError::Shutdown);
    }

    #[test]
    fn wait_timeout_hands_the_pending_back_until_ready() {
        let server = Server::builder(session()).workers(1).build();
        let client = server.client();
        // A deliberately large request keeps the worker busy long
        // enough for a zero-timeout wait to miss.
        let pending = client.submit(&Matrix::random(64, 13, 5)).unwrap();
        let pending = match pending.wait_timeout(Duration::ZERO) {
            Err(p) => p,
            Ok(_) => return, // machine fast enough to finish: nothing to assert
        };
        let reply = pending.wait().unwrap();
        assert_eq!(reply.rows, 64);
        server.shutdown();
    }
}
