//! The dynamic batcher: worker loop, coalescing policy, and the
//! scatter of per-request reports.
//!
//! A worker pops the queue head, then *coalesces*: it keeps taking
//! compatible neighbors (same feature width, no injected fault, total
//! rows within the largest declared bucket) from the queue front until
//! the bucket is full, the queue runs dry (plus an optional wait
//! window), or an incompatible head is reached — FIFO order is never
//! violated. The stacked rows run ONE `Session::serve` pass, and each
//! member gets its row slice back as a private [`ServeReport`].
//!
//! Correctness leans on an engine invariant the session's split path
//! already depends on: per-row outputs are bit-identical across batch
//! paddings and tilings (accumulators are row-independent), so a
//! coalesced member's bytes equal a direct solo serve of it.

use super::{AtomicServerStats, PendingShared, Priority, ServeError, Shared, Slo};
use crate::pipeline::{InferenceReport, PipelineFault};
use crate::session::{ServeReport, Session};
use aiga_gpu::engine::Matrix;
use aiga_util::Rng64;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One queued request: the caller's input copy, the optional injected
/// fault, the admission timestamp (end-to-end latency starts here), and
/// the handle slot to fulfill. The slot is `Option`al so [`finish`] can
/// take it for the real result; a request dropped with the slot still
/// in place (worker panic mid-pass, or queue leftovers after every
/// worker died) resolves its handle to [`ServeError::Aborted`] instead
/// of leaving the waiter hanging.
pub(crate) struct Request {
    pub input: Matrix,
    pub fault: Option<PipelineFault>,
    pub slo: Slo,
    /// Chaos hook: a worker *panics* on this request instead of serving
    /// it (see `Client::inject_worker_panic`).
    pub poison: bool,
    pub enqueued: Instant,
    pub state: Option<Arc<PendingShared>>,
}

impl Request {
    fn is_cancelled(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.is_cancelled())
    }
}

impl Drop for Request {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            state.fulfill(Err(ServeError::Aborted));
        }
    }
}

/// A worker thread's life: pop, triage, coalesce, execute, scatter —
/// until the queue closes and drains. Each worker serves through its
/// own [`Session::shard`]: the compiled plans are shared (built once),
/// the workspace pool is private, so concurrent passes never contend
/// on one pool mutex.
pub(crate) fn worker_loop(shared: &Shared, worker_id: u64) {
    let session = shared.session.shard();
    // Per-worker jitter source for retry backoff (decorrelates retry
    // storms across workers).
    let mut rng = Rng64::seed_from_u64(0xa16a_5e17e ^ worker_id);
    // Per-worker reusable buffers: the member list and the stacked
    // input. Both ratchet to their high-water mark, so the steady state
    // stacks without heap traffic.
    let mut members: Vec<Request> = Vec::new();
    let mut stacked = Matrix::default();
    while let Some(first) = shared.queue.pop() {
        let Some(first) = triage(shared, first) else {
            continue;
        };
        let degraded = should_degrade(shared, &first);
        collect_batch(shared, &session, first, &mut members, degraded);
        execute_batch(
            shared,
            &session,
            &mut members,
            &mut stacked,
            degraded,
            &mut rng,
        );
    }
}

/// The popped queue head meets the overload policy: cancelled requests
/// resolve to [`ServeError::Cancelled`] without a pass, requests that
/// aged past their own SLO deadline — or past the server's `shed_after`
/// (non-`High` only) — resolve to [`ServeError::Overloaded`]. Returns
/// the request only if it should still be served. Poison requests
/// panic here, exercising the supervisor's self-healing path (the drop
/// guard resolves the handle to `Aborted` during unwind).
fn triage(shared: &Shared, mut request: Request) -> Option<Request> {
    if request.poison {
        panic!("injected worker panic (chaos hook)");
    }
    if request.is_cancelled() {
        AtomicServerStats::bump(&shared.stats.cancelled);
        let state = request.state.take().expect("unresolved request");
        state.fulfill(Err(ServeError::Cancelled));
        return None;
    }
    let age = request.enqueued.elapsed();
    let past_own_deadline = request.slo.deadline.is_some_and(|d| age >= d);
    let shed_threshold = match request.slo.priority {
        Priority::High => None,
        // Low-priority work is shed one threshold earlier: the load it
        // releases is headroom for everyone else.
        Priority::Low => shared.degrade_after.or(shared.shed_after),
        Priority::Normal => shared.shed_after,
    };
    if past_own_deadline || shed_threshold.is_some_and(|t| age >= t) {
        AtomicServerStats::bump(&shared.stats.shed);
        let state = request.state.take().expect("unresolved request");
        state.fulfill(Err(ServeError::Overloaded { queue_age: age }));
        return None;
    }
    Some(request)
}

/// Whether this batch should run under the degraded (one-rung-cheaper)
/// scheme assignment: the head request aged past `degrade_after`, is
/// not `High` priority, and carries no injected fault (fault passes
/// must keep their planned detection coverage).
fn should_degrade(shared: &Shared, first: &Request) -> bool {
    first.fault.is_none()
        && first.slo.priority != Priority::High
        && shared
            .degrade_after
            .is_some_and(|d| first.enqueued.elapsed() >= d)
}

/// True when `candidate` may share a pass with a batch of `cols`-wide
/// requests currently holding `rows` rows. Cancelled and poison
/// requests never coalesce (the worker triages them solo), and a
/// *degraded* batch never absorbs a `High`-priority request (those are
/// exempt from degradation).
fn compatible(
    candidate: &Request,
    cols: usize,
    rows: usize,
    largest: usize,
    degraded: bool,
) -> bool {
    let runs_solo = candidate.fault.is_some()
        || candidate.poison
        || candidate.is_cancelled()
        || (degraded && candidate.slo.priority == Priority::High);
    !runs_solo && candidate.input.cols == cols && rows + candidate.input.rows <= largest
}

/// Starting from the popped `first` request, drains compatible
/// neighbors into `members` (clearing it first).
fn collect_batch(
    shared: &Shared,
    session: &Session,
    first: Request,
    members: &mut Vec<Request>,
    degraded: bool,
) {
    members.clear();
    let largest = shared.largest_bucket;
    let cols = first.input.cols;
    let mut rows = first.input.rows;
    // Faulted requests run solo (fault coordinates address one launch);
    // bucket-filling or oversized requests have no room to share.
    let solo = first.fault.is_some() || rows >= largest;
    members.push(first);
    if solo {
        return;
    }
    let deadline =
        (shared.coalesce_window > Duration::ZERO).then(|| Instant::now() + shared.coalesce_window);
    loop {
        if let Some(next) = shared
            .queue
            .try_pop_if(|r| compatible(r, cols, rows, largest, degraded))
        {
            rows += next.input.rows;
            members.push(next);
            if rows >= largest {
                return;
            }
            continue;
        }
        // Nothing compatible is queued right now. Optionally wait for
        // late arrivals — but only while the *current* bucket still has
        // spare padding rows to fill (growing past it is free: the pass
        // would pad to that bucket anyway).
        let Some(deadline) = deadline else { return };
        if rows >= session.bucket_for(rows) as usize {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        match shared.queue.pop_timeout_if(deadline - now, |r| {
            compatible(r, cols, rows, largest, degraded)
        }) {
            Some(next) => {
                rows += next.input.rows;
                members.push(next);
                if rows >= largest {
                    return;
                }
            }
            // Timeout, close, or an incompatible head arrived.
            None => return,
        }
    }
}

/// Runs one pipeline pass over the collected members — degraded (one
/// scheme rung cheaper, identical output bytes) when the batch head
/// aged past `degrade_after` — and scatters the per-request reports.
/// `members` is drained; `stacked` is the reused row-stacking buffer.
fn execute_batch(
    shared: &Shared,
    session: &Session,
    members: &mut Vec<Request>,
    stacked: &mut Matrix,
    degraded: bool,
    rng: &mut Rng64,
) {
    let stats = &shared.stats;
    AtomicServerStats::bump(&stats.batches);
    AtomicServerStats::ratchet(&stats.max_batch_requests, members.len() as u64);

    if members.len() == 1 {
        let request = members.pop().expect("one member");
        AtomicServerStats::ratchet(&stats.max_batch_rows, request.input.rows as u64);
        let result = if degraded {
            session.serve_degraded(&request.input)
        } else {
            session.serve_with_fault(&request.input, request.fault)
        }
        .map_err(ServeError::Session);
        if degraded && result.is_ok() {
            AtomicServerStats::bump(&stats.degraded);
        }
        finish(shared, session, request, result, rng);
        return;
    }

    // Stack member rows into one contiguous request. The buffer is
    // reused across batches; its capacity ratchets to the largest
    // bucket's footprint and then stacking is allocation-free.
    let total_rows: usize = members.iter().map(|r| r.input.rows).sum();
    stacked.rows = total_rows;
    stacked.cols = members[0].input.cols;
    stacked.data.clear();
    for member in members.iter() {
        stacked.data.extend_from_slice(&member.input.data);
    }
    AtomicServerStats::ratchet(&stats.max_batch_rows, total_rows as u64);
    AtomicServerStats::add(&stats.coalesced_requests, members.len() as u64);

    let batch_result = if degraded {
        session.serve_degraded(stacked)
    } else {
        session.serve(stacked)
    };
    match batch_result {
        Ok(batch_report) => {
            if degraded {
                AtomicServerStats::add(&stats.degraded, members.len() as u64);
            }
            let features_out = batch_report.report.output.len() / total_rows;
            let mut row = 0;
            for member in members.drain(..) {
                let rows = member.input.rows;
                let output = batch_report.report.output
                    [row * features_out..(row + rows) * features_out]
                    .to_vec();
                row += rows;
                // Detections and corrections are batch-scoped (a
                // detected fault taints the whole pass), so every
                // member is flagged.
                let report = ServeReport {
                    bucket: batch_report.bucket,
                    rows,
                    schemes: batch_report.schemes.clone(),
                    report: InferenceReport {
                        output,
                        detections: batch_report.report.detections.clone(),
                        corrections: batch_report.report.corrections.clone(),
                    },
                };
                finish(shared, session, member, Ok(report), rng);
            }
        }
        Err(e) => {
            // All members share the feature width, so a session error
            // for the stack is the same error each would get alone.
            for member in members.drain(..) {
                finish(
                    shared,
                    session,
                    member,
                    Err(ServeError::Session(e.clone())),
                    rng,
                );
            }
        }
    }
}

/// Books one finished request and fulfills its handle — after the
/// transparent bounded retry, when enabled: a pass that resolved with
/// an *unrepaired* fault verdict (detected but not corrected in place)
/// re-executes the request solo, up to `max_attempts` times with
/// jittered exponential backoff, and the handle gets the last
/// re-execution's result. Under the §2.3 transient single-fault model
/// the first retry is already clean (injected faults address the
/// original launch only), so the caller never observes tainted output.
fn finish(
    shared: &Shared,
    session: &Session,
    mut request: Request,
    result: Result<ServeReport, ServeError>,
    rng: &mut Rng64,
) {
    let result = match result {
        Ok(report) if shared.retry.is_some() && report.report.fault_detected() => {
            retry(shared, session, &request, report, rng)
        }
        other => other,
    };
    shared.latency.record(request.enqueued.elapsed());
    AtomicServerStats::bump(if result.is_ok() {
        &shared.stats.completed
    } else {
        &shared.stats.failed
    });
    let state = request.state.take().expect("a request is finished once");
    state.fulfill(result);
}

/// The bounded retry loop behind [`finish`]. Each attempt is counted
/// globally (`retries`) and per bucket (`retry_attempts_by_bucket`);
/// the delay before attempt *k* is `base_delay · 2^(k-1)`, jittered to
/// 50–150% so synchronized verdicts across workers do not retry in
/// lockstep.
fn retry(
    shared: &Shared,
    session: &Session,
    request: &Request,
    first: ServeReport,
    rng: &mut Rng64,
) -> Result<ServeReport, ServeError> {
    let policy = shared.retry.expect("retry policy enabled");
    let bucket_slot = session.buckets().iter().position(|&b| b == first.bucket);
    let mut last = Ok(first);
    for attempt in 0..policy.max_attempts {
        match &last {
            Ok(report) if report.report.fault_detected() => {}
            _ => break, // clean (or a session error retries cannot fix)
        }
        AtomicServerStats::bump(&shared.stats.retries);
        if let Some(i) = bucket_slot {
            AtomicServerStats::bump(&shared.retry_by_bucket[i]);
        }
        if !policy.base_delay.is_zero() {
            let backoff = policy.base_delay * (1u32 << attempt.min(16));
            std::thread::sleep(backoff.mul_f64(0.5 + rng.gen_f64()));
        }
        let started = Instant::now();
        last = session.serve(&request.input).map_err(ServeError::Session);
        shared.retry_latency.record(started.elapsed());
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use crate::serve::Server;
    use crate::session::Session;
    use aiga_gpu::DeviceSpec;
    use aiga_nn::zoo;

    fn session() -> Session {
        Session::builder(
            Planner::new(DeviceSpec::t4()),
            "dlrm-mlp-bottom",
            zoo::dlrm_mlp_bottom,
        )
        .buckets([8, 32])
        .seed(7)
        .build()
    }

    #[test]
    fn compatibility_respects_cols_rows_and_faults() {
        let req = |rows: usize, cols: usize| Request {
            input: Matrix::zeros(rows, cols),
            fault: None,
            slo: Slo::default(),
            poison: false,
            enqueued: Instant::now(),
            state: Some(Arc::new(PendingShared::default())),
        };
        assert!(compatible(&req(4, 13), 13, 8, 32, false));
        assert!(
            !compatible(&req(4, 9), 13, 8, 32, false),
            "feature width differs"
        );
        assert!(
            !compatible(&req(25, 13), 13, 8, 32, false),
            "overflows the bucket"
        );
        assert!(compatible(&req(24, 13), 13, 8, 32, false), "exactly fills");
        let mut high = req(4, 13);
        high.slo.priority = Priority::High;
        assert!(compatible(&high, 13, 8, 32, false));
        assert!(
            !compatible(&high, 13, 8, 32, true),
            "high priority never joins a degraded batch"
        );
        let cancelled = req(4, 13);
        cancelled
            .state
            .as_ref()
            .unwrap()
            .cancelled
            .store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(
            !compatible(&cancelled, 13, 8, 32, false),
            "cancelled requests never coalesce"
        );
        let mut poison = req(1, 13);
        poison.poison = true;
        assert!(!compatible(&poison, 13, 8, 32, false), "poison runs solo");
        let mut faulted = req(4, 13);
        faulted.fault = Some(PipelineFault {
            layer: 0,
            fault: aiga_gpu::engine::FaultPlan {
                row: 0,
                col: 0,
                after_step: 0,
                kind: aiga_gpu::engine::FaultKind::AddValue(1.0),
            },
        });
        assert!(
            !compatible(&faulted, 13, 8, 32, false),
            "faulted requests run solo"
        );
    }

    #[test]
    fn single_request_round_trip_through_the_server() {
        let server = Server::builder(session()).workers(1).build();
        let client = server.client();
        let reply = client
            .submit(&Matrix::random(3, 13, 5))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.rows, 3);
        assert_eq!(reply.bucket, 8);
        assert_eq!(reply.report.output.len(), 3 * 64);
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.coalesced_requests, 0);
        assert_eq!(stats.max_batch_rows, 3);
        assert!(stats.p50_latency_ns > 0);
    }

    #[test]
    fn feature_mismatch_surfaces_through_the_handle() {
        let server = Server::builder(session()).workers(1).build();
        let err = server
            .client()
            .submit(&Matrix::random(3, 9, 5))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Session(crate::session::SessionError::FeatureMismatch {
                observed: 9,
                expected: 13
            })
        ));
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let server = Server::wrap(session());
        let client = server.client();
        server.shutdown();
        let err = client.submit(&Matrix::random(3, 13, 5)).unwrap_err();
        assert_eq!(err, ServeError::Shutdown);
        let err = client.try_submit(&Matrix::random(3, 13, 5)).unwrap_err();
        assert_eq!(err, ServeError::Shutdown);
    }

    #[test]
    fn wait_timeout_hands_the_pending_back_until_ready() {
        let server = Server::builder(session()).workers(1).build();
        let client = server.client();
        // A deliberately large request keeps the worker busy long
        // enough for a zero-timeout wait to miss.
        let pending = client.submit(&Matrix::random(64, 13, 5)).unwrap();
        let pending = match pending.wait_timeout(Duration::ZERO) {
            Err(p) => p,
            Ok(_) => return, // machine fast enough to finish: nothing to assert
        };
        let reply = pending.wait().unwrap();
        assert_eq!(reply.rows, 64);
        server.shutdown();
    }
}
