//! All redundant-execution schemes the paper designs or compares.
//!
//! Table 1 summarizes the per-K-step costs each thread pays:
//!
//! | scheme            | extra Tensor Core MMAs | checksum ops    |
//! |-------------------|------------------------|-----------------|
//! | replication       | `Mt·Nt / 2`            | 0               |
//! | two-sided ABFT    | 1                      | `O(Mt + Nt)`    |
//! | one-sided ABFT    | `Mt / 2`               | `O(Nt)`         |
//!
//! Global ABFT pays none of these in the main kernel; its costs are a
//! fused epilogue plus a separate reduce-and-compare kernel (§2.5).

mod global;
mod multi;
mod replication;
mod thread_one_sided;
mod thread_two_sided;

pub use global::{GlobalAbft, GlobalVerdict};
pub use multi::{MultiChecksumAbft, MultiVerdict};
pub use replication::{ReplicationSingleAcc, ReplicationTraditional};
pub use thread_one_sided::OneSidedThreadAbft;
pub use thread_two_sided::TwoSidedThreadAbft;

use aiga_gpu::TilingConfig;

/// Identifier for every scheme the evaluation compares.
///
/// The closed set below covers the paper's schemes plus the §2.4
/// multi-checksum extension; execution and cost behavior attach to these
/// ids through [`crate::kernel::SchemeKernel`] implementations held in a
/// [`crate::registry::SchemeRegistry`], so new behaviors plug in without
/// touching the selector or the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No redundancy (the `To` baseline of §6.2).
    Unprotected,
    /// Kernel-level ABFT per Hari et al. (§2.5).
    GlobalAbft,
    /// One-sided thread-level ABFT (§5.2.2) — the variant intensity-
    /// guided ABFT deploys for bandwidth-bound layers.
    ThreadLevelOneSided,
    /// Two-sided thread-level ABFT (§5.2.2).
    ThreadLevelTwoSided,
    /// Thread-level replication with a single shared redundant
    /// accumulator set (§4, "replicated MMA, single accumulation").
    ReplicationSingleAcc,
    /// Traditional thread-level replication with fully duplicated
    /// accumulators (§4) — the occupancy-cliff variant.
    ReplicationTraditional,
    /// Multi-checksum global ABFT with the given number of independent
    /// checksum rounds (§2.4 extension; detects up to `rounds` faults in
    /// distinct rows).
    MultiChecksum(u8),
}

/// Error returned when parsing a scheme id fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchemeError {
    /// The rejected input.
    pub input: String,
}

impl std::fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheme `{}` (expected one of: unprotected, global-abft, \
             thread-level-one-sided, thread-level-two-sided, replication-single-acc, \
             replication-traditional, multi-checksum-<rounds>)",
            self.input
        )
    }
}

impl std::error::Error for ParseSchemeError {}

impl std::str::FromStr for Scheme {
    type Err = ParseSchemeError;

    /// Parses the stable kebab-case id produced by [`Scheme`]'s `Display`
    /// implementation (round-trip safe), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase();
        if let Some(rounds) = norm.strip_prefix("multi-checksum-") {
            return rounds
                .parse::<u8>()
                .ok()
                .filter(|&r| r >= 1)
                .map(Scheme::MultiChecksum)
                .ok_or_else(|| ParseSchemeError { input: s.into() });
        }
        match norm.as_str() {
            "unprotected" => Ok(Scheme::Unprotected),
            "global-abft" => Ok(Scheme::GlobalAbft),
            "thread-level-one-sided" => Ok(Scheme::ThreadLevelOneSided),
            "thread-level-two-sided" => Ok(Scheme::ThreadLevelTwoSided),
            "replication-single-acc" => Ok(Scheme::ReplicationSingleAcc),
            "replication-traditional" => Ok(Scheme::ReplicationTraditional),
            _ => Err(ParseSchemeError { input: s.into() }),
        }
    }
}

impl Scheme {
    /// All redundancy schemes (everything but the unprotected baseline).
    pub fn all_protected() -> [Scheme; 5] {
        [
            Scheme::GlobalAbft,
            Scheme::ThreadLevelOneSided,
            Scheme::ThreadLevelTwoSided,
            Scheme::ReplicationSingleAcc,
            Scheme::ReplicationTraditional,
        ]
    }

    /// The two candidates intensity-guided ABFT selects between (§5.3).
    pub fn intensity_guided_candidates() -> [Scheme; 2] {
        [Scheme::GlobalAbft, Scheme::ThreadLevelOneSided]
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Unprotected => "Unprotected",
            Scheme::GlobalAbft => "Global ABFT",
            Scheme::ThreadLevelOneSided => "Thread-level ABFT (one-sided)",
            Scheme::ThreadLevelTwoSided => "Thread-level ABFT (two-sided)",
            Scheme::ReplicationSingleAcc => "Thread-level replication",
            Scheme::ReplicationTraditional => "Thread-level replication (traditional)",
            Scheme::MultiChecksum(_) => "Global ABFT (multi-checksum)",
        }
    }

    /// A stable small integer distinguishing schemes — useful for
    /// deriving per-scheme seeds (`Scheme` carries data, so a plain `as`
    /// cast is unavailable).
    pub fn ordinal(self) -> u64 {
        match self {
            Scheme::Unprotected => 0,
            Scheme::GlobalAbft => 1,
            Scheme::ThreadLevelOneSided => 2,
            Scheme::ThreadLevelTwoSided => 3,
            Scheme::ReplicationSingleAcc => 4,
            Scheme::ReplicationTraditional => 5,
            Scheme::MultiChecksum(rounds) => 6 + rounds as u64,
        }
    }

    /// Extra Tensor-Core MMA participations per thread per K-step
    /// (Table 1, first row) for a tiling.
    pub fn extra_mmas_per_step(self, tiling: &TilingConfig) -> u64 {
        let (mt, nt) = (tiling.thread_mt(), tiling.thread_nt());
        match self {
            Scheme::Unprotected | Scheme::GlobalAbft | Scheme::MultiChecksum(_) => 0,
            Scheme::ThreadLevelOneSided => mt / 2,
            Scheme::ThreadLevelTwoSided => 1,
            Scheme::ReplicationSingleAcc | Scheme::ReplicationTraditional => mt * nt / 2,
        }
    }

    /// Checksum-generation ALU operations (HADD2-class, so two FP16 adds
    /// per op) per thread per K-step (Table 1, second row).
    pub fn checksum_ops_per_step(self, tiling: &TilingConfig) -> u64 {
        let (mt, nt) = (tiling.thread_mt(), tiling.thread_nt());
        match self {
            Scheme::Unprotected | Scheme::GlobalAbft | Scheme::MultiChecksum(_) => 0,
            // One B-side checksum: Nt/2 packed adds per k-lane pair.
            Scheme::ThreadLevelOneSided => nt / 2,
            // Both checksums — the O(Mt + Nt) term motivating §5.2.2.
            Scheme::ThreadLevelTwoSided => mt + nt,
            Scheme::ReplicationSingleAcc | Scheme::ReplicationTraditional => 0,
        }
    }

    /// Extra registers per thread the scheme holds live.
    pub fn extra_regs(self, tiling: &TilingConfig) -> u64 {
        let (mt, nt) = (tiling.thread_mt(), tiling.thread_nt());
        match self {
            Scheme::Unprotected | Scheme::GlobalAbft | Scheme::MultiChecksum(_) => 0,
            // Mt ABFT accumulators plus the packed B-checksum register.
            Scheme::ThreadLevelOneSided => mt + 2,
            // One ABFT accumulator + two packed checksum registers.
            Scheme::ThreadLevelTwoSided => 4,
            // Four shared redundant accumulators (§4's fix).
            Scheme::ReplicationSingleAcc => 4,
            // Fully duplicated accumulators — the occupancy cliff.
            Scheme::ReplicationTraditional => mt * nt,
        }
    }

    /// Whether the scheme's redundant work lives inside each thread
    /// (shares the thread's loads; no extra memory traffic).
    pub fn is_thread_level(self) -> bool {
        matches!(
            self,
            Scheme::ThreadLevelOneSided
                | Scheme::ThreadLevelTwoSided
                | Scheme::ReplicationSingleAcc
                | Scheme::ReplicationTraditional
        )
    }
}

impl std::fmt::Display for Scheme {
    /// Prints the stable kebab-case id; round-trips through `FromStr`.
    /// Figure-style labels remain available via [`Scheme::label`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Unprotected => f.write_str("unprotected"),
            Scheme::GlobalAbft => f.write_str("global-abft"),
            Scheme::ThreadLevelOneSided => f.write_str("thread-level-one-sided"),
            Scheme::ThreadLevelTwoSided => f.write_str("thread-level-two-sided"),
            Scheme::ReplicationSingleAcc => f.write_str("replication-single-acc"),
            Scheme::ReplicationTraditional => f.write_str("replication-traditional"),
            Scheme::MultiChecksum(rounds) => write!(f, "multi-checksum-{rounds}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> TilingConfig {
        TilingConfig::candidates()[0] // Mt=8, Nt=16
    }

    #[test]
    fn table1_ordering_holds() {
        // One-sided sits between two-sided and replication on MMAs, and
        // between replication and two-sided on checksum ops (§5.2.2's
        // "sweet spot").
        let t = big();
        let rep = Scheme::ReplicationSingleAcc;
        let one = Scheme::ThreadLevelOneSided;
        let two = Scheme::ThreadLevelTwoSided;
        assert!(two.extra_mmas_per_step(&t) < one.extra_mmas_per_step(&t));
        assert!(one.extra_mmas_per_step(&t) < rep.extra_mmas_per_step(&t));
        assert!(rep.checksum_ops_per_step(&t) < one.checksum_ops_per_step(&t));
        assert!(one.checksum_ops_per_step(&t) < two.checksum_ops_per_step(&t));
    }

    #[test]
    fn table1_values_for_the_large_tiling() {
        let t = big();
        assert_eq!(Scheme::ReplicationSingleAcc.extra_mmas_per_step(&t), 64); // MtNt/2
        assert_eq!(Scheme::ThreadLevelTwoSided.extra_mmas_per_step(&t), 1);
        assert_eq!(Scheme::ThreadLevelOneSided.extra_mmas_per_step(&t), 4); // Mt/2
        assert_eq!(Scheme::GlobalAbft.extra_mmas_per_step(&t), 0);
    }

    #[test]
    fn traditional_replication_doubles_accumulator_registers() {
        let t = big();
        assert_eq!(
            Scheme::ReplicationTraditional.extra_regs(&t),
            t.accumulators_per_thread()
        );
        assert!(Scheme::ReplicationSingleAcc.extra_regs(&t) <= 4);
    }

    #[test]
    fn global_abft_adds_no_thread_level_work() {
        let t = big();
        assert_eq!(Scheme::GlobalAbft.extra_mmas_per_step(&t), 0);
        assert_eq!(Scheme::GlobalAbft.checksum_ops_per_step(&t), 0);
        assert!(!Scheme::GlobalAbft.is_thread_level());
        assert!(Scheme::ThreadLevelOneSided.is_thread_level());
    }
}
