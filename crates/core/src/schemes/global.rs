//! Global (kernel-level) ABFT, after Hari et al. (§2.5) — the
//! state-of-the-art baseline intensity-guided ABFT selects for
//! compute-bound layers.
//!
//! Workflow per protected layer:
//!
//! 1. the GEMM runs unmodified;
//! 2. a fused epilogue produces the **output summation** `Σ C`;
//! 3. the activation function is applied;
//! 4. a fused epilogue produces the **next layer's activation checksum**
//!    (column sums of the next layer's `A` — here, of this layer's
//!    input, produced by the *previous* layer);
//! 5. a separate kernel computes the checksum dot product
//!    `(colsum A) · (rowsum B)` and compares it with `Σ C`.
//!
//! The **weight checksum** (`rowsum B`) is computed once offline because
//! weights never change between inference requests.

use crate::tolerance::Tolerance;
use aiga_gpu::engine::{CheckScratch, GemmOutput, Matrix};

/// Sums a slice of FP32 values pairwise (tree order), as the fused
/// epilogue + CUB-style reduce kernel would.
pub fn pairwise_sum_f32(values: &[f32]) -> f32 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        n => {
            let (lo, hi) = values.split_at(n / 2);
            pairwise_sum_f32(lo) + pairwise_sum_f32(hi)
        }
    }
}

/// Result of the global ABFT reduce-and-compare kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlobalVerdict {
    /// Whether the layer is flagged faulty.
    pub fault_detected: bool,
    /// `|checksum dot product − output summation|`.
    pub residual: f64,
    /// Threshold the residual was compared against.
    pub threshold: f64,
}

/// Global ABFT state for one linear layer.
#[derive(Clone, Debug)]
pub struct GlobalAbft {
    /// Offline weight checksum: `rowsum(B)[k] = Σ_j B[k][j]`, FP32.
    weight_checksum: Vec<f32>,
    /// `Σ_j |B[k][j]|` per `k`, for the error bound.
    weight_abs: Vec<f64>,
    tolerance: Tolerance,
}

impl GlobalAbft {
    /// Offline preparation from the layer's weights (§2.5: computed once,
    /// reused for every inference request).
    pub fn prepare(b: &Matrix) -> Self {
        Self::prepare_with_tolerance(b, Tolerance::Analytical)
    }

    /// Offline preparation with an explicit tolerance policy.
    pub fn prepare_with_tolerance(b: &Matrix, tolerance: Tolerance) -> Self {
        let mut weight_checksum = vec![0.0f32; b.rows];
        let mut weight_abs = vec![0.0f64; b.rows];
        let mut row = vec![0.0f32; b.cols];
        for k in 0..b.rows {
            #[allow(clippy::needless_range_loop)] // row/abs are indexed in lockstep
            for j in 0..b.cols {
                let v = b.get_f32(k, j);
                row[j] = v;
                weight_abs[k] += (v as f64).abs();
            }
            weight_checksum[k] = pairwise_sum_f32(&row);
        }
        GlobalAbft {
            weight_checksum,
            weight_abs,
            tolerance,
        }
    }

    /// The activation checksum of `a` (column sums, `1 × K`) together
    /// with the per-column absolute sums. In the §2.5 flow this is fused
    /// into the epilogue of the layer that *produced* `a`.
    pub fn activation_checksum(a: &Matrix) -> (Vec<f32>, Vec<f64>) {
        let mut scratch = CheckScratch::default();
        Self::activation_checksum_into(a, &mut scratch);
        (scratch.chk, scratch.abs)
    }

    /// [`Self::activation_checksum`] writing into reusable scratch
    /// (`scratch.chk` = checksums, `scratch.abs` = absolute sums,
    /// `scratch.col` = the per-column gather buffer). Steady-state
    /// verification through a warm [`CheckScratch`] allocates nothing.
    pub fn activation_checksum_into(a: &Matrix, scratch: &mut CheckScratch) {
        scratch.chk.clear();
        scratch.chk.resize(a.cols, 0.0);
        scratch.abs.clear();
        scratch.abs.resize(a.cols, 0.0);
        scratch.col.clear();
        scratch.col.resize(a.rows, 0.0);
        for k in 0..a.cols {
            #[allow(clippy::needless_range_loop)] // col buffer indexed in lockstep
            for i in 0..a.rows {
                let v = a.get_f32(i, k);
                scratch.col[i] = v;
                scratch.abs[k] += (v as f64).abs();
            }
            scratch.chk[k] = pairwise_sum_f32(&scratch.col);
        }
    }

    /// The fused output summation `Σ C` over the kernel's FP32
    /// accumulators (§2.5 step 2).
    pub fn output_summation(out: &GemmOutput) -> f32 {
        pairwise_sum_f32(&out.c)
    }

    /// The reduce-and-compare kernel (§2.5 step 5): dot the activation
    /// checksum with the offline weight checksum and compare against the
    /// output summation.
    pub fn check(
        &self,
        activation_checksum: &[f32],
        activation_abs: &[f64],
        output_summation: f32,
        out_m: usize,
        out_n: usize,
    ) -> GlobalVerdict {
        assert_eq!(
            activation_checksum.len(),
            self.weight_checksum.len(),
            "checksum length mismatch"
        );
        let mut dot = 0.0f32;
        let mut magnitude = 0.0f64;
        for k in 0..self.weight_checksum.len() {
            dot += activation_checksum[k] * self.weight_checksum[k];
            magnitude += activation_abs[k] * self.weight_abs[k];
        }
        let residual = (dot as f64 - output_summation as f64).abs();
        // Tree reductions round O(log) times per stage; charge each of
        // the four reductions (A-colsum, B-rowsum, dot, ΣC) a log term,
        // with a 1.5x slack factor over the first-order bound.
        let logs = (out_m as f64).log2().ceil()
            + (out_n as f64).log2().ceil()
            + (self.weight_checksum.len() as f64).log2().ceil()
            + ((out_m * out_n) as f64).log2().ceil();
        let threshold = self.tolerance.threshold(0.0, 1.5 * (logs + 8.0), magnitude);
        GlobalVerdict {
            fault_detected: residual > threshold,
            residual,
            threshold,
        }
    }

    /// Convenience wrapper running the whole §2.5 flow for one layer:
    /// activation checksum over `a`, output summation over `out`, then
    /// the comparison.
    pub fn verify(&self, a: &Matrix, out: &GemmOutput) -> GlobalVerdict {
        self.verify_with(a, out, &mut CheckScratch::default())
    }

    /// [`Self::verify`] through caller-owned scratch — the serving hot
    /// path, fed by the request's `Workspace` so repeated verification
    /// never allocates.
    pub fn verify_with(
        &self,
        a: &Matrix,
        out: &GemmOutput,
        scratch: &mut CheckScratch,
    ) -> GlobalVerdict {
        Self::activation_checksum_into(a, scratch);
        let sum = Self::output_summation(out);
        self.check(&scratch.chk, &scratch.abs, sum, out.m, out.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{FaultKind, FaultPlan, GemmEngine, NoScheme};
    use aiga_gpu::GemmShape;

    fn run(
        m: usize,
        n: usize,
        k: usize,
        seed: u64,
        fault: Option<FaultPlan>,
    ) -> (Matrix, GemmOutput) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let eng = GemmEngine::with_default_tiling(GemmShape::new(m as u64, n as u64, k as u64));
        let out = eng.run(&a, &b, || NoScheme, fault);
        (a, out)
    }

    #[test]
    fn clean_layer_passes_the_check() {
        let b = Matrix::random(64, 48, 61);
        let abft = GlobalAbft::prepare(&b);
        let a = Matrix::random(56, 64, 60);
        let eng = GemmEngine::with_default_tiling(GemmShape::new(56, 48, 64));
        let out = eng.run(&a, &b, || NoScheme, None);
        let v = abft.verify(&a, &out);
        assert!(!v.fault_detected, "{v:?}");
    }

    #[test]
    fn detects_a_single_corrupted_output() {
        let b = Matrix::random(64, 48, 63);
        let abft = GlobalAbft::prepare(&b);
        let a = Matrix::random(56, 64, 62);
        let eng = GemmEngine::with_default_tiling(GemmShape::new(56, 48, 64));
        let fault = FaultPlan {
            row: 13,
            col: 21,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(50.0),
        };
        let out = eng.run(&a, &b, || NoScheme, Some(fault));
        let v = abft.verify(&a, &out);
        assert!(v.fault_detected, "{v:?}");
        assert!((v.residual - 50.0).abs() < 1.0);
    }

    #[test]
    fn detects_exponent_bit_flips_anywhere() {
        for (r, c) in [(0usize, 0usize), (31, 17), (55, 47)] {
            let b = Matrix::random(64, 48, 65);
            let abft = GlobalAbft::prepare(&b);
            let a = Matrix::random(56, 64, 64);
            let eng = GemmEngine::with_default_tiling(GemmShape::new(56, 48, 64));
            let fault = FaultPlan {
                row: r,
                col: c,
                after_step: u64::MAX,
                kind: FaultKind::BitFlip(29),
            };
            let out = eng.run(&a, &b, || NoScheme, Some(fault));
            assert!(abft.verify(&a, &out).fault_detected, "({r},{c})");
        }
    }

    #[test]
    fn weight_checksum_is_reusable_across_requests() {
        let b = Matrix::random(32, 32, 67);
        let abft = GlobalAbft::prepare(&b);
        for seed in 70..74 {
            let (a, out) = {
                let a = Matrix::random(24, 32, seed);
                let eng = GemmEngine::with_default_tiling(GemmShape::new(24, 32, 32));
                let out = eng.run(&a, &b, || NoScheme, None);
                (a, out)
            };
            assert!(!abft.verify(&a, &out).fault_detected, "seed {seed}");
        }
    }

    #[test]
    fn pairwise_sum_matches_exact_on_integers() {
        let vals: Vec<f32> = (1..=1000).map(|v| v as f32).collect();
        assert_eq!(pairwise_sum_f32(&vals), 500500.0);
        assert_eq!(pairwise_sum_f32(&[]), 0.0);
    }

    #[test]
    fn checksum_lengths_are_validated() {
        let (a, out) = run(16, 16, 32, 80, None);
        let b2 = Matrix::random(16, 16, 81); // wrong K
        let abft = GlobalAbft::prepare(&b2);
        let (chk, abs) = GlobalAbft::activation_checksum(&a);
        let sum = GlobalAbft::output_summation(&out);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            abft.check(&chk, &abs, sum, out.m, out.n)
        }));
        assert!(result.is_err());
    }
}
