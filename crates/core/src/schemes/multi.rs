//! Multi-checksum global ABFT — the §2.4 extension for higher fault
//! rates.
//!
//! Single-checksum ABFT guarantees detection of **one** faulty output
//! value: two faults whose errors cancel in the plain summation are
//! invisible to it. §2.4: *"To do so, ABFT generates multiple checksum
//! columns and rows based on independent linear combinations of
//! columns/rows."* This module implements that scheme with the classical
//! Vandermonde-style weights `w_r(i) = (i+1)^r` for rounds `r = 0..R`:
//!
//! - round 0 is ordinary global ABFT (all-ones combination);
//! - round `r` compares `Σ_ij (i+1)^r · C[i][j]` against
//!   `(Σ_i (i+1)^r · A[i,:]) · (B · 1)`.
//!
//! Any `e ≤ R` faults confined to `e` distinct rows produce a nonzero
//! residual in at least one round, because the errors would otherwise
//! have to be a nonzero kernel vector of an `R × e` Vandermonde system.
//! Checksums are carried in FP64 here (the weighted sums grow with `M`,
//! so a production kernel would use wider accumulation for the weighted
//! rounds too); the comparison still uses the analytical tolerance
//! because `C` itself is FP32.

use crate::schemes::GlobalVerdict;
use crate::tolerance::Tolerance;
use aiga_gpu::engine::{GemmOutput, Matrix};

/// Multi-round weighted global ABFT state for one layer.
#[derive(Clone, Debug)]
pub struct MultiChecksumAbft {
    /// Offline weight checksum `B · 1` in FP64.
    weight_checksum: Vec<f64>,
    /// `Σ_j |B[k][j]|` per `k`.
    weight_abs: Vec<f64>,
    /// Number of independent checksum rounds.
    rounds: usize,
    tolerance: Tolerance,
}

/// Verdict of a multi-round check.
#[derive(Clone, Debug)]
pub struct MultiVerdict {
    /// Per-round verdicts, round 0 first.
    pub rounds: Vec<GlobalVerdict>,
}

impl MultiVerdict {
    /// True if any round flagged a fault.
    pub fn fault_detected(&self) -> bool {
        self.rounds.iter().any(|r| r.fault_detected)
    }

    /// Index of the first round that flagged, if any.
    pub fn first_failing_round(&self) -> Option<usize> {
        self.rounds.iter().position(|r| r.fault_detected)
    }
}

impl MultiChecksumAbft {
    /// Prepares `rounds ≥ 1` independent checksums from the weights.
    pub fn prepare(b: &Matrix, rounds: usize) -> Self {
        assert!(rounds >= 1, "at least one checksum round required");
        let mut weight_checksum = vec![0.0f64; b.rows];
        let mut weight_abs = vec![0.0f64; b.rows];
        for k in 0..b.rows {
            for j in 0..b.cols {
                let v = b.get_f64(k, j);
                weight_checksum[k] += v;
                weight_abs[k] += v.abs();
            }
        }
        MultiChecksumAbft {
            weight_checksum,
            weight_abs,
            rounds,
            tolerance: Tolerance::Analytical,
        }
    }

    /// Number of independent rounds (detects up to this many faults in
    /// distinct rows).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Weight of row `i` in round `r`: `(i+1)^r`, with `r = 0` the plain
    /// all-ones checksum.
    fn weight(i: usize, r: usize) -> f64 {
        (i as f64 + 1.0).powi(r as i32)
    }

    /// Runs all checksum rounds for one layer.
    pub fn verify(&self, a: &Matrix, out: &GemmOutput) -> MultiVerdict {
        let rounds = (0..self.rounds)
            .map(|r| self.verify_round(a, out, r))
            .collect();
        MultiVerdict { rounds }
    }

    /// Runs checksum round `r` alone. Allocation-free — the serving hot
    /// path walks rounds with this directly instead of collecting a
    /// [`MultiVerdict`].
    pub fn verify_round(&self, a: &Matrix, out: &GemmOutput, r: usize) -> GlobalVerdict {
        assert_eq!(a.cols, self.weight_checksum.len(), "K mismatch");
        assert!(r < self.rounds, "round out of range");
        // Weighted activation checksum: u_k = Σ_i w_r(i)·A[i][k].
        let mut dot = 0.0f64;
        let mut magnitude = 0.0f64;
        for k in 0..a.cols {
            let mut u = 0.0f64;
            let mut u_abs = 0.0f64;
            for i in 0..a.rows {
                let w = Self::weight(i, r);
                let v = a.get_f64(i, k);
                u += w * v;
                u_abs += w * v.abs();
            }
            dot += u * self.weight_checksum[k];
            magnitude += u_abs * self.weight_abs[k];
        }
        // Weighted output summation: Σ_ij w_r(i)·C[i][j].
        let mut c_sum = 0.0f64;
        for i in 0..out.m {
            let w = Self::weight(i, r);
            for j in 0..out.n {
                c_sum += w * out.get(i, j) as f64;
            }
        }
        let residual = (dot - c_sum).abs();
        // C is FP32: each element carries FP32 accumulation error
        // scaled by its weight; the FP64 checksum arithmetic adds
        // nothing material.
        let rounds32 = (a.cols as f64).log2().ceil() + 24.0;
        let threshold = self.tolerance.threshold(0.0, rounds32, magnitude);
        GlobalVerdict {
            fault_detected: residual > threshold,
            residual,
            threshold,
        }
    }

    /// The **signed** residual of round `r`: `Σ_ij w_r(i)·C[i][j] −
    /// (Σ_i w_r(i)·A[i,:])·(B·1)` (observed minus expected).
    ///
    /// For a single fault `δ` confined to row `ρ` every round sees
    /// exactly `w_r(ρ)·δ`, so the ratio of round 1's signed residual to
    /// round 0's recovers the faulted row: `res₁/res₀ = ρ+1`. This is
    /// the localization primitive behind the correction path — the
    /// signs must survive, which is why [`Self::verify_round`]'s
    /// absolute residual cannot serve.
    pub fn round_residual_signed(&self, a: &Matrix, out: &GemmOutput, r: usize) -> f64 {
        assert_eq!(a.cols, self.weight_checksum.len(), "K mismatch");
        assert!(r < self.rounds, "round out of range");
        let mut dot = 0.0f64;
        for k in 0..a.cols {
            let mut u = 0.0f64;
            for i in 0..a.rows {
                u += Self::weight(i, r) * a.get_f64(i, k);
            }
            dot += u * self.weight_checksum[k];
        }
        let mut c_sum = 0.0f64;
        for i in 0..out.m {
            let w = Self::weight(i, r);
            for j in 0..out.n {
                c_sum += w * out.get(i, j) as f64;
            }
        }
        c_sum - dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{FaultKind, FaultPlan, GemmEngine, NoScheme};
    use aiga_gpu::GemmShape;

    fn setup(seed: u64) -> (Matrix, Matrix, GemmEngine) {
        let a = Matrix::random(48, 64, seed);
        let b = Matrix::random(64, 40, seed + 1);
        let eng = GemmEngine::with_default_tiling(GemmShape::new(48, 40, 64));
        (a, b, eng)
    }

    fn fault(row: usize, col: usize, delta: f32) -> FaultPlan {
        FaultPlan {
            row,
            col,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(delta),
        }
    }

    #[test]
    fn clean_runs_pass_every_round() {
        for seed in [100, 200, 300] {
            let (a, b, eng) = setup(seed);
            let abft = MultiChecksumAbft::prepare(&b, 3);
            let out = eng.run(&a, &b, || NoScheme, None);
            let v = abft.verify(&a, &out);
            assert!(!v.fault_detected(), "seed {seed}: {:?}", v.rounds);
        }
    }

    #[test]
    fn cancelling_fault_pair_defeats_single_checksum() {
        // Two faults of +δ and −δ in different rows cancel in the plain
        // summation: round 0 alone is blind to them.
        let (a, b, eng) = setup(400);
        let out = eng.run_multi(
            &a,
            &b,
            || NoScheme,
            &[fault(3, 5, 250.0), fault(20, 9, -250.0)],
        );
        let single = MultiChecksumAbft::prepare(&b, 1);
        let v1 = single.verify(&a, &out);
        assert!(
            !v1.fault_detected(),
            "cancelling pair should evade the plain checksum: {:?}",
            v1.rounds
        );
    }

    #[test]
    fn second_round_catches_the_cancelling_pair() {
        let (a, b, eng) = setup(500);
        let out = eng.run_multi(
            &a,
            &b,
            || NoScheme,
            &[fault(3, 5, 250.0), fault(20, 9, -250.0)],
        );
        let dual = MultiChecksumAbft::prepare(&b, 2);
        let v2 = dual.verify(&a, &out);
        assert!(v2.fault_detected());
        // Round 0 stays silent; round 1's row weighting breaks the
        // cancellation: residual ≈ |w(3) − w(20)|·250 = 17·250.
        assert_eq!(v2.first_failing_round(), Some(1));
        assert!((v2.rounds[1].residual - 17.0 * 250.0).abs() < 10.0);
    }

    #[test]
    fn single_faults_are_still_caught_by_round_zero() {
        let (a, b, eng) = setup(600);
        let out = eng.run(&a, &b, || NoScheme, Some(fault(7, 7, 99.0)));
        let dual = MultiChecksumAbft::prepare(&b, 2);
        let v = dual.verify(&a, &out);
        assert_eq!(v.first_failing_round(), Some(0));
    }

    #[test]
    fn three_rounds_catch_two_faults_in_any_distinct_rows() {
        let (a, b, eng) = setup(700);
        let triple = MultiChecksumAbft::prepare(&b, 3);
        for (r1, r2) in [(0usize, 47usize), (1, 2), (10, 40)] {
            let out = eng.run_multi(
                &a,
                &b,
                || NoScheme,
                &[fault(r1, 0, 300.0), fault(r2, 39, -300.0)],
            );
            assert!(
                triple.verify(&a, &out).fault_detected(),
                "rows ({r1},{r2}) escaped"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one checksum round")]
    fn zero_rounds_is_rejected() {
        let b = Matrix::zeros(4, 4);
        MultiChecksumAbft::prepare(&b, 0);
    }
}
