//! Thread-level replication (§4): the two variants the paper explored
//! before settling on ABFT.
//!
//! *Traditional* replication duplicates every MMA **and** every
//! accumulator register, comparing element-wise at the end. Both copies
//! compute bit-identical sequences, so the comparison is exact — but the
//! doubled register footprint cuts occupancy (or spills), which is why
//! the paper discards it.
//!
//! *Single-accumulation* replication re-issues every MMA but folds all
//! redundant results into four shared registers; the invariant is that
//! the sum of those four equals the sum of the thread's `Mt·Nt` original
//! accumulators. Register pressure stays flat at the cost of a coarser,
//! tolerance-based check.

use crate::tolerance::Tolerance;
use aiga_gpu::engine::{KStep, SchemeCounters, ThreadCtx, ThreadLocalScheme, ThreadVerdict};
use aiga_gpu::tiling::MAX_THREAD_ACC;

/// Traditional thread-level replication: full duplicate accumulators,
/// exact element-wise comparison.
///
/// The shadow accumulators are a fixed-size array bounded by the
/// register-file limit on thread tiles ([`MAX_THREAD_ACC`]) — the exact
/// register doubling that causes the §4 occupancy cliff — so per-thread
/// construction never allocates.
#[derive(Clone, Debug)]
pub struct ReplicationTraditional {
    shadow: [f32; MAX_THREAD_ACC],
    counters: SchemeCounters,
}

impl ReplicationTraditional {
    /// Creates a scheme instance.
    pub fn new() -> Self {
        ReplicationTraditional {
            shadow: [0.0; MAX_THREAD_ACC],
            counters: SchemeCounters::default(),
        }
    }
}

impl Default for ReplicationTraditional {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadLocalScheme for ReplicationTraditional {
    fn begin(&mut self, ctx: &ThreadCtx) {
        debug_assert!(ctx.rows.len() * ctx.cols.len() <= MAX_THREAD_ACC);
        self.shadow.fill(0.0);
        self.counters = SchemeCounters::default();
    }

    fn on_k_step(&mut self, step: &KStep<'_>) {
        let (mt, nt) = (step.mt, step.nt);
        // Replays the engine's canonical accumulation order bit-for-bit,
        // straight off the pre-decoded fragments: one correctly-rounded
        // FMA per K element, in K order (decoding is exact, so the
        // shadow sequence matches the microkernel's exactly).
        for i in 0..mt {
            let a0 = step.a_f32[i * 2];
            let a1 = step.a_f32[i * 2 + 1];
            for j in 0..nt {
                let s = a0.mul_add(step.b_f32[j], self.shadow[i * nt + j]);
                self.shadow[i * nt + j] = a1.mul_add(step.b_f32[nt + j], s);
            }
        }
        self.counters.extra_mmas += (mt * nt / 2) as u64;
    }

    fn finalize(&mut self, _ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict {
        let mut worst = ThreadVerdict::clean();
        #[allow(clippy::needless_range_loop)] // acc and shadow indexed in lockstep
        for idx in 0..mt * nt {
            let residual = (acc[idx] as f64 - self.shadow[idx] as f64).abs();
            if Tolerance::Exact.flags(residual, 0.0, 0.0, 0.0) && residual >= worst.residual {
                worst = ThreadVerdict {
                    fault_detected: true,
                    residual,
                    threshold: 0.0,
                };
            }
        }
        worst
    }

    fn counters(&self) -> SchemeCounters {
        self.counters
    }
}

/// Replicated-MMA, single-accumulation replication: redundant MMA results
/// fold into four shared registers (§4).
#[derive(Clone, Debug)]
pub struct ReplicationSingleAcc {
    tolerance: Tolerance,
    racc: [f32; 4],
    magnitude: f64,
    steps: u64,
    counters: SchemeCounters,
}

impl ReplicationSingleAcc {
    /// Creates a scheme instance with the default analytical tolerance.
    pub fn new() -> Self {
        Self::with_tolerance(Tolerance::Analytical)
    }

    /// Creates a scheme instance with an explicit tolerance policy.
    pub fn with_tolerance(tolerance: Tolerance) -> Self {
        ReplicationSingleAcc {
            tolerance,
            racc: [0.0; 4],
            magnitude: 0.0,
            steps: 0,
            counters: SchemeCounters::default(),
        }
    }
}

impl Default for ReplicationSingleAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadLocalScheme for ReplicationSingleAcc {
    fn begin(&mut self, _ctx: &ThreadCtx) {
        self.racc = [0.0; 4];
        self.magnitude = 0.0;
        self.steps = 0;
        self.counters = SchemeCounters::default();
    }

    fn on_k_step(&mut self, step: &KStep<'_>) {
        let (mt, nt) = (step.mt, step.nt);
        for i in 0..mt {
            let a0 = step.a_f32[i * 2];
            let a1 = step.a_f32[i * 2 + 1];
            for j in 0..nt {
                let partial = a0 * step.b_f32[j] + a1 * step.b_f32[nt + j];
                // All redundant MMA outputs land in the same four regs.
                self.racc[(i * nt + j) & 3] += partial;
                self.magnitude += (a0.abs() as f64) * (step.b_f32[j].abs() as f64)
                    + (a1.abs() as f64) * (step.b_f32[nt + j].abs() as f64);
            }
        }
        self.steps += 1;
        self.counters.extra_mmas += (mt * nt / 2) as u64;
    }

    fn finalize(&mut self, _ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict {
        let redundant: f64 = self.racc.iter().map(|&v| v as f64).sum();
        let original: f64 = acc[..mt * nt].iter().map(|&v| v as f64).sum();
        let residual = (original - redundant).abs();
        // Both sides are FP32-only; the add orders differ completely, so
        // charge both accumulation chains.
        let rounds32 = (2 * self.steps) as f64 * (mt * nt) as f64 / 4.0 + (mt * nt) as f64;
        let threshold = self.tolerance.threshold(0.0, rounds32, self.magnitude);
        ThreadVerdict {
            fault_detected: residual > threshold,
            residual,
            threshold,
        }
    }

    fn counters(&self) -> SchemeCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{FaultKind, FaultPlan, GemmEngine, Matrix};
    use aiga_gpu::{GemmShape, TilingConfig};

    fn engine() -> GemmEngine {
        GemmEngine::new(
            GemmShape::new(32, 32, 32),
            TilingConfig {
                block_m: 32,
                block_n: 32,
                block_k: 16,
                warp_m: 16,
                warp_n: 16,
            },
        )
    }

    #[test]
    fn traditional_is_exactly_clean_without_faults() {
        let a = Matrix::random(32, 32, 41);
        let b = Matrix::random(32, 32, 42);
        let out = engine().run(&a, &b, ReplicationTraditional::new, None);
        assert!(!out.fault_detected());
    }

    #[test]
    fn traditional_detects_even_one_ulp_faults() {
        // Exact comparison catches the smallest possible corruption —
        // the advantage replication buys with its register cost.
        let a = Matrix::random(32, 32, 43);
        let b = Matrix::random(32, 32, 44);
        let fault = FaultPlan {
            row: 2,
            col: 2,
            after_step: u64::MAX,
            kind: FaultKind::BitFlip(0), // LSB of the mantissa
        };
        let out = engine().run(&a, &b, ReplicationTraditional::new, Some(fault));
        assert!(out.fault_detected());
    }

    #[test]
    fn single_acc_is_clean_without_faults() {
        let a = Matrix::random(32, 32, 45);
        let b = Matrix::random(32, 32, 46);
        let out = engine().run(&a, &b, ReplicationSingleAcc::new, None);
        assert!(!out.fault_detected(), "{:?}", out.detections.first());
    }

    #[test]
    fn single_acc_detects_large_faults_only() {
        let a = Matrix::random(32, 32, 47);
        let b = Matrix::random(32, 32, 48);
        let big = FaultPlan {
            row: 1,
            col: 1,
            after_step: 4,
            kind: FaultKind::AddValue(500.0),
        };
        let out = engine().run(&a, &b, ReplicationSingleAcc::new, Some(big));
        assert!(out.fault_detected());
    }

    #[test]
    fn both_variants_double_the_mma_count() {
        let a = Matrix::random(32, 32, 49);
        let b = Matrix::random(32, 32, 50);
        let out = engine().run(&a, &b, ReplicationTraditional::new, None);
        assert_eq!(out.counters.scheme.extra_mmas, out.counters.baseline_mmas);
        let out2 = engine().run(&a, &b, ReplicationSingleAcc::new, None);
        assert_eq!(out2.counters.scheme.extra_mmas, out2.counters.baseline_mmas);
    }
}
