//! Two-sided thread-level ABFT (§5.2.2).
//!
//! Per K-step the thread checksums *both* its `At` chunk (column sums)
//! and its `Bt` chunk (row sums) and performs a single MMA across the
//! checksums — the minimum possible redundant Tensor-Core work, but
//! `O(Mt + Nt)` checksum operations on the traditional ALUs, which is
//! what makes it lose to one-sided ABFT in practice (§6.5).

use crate::tolerance::Tolerance;
use aiga_dtype::Dtype;
use aiga_gpu::engine::{KStep, SchemeCounters, ThreadCtx, ThreadLocalScheme, ThreadVerdict};

/// Per-thread state of two-sided thread-level ABFT.
#[derive(Clone, Debug)]
pub struct TwoSidedThreadAbft {
    tolerance: Tolerance,
    /// Running scalar ABFT output: `≈ Σ_k (Σ_i At[i][k]) · (Σ_j Bt[k][j])`.
    abft: f32,
    /// Running `Σ_k (Σ_i |At[i][k]|) · (Σ_j |Bt[k][j]|)`.
    magnitude: f64,
    steps: u64,
    mt: usize,
    nt: usize,
    /// Storage dtype of the GEMM being verified, captured per K-step.
    dtype: Dtype,
    counters: SchemeCounters,
}

impl TwoSidedThreadAbft {
    /// Creates a scheme instance with the default analytical tolerance.
    pub fn new() -> Self {
        Self::with_tolerance(Tolerance::Analytical)
    }

    /// Creates a scheme instance with an explicit tolerance policy.
    pub fn with_tolerance(tolerance: Tolerance) -> Self {
        TwoSidedThreadAbft {
            tolerance,
            abft: 0.0,
            magnitude: 0.0,
            steps: 0,
            mt: 0,
            nt: 0,
            dtype: Dtype::F16,
            counters: SchemeCounters::default(),
        }
    }
}

impl Default for TwoSidedThreadAbft {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadLocalScheme for TwoSidedThreadAbft {
    fn begin(&mut self, _ctx: &ThreadCtx) {
        self.abft = 0.0;
        self.magnitude = 0.0;
        self.steps = 0;
        self.counters = SchemeCounters::default();
    }

    fn on_k_step(&mut self, step: &KStep<'_>) {
        let (mt, nt) = (step.mt, step.nt);
        self.mt = mt;
        self.nt = nt;
        self.dtype = step.dtype;
        // Column checksums of At (one per k-lane) in the dtype's
        // checksum-chain format — [`Dtype::chain_add`] rounds each
        // partial sum exactly as the hardware add chain would; the
        // magnitude bounds read the engine's pre-decoded values.
        let mut a_sum = [0.0f32; 2];
        let mut a_abs = [0.0f64; 2];
        for i in 0..mt {
            for lane in 0..2 {
                let v = step.a_f32[i * 2 + lane];
                a_sum[lane] = self.dtype.chain_add(a_sum[lane], v);
                a_abs[lane] += (v as f64).abs();
            }
        }
        // Row checksums of Bt (one per k-lane) in the same chain format.
        let mut b_sum = [0.0f32; 2];
        let mut b_abs = [0.0f64; 2];
        for lane in 0..2 {
            for j in 0..nt {
                let v = step.b_f32[lane * nt + j];
                b_sum[lane] = self.dtype.chain_add(b_sum[lane], v);
                b_abs[lane] += (v as f64).abs();
            }
        }
        // The single redundant MMA across the checksums.
        self.abft += a_sum[0] * b_sum[0] + a_sum[1] * b_sum[1];
        self.magnitude += a_abs[0] * b_abs[0] + a_abs[1] * b_abs[1];
        self.steps += 1;
        self.counters.extra_mmas += 1;
        self.counters.checksum_ops += (mt + nt) as u64;
    }

    fn finalize(&mut self, _ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict {
        let total: f64 = acc[..mt * nt].iter().map(|&v| v as f64).sum();
        let residual = (total - self.abft as f64).abs();
        // Low-precision rounds: both checksum chains (Mt + Nt terms per
        // step) at the chain's unit roundoff; FP32 rounds: the running
        // ABFT accumulation plus the MtNt-term output summation.
        let rounds_lp = (mt + nt) as f64;
        let rounds32 = (2 * self.steps) as f64 + (mt * nt) as f64;
        let threshold = self.tolerance.threshold_lp(
            rounds_lp,
            self.dtype.chain_unit(),
            rounds32,
            self.magnitude,
        );
        ThreadVerdict {
            fault_detected: residual > threshold,
            residual,
            threshold,
        }
    }

    fn counters(&self) -> SchemeCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{FaultKind, FaultPlan, GemmEngine, Matrix};
    use aiga_gpu::{GemmShape, TilingConfig};

    fn engine() -> GemmEngine {
        GemmEngine::new(
            GemmShape::new(32, 32, 64),
            TilingConfig {
                block_m: 32,
                block_n: 32,
                block_k: 16,
                warp_m: 16,
                warp_n: 16,
            },
        )
    }

    #[test]
    fn clean_run_raises_no_detection() {
        let a = Matrix::random(32, 64, 31);
        let b = Matrix::random(64, 32, 32);
        let out = engine().run(&a, &b, TwoSidedThreadAbft::new, None);
        assert!(!out.fault_detected(), "{:?}", out.detections.first());
    }

    #[test]
    fn detects_an_injected_fault() {
        let a = Matrix::random(32, 64, 33);
        let b = Matrix::random(64, 32, 34);
        let fault = FaultPlan {
            row: 4,
            col: 4,
            after_step: 2,
            kind: FaultKind::AddValue(128.0),
        };
        let out = engine().run(&a, &b, TwoSidedThreadAbft::new, Some(fault));
        assert!(out.fault_detected());
        assert_eq!(out.detections.len(), 1);
    }

    #[test]
    fn single_mma_per_step_in_counters() {
        let a = Matrix::random(32, 64, 35);
        let b = Matrix::random(64, 32, 36);
        let out = engine().run(&a, &b, TwoSidedThreadAbft::new, None);
        let steps = out.counters.threads * out.counters.k_steps;
        assert_eq!(out.counters.scheme.extra_mmas, steps);
        // O(Mt+Nt) checksum ops.
        let t = engine().tiling();
        let per_step = t.thread_mt() + t.thread_nt();
        assert_eq!(out.counters.scheme.checksum_ops, steps * per_step);
    }

    #[test]
    fn coarse_scalar_check_still_detects_significant_corruption() {
        // Two-sided ABFT makes ONE comparison per thread over the sum of
        // all MtNt accumulators, so its detectability floor is higher
        // than one-sided's per-row checks — but significant corruption
        // (e.g. a high-exponent flip driving the value to 1e4) is caught.
        let a = Matrix::random(32, 64, 37);
        let b = Matrix::random(64, 32, 38);
        let fault = FaultPlan {
            row: 0,
            col: 0,
            after_step: u64::MAX,
            kind: FaultKind::SetValue(1e4),
        };
        let out = engine().run(&a, &b, TwoSidedThreadAbft::new, Some(fault));
        assert!(out.fault_detected());
    }
}
