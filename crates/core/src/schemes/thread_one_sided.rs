//! One-sided thread-level ABFT (§5.2.2) — the scheme intensity-guided
//! ABFT deploys on bandwidth-bound layers.
//!
//! Per K-step, the thread generates a checksum only for its `Bt` chunk
//! (one FP16 row-sum per k-lane, on traditional ALUs) and multiplies the
//! *entirety* of its `At` chunk by that checksum on Tensor Cores —
//! `Mt/2` extra MMAs and `O(Nt)` checksum ops per step (Table 1). The
//! running ABFT results are `Mt` per-row sums; at the end the thread
//! compares each against the row sum of its own accumulators. Everything
//! reuses the loads the thread already performed: zero extra memory
//! traffic (the §3.5 design principle).

use crate::tolerance::Tolerance;
use aiga_dtype::Dtype;
use aiga_gpu::engine::{KStep, SchemeCounters, ThreadCtx, ThreadLocalScheme, ThreadVerdict};
use aiga_gpu::tiling::MAX_THREAD_MT;

/// Per-thread state of one-sided thread-level ABFT.
///
/// The running checksums live in fixed-size arrays bounded by the
/// register-file limit on thread tiles ([`MAX_THREAD_MT`]) — exactly as
/// the real kernel keeps them in registers — so constructing one
/// instance per simulated thread never touches the heap.
#[derive(Clone, Debug)]
pub struct OneSidedThreadAbft {
    tolerance: Tolerance,
    /// Running ABFT outputs: `abft[i] ≈ Σ_k At[i][k] · (Σ_j Bt[k][j])`.
    abft: [f32; MAX_THREAD_MT],
    /// Running `Σ_k |At[i][k]| · Σ_j |Bt[k][j]|` for the error bound.
    magnitude: [f64; MAX_THREAD_MT],
    steps: u64,
    /// Storage dtype of the GEMM being verified, captured per K-step —
    /// selects the checksum chain's arithmetic ([`Dtype::chain_add`]) and
    /// its unit roundoff in the detection threshold.
    dtype: Dtype,
    counters: SchemeCounters,
}

impl OneSidedThreadAbft {
    /// Creates a scheme instance with the default analytical tolerance.
    pub fn new() -> Self {
        Self::with_tolerance(Tolerance::Analytical)
    }

    /// Creates a scheme instance with an explicit tolerance policy.
    pub fn with_tolerance(tolerance: Tolerance) -> Self {
        OneSidedThreadAbft {
            tolerance,
            abft: [0.0; MAX_THREAD_MT],
            magnitude: [0.0; MAX_THREAD_MT],
            steps: 0,
            dtype: Dtype::F16,
            counters: SchemeCounters::default(),
        }
    }
}

impl Default for OneSidedThreadAbft {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadLocalScheme for OneSidedThreadAbft {
    fn begin(&mut self, ctx: &ThreadCtx) {
        debug_assert!(ctx.rows.len() <= MAX_THREAD_MT);
        self.abft.fill(0.0);
        self.magnitude.fill(0.0);
        self.steps = 0;
        self.counters = SchemeCounters::default();
    }

    fn on_k_step(&mut self, step: &KStep<'_>) {
        let (mt, nt) = (step.mt, step.nt);
        self.dtype = step.dtype;
        // Row checksums of the Bt chunk, one per k-lane, generated with
        // sequential adds in the dtype's checksum-chain format (the HADD2
        // path for fp16) — [`Dtype::chain_add`] rounds each partial sum
        // exactly as the hardware chain would; the magnitude bound reads
        // the engine's pre-decoded values.
        let mut w = [0.0f32; 2];
        let mut w_abs = [0.0f64; 2];
        for lane in 0..2 {
            let row_f32 = &step.b_f32[lane * nt..(lane + 1) * nt];
            let mut sum = 0.0f32;
            for &v in row_f32 {
                sum = self.dtype.chain_add(sum, v);
                w_abs[lane] += (v as f64).abs();
            }
            w[lane] = sum;
        }
        // The redundant MMAs: multiply the whole At chunk by the checksum
        // (low-precision products, FP32 accumulation — same datapath as
        // the MMA).
        let w0 = w[0];
        let w1 = w[1];
        for i in 0..mt {
            let a0 = step.a_f32[i * 2];
            let a1 = step.a_f32[i * 2 + 1];
            self.abft[i] += a0 * w0 + a1 * w1;
            self.magnitude[i] += (a0 as f64).abs() * w_abs[0] + (a1 as f64).abs() * w_abs[1];
        }
        self.steps += 1;
        self.counters.extra_mmas += (mt as u64) / 2;
        self.counters.checksum_ops += (nt as u64) / 2;
    }

    fn finalize(&mut self, _ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict {
        let mut worst = ThreadVerdict::clean();
        for i in 0..mt {
            let row_sum: f64 = acc[i * nt..(i + 1) * nt].iter().map(|&v| v as f64).sum();
            let residual = (row_sum - self.abft[i] as f64).abs();
            // Low-precision rounds: Nt-term B-checksum per step at the
            // chain's unit roundoff; FP32 rounds: the two running
            // accumulations plus the final row sum.
            let rounds_lp = nt as f64;
            let rounds32 = (2 * self.steps) as f64 + nt as f64;
            let threshold = self.tolerance.threshold_lp(
                rounds_lp,
                self.dtype.chain_unit(),
                rounds32,
                self.magnitude[i],
            );
            if residual > threshold && residual > worst.residual {
                worst = ThreadVerdict {
                    fault_detected: true,
                    residual,
                    threshold,
                };
            } else if !worst.fault_detected && residual > worst.residual {
                worst = ThreadVerdict {
                    fault_detected: false,
                    residual,
                    threshold,
                };
            }
        }
        worst
    }

    fn counters(&self) -> SchemeCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{FaultKind, FaultPlan, GemmEngine, Matrix};
    use aiga_gpu::{GemmShape, TilingConfig};

    fn engine() -> GemmEngine {
        GemmEngine::new(
            GemmShape::new(32, 32, 64),
            TilingConfig {
                block_m: 32,
                block_n: 32,
                block_k: 16,
                warp_m: 16,
                warp_n: 16,
            },
        )
    }

    #[test]
    fn clean_run_raises_no_detection() {
        let a = Matrix::random(32, 64, 21);
        let b = Matrix::random(64, 32, 22);
        let out = engine().run(&a, &b, OneSidedThreadAbft::new, None);
        assert!(!out.fault_detected(), "{:?}", out.detections.first());
    }

    #[test]
    fn detects_an_injected_additive_fault() {
        let a = Matrix::random(32, 64, 23);
        let b = Matrix::random(64, 32, 24);
        let fault = FaultPlan {
            row: 10,
            col: 3,
            after_step: 7,
            kind: FaultKind::AddValue(64.0),
        };
        let out = engine().run(&a, &b, OneSidedThreadAbft::new, Some(fault));
        assert!(out.fault_detected());
        // Exactly one thread owns the element, so exactly one detection.
        assert_eq!(out.detections.len(), 1);
        assert!(out.detections[0].residual > out.detections[0].threshold);
    }

    #[test]
    fn detects_exponent_bit_flips() {
        let a = Matrix::random(32, 64, 25);
        let b = Matrix::random(64, 32, 26);
        for bit in [23u8, 25, 28, 30] {
            let fault = FaultPlan {
                row: 1,
                col: 1,
                after_step: u64::MAX,
                kind: FaultKind::BitFlip(bit),
            };
            let out = engine().run(&a, &b, OneSidedThreadAbft::new, Some(fault));
            assert!(out.fault_detected(), "bit {bit} escaped detection");
        }
    }

    #[test]
    fn counters_match_table_1() {
        let a = Matrix::random(32, 64, 27);
        let b = Matrix::random(64, 32, 28);
        let out = engine().run(&a, &b, OneSidedThreadAbft::new, None);
        let t = engine().tiling();
        let steps = out.counters.threads * out.counters.k_steps;
        assert_eq!(out.counters.scheme.extra_mmas, steps * t.thread_mt() / 2);
        assert_eq!(out.counters.scheme.checksum_ops, steps * t.thread_nt() / 2);
    }

    #[test]
    fn detection_localizes_to_the_owning_thread_rows() {
        // One-sided ABFT checks per accumulator row: a fault in row r is
        // flagged by the thread owning row r.
        let a = Matrix::random(32, 64, 29);
        let b = Matrix::random(64, 32, 30);
        let fault = FaultPlan {
            row: 9,
            col: 20,
            after_step: 0,
            kind: FaultKind::SetValue(1000.0),
        };
        let out = engine().run(&a, &b, OneSidedThreadAbft::new, Some(fault));
        assert_eq!(out.detections.len(), 1);
        let d = &out.detections[0];
        // Row 9: group = 9 - 8 = 1 in the upper-half granule => lanes 4..8.
        assert!(d.lane / 4 == 1, "lane {}", d.lane);
    }
}
