//! One-sided thread-level ABFT (§5.2.2) — the scheme intensity-guided
//! ABFT deploys on bandwidth-bound layers.
//!
//! Per K-step, the thread generates a checksum only for its `Bt` chunk
//! (one FP16 row-sum per k-lane, on traditional ALUs) and multiplies the
//! *entirety* of its `At` chunk by that checksum on Tensor Cores —
//! `Mt/2` extra MMAs and `O(Nt)` checksum ops per step (Table 1). The
//! running ABFT results are `Mt` per-row sums; at the end the thread
//! compares each against the row sum of its own accumulators. Everything
//! reuses the loads the thread already performed: zero extra memory
//! traffic (the §3.5 design principle).

use crate::tolerance::Tolerance;
use aiga_dtype::Dtype;
use aiga_gpu::engine::{
    KStep, LaneWalk, SchemeCounters, ThreadCtx, ThreadLocalScheme, ThreadVerdict,
};
use aiga_gpu::tiling::{MAX_THREAD_MT, MAX_THREAD_NT};

/// Per-thread state of one-sided thread-level ABFT.
///
/// The running checksums live in fixed-size arrays bounded by the
/// register-file limit on thread tiles ([`MAX_THREAD_MT`]) — exactly as
/// the real kernel keeps them in registers — so constructing one
/// instance per simulated thread never touches the heap.
#[derive(Clone, Debug)]
pub struct OneSidedThreadAbft {
    tolerance: Tolerance,
    /// Running ABFT outputs: `abft[i] ≈ Σ_k At[i][k] · (Σ_j Bt[k][j])`.
    abft: [f32; MAX_THREAD_MT],
    /// Running `Σ_k |At[i][k]| · Σ_j |Bt[k][j]|` for the error bound.
    magnitude: [f64; MAX_THREAD_MT],
    steps: u64,
    /// Storage dtype of the GEMM being verified, captured per K-step —
    /// selects the checksum chain's arithmetic ([`Dtype::chain_add`]) and
    /// its unit roundoff in the detection threshold.
    dtype: Dtype,
    counters: SchemeCounters,
}

impl OneSidedThreadAbft {
    /// Creates a scheme instance with the default analytical tolerance.
    pub fn new() -> Self {
        Self::with_tolerance(Tolerance::Analytical)
    }

    /// Creates a scheme instance with an explicit tolerance policy.
    pub fn with_tolerance(tolerance: Tolerance) -> Self {
        OneSidedThreadAbft {
            tolerance,
            abft: [0.0; MAX_THREAD_MT],
            magnitude: [0.0; MAX_THREAD_MT],
            steps: 0,
            dtype: Dtype::F16,
            counters: SchemeCounters::default(),
        }
    }
}

impl Default for OneSidedThreadAbft {
    fn default() -> Self {
        Self::new()
    }
}

impl OneSidedThreadAbft {
    /// The scalar K-step walk over `[first, last)` — the portable body
    /// of the fused lane walk, also finishing the remainder the SIMD
    /// path leaves (it runs whole 4-step blocks only).
    fn scalar_steps(&mut self, rows: &[&[f32]], cols: &[&[f32]], first: usize, last: usize) {
        let dt = self.dtype;
        for step in first..last {
            let k0 = step * 2;
            let mut w = [0.0f32; 2];
            let mut w_abs = [0.0f64; 2];
            for (lane, (w, w_abs)) in w.iter_mut().zip(w_abs.iter_mut()).enumerate() {
                let mut sum = 0.0f32;
                for col in cols {
                    let v = col[k0 + lane];
                    sum = dt.chain_add(sum, v);
                    *w_abs += (v as f64).abs();
                }
                *w = sum;
            }
            let (w0, w1) = (w[0], w[1]);
            for (i, row) in rows.iter().enumerate() {
                let a0 = row[k0];
                let a1 = row[k0 + 1];
                self.abft[i] += a0 * w0 + a1 * w1;
                self.magnitude[i] += (a0 as f64).abs() * w_abs[0] + (a1 as f64).abs() * w_abs[1];
            }
        }
    }
}

/// The F16C-vectorized fp16 checksum chain. Each K-step's chain is a
/// serial `chain_add` recurrence, but *steps* are independent of each
/// other, so the walk packs 4 consecutive steps × 2 k-lanes into one
/// 8-wide register — exactly the interleaving the panels store — and
/// rounds all 8 running sums per chain element with one `vcvtps2ph`/
/// `vcvtph2ps` pair. Every individual f32/f64 operation and its order
/// match the scalar walk, so results are bit-identical:
/// `vcvtps2ph(RNE)` *is* the correctly-rounded f32→fp16 conversion
/// `Dtype::chain_add` applies (`aiga-fp16`'s oracle-tested software
/// rounding), and the per-step pair sums / accumulator adds are
/// extracted and applied in the scalar order.
#[cfg(target_arch = "x86_64")]
mod x86 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Runs whole 4-step blocks of the fp16-chain lane walk and returns
    /// the index of the first unprocessed step (the caller finishes the
    /// `k_steps % 4` tail with the scalar walk).
    ///
    /// # Safety
    /// The host must support F16C (which implies AVX).
    #[target_feature(enable = "avx", enable = "f16c")]
    pub(super) unsafe fn walk_f16_chain(
        cols: &[&[f32]],
        rows: &[&[f32]],
        k_steps: usize,
        abft: &mut [f32],
        magnitude: &mut [f64],
    ) -> usize {
        let blocks = k_steps / 4;
        let sign_mask32 = _mm256_set1_ps(-0.0);
        for blk in 0..blocks {
            let base = blk * 8; // 4 steps × 2 k-lanes of interleaved f32
                                // Chain over the owned columns: slot j of `sum` is the
                                // running checksum of (step blk·4 + j/2, k-lane j%2).
            let mut sum = _mm256_setzero_ps();
            let mut wa_lo = _mm256_setzero_pd(); // |v| sums, slots 0..4
            let mut wa_hi = _mm256_setzero_pd(); // |v| sums, slots 4..8
            for col in cols {
                debug_assert!(base + 8 <= col.len());
                let v = _mm256_loadu_ps(col.as_ptr().add(base));
                sum = _mm256_add_ps(sum, v);
                sum = _mm256_cvtph_ps(_mm256_cvtps_ph(sum, _MM_FROUND_TO_NEAREST_INT));
                let va = _mm256_andnot_ps(sign_mask32, v);
                wa_lo = _mm256_add_pd(wa_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(va)));
                wa_hi = _mm256_add_pd(wa_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)));
            }
            let mut wa = [0.0f64; 8];
            _mm256_storeu_pd(wa.as_mut_ptr(), wa_lo);
            _mm256_storeu_pd(wa.as_mut_ptr().add(4), wa_hi);
            // The redundant MMAs, four steps at a time: the products are
            // one vector multiply (each slot a single f32 multiply, as in
            // the scalar walk); the per-step pair sums and the running
            // accumulator adds happen in scalar step order.
            for (i, row) in rows.iter().enumerate() {
                debug_assert!(base + 8 <= row.len());
                let a = _mm256_loadu_ps(row.as_ptr().add(base));
                let mut t = [0.0f32; 8];
                _mm256_storeu_ps(t.as_mut_ptr(), _mm256_mul_ps(a, sum));
                let mut acc = abft[i];
                let mut mag = magnitude[i];
                for s in 0..4 {
                    acc += t[2 * s] + t[2 * s + 1];
                    mag += (row[base + 2 * s] as f64).abs() * wa[2 * s]
                        + (row[base + 2 * s + 1] as f64).abs() * wa[2 * s + 1];
                }
                abft[i] = acc;
                magnitude[i] = mag;
            }
        }
        blocks * 4
    }
}

impl ThreadLocalScheme for OneSidedThreadAbft {
    fn begin(&mut self, ctx: &ThreadCtx) {
        debug_assert!(ctx.rows.len() <= MAX_THREAD_MT);
        self.abft.fill(0.0);
        self.magnitude.fill(0.0);
        self.steps = 0;
        self.counters = SchemeCounters::default();
    }

    fn on_k_step(&mut self, step: &KStep<'_>) {
        let (mt, nt) = (step.mt, step.nt);
        self.dtype = step.dtype;
        // Row checksums of the Bt chunk, one per k-lane, generated with
        // sequential adds in the dtype's checksum-chain format (the HADD2
        // path for fp16) — [`Dtype::chain_add`] rounds each partial sum
        // exactly as the hardware chain would; the magnitude bound reads
        // the engine's pre-decoded values.
        let mut w = [0.0f32; 2];
        let mut w_abs = [0.0f64; 2];
        for lane in 0..2 {
            let row_f32 = &step.b_f32[lane * nt..(lane + 1) * nt];
            let mut sum = 0.0f32;
            for &v in row_f32 {
                sum = self.dtype.chain_add(sum, v);
                w_abs[lane] += (v as f64).abs();
            }
            w[lane] = sum;
        }
        // The redundant MMAs: multiply the whole At chunk by the checksum
        // (low-precision products, FP32 accumulation — same datapath as
        // the MMA).
        let w0 = w[0];
        let w1 = w[1];
        for i in 0..mt {
            let a0 = step.a_f32[i * 2];
            let a1 = step.a_f32[i * 2 + 1];
            self.abft[i] += a0 * w0 + a1 * w1;
            self.magnitude[i] += (a0 as f64).abs() * w_abs[0] + (a1 as f64).abs() * w_abs[1];
        }
        self.steps += 1;
        self.counters.extra_mmas += (mt as u64) / 2;
        self.counters.checksum_ops += (nt as u64) / 2;
    }

    // Only the pre-decoded views are consumed, so the engine never
    // stages the raw FP16 panels for this scheme.
    fn uses_raw_fragments(&self) -> bool {
        false
    }

    /// Fused whole-lane walk: performs exactly the arithmetic
    /// [`Self::on_k_step`] would perform over the step-ordered replay —
    /// the same `chain_add` sequence, FP32 accumulations, and f64
    /// magnitude updates, in the same order — but streams the panel
    /// slices directly instead of paying a fragment gather and a virtual
    /// call per K-step. On hosts with F16C the fp16 chain vectorizes
    /// across K-steps (steps are independent; only the within-step chain
    /// is serial) with `vcvtps2ph`, whose round-to-nearest-even is the
    /// same single rounding [`Dtype::chain_add`] applies. Verdicts,
    /// residuals, and counters are bit-identical to the default replay
    /// path on every host (pinned by test).
    fn walk_lane(&mut self, walk: &LaneWalk<'_>) {
        let (mt, nt, k) = (walk.rows.len(), walk.cols.len(), walk.k);
        self.dtype = walk.dtype;
        // One contiguous K-walk slice per owned row/column.
        let mut rows: [&[f32]; MAX_THREAD_MT] = [&[]; MAX_THREAD_MT];
        for (ri, &r) in walk.rows.iter().enumerate() {
            rows[ri] = &walk.a_f32[r * k..r * k + k];
        }
        let mut cols: [&[f32]; MAX_THREAD_NT] = [&[]; MAX_THREAD_NT];
        for (ci, &c) in walk.cols.iter().enumerate() {
            cols[ci] = &walk.b_f32_t[c * k..c * k + k];
        }
        let mut first_step = 0usize;
        #[cfg(target_arch = "x86_64")]
        if matches!(self.dtype, Dtype::F16 | Dtype::Fp8E4M3)
            && aiga_gpu::engine::simd::active_path().is_simd()
            && std::arch::is_x86_feature_detected!("f16c")
        {
            // SAFETY: the F16C (and the AVX it implies) requirement was
            // just verified at runtime.
            first_step = unsafe {
                x86::walk_f16_chain(
                    &cols[..nt],
                    &rows[..mt],
                    walk.k_steps as usize,
                    &mut self.abft,
                    &mut self.magnitude,
                )
            };
        }
        self.scalar_steps(&rows[..mt], &cols[..nt], first_step, walk.k_steps as usize);
        self.steps += walk.k_steps;
        self.counters.extra_mmas += walk.k_steps * ((mt as u64) / 2);
        self.counters.checksum_ops += walk.k_steps * ((nt as u64) / 2);
    }

    fn finalize(&mut self, _ctx: &ThreadCtx, acc: &[f32], mt: usize, nt: usize) -> ThreadVerdict {
        let mut worst = ThreadVerdict::clean();
        for i in 0..mt {
            let row_sum: f64 = acc[i * nt..(i + 1) * nt].iter().map(|&v| v as f64).sum();
            let residual = (row_sum - self.abft[i] as f64).abs();
            // Low-precision rounds: Nt-term B-checksum per step at the
            // chain's unit roundoff; FP32 rounds: the two running
            // accumulations plus the final row sum.
            let rounds_lp = nt as f64;
            let rounds32 = (2 * self.steps) as f64 + nt as f64;
            let threshold = self.tolerance.threshold_lp(
                rounds_lp,
                self.dtype.chain_unit(),
                rounds32,
                self.magnitude[i],
            );
            if residual > threshold && residual > worst.residual {
                worst = ThreadVerdict {
                    fault_detected: true,
                    residual,
                    threshold,
                };
            } else if !worst.fault_detected && residual > worst.residual {
                worst = ThreadVerdict {
                    fault_detected: false,
                    residual,
                    threshold,
                };
            }
        }
        worst
    }

    fn counters(&self) -> SchemeCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{FaultKind, FaultPlan, GemmEngine, Matrix};
    use aiga_gpu::{GemmShape, TilingConfig};

    fn engine() -> GemmEngine {
        GemmEngine::new(
            GemmShape::new(32, 32, 64),
            TilingConfig {
                block_m: 32,
                block_n: 32,
                block_k: 16,
                warp_m: 16,
                warp_n: 16,
            },
        )
    }

    #[test]
    fn clean_run_raises_no_detection() {
        let a = Matrix::random(32, 64, 21);
        let b = Matrix::random(64, 32, 22);
        let out = engine().run(&a, &b, OneSidedThreadAbft::new, None);
        assert!(!out.fault_detected(), "{:?}", out.detections.first());
    }

    #[test]
    fn detects_an_injected_additive_fault() {
        let a = Matrix::random(32, 64, 23);
        let b = Matrix::random(64, 32, 24);
        let fault = FaultPlan {
            row: 10,
            col: 3,
            after_step: 7,
            kind: FaultKind::AddValue(64.0),
        };
        let out = engine().run(&a, &b, OneSidedThreadAbft::new, Some(fault));
        assert!(out.fault_detected());
        // Exactly one thread owns the element, so exactly one detection.
        assert_eq!(out.detections.len(), 1);
        assert!(out.detections[0].residual > out.detections[0].threshold);
    }

    #[test]
    fn detects_exponent_bit_flips() {
        let a = Matrix::random(32, 64, 25);
        let b = Matrix::random(64, 32, 26);
        for bit in [23u8, 25, 28, 30] {
            let fault = FaultPlan {
                row: 1,
                col: 1,
                after_step: u64::MAX,
                kind: FaultKind::BitFlip(bit),
            };
            let out = engine().run(&a, &b, OneSidedThreadAbft::new, Some(fault));
            assert!(out.fault_detected(), "bit {bit} escaped detection");
        }
    }

    #[test]
    fn counters_match_table_1() {
        let a = Matrix::random(32, 64, 27);
        let b = Matrix::random(64, 32, 28);
        let out = engine().run(&a, &b, OneSidedThreadAbft::new, None);
        let t = engine().tiling();
        let steps = out.counters.threads * out.counters.k_steps;
        assert_eq!(out.counters.scheme.extra_mmas, steps * t.thread_mt() / 2);
        assert_eq!(out.counters.scheme.checksum_ops, steps * t.thread_nt() / 2);
    }

    #[test]
    fn fused_walk_is_bit_identical_to_the_replayed_walk() {
        // A wrapper that inherits the trait's default `walk_lane` (the
        // per-step fragment replay) while delegating every hook to a
        // real one-sided instance: running both against the same GEMM
        // pins the fused override to the replay bit for bit — verdicts,
        // residuals, thresholds, and counters.
        struct ReplayOnly(OneSidedThreadAbft);
        impl ThreadLocalScheme for ReplayOnly {
            fn begin(&mut self, ctx: &ThreadCtx) {
                self.0.begin(ctx)
            }
            fn on_k_step(&mut self, step: &KStep<'_>) {
                self.0.on_k_step(step)
            }
            fn finalize(
                &mut self,
                ctx: &ThreadCtx,
                acc: &[f32],
                mt: usize,
                nt: usize,
            ) -> ThreadVerdict {
                self.0.finalize(ctx, acc, mt, nt)
            }
            fn counters(&self) -> SchemeCounters {
                self.0.counters()
            }
        }
        let a = Matrix::random(32, 64, 31);
        let b = Matrix::random(64, 32, 32);
        for fault in [
            None,
            Some(FaultPlan {
                row: 5,
                col: 11,
                after_step: 3,
                kind: FaultKind::AddValue(48.0),
            }),
        ] {
            let fused = engine().run(&a, &b, OneSidedThreadAbft::new, fault);
            let replayed = engine().run(&a, &b, || ReplayOnly(OneSidedThreadAbft::new()), fault);
            assert_eq!(fused.c, replayed.c);
            assert_eq!(fused.detections.len(), replayed.detections.len());
            for (f, r) in fused.detections.iter().zip(&replayed.detections) {
                assert_eq!(f.residual.to_bits(), r.residual.to_bits());
                assert_eq!(f.threshold.to_bits(), r.threshold.to_bits());
                assert_eq!((f.block, f.warp, f.lane), (r.block, r.warp, r.lane));
            }
            assert_eq!(fused.counters.scheme, replayed.counters.scheme);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn f16c_chain_walk_is_bit_identical_on_adversarial_values() {
        // The vectorized chain must agree with the scalar `chain_add`
        // walk on the values where an incorrect rounding would hide:
        // fp16 subnormals, quantum-boundary ties, the 65504/65520
        // overflow edge, signed zeros, and sign cancellations.
        if !std::arch::is_x86_feature_detected!("f16c") {
            return;
        }
        use aiga_fp16::F16;
        let specials = [
            0x0000u16, 0x8000, // ±0
            0x0001, 0x03ff, 0x8001, // subnormals
            0x0400, 0x8400, // smallest normals
            0x3c00, 0xbc00, 0x3c01, // ±1, 1+ulp
            0x57ff, 0xd800, // near the 128 quantum step
            0x7bff, 0xfbff, // ±65504
            0x7800, 0xf800, // ±32768 (chains toward overflow)
        ];
        let k = 64usize; // 32 steps: exercises both SIMD blocks and tail
        let (mt, nt) = (4usize, 8usize);
        let mut state = 12345u32;
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    if i % 3 == 0 {
                        F16::from_bits(specials[(state >> 8) as usize % specials.len()]).to_f32()
                    } else {
                        F16::from_f32(((state >> 16) as f32 - 32768.0) / 256.0).to_f32()
                    }
                })
                .collect()
        };
        let col_data: Vec<Vec<f32>> = (0..nt).map(|_| fill(k)).collect();
        let row_data: Vec<Vec<f32>> = (0..mt).map(|_| fill(k)).collect();
        let cols: Vec<&[f32]> = col_data.iter().map(|c| c.as_slice()).collect();
        let rows: Vec<&[f32]> = row_data.iter().map(|r| r.as_slice()).collect();
        let k_steps = k / 2;

        let mut simd = OneSidedThreadAbft::new();
        // SAFETY: f16c support verified above.
        let first = unsafe {
            super::x86::walk_f16_chain(&cols, &rows, k_steps, &mut simd.abft, &mut simd.magnitude)
        };
        simd.scalar_steps(&rows, &cols, first, k_steps);

        let mut scalar = OneSidedThreadAbft::new();
        scalar.scalar_steps(&rows, &cols, 0, k_steps);

        for i in 0..mt {
            assert_eq!(
                simd.abft[i].to_bits(),
                scalar.abft[i].to_bits(),
                "abft[{i}] drifted"
            );
            assert_eq!(
                simd.magnitude[i].to_bits(),
                scalar.magnitude[i].to_bits(),
                "magnitude[{i}] drifted"
            );
        }
    }

    #[test]
    fn detection_localizes_to_the_owning_thread_rows() {
        // One-sided ABFT checks per accumulator row: a fault in row r is
        // flagged by the thread owning row r.
        let a = Matrix::random(32, 64, 29);
        let b = Matrix::random(64, 32, 30);
        let fault = FaultPlan {
            row: 9,
            col: 20,
            after_step: 0,
            kind: FaultKind::SetValue(1000.0),
        };
        let out = engine().run(&a, &b, OneSidedThreadAbft::new, Some(fault));
        assert_eq!(out.detections.len(), 1);
        let d = &out.detections[0];
        // Row 9: group = 9 - 8 = 1 in the upper-half granule => lanes 4..8.
        assert!(d.lane / 4 == 1, "lane {}", d.lane);
    }
}
