//! Per-scheme kernel cost profiles for the timing model.
//!
//! This is where Table 1 meets the `aiga-gpu` timing model — but the
//! per-scheme arithmetic itself lives with each scheme's
//! [`crate::kernel::SchemeKernel`] implementation. The functions here are
//! the evaluation loop: take a baseline profile, ask the registry's
//! kernel for a scheme to add its costs, and estimate the result.
//!
//! Unit conventions: one MMA participation is 8 Tensor-Core FLOPs (a
//! thread's share of one `m16n8k8` per K-step pair); one checksum op is
//! an `HADD2`-class packed instruction — two FP16 adds, but charged one
//! flop-equivalent of the packed-math peak because it partially
//! dual-issues into Tensor-Core pipeline gaps (calibrated). See
//! [`crate::kernel::FLOPS_PER_MMA_PARTICIPATION`] and
//! [`crate::kernel::FLOPS_PER_CHECKSUM_OP`].

use crate::registry::{self, SchemeRegistry};
use crate::schemes::Scheme;
use aiga_dtype::Dtype;
use aiga_gpu::timing::{self, Calibration, KernelProfile, TimeEstimate};
use aiga_gpu::{DeviceSpec, GemmPath, GemmShape};

pub use crate::kernel::{FLOPS_PER_CHECKSUM_OP, FLOPS_PER_MMA_PARTICIPATION};

/// Builds the kernel profile of a scheme-protected GEMM.
pub fn scheme_profile(
    scheme: Scheme,
    shape: GemmShape,
    device: &DeviceSpec,
    calib: &Calibration,
) -> KernelProfile {
    let mut p = KernelProfile::baseline(shape, device, calib);
    apply_scheme(&mut p, scheme, calib);
    p
}

/// Adds a scheme's costs to an existing baseline profile (used by sweeps
/// that pin the tiling across schemes), resolving the scheme through the
/// shared built-in registry.
pub fn apply_scheme(p: &mut KernelProfile, scheme: Scheme, calib: &Calibration) {
    apply_scheme_with(registry::shared(), p, scheme, calib);
}

/// [`apply_scheme`] against an explicit registry (custom scheme sets).
pub fn apply_scheme_with(
    registry: &SchemeRegistry,
    p: &mut KernelProfile,
    scheme: Scheme,
    calib: &Calibration,
) {
    registry.resolve(scheme).apply_cost(p, calib);
}

/// Coarse wall-clock estimate, in seconds, of executing `shape` once on
/// the **host** functional substrate via `path`.
///
/// Everything else in this module prices schemes on the *simulated*
/// device; this prices the simulation itself. Campaign planners and
/// serving shard sizing use it to budget sweeps without running them,
/// and it is keyed off the engine's [`GemmPath`] dispatch so the budget
/// tracks whichever microkernel the runner actually selects (including
/// under `AIGA_FORCE_SCALAR`).
///
/// The throughput constants are effective rates, not peaks: the SIMD
/// figure is the ballpark a warm 256³ run of the AVX2+FMA microkernel
/// reaches on one ~2 GHz reference core; the scalar figure reflects the
/// one-FMA-chain-per-element oracle walk. The staging term charges the
/// FP16 decode + pack passes over both operands. Deliberately coarse —
/// relative ordering and order-of-magnitude are what callers rely on.
pub fn host_substrate_estimate(shape: GemmShape, path: GemmPath) -> f64 {
    host_substrate_estimate_dtype(shape, path, Dtype::F16)
}

/// [`host_substrate_estimate`] for an explicit storage dtype. The GEMM
/// flops are dtype-independent (the panels are decoded f32 either way),
/// but the staging term scales with the storage width — `dtype.bytes()`
/// read per element plus the 4 B f32 panel write — and each GEMM touches
/// the dtype's decode table once, charged as a cache-warm pass over
/// [`Dtype::decode_table_bytes`].
pub fn host_substrate_estimate_dtype(shape: GemmShape, path: GemmPath, dtype: Dtype) -> f64 {
    // A dense GEMM stages every A element from storage: the activation
    // footprint equals m·k.
    host_substrate_estimate_conv_dtype(shape, path, dtype, shape.m * shape.k)
}

/// [`host_substrate_estimate`] for a convolution on the fused
/// im2col→panel-pack path: the lowered `m × k` matrix never exists, so
/// its storage-width bytes drop out of the traffic model. `a_src_elems`
/// is the activation-tensor footprint actually read
/// (`batch · C_in · H · W`); window overlap re-reads the same elements
/// through the zero-copy view, but those hits are cache-resident and
/// not charged. The f32 panel write still covers the full `m · k`
/// decoded panel volume. For a 3×3 stride-1 conv this cuts the staged
/// A-read bytes ~9×, which is exactly the bandwidth tax the fused path
/// removes.
pub fn host_substrate_estimate_conv(shape: GemmShape, path: GemmPath, a_src_elems: u64) -> f64 {
    host_substrate_estimate_conv_dtype(shape, path, Dtype::F16, a_src_elems)
}

/// [`host_substrate_estimate_conv`] for an explicit storage dtype.
pub fn host_substrate_estimate_conv_dtype(
    shape: GemmShape,
    path: GemmPath,
    dtype: Dtype,
    a_src_elems: u64,
) -> f64 {
    const SIMD_FLOPS_PER_S: f64 = 20.0e9;
    const SCALAR_FLOPS_PER_S: f64 = 2.0e9;
    const STAGE_BYTES_PER_S: f64 = 4.0e9;
    let flops = 2.0 * shape.m as f64 * shape.n as f64 * shape.k as f64;
    // A: read once from its source at the storage width, written
    // decoded/packed as f32 (4 B) over the full panel volume. B: each
    // element read at storage width and written as f32.
    let staged_bytes = dtype.bytes() as f64 * a_src_elems as f64
        + 4.0 * (shape.m * shape.k) as f64
        + (dtype.bytes() + 4) as f64 * (shape.k * shape.n) as f64
        + dtype.decode_table_bytes() as f64;
    let rate = if path.is_simd() {
        SIMD_FLOPS_PER_S
    } else {
        SCALAR_FLOPS_PER_S
    };
    flops / rate + staged_bytes / STAGE_BYTES_PER_S
}

/// Arithmetic intensity of a conv layer on the fused implicit-GEMM
/// path: `A` traffic is the activation footprint (`a_src_elems`, i.e.
/// `batch · C_in · H · W`) instead of the lowered `m · k` matrix, while
/// `B` and `C` keep their padded-shape volumes. High-overlap kernels
/// (3×3 stride 1) shed up to ~9× of their `A` bytes, which can lift a
/// layer from below the device's compute-to-memory ratio to above it —
/// flipping the intensity-guided scheme selection from thread-level to
/// global ABFT. The device-side planner keeps the paper's materialized
/// traffic model (its figures are validated against it); this is the
/// host-substrate view of the same layer.
pub fn fused_conv_intensity(shape: GemmShape, a_src_elems: u64, dtype: Dtype) -> f64 {
    let p = shape.padded_to_mma();
    let bytes = dtype.bytes() * (a_src_elems + p.k * p.n + p.m * p.n);
    p.flops() as f64 / bytes as f64
}

/// Timing of one scheme on one layer, with its overhead over the
/// unprotected baseline.
#[derive(Clone, Debug)]
pub struct SchemeTiming {
    /// The scheme evaluated.
    pub scheme: Scheme,
    /// Its time estimate.
    pub estimate: TimeEstimate,
    /// Percentage overhead versus the unprotected baseline (§6.2 metric).
    pub overhead_pct: f64,
}

/// Evaluates a set of schemes on one GEMM shape, returning each scheme's
/// estimated time and overhead (the pre-deployment profiling pass of
/// §5.3), using the shared built-in registry.
pub fn evaluate_layer(
    shape: GemmShape,
    schemes: &[Scheme],
    device: &DeviceSpec,
    calib: &Calibration,
) -> (TimeEstimate, Vec<SchemeTiming>) {
    evaluate_layer_with(registry::shared(), shape, schemes, device, calib)
}

/// [`evaluate_layer`] against an explicit registry.
pub fn evaluate_layer_with(
    registry: &SchemeRegistry,
    shape: GemmShape,
    schemes: &[Scheme],
    device: &DeviceSpec,
    calib: &Calibration,
) -> (TimeEstimate, Vec<SchemeTiming>) {
    evaluate_layer_dtype_with(registry, shape, schemes, device, calib, Dtype::F16)
}

/// [`evaluate_layer_with`] for an explicit storage dtype: the baseline
/// profile prices operand and output traffic at `dtype.bytes()` per
/// element, which moves the layer's position on the roofline — narrower
/// storage raises arithmetic intensity, so layers near the crossover can
/// flip from thread-level to global ABFT (the intensity-guided selection
/// is dtype-dependent).
pub fn evaluate_layer_dtype_with(
    registry: &SchemeRegistry,
    shape: GemmShape,
    schemes: &[Scheme],
    device: &DeviceSpec,
    calib: &Calibration,
    dtype: Dtype,
) -> (TimeEstimate, Vec<SchemeTiming>) {
    let baseline_profile = KernelProfile::baseline_dtype(shape, device, calib, dtype.bytes());
    let baseline = timing::estimate(&baseline_profile, device, calib);
    let timings = schemes
        .iter()
        .map(|&scheme| {
            let mut p = baseline_profile.clone();
            apply_scheme_with(registry, &mut p, scheme, calib);
            let estimate = timing::estimate(&p, device, calib);
            let overhead_pct = timing::overhead_percent(&baseline, &estimate);
            SchemeTiming {
                scheme,
                estimate,
                overhead_pct,
            }
        })
        .collect();
    (baseline, timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> DeviceSpec {
        DeviceSpec::t4()
    }

    fn overheads(s: u64) -> Vec<(Scheme, f64)> {
        let calib = Calibration::default();
        let (_, ts) = evaluate_layer(
            GemmShape::square(s),
            &Scheme::all_protected(),
            &t4(),
            &calib,
        );
        ts.into_iter().map(|t| (t.scheme, t.overhead_pct)).collect()
    }

    fn of(list: &[(Scheme, f64)], s: Scheme) -> f64 {
        list.iter().find(|(sc, _)| *sc == s).unwrap().1
    }

    #[test]
    fn bandwidth_bound_sizes_favor_thread_level_abft() {
        // Fig. 12, left of the CMR line: thread-level ABFT beats global
        // by a wide margin (the paper reports up to 6.5×).
        for s in [32u64, 64, 128, 256, 512] {
            let o = overheads(s);
            let one = of(&o, Scheme::ThreadLevelOneSided);
            let glob = of(&o, Scheme::GlobalAbft);
            assert!(
                one < glob,
                "size {s}: one-sided {one:.2}% !< global {glob:.2}%"
            );
        }
    }

    #[test]
    fn compute_bound_sizes_favor_global_abft() {
        // Fig. 12, right of the CMR line: global ABFT wins (up to 14×).
        for s in [1024u64, 2048] {
            let o = overheads(s);
            let one = of(&o, Scheme::ThreadLevelOneSided);
            let glob = of(&o, Scheme::GlobalAbft);
            assert!(
                glob < one,
                "size {s}: global {glob:.2}% !< one-sided {one:.2}%"
            );
            assert!(glob < 4.0, "global should be cheap at {s}: {glob:.2}%");
        }
    }

    #[test]
    fn one_sided_beats_two_sided_and_replication_when_compute_bound() {
        // §6.5: the one-sided "sweet spot".
        for s in [1024u64, 2048] {
            let o = overheads(s);
            let one = of(&o, Scheme::ThreadLevelOneSided);
            let two = of(&o, Scheme::ThreadLevelTwoSided);
            let rep = of(&o, Scheme::ReplicationSingleAcc);
            assert!(one < two, "size {s}: {one:.1} !< {two:.1}");
            assert!(two < rep, "size {s}: {two:.1} !< {rep:.1}");
        }
    }

    #[test]
    fn replication_overhead_spikes_beyond_70_percent_at_large_sizes() {
        // Fig. 12: "The overhead for replication is above 70% for the
        // final two sizes".
        for s in [1024u64, 2048] {
            let o = overheads(s);
            assert!(of(&o, Scheme::ReplicationSingleAcc) > 70.0, "size {s}");
        }
    }

    #[test]
    fn traditional_replication_is_never_faster_than_single_acc() {
        // §4: the occupancy/register cost of traditional replication.
        for s in [128u64, 512, 2048] {
            let o = overheads(s);
            assert!(
                of(&o, Scheme::ReplicationTraditional)
                    >= of(&o, Scheme::ReplicationSingleAcc) - 1e-9,
                "size {s}"
            );
        }
    }

    #[test]
    fn global_overhead_decays_with_size() {
        let calib = Calibration::default();
        let mut prev = f64::MAX;
        for s in [32u64, 128, 512, 2048] {
            let (_, ts) =
                evaluate_layer(GemmShape::square(s), &[Scheme::GlobalAbft], &t4(), &calib);
            let o = ts[0].overhead_pct;
            assert!(o < prev, "size {s}: {o} !< {prev}");
            prev = o;
        }
    }

    #[test]
    fn unprotected_profile_is_the_baseline() {
        let calib = Calibration::default();
        let (base, ts) = evaluate_layer(
            GemmShape::square(256),
            &[Scheme::Unprotected],
            &t4(),
            &calib,
        );
        assert_eq!(ts[0].estimate.total_s, base.total_s);
        assert_eq!(ts[0].overhead_pct, 0.0);
    }

    #[test]
    fn host_substrate_estimate_orders_paths_and_sizes() {
        for s in [64u64, 256, 1024] {
            let shape = GemmShape::square(s);
            let simd = host_substrate_estimate(shape, GemmPath::Avx2Fma);
            let scalar = host_substrate_estimate(shape, GemmPath::Scalar);
            assert!(simd > 0.0 && simd < scalar, "size {s}: {simd} !< {scalar}");
        }
        // Monotone in problem size on either path.
        for path in [GemmPath::Avx2Fma, GemmPath::Scalar] {
            let small = host_substrate_estimate(GemmShape::square(128), path);
            let large = host_substrate_estimate(GemmShape::square(512), path);
            assert!(small < large);
        }
    }

    #[test]
    fn host_substrate_estimate_prices_storage_width_and_tables() {
        let shape = GemmShape::square(512);
        // Narrower storage stages fewer bytes: fp8 < fp16 on the same path.
        let fp16 = host_substrate_estimate_dtype(shape, GemmPath::Avx2Fma, Dtype::F16);
        let fp8 = host_substrate_estimate_dtype(shape, GemmPath::Avx2Fma, Dtype::Fp8E4M3);
        assert!(fp8 < fp16, "fp8 {fp8} !< fp16 {fp16}");
        // The f16 variant is the delegating default.
        assert_eq!(fp16, host_substrate_estimate(shape, GemmPath::Avx2Fma));
        // On a tiny GEMM the 256 KiB decode table dominates the staging
        // term, so the tableless int8 estimate undercuts bf16.
        let tiny = GemmShape::square(16);
        let bf16 = host_substrate_estimate_dtype(tiny, GemmPath::Avx2Fma, Dtype::Bf16);
        let int8 = host_substrate_estimate_dtype(tiny, GemmPath::Avx2Fma, Dtype::Int8);
        assert!(int8 < bf16, "int8 {int8} !< bf16 {bf16}");
    }

    #[test]
    fn fused_conv_repricing_drops_the_lowered_matrix_bytes() {
        // A 3×3 stride-1 conv over 64 × 56 × 56 activations: the fused
        // path reads 200,704 activation elements where the materialized
        // lowering staged m·k ≈ 1.8M — the estimate must shrink on both
        // dispatch paths, and never below the pure-flops floor.
        let shape = GemmShape::new(56 * 56, 64, 64 * 9);
        let a_src = 64 * 56 * 56;
        for path in [GemmPath::Avx2Fma, GemmPath::Scalar] {
            let dense = host_substrate_estimate(shape, path);
            let fused = host_substrate_estimate_conv(shape, path, a_src);
            assert!(fused < dense, "{path:?}: {fused} !< {dense}");
        }
        // An fc-shaped layer (activation footprint == m·k) prices
        // identically through either entry point.
        let fc = GemmShape::new(32, 512, 512);
        assert_eq!(
            host_substrate_estimate(fc, GemmPath::Avx2Fma),
            host_substrate_estimate_conv(fc, GemmPath::Avx2Fma, fc.m * fc.k),
        );
        // Narrower storage still stages fewer bytes on the fused path.
        let fp8 =
            host_substrate_estimate_conv_dtype(shape, GemmPath::Avx2Fma, Dtype::Fp8E4M3, a_src);
        let fp16 = host_substrate_estimate_conv_dtype(shape, GemmPath::Avx2Fma, Dtype::F16, a_src);
        assert!(fp8 < fp16);
    }

    #[test]
    fn fused_conv_intensity_flips_the_intensity_guided_selector() {
        use aiga_gpu::{Bound, Roofline};
        // A 128-channel 3×3 stride-1 conv at 56×56: on the materialized
        // traffic model its intensity sits below the T4's
        // compute-to-memory ratio (bandwidth bound → thread-level ABFT);
        // dropping the lowered-matrix bytes lifts it above (compute
        // bound → global ABFT). Pin both classifications and the scheme
        // picks they imply. At small spatial extents (e.g. 32×32 zoo
        // test shapes) the shift is too small to flip anything — the
        // overlap factor only dominates once m is large.
        let shape = GemmShape::new(56 * 56, 128, 128 * 9);
        let a_src = 128 * 56 * 56;
        let lowered = shape.arithmetic_intensity_fp16();
        let fused = fused_conv_intensity(shape, a_src, Dtype::F16);
        assert!(fused > 4.0 * lowered, "{fused} vs {lowered}");
        let roofline = Roofline::new(t4());
        let pick = |i: f64| match roofline.classify_intensity(i) {
            Bound::MemoryBandwidth => Scheme::ThreadLevelOneSided,
            Bound::Compute => Scheme::GlobalAbft,
        };
        assert_eq!(pick(lowered), Scheme::ThreadLevelOneSided);
        assert_eq!(pick(fused), Scheme::GlobalAbft);
    }

    #[test]
    fn dtype_changes_the_baseline_estimate_on_bandwidth_bound_layers() {
        let calib = Calibration::default();
        let shape = GemmShape::square(256);
        let (base16, _) = evaluate_layer_dtype_with(
            registry::shared(),
            shape,
            &[Scheme::Unprotected],
            &t4(),
            &calib,
            Dtype::F16,
        );
        let (base8, _) = evaluate_layer_dtype_with(
            registry::shared(),
            shape,
            &[Scheme::Unprotected],
            &t4(),
            &calib,
            Dtype::Fp8E4M3,
        );
        // 256³ is bandwidth-bound on a T4, so halving bytes/element
        // must shorten the estimated kernel time.
        assert!(base8.total_s < base16.total_s);
    }

    #[test]
    fn custom_registry_is_honored_by_evaluate_layer_with() {
        use crate::kernel::MultiChecksumKernel;
        use crate::registry::SchemeRegistry;
        use std::sync::Arc;
        let registry = SchemeRegistry::builtin().with(Arc::new(MultiChecksumKernel::new(4)));
        let calib = Calibration::default();
        let (_, ts) = evaluate_layer_with(
            &registry,
            GemmShape::square(256),
            &[Scheme::GlobalAbft, Scheme::MultiChecksum(4)],
            &t4(),
            &calib,
        );
        assert!(ts[1].overhead_pct > ts[0].overhead_pct);
    }
}
