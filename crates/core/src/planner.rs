//! The builder-style planning front-end.
//!
//! `Planner` owns everything intensity-guided ABFT needs to decide a
//! deployment — device, calibration, candidate schemes, selection mode,
//! and the scheme registry — and produces [`ModelPlan`]s /
//! [`DeploymentPlan`]s. It replaces the old `ModelPlan::build` /
//! `ModelPlan::build_with` pair:
//!
//! ```
//! use aiga_core::{Planner, SelectionMode, Scheme};
//! use aiga_gpu::DeviceSpec;
//! use aiga_nn::zoo;
//!
//! let plan = Planner::new(DeviceSpec::t4())
//!     .candidates([Scheme::GlobalAbft, Scheme::ThreadLevelOneSided])
//!     .mode(SelectionMode::Profiled)
//!     .plan(&zoo::dlrm_mlp_bottom(32));
//! assert_eq!(plan.layers.len(), 3);
//! ```

use crate::adapt::AdaptConfig;
use crate::cost::evaluate_layer_dtype_with;
use crate::registry::{self, SchemeRegistry};
use crate::schemes::Scheme;
use crate::selector::{DeploymentPlan, LayerPlan, ModelPlan, SelectionMode};
use aiga_dtype::Dtype;
use aiga_gpu::timing::Calibration;
use aiga_gpu::{Bound, DeviceSpec, Roofline};
use aiga_nn::Model;
use std::sync::Arc;

/// Builder for intensity-guided deployment plans.
#[derive(Clone)]
pub struct Planner {
    device: DeviceSpec,
    calib: Calibration,
    candidates: Vec<Scheme>,
    mode: SelectionMode,
    registry: Arc<SchemeRegistry>,
    adapt: Option<AdaptConfig>,
    dtype: Dtype,
}

impl Planner {
    /// A planner for `device` with the paper's defaults: default
    /// calibration, the §5.3 candidate pair (global + one-sided
    /// thread-level ABFT), profiled selection, and the shared built-in
    /// scheme registry.
    pub fn new(device: DeviceSpec) -> Self {
        Planner {
            device,
            calib: Calibration::default(),
            candidates: Scheme::intensity_guided_candidates().to_vec(),
            mode: SelectionMode::Profiled,
            registry: registry::shared().clone(),
            adapt: None,
            dtype: Dtype::F16,
        }
    }

    /// Replaces the timing-model calibration.
    pub fn calibration(mut self, calib: Calibration) -> Self {
        self.calib = calib;
        self
    }

    /// Replaces the candidate scheme set the selector chooses among.
    pub fn candidates(mut self, candidates: impl IntoIterator<Item = Scheme>) -> Self {
        self.candidates = candidates.into_iter().collect();
        assert!(
            !self.candidates.is_empty(),
            "at least one candidate scheme required"
        );
        self
    }

    /// Replaces the selection mode (profiled vs. §7.2 analytical).
    pub fn mode(mut self, mode: SelectionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the storage dtype the model will execute in. Narrower
    /// storage halves (fp8/int8) or keeps (bf16) the bytes moved per
    /// element, which raises each layer's arithmetic intensity and can
    /// flip layers near the roofline crossover from thread-level to
    /// global ABFT — scheme selection is dtype-aware in both modes.
    pub fn dtype(mut self, dtype: Dtype) -> Self {
        self.dtype = dtype;
        self
    }

    /// Replaces the scheme registry (to plan over custom scheme sets).
    pub fn registry(mut self, registry: Arc<SchemeRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Requests adaptive protection control: sessions built from this
    /// planner run an online [`crate::adapt::AdaptiveController`] per
    /// batch bucket, escalating or relaxing each layer's scheme around
    /// the static plan as the observed fault rate moves (a
    /// [`crate::session::SessionBuilder::adaptive`] call overrides
    /// this default).
    pub fn adaptive(mut self, config: AdaptConfig) -> Self {
        self.adapt = Some(config);
        self
    }

    /// The adaptive-control configuration, if one was requested.
    pub fn adaptive_config(&self) -> Option<AdaptConfig> {
        self.adapt
    }

    /// The device this planner targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The calibration in use.
    pub fn calib(&self) -> &Calibration {
        &self.calib
    }

    /// The candidate schemes, in priority order.
    pub fn candidate_schemes(&self) -> &[Scheme] {
        &self.candidates
    }

    /// The storage dtype plans are priced for.
    pub fn storage_dtype(&self) -> Dtype {
        self.dtype
    }

    /// The scheme registry in use.
    pub fn scheme_registry(&self) -> &Arc<SchemeRegistry> {
        &self.registry
    }

    /// Plans one model: profiles every layer under every candidate and
    /// selects per layer (§5.3). Panics early with a clear message if a
    /// candidate has no registered kernel.
    pub fn plan(&self, model: &Model) -> ModelPlan {
        for &candidate in &self.candidates {
            self.registry.resolve(candidate);
        }
        let roofline = Roofline::new(self.device.clone());
        let layers = model
            .layers
            .iter()
            .map(|layer| {
                let shape = layer.shape.padded_to_mma();
                let (baseline, timings) = evaluate_layer_dtype_with(
                    &self.registry,
                    shape,
                    &self.candidates,
                    &self.device,
                    &self.calib,
                    self.dtype,
                );
                let intensity = shape.arithmetic_intensity(self.dtype.bytes());
                let chosen = match self.mode {
                    SelectionMode::Profiled => {
                        timings
                            .iter()
                            .min_by(|a, b| a.estimate.total_s.total_cmp(&b.estimate.total_s))
                            .expect("at least one candidate")
                            .scheme
                    }
                    SelectionMode::Analytical => match roofline.classify_intensity(intensity) {
                        Bound::MemoryBandwidth => *self
                            .candidates
                            .iter()
                            .find(|s| s.is_thread_level())
                            .unwrap_or(&self.candidates[0]),
                        Bound::Compute => *self
                            .candidates
                            .iter()
                            .find(|s| !s.is_thread_level())
                            .unwrap_or(&self.candidates[0]),
                    },
                };
                LayerPlan {
                    name: layer.name.clone(),
                    shape,
                    intensity,
                    chosen,
                    baseline_s: baseline.total_s,
                    candidates: timings,
                }
            })
            .collect();
        ModelPlan {
            model: model.name.clone(),
            device: self.device.clone(),
            layers,
        }
    }

    /// Compiles an executable network end to end: plan its analytic
    /// model (per-layer selection over the real zoo conv shapes), then
    /// bind every conv/fc node under its chosen scheme. Convenience
    /// over [`crate::compiled::CompiledModel::compile`].
    pub fn compile(&self, net: &aiga_nn::Network) -> crate::compiled::CompiledModel {
        crate::compiled::CompiledModel::compile(self, net)
    }

    /// Builds the §7.3 multi-input-size deployment: one plan per key,
    /// with `instantiate` producing the model for each key (e.g.
    /// `|b| zoo::dlrm_mlp_bottom(b)`).
    pub fn deployment(&self, keys: &[u64], instantiate: impl Fn(u64) -> Model) -> DeploymentPlan {
        assert!(!keys.is_empty(), "at least one input size required");
        DeploymentPlan::from_variants(
            keys.iter()
                .map(|&k| (k, self.plan(&instantiate(k))))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_nn::zoo;

    fn plan(model: &Model) -> ModelPlan {
        Planner::new(DeviceSpec::t4()).plan(model)
    }

    #[test]
    fn intensity_guided_never_loses_to_either_fixed_scheme() {
        // By construction (§6.2): "intensity-guided ABFT, by design,
        // always performs at least as well as global ABFT".
        for model in [
            zoo::resnet50(1, 224, 224),
            zoo::dlrm_mlp_bottom(1),
            zoo::coral(64),
        ] {
            let p = plan(&model);
            let ig = p.intensity_guided_s();
            assert!(
                ig <= p.fixed_scheme_s(Scheme::GlobalAbft) + 1e-15,
                "{}",
                model.name
            );
            assert!(
                ig <= p.fixed_scheme_s(Scheme::ThreadLevelOneSided) + 1e-15,
                "{}",
                model.name
            );
        }
    }

    #[test]
    fn low_intensity_models_choose_thread_level_everywhere() {
        let p = plan(&zoo::dlrm_mlp_bottom(1));
        assert_eq!(p.thread_level_layer_count(), p.layers.len());
    }

    #[test]
    fn mixed_models_split_their_choices() {
        // ResNet-50 contains both bandwidth- and compute-bound layers
        // (§3.2/Fig. 5), so intensity-guided ABFT should mix schemes.
        let p = plan(&zoo::resnet50(1, zoo::HD.0, zoo::HD.1));
        let thread = p.thread_level_layer_count();
        assert!(thread > 0, "no thread-level layers chosen");
        assert!(thread < p.layers.len(), "no global layers chosen");
    }

    #[test]
    fn profiled_and_analytical_modes_mostly_agree() {
        // §7.2: intensity relative to CMR predicts the winner; the two
        // modes should coincide on a large majority of layers.
        let model = zoo::resnet50(1, zoo::HD.0, zoo::HD.1);
        let profiled = Planner::new(DeviceSpec::t4()).plan(&model);
        let analytical = Planner::new(DeviceSpec::t4())
            .mode(SelectionMode::Analytical)
            .plan(&model);
        let agree = profiled
            .layers
            .iter()
            .zip(&analytical.layers)
            .filter(|(a, b)| a.chosen == b.chosen)
            .count();
        let frac = agree as f64 / profiled.layers.len() as f64;
        // Launch-overhead effects make small layers profile differently
        // than the pure roofline prediction, so agreement is high but not
        // total — the same reason the paper prefers empirical profiling.
        assert!(frac >= 0.6, "agreement only {frac:.2}");
    }

    #[test]
    fn overhead_percentages_are_consistent() {
        let p = plan(&zoo::dlrm_mlp_top(1));
        let ig = p.intensity_guided_overhead_pct();
        let glob = p.fixed_scheme_overhead_pct(Scheme::GlobalAbft);
        assert!(ig >= 0.0 && glob >= ig, "ig {ig}%, global {glob}%");
    }

    #[test]
    fn extension_candidates_plan_without_selector_changes() {
        // The §2.4 multi-checksum kernel participates in planning purely
        // through its registry entry.
        let p = Planner::new(DeviceSpec::t4())
            .candidates([
                Scheme::GlobalAbft,
                Scheme::ThreadLevelOneSided,
                Scheme::MultiChecksum(2),
            ])
            .plan(&zoo::dlrm_mlp_top(64));
        for layer in &p.layers {
            assert_eq!(layer.candidates.len(), 3);
            // Extra checksum rounds cost at least as much as one round.
            assert!(
                layer.time_under(Scheme::MultiChecksum(2))
                    >= layer.time_under(Scheme::GlobalAbft) - 1e-15
            );
        }
    }

    #[test]
    fn fp8_storage_flips_scheme_choice_on_a_crossover_layer() {
        // A 512³ MLP-Top layer sits below the T4 crossover (CMR ≈ 203)
        // in fp16 (AI ≈ 171 → thread-level ABFT) but above it in fp8
        // (AI ≈ 341 → global ABFT): halving the storage width doubles
        // the arithmetic intensity, so the intensity-guided selector
        // must flip its choice with the dtype.
        use aiga_dtype::Dtype;
        let model = zoo::dlrm_mlp_top(512);
        for mode in [SelectionMode::Analytical, SelectionMode::Profiled] {
            let fp16 = Planner::new(DeviceSpec::t4()).mode(mode).plan(&model);
            let fp8 = Planner::new(DeviceSpec::t4())
                .mode(mode)
                .dtype(Dtype::Fp8E4M3)
                .plan(&model);
            let flipped = fp16
                .layers
                .iter()
                .zip(&fp8.layers)
                .any(|(a, b)| a.chosen != b.chosen);
            assert!(flipped, "{mode:?}: no layer changed scheme under fp8");
            assert!(
                fp8.layers.iter().zip(&fp16.layers).all(|(l8, l16)| {
                    l8.intensity > l16.intensity * 1.9 && l8.intensity < l16.intensity * 2.1
                }),
                "fp8 should about double every layer's arithmetic intensity"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no kernel registered")]
    fn unregistered_candidates_fail_fast() {
        Planner::new(DeviceSpec::t4())
            .candidates([Scheme::MultiChecksum(9)])
            .plan(&zoo::dlrm_mlp_bottom(1));
    }

    mod deployment {
        use super::*;

        fn plans() -> DeploymentPlan {
            Planner::new(DeviceSpec::t4()).deployment(&[1, 256, 2048], zoo::dlrm_mlp_top)
        }

        #[test]
        fn selection_changes_with_input_size() {
            // §7.3 / §6.4.2: MLP-Top flips from all-thread-level at batch
            // 1 to (partly) global at batch 2048 as intensity rises past
            // the crossover.
            let d = plans();
            let small = d.plan_exact(1).unwrap();
            let large = d.plan_exact(2048).unwrap();
            assert_eq!(small.thread_level_layer_count(), small.layers.len());
            assert!(
                large.thread_level_layer_count() < large.layers.len(),
                "batch 2048 should move some layers to global ABFT"
            );
        }

        #[test]
        fn dispatch_pads_up_to_the_smallest_fitting_bucket() {
            let d = plans();
            // Observed batch 300 pads up to the 2048 bucket (same rule
            // as Session::bucket_for); 100 pads up to 256; oversized
            // inputs fall back to the largest plan; 0 and exact keys use
            // the smallest bucket that fits.
            assert_eq!(
                d.plan_for(300).layers[0].shape.m,
                d.plan_exact(2048).unwrap().layers[0].shape.m
            );
            assert_eq!(
                d.plan_for(100).layers[0].shape.m,
                d.plan_exact(256).unwrap().layers[0].shape.m
            );
            assert_eq!(
                d.plan_for(100_000).layers[0].shape.m,
                d.plan_exact(2048).unwrap().layers[0].shape.m
            );
            assert_eq!(
                d.plan_for(0).layers[0].shape.m,
                d.plan_exact(1).unwrap().layers[0].shape.m
            );
            assert_eq!(
                d.plan_for(256).layers[0].shape.m,
                d.plan_exact(256).unwrap().layers[0].shape.m
            );
        }

        #[test]
        fn every_variant_remains_optimal_per_layer() {
            let d = plans();
            for (_, plan) in d.variants() {
                assert!(
                    plan.intensity_guided_s() <= plan.fixed_scheme_s(Scheme::GlobalAbft) + 1e-15
                );
            }
        }
    }
}
